#!/usr/bin/env bash
# Record the Figure-5 breakdown + write-back sweep into BENCH_fig5.json
# (one JSON object per line, appended — the repo's perf trajectory).
#
# Usage: scripts/bench_fig5.sh [OUT_PATH]   (default: BENCH_fig5.json)
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p gpufs_bench --bin fig5_json -- "${1:-BENCH_fig5.json}"
