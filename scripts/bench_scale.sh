#!/usr/bin/env bash
# Record the multi-GPU image-search scaling benchmark (1→8 GPU fleet,
# strong + weak + skew + fleet-of-1 fig4 compat) into BENCH_scale.json
# (one JSON object per line, appended — the repo's perf trajectory).
#
# Usage: scripts/bench_scale.sh [OUT_PATH]   (default: BENCH_scale.json)
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p gpufs_bench --bin fig_scale_json -- "${1:-BENCH_scale.json}"
