#!/usr/bin/env bash
# Record the multi-tenant tail-latency benchmark (FIFO/unpartitioned vs
# weighted dispatch + admission + cache quotas under a skewed two-tenant
# trace, plus the defaults-compat fig4/fig5 leg) into BENCH_tail.json
# (one JSON object per line, appended — the repo's perf trajectory).
#
# Usage: scripts/bench_tail.sh [OUT_PATH]   (default: BENCH_tail.json)
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p gpufs_bench --bin tail_json -- "${1:-BENCH_tail.json}"
