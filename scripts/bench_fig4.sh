#!/usr/bin/env bash
# Record the Figure-4 sequential-read benchmark into BENCH_fig4.json
# (one JSON object per line, appended — the repo's perf trajectory).
#
# Usage: scripts/bench_fig4.sh [OUT_PATH]   (default: BENCH_fig4.json)
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p gpufs_bench --bin fig4_json -- "${1:-BENCH_fig4.json}"
