#!/usr/bin/env bash
# Record the Figure-7 lock-free-vs-forced-locked block sweep into
# BENCH_fig7.json (one JSON object per line, appended — the repo's perf
# trajectory).
#
# Usage: scripts/bench_fig7.sh [OUT_PATH]   (default: BENCH_fig7.json)
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p gpufs_bench --bin fig7_json -- "${1:-BENCH_fig7.json}"
