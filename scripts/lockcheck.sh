#!/usr/bin/env bash
# Run the whole test suite with the lockcheck detector active, plus the
# shim's own detector/semantics tests both with and without the feature.
#
# The workspace dev-dependency turns the `lockcheck` feature on for every
# `cargo test` already; this script makes the contract explicit for CI:
#
#   1. the shim's detector tests (seeded ABBA + hold-and-wait regressions,
#      waiver accounting, semantics equivalence) pass with the feature on;
#   2. the same shim still passes its plain API tests with the feature
#      off — the exact code `cargo build --release` ships;
#   3. the full workspace suite runs clean under the detector: zero
#      lock-order cycles, zero wait-for cycles, zero unwaived
#      held-across-RPC findings (waivers live in lockcheck.toml).
#
# Usage: scripts/lockcheck.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== shim detector + semantics tests (feature on) =="
cargo test -q -p parking_lot --features lockcheck

echo "== shim API tests (feature off, the release configuration) =="
cargo test -q -p parking_lot

echo "== full workspace under the detector =="
LOCKCHECK=1 cargo test -q

echo "lockcheck: all suites green"
