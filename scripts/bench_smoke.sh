#!/usr/bin/env bash
# Actually *run* the perf-trajectory recorder bins (fig4_json, fig5_json,
# fig7_json, fig_scale_json) at a tiny scale, so the JSONL tooling cannot rot
# between perf PRs — tests/smoke_targets.rs only proves they still
# build. Records go to a scratch directory, never to the repo's
# BENCH_*.json files, and each emitted record is sanity-checked for the
# headline fields.
set -euo pipefail
cd "$(dirname "$0")/.."

out_dir="$(mktemp -d)"
trap 'rm -rf "$out_dir"' EXIT

export GPUFS_BENCH_SMOKE=1

echo "== fig4_json (smoke) =="
cargo run --release -q -p gpufs_bench --bin fig4_json -- "$out_dir/fig4.json"
grep -q '"bench":"fig4_seq_read"' "$out_dir/fig4.json"
grep -q '"smoke":true' "$out_dir/fig4.json"
grep -q '"speedup_64k"' "$out_dir/fig4.json"
grep -q '"compat"' "$out_dir/fig4.json"

echo "== fig5_json (smoke) =="
cargo run --release -q -p gpufs_bench --bin fig5_json -- "$out_dir/fig5.json"
grep -q '"bench":"fig5_breakdown"' "$out_dir/fig5.json"
grep -q '"smoke":true' "$out_dir/fig5.json"
grep -q '"overlap_64k"' "$out_dir/fig5.json"
grep -q '"pipe"' "$out_dir/fig5.json"

echo "== fig7_json (smoke) =="
cargo run --release -q -p gpufs_bench --bin fig7_json -- "$out_dir/fig7.json"
grep -q '"bench":"fig7_lockfree"' "$out_dir/fig7.json"
grep -q '"smoke":true' "$out_dir/fig7.json"
grep -q '"lockfree_speedup_28"' "$out_dir/fig7.json"
grep -q '"mb_s_forced_locked"' "$out_dir/fig7.json"

echo "== fig_scale_json (smoke: 2-GPU fleet) =="
cargo run --release -q -p gpufs_bench --bin fig_scale_json -- "$out_dir/scale.json"
grep -q '"bench":"scale_image_search"' "$out_dir/scale.json"
grep -q '"smoke":true' "$out_dir/scale.json"
grep -q '"speedup_max"' "$out_dir/scale.json"
grep -q '"skew"' "$out_dir/scale.json"
grep -q '"fleet1_fig4_compat"' "$out_dir/scale.json"

echo "== dist_json (smoke: 2x2 host fleet) =="
cargo run --release -q -p gpufs_bench --bin dist_json -- "$out_dir/dist.json"
grep -q '"bench":"dist_image_search"' "$out_dir/dist.json"
grep -q '"smoke":true' "$out_dir/dist.json"
grep -q '"compat"' "$out_dir/dist.json"
grep -q '"hit_ratio"' "$out_dir/dist.json"
grep -q '"wire_rpcs"' "$out_dir/dist.json"

echo "== tail_json (smoke) =="
cargo run --release -q -p gpufs_bench --bin tail_json -- "$out_dir/tail.json"
grep -q '"bench":"tail_multi_tenant"' "$out_dir/tail.json"
grep -q '"smoke":true' "$out_dir/tail.json"
grep -q '"victim_p99_speedup"' "$out_dir/tail.json"
grep -q '"throughput_ratio"' "$out_dir/tail.json"
grep -q '"compat"' "$out_dir/tail.json"

echo "bench smoke OK (records in $out_dir, discarded)"
