#!/usr/bin/env bash
# Record the cross-host storage-tier benchmark (M hosts × N GPUs behind
# per-host proxies + host page caches over one storage server, with the
# zero-net 1-host compat sweep against BENCH_scale) into BENCH_dist.json
# (one JSON object per line, appended — the repo's perf trajectory).
#
# Usage: scripts/bench_dist.sh [OUT_PATH]   (default: BENCH_dist.json)
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p gpufs_bench --bin dist_json -- "${1:-BENCH_dist.json}"
