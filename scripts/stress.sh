#!/usr/bin/env bash
# Repeat-run the cross-channel concurrency stress suite (tests/stress.rs).
#
# Each test process already runs 10 internal rounds; repeating the whole
# binary re-rolls thread scheduling, block dispatch seeds, and channel
# claim order across processes, which is what shakes out the rare
# interleavings (the PR-2 concurrency bugs reproduced about once in seven
# full-suite runs).
#
# Usage: scripts/stress.sh [RUNS]   (default: 10)
set -euo pipefail
cd "$(dirname "$0")/.."
runs="${1:-10}"
cargo build -q --release --test stress
for i in $(seq 1 "$runs"); do
  echo "== stress run $i/$runs =="
  cargo test -q --release --test stress
done
echo "all $runs stress runs green"
