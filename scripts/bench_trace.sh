#!/usr/bin/env bash
# Record the traced fault-path latency breakdown into BENCH_trace.json
# (one JSON object per line, appended — the repo's perf trajectory).
# An optional second argument also dumps the Perfetto-loadable Chrome
# trace-event JSON.
#
# Usage: scripts/bench_trace.sh [OUT_PATH] [CHROME_OUT]   (default: BENCH_trace.json)
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run --release -q -p gpufs_bench --bin trace_json -- "${1:-BENCH_trace.json}" "${@:2}"
