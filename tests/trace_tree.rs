//! Well-formedness of the causal trees the span tracer emits, checked
//! over randomized fig4/fig5-style smoke points: random page size,
//! readahead window, block count, daemon pool geometry, and read/write
//! mix. Whatever the interleaving, every emitted span must
//!
//! * end at or after it starts (virtual time never runs backwards),
//! * name a parent that was itself emitted in the same trace (or be a
//!   root), and
//! * if it is a daemon pipeline chunk (`pread`/`dma`/`gather`/
//!   `pwrite`), hang under its serving RPC's `serve:*` span — which in
//!   turn hangs under the client-side `rpc:*` span of the same trace.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use gpufs::{GOpenMode, GpufsConfig, GpufsHost};
use gpusim::{Gpu, GpuSpec, Grid};
use hostfs::{HostFs, HostFsConfig};
use obs::SpanRecord;

/// One randomized smoke point: run it traced, return the drained spans.
fn traced_smoke_point(
    page_pow: u32,
    window: usize,
    blocks: usize,
    channels: usize,
    workers: usize,
    writes: bool,
) -> Vec<SpanRecord> {
    let page = 1usize << page_pow; // 8K..32K
    let file_bytes = 64 * page as u64; // 64 pages
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
    let cache = (file_bytes as usize + 16 * page).next_power_of_two();
    let cfg = GpufsConfig::new(page, cache)
        .with_readahead(window)
        .with_concurrency(channels, workers);
    let host = GpufsHost::with_config(Arc::clone(&fs), vec![Arc::clone(&gpu)], &cfg);
    let mount = host.mount(0, cfg).unwrap();
    host.set_tracing(true);

    fs.create_synthetic("/in.bin", file_bytes, 4).unwrap();
    let _ = fs.read_whole("/in.bin", 0).unwrap();
    fs.reset_device_time();

    let per_block = file_bytes / blocks as u64;
    gpu.launch(Grid::new(blocks, 64), 0, |blk| {
        let fd = mount.open(blk, "/in.bin", GOpenMode::ReadOnly).unwrap();
        let base = blk.block_id() as u64 * per_block;
        let mut buf = vec![0u8; page];
        let mut off = 0u64;
        while off < per_block {
            let n = mount.read(blk, &fd, base + off, &mut buf).unwrap();
            assert!(n > 0);
            off += n as u64;
        }
        mount.close(blk, fd).unwrap();

        if writes {
            // A write + fsync leg so WritePages RPCs and their daemon
            // pwrite/gather chunks appear in the forest too.
            let out = mount.open(blk, "/out.bin", GOpenMode::WriteOnce).unwrap();
            let payload = vec![0x5au8; page];
            let base = blk.block_id() as u64 * per_block;
            let mut off = 0u64;
            while off < per_block {
                let n = (per_block - off).min(page as u64) as usize;
                mount.write(blk, &out, base + off, &payload[..n]).unwrap();
                off += n as u64;
            }
            mount.fsync(blk, &out).unwrap();
            mount.close(blk, out).unwrap();
        }
    });
    host.tracer().snapshot()
}

/// The structural invariants every traced run must satisfy.
fn assert_well_formed(spans: &[SpanRecord]) {
    assert!(!spans.is_empty(), "a traced run emits spans");
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span, s)).collect();
    for s in spans {
        assert!(
            s.end >= s.start,
            "span {} ({}) ends before it starts: [{}, {}]",
            s.span,
            s.name,
            s.start,
            s.end
        );
        if s.parent == 0 {
            continue;
        }
        let parent = by_id.get(&s.parent).unwrap_or_else(|| {
            panic!(
                "span {} ({}) has no live parent {}",
                s.span, s.name, s.parent
            )
        });
        assert_eq!(
            parent.trace, s.trace,
            "span {} ({}) crosses traces to its parent {} ({})",
            s.span, s.name, parent.span, parent.name
        );
        // Pipeline chunks nest under the daemon's serve span; serve
        // spans nest under the client-side rpc span that shipped them.
        if matches!(s.name, "pread" | "dma" | "gather" | "pwrite") {
            assert!(
                parent.name.starts_with("serve:"),
                "chunk {} hangs under {:?}, not a serve span",
                s.name,
                parent.name
            );
        }
        if s.name.starts_with("serve:") {
            assert!(
                parent.name.starts_with("rpc:"),
                "serve span {} hangs under {:?}, not an rpc span",
                s.name,
                parent.name
            );
        }
    }
    // Every trace in the forest has at least one root.
    let mut roots: HashMap<u64, usize> = HashMap::new();
    for s in spans {
        if s.parent == 0 {
            *roots.entry(s.trace).or_default() += 1;
        }
    }
    for s in spans {
        assert!(
            roots.contains_key(&s.trace),
            "trace {} has no root (span {} {:?})",
            s.trace,
            s.span,
            s.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn traced_runs_emit_well_formed_causal_forests(
        page_pow in 13u32..16,     // 8 KB, 16 KB, 32 KB pages
        window in 1usize..9,
        blocks in 1usize..5,
        channels in 1usize..5,
        workers in 1usize..4,
        writes in any::<bool>(),
    ) {
        let spans = traced_smoke_point(page_pow, window, blocks, channels, workers, writes);
        assert_well_formed(&spans);
        // The read walk must actually have faulted: the forest contains
        // at least one gread root with an rpc child chain.
        prop_assert!(spans.iter().any(|s| s.name == "gread"));
        prop_assert!(spans.iter().any(|s| s.name == "rpc:ReadPages"));
        if writes {
            prop_assert!(spans.iter().any(|s| s.name == "gwrite"));
            prop_assert!(spans.iter().any(|s| s.name == "rpc:WritePages"));
        }
    }
}
