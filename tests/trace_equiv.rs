//! Observer-effect guard for the span tracer: tracing is compiled in
//! everywhere (the `g*` entry points, the pin path, the daemon
//! pipeline, the wire protocol, the flusher), so it must be
//! *time-transparent* — a run with tracing enabled must produce the
//! same bit-identical virtual finish time and the same counter sheets
//! as a run with tracing off (the default). The moment an instrumented
//! stage reads the clock differently, charges the link for the trace
//! ctx riding a wire frame, or bumps a counter it shouldn't, this
//! fails.
//!
//! The second test re-asserts the recorded fig4/fig5 paper baselines
//! in-process: tracing-off runs are bit-identical to pre-tracing
//! behavior, pinned to the same four digits the JSONL recorders assert.

use std::sync::Arc;

use gpufs::{GOpenMode, GpuFsMount, GpufsConfig, GpufsHost};
use gpufs_bench::{fig4_gpufs_phase_chunk, fig5_phase, SCALE};
use gpusim::{Gpu, GpuSpec, Grid};
use hostfs::{HostFs, HostFsConfig};
use simtime::Timings;

const PAGE: usize = 16 << 10;
const FILE_BYTES: u64 = 2 << 20; // 128 pages: enough to exercise readahead

/// Everything the run can observe: the virtual finish time (exact, in
/// nanos) and the full registry snapshot — every counter leaf, every
/// aggregate view, every latency histogram, rendered to one string.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    end_ns: u64,
    registry: String,
    /// Spans the tracer collected (0 when tracing is off).
    spans: usize,
}

fn fig4_smoke_point(tracing: bool) -> Observation {
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
    let host = GpufsHost::new(Arc::clone(&fs), vec![Arc::clone(&gpu)]);
    let cache = (FILE_BYTES as usize + 16 * PAGE).next_power_of_two();
    let cfg = GpufsConfig::new(PAGE, cache).with_readahead(8);
    let mount: Arc<GpuFsMount> = host.mount(0, cfg).unwrap();
    host.set_tracing(tracing);

    fs.create_synthetic("/seq.bin", FILE_BYTES, 4).unwrap();
    let _ = fs.read_whole("/seq.bin", 0).unwrap(); // warm, as fig4 does
    fs.reset_device_time();

    // One threadblock, as in lockcheck_equiv: concurrent blocks
    // genuinely reorder RPC batching between runs, so bit-identical
    // virtual time is only a meaningful contract on a single-client
    // timeline. The walk mixes gread and gmmap so both entry points'
    // roots are exercised.
    let res = gpu.launch(Grid::new(1, 256), 0, |blk| {
        let fd = mount.open(blk, "/seq.bin", GOpenMode::ReadOnly).unwrap();
        let mut buf = vec![0u8; PAGE];
        let mut off = 0u64;
        while off < FILE_BYTES {
            let n = if (off / PAGE as u64).is_multiple_of(2) {
                mount.read(blk, &fd, off, &mut buf).unwrap()
            } else {
                let map = mount.mmap(blk, &fd, off, PAGE).unwrap();
                let got = map.len();
                mount.munmap(blk, map);
                got
            };
            assert!(n > 0);
            off += n as u64;
        }
        mount.close(blk, fd).unwrap();
    });

    let spans = host.tracer().snapshot();
    if tracing {
        assert!(!spans.is_empty(), "tracing on must collect spans");
        // Well-formed enough to render: every span ends at or after its
        // start, and the causal tree has roots.
        assert!(spans.iter().all(|s| s.end >= s.start));
        assert!(spans.iter().any(|s| s.parent == 0));
    } else {
        assert!(spans.is_empty(), "tracing off must collect nothing");
    }
    Observation {
        end_ns: res.end,
        registry: format!("{:?}", host.registry().snapshot()),
        spans: spans.len(),
    }
}

#[test]
fn fig4_smoke_point_is_identical_with_tracing_on_and_off() {
    let on = fig4_smoke_point(true);
    let off = fig4_smoke_point(false);
    // Virtual time bit-identical and every counter sheet equal: the
    // tracer observed the run without altering it.
    assert_eq!(on.end_ns, off.end_ns, "tracing perturbed virtual time");
    assert_eq!(on.registry, off.registry, "tracing perturbed a counter");
    assert!(on.spans > 0 && off.spans == 0);
}

/// The recorded paper baselines, re-proved in-process with tracing at
/// its default (off): the serialized-engine fig4 numbers and the fig5
/// 28-block overlap must keep reproducing to the same digits the JSONL
/// recorders pin, so this PR's instrumentation of every one of those
/// code paths is bit-neutral end to end.
#[test]
fn recorded_fig4_and_fig5_baselines_still_reproduce() {
    let file_bytes = (1800 << 20) / SCALE;
    let w1 = fig4_gpufs_phase_chunk(file_bytes, 64 << 10, 1, Some(0));
    let w8 = fig4_gpufs_phase_chunk(file_bytes, 64 << 10, 8, Some(0));
    assert_eq!(
        format!("{w1:.1}"),
        "1798.2",
        "fig4 compat w1@64K drifted from its recorded baseline"
    );
    // Window 1 is run-to-run stable to four digits; window 8's
    // readahead carries the recorded ~0.3% jitter band (same band
    // tail_json's compat leg uses).
    assert!(
        (w8 - 4378.2).abs() <= 4378.2 * 5e-3,
        "fig4 compat w8@64K drifted from its recorded baseline: {w8:.1}"
    );

    let base = Timings::default();
    let total = fig5_phase(file_bytes, 64 << 10, &base, 4, 2);
    let no_dma = fig5_phase(file_bytes, 64 << 10, &base.without_dma(), 4, 2);
    let no_io = fig5_phase(file_bytes, 64 << 10, &base.without_host_io(), 4, 2);
    assert_eq!(
        format!("{:.3}", total as f64 / (no_dma + no_io) as f64),
        "0.973",
        "fig5 compat overlap@64K drifted from its recorded baseline"
    );
}
