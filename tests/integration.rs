//! End-to-end integration tests spanning all crates: GPU kernels doing
//! real file work through GPUfs against the host substrate, exercising
//! the consistency model, multi-GPU sharing, durability, and paging.

use std::sync::Arc;

use gpufs::{GOpenMode, GpufsConfig, GpufsHost};
use gpusim::{Gpu, GpuSpec, Grid};
use hostfs::{HostFs, HostFsConfig, OpenFlags};

struct Rig {
    fs: Arc<HostFs>,
    host: GpufsHost,
    gpus: Vec<Arc<Gpu>>,
}

fn rig(n_gpus: usize) -> Rig {
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    let gpus: Vec<Arc<Gpu>> = (0..n_gpus)
        .map(|i| Arc::new(Gpu::new(i, GpuSpec::small_test())))
        .collect();
    let host = GpufsHost::new(Arc::clone(&fs), gpus.clone());
    Rig { fs, host, gpus }
}

#[test]
fn gpu_processing_pipeline_composes_through_files() {
    // Stage 1 kernel writes a file; stage 2 kernel (a separate launch)
    // reads it back through the buffer cache — the "composition through
    // the file system" the paper's intro motivates.
    let r = rig(1);
    let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();

    let s1 = r.gpus[0].launch(Grid::new(4, 32), 0, |blk| {
        let fd = mount
            .open(blk, "/stage1.out", GOpenMode::WriteOnce)
            .unwrap();
        let data = vec![blk.block_id() as u8 + 1; 512];
        mount
            .write(blk, &fd, blk.block_id() as u64 * 512, &data)
            .unwrap();
        mount.fsync(blk, &fd).unwrap();
        mount.close(blk, fd).unwrap();
    });

    r.gpus[0].launch(Grid::new(4, 32), s1.end, |blk| {
        let fd = mount.open(blk, "/stage1.out", GOpenMode::ReadOnly).unwrap();
        let mut buf = vec![0u8; 512];
        let off = blk.block_id() as u64 * 512;
        assert_eq!(mount.read(blk, &fd, off, &mut buf).unwrap(), 512);
        assert!(buf.iter().all(|&b| b == blk.block_id() as u8 + 1));
        mount.close(blk, fd).unwrap();
    });
    // The host also sees the composed result (stage 1 synced it).
    let (data, _) = r.fs.read_whole("/stage1.out", 0).unwrap();
    assert_eq!(data.len(), 2048);
    for b in 0..4usize {
        assert!(data[b * 512..(b + 1) * 512]
            .iter()
            .all(|&x| x == b as u8 + 1));
    }
}

#[test]
fn cpu_writer_invalidates_gpu_cache_between_kernels() {
    let r = rig(1);
    r.fs.create("/shared.dat", &[1u8; 4096]).unwrap();
    let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();

    let k1 = r.gpus[0].launch(Grid::new(1, 32), 0, |blk| {
        let fd = mount.open(blk, "/shared.dat", GOpenMode::ReadOnly).unwrap();
        let mut b = [0u8; 64];
        mount.read(blk, &fd, 0, &mut b).unwrap();
        assert!(b.iter().all(|&x| x == 1));
        mount.close(blk, fd).unwrap();
    });

    // A CPU process rewrites the file between kernels.
    let (fd, t) =
        r.fs.open("/shared.dat", OpenFlags::read_write(), k1.end)
            .unwrap();
    r.fs.pwrite(fd, 0, &[2u8; 4096], t).unwrap();
    r.fs.close(fd).unwrap();

    r.gpus[0].launch(Grid::new(1, 32), k1.end, |blk| {
        let fd = mount.open(blk, "/shared.dat", GOpenMode::ReadOnly).unwrap();
        let mut b = [0u8; 64];
        mount.read(blk, &fd, 0, &mut b).unwrap();
        assert!(
            b.iter().all(|&x| x == 2),
            "lazy invalidation must drop stale pages"
        );
        mount.close(blk, fd).unwrap();
    });
}

#[test]
fn four_gpus_write_disjoint_stripes_of_one_file() {
    let r = rig(4);
    r.fs.create("/striped.out", &[0u8; 16384]).unwrap();
    let mounts: Vec<_> = (0..4)
        .map(|g| r.host.mount(g, GpufsConfig::small_test()).unwrap())
        .collect();

    std::thread::scope(|s| {
        for (g, mount) in mounts.iter().enumerate() {
            let mount = Arc::clone(mount);
            let gpu = Arc::clone(&r.gpus[g]);
            s.spawn(move || {
                gpu.launch(Grid::new(2, 32), 0, |blk| {
                    let fd = mount
                        .open(blk, "/striped.out", GOpenMode::ReadWrite)
                        .unwrap();
                    // Each GPU writes two 2 KB stripes via its blocks.
                    let stripe = (g * 2 + blk.block_id()) as u64 * 2048;
                    let payload = vec![(g * 2 + blk.block_id()) as u8 + 10; 2048];
                    mount.write(blk, &fd, stripe, &payload).unwrap();
                    mount.fsync(blk, &fd).unwrap();
                    mount.close(blk, fd).unwrap();
                });
            });
        }
    });

    let (data, _) = r.fs.read_whole("/striped.out", 0).unwrap();
    for stripe in 0..8usize {
        let expect = stripe as u8 + 10;
        assert!(
            data[stripe * 2048..(stripe + 1) * 2048]
                .iter()
                .all(|&b| b == expect),
            "stripe {stripe} corrupted by diff-and-merge"
        );
    }
}

#[test]
fn gfsync_durable_survives_host_crash() {
    let r = rig(1);
    r.fs.create("/durable.log", b"").unwrap();
    let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
    r.gpus[0].launch(Grid::new(1, 32), 0, |blk| {
        let fd = mount
            .open(blk, "/durable.log", GOpenMode::ReadWrite)
            .unwrap();
        mount.write(blk, &fd, 0, b"committed").unwrap();
        mount.fsync_durable(blk, &fd).unwrap();
        mount.write(blk, &fd, 9, b" volatile").unwrap();
        mount.fsync(blk, &fd).unwrap(); // host page cache only
        mount.close(blk, fd).unwrap();
    });
    r.fs.crash();
    let (data, _) = r.fs.read_whole("/durable.log", 0).unwrap();
    assert_eq!(&data[..9], b"committed");
    assert!(
        !data.windows(8).any(|w| w == b"volatile"),
        "non-durable tail lost in crash"
    );
}

#[test]
fn streaming_read_larger_than_cache_is_exact() {
    let r = rig(1);
    let payload: Vec<u8> = (0..256 * 1024u32).map(|i| (i % 241) as u8).collect();
    r.fs.create("/big.bin", &payload).unwrap();
    // 16 frames of 4 KB = 64 KB cache; 256 KB file streams through it.
    let mount = r
        .host
        .mount(0, GpufsConfig::new(4 << 10, 64 << 10))
        .unwrap();
    let checksum = std::sync::atomic::AtomicU64::new(0);
    r.gpus[0].launch(Grid::new(8, 64), 0, |blk| {
        let fd = mount.open(blk, "/big.bin", GOpenMode::ReadOnly).unwrap();
        let span = payload.len() / 8;
        let off = blk.block_id() * span;
        let mut buf = vec![0u8; span];
        assert_eq!(mount.read(blk, &fd, off as u64, &mut buf).unwrap(), span);
        assert_eq!(
            &buf[..],
            &payload[off..off + span],
            "block {} data",
            blk.block_id()
        );
        let sum: u64 = buf.iter().map(|&b| u64::from(b)).sum();
        checksum.fetch_add(sum, std::sync::atomic::Ordering::Relaxed);
        mount.close(blk, fd).unwrap();
    });
    let expect: u64 = payload.iter().map(|&b| u64::from(b)).sum();
    assert_eq!(checksum.load(std::sync::atomic::Ordering::Relaxed), expect);
    assert!(
        mount.counters().pages_reclaimed.get() > 0,
        "must have streamed"
    );
}

#[test]
fn unlinked_file_is_gone_for_cpu_and_gpu() {
    let r = rig(1);
    r.fs.create("/doomed", &[9u8; 128]).unwrap();
    let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
    r.gpus[0].launch(Grid::new(1, 32), 0, |blk| {
        mount.unlink(blk, "/doomed").unwrap();
        assert!(matches!(
            mount.open(blk, "/doomed", GOpenMode::ReadOnly),
            Err(gpufs::GpufsError::Host(hostfs::FsError::NotFound(_)))
        ));
    });
    assert!(!r.fs.exists("/doomed"));
}

#[test]
fn temp_files_never_reach_the_host_namespace_content() {
    let r = rig(1);
    let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
    r.gpus[0].launch(Grid::new(1, 32), 0, |blk| {
        let fd = mount.open(blk, "/scratch.tmp", GOpenMode::Temp).unwrap();
        mount
            .write(blk, &fd, 0, b"gpu-private intermediate data")
            .unwrap();
        let mut buf = [0u8; 29];
        assert_eq!(mount.read(blk, &fd, 0, &mut buf).unwrap(), 29);
        assert_eq!(&buf, b"gpu-private intermediate data");
        // gfsync on O_NOSYNC is a no-op by design.
        mount.fsync(blk, &fd).unwrap();
        mount.close(blk, fd).unwrap();
    });
    // The host sees the (empty) namespace entry but none of the content:
    // it was never propagated except under memory pressure, which this
    // small file never triggered.
    let (data, _) = r.fs.read_whole("/scratch.tmp", 0).unwrap();
    assert!(data.is_empty(), "temp content must not be synced on close");
}

#[test]
fn reopen_between_kernels_revives_cache_without_host_traffic() {
    let r = rig(1);
    r.fs.create_synthetic("/warm.bin", 1 << 20, 5).unwrap();
    let mount = r
        .host
        .mount(0, GpufsConfig::new(16 << 10, 2 << 20))
        .unwrap();
    let k1 = r.gpus[0].launch(Grid::new(4, 64), 0, |blk| {
        let fd = mount.open(blk, "/warm.bin", GOpenMode::ReadOnly).unwrap();
        let mut buf = vec![0u8; 64 << 10];
        let off = blk.block_id() as u64 * (256 << 10);
        for i in 0..4u64 {
            mount
                .read(blk, &fd, off + i * (64 << 10), &mut buf)
                .unwrap();
        }
        mount.close(blk, fd).unwrap();
    });
    let h2d = r.host.stats().bytes_h2d.get();
    assert!(h2d >= 1 << 20, "first kernel fetched the file");
    // Second kernel, fresh launch: the closed-file table serves it fully.
    r.gpus[0].launch(Grid::new(4, 64), k1.end, |blk| {
        let fd = mount.open(blk, "/warm.bin", GOpenMode::ReadOnly).unwrap();
        let mut buf = vec![0u8; 64 << 10];
        let off = blk.block_id() as u64 * (256 << 10);
        for i in 0..4u64 {
            mount
                .read(blk, &fd, off + i * (64 << 10), &mut buf)
                .unwrap();
        }
        mount.close(blk, fd).unwrap();
    });
    assert_eq!(
        r.host.stats().bytes_h2d.get(),
        h2d,
        "revival must not refetch"
    );
}

#[test]
fn daemon_shutdown_fails_calls_cleanly() {
    let mut r = rig(1);
    let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
    r.host.shutdown();
    r.gpus[0].launch(Grid::new(1, 32), 0, |blk| {
        assert!(matches!(
            mount.open(blk, "/x", GOpenMode::ReadOnly),
            Err(gpufs::GpufsError::DaemonStopped)
        ));
    });
}

#[test]
fn cache_counters_attribute_per_tenant_and_sum_to_the_aggregate() {
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    let gpus: Vec<Arc<Gpu>> = vec![Arc::new(Gpu::new(0, GpuSpec::small_test()))];
    let cfg = GpufsConfig::small_test().with_tenant_weights(vec![1, 1]);
    let host = GpufsHost::with_config(Arc::clone(&fs), gpus.clone(), &cfg);
    let mount = host.mount(0, cfg).unwrap();
    for t in 0..2u8 {
        fs.create(&format!("/tenant{t}"), &vec![t + 1; 4096])
            .unwrap();
    }
    // Block slots map to tenants: block 0 serves tenant 0, block 1
    // serves tenant 1, so their cache work lands on separate sheets.
    mount.set_tenant(0, 0);
    mount.set_tenant(1, 1);
    gpus[0].launch(Grid::new(2, 32), 0, |blk| {
        let path = format!("/tenant{}", blk.block_id());
        let fd = mount.open(blk, &path, GOpenMode::ReadOnly).unwrap();
        let mut buf = vec![0u8; 4096];
        assert_eq!(mount.read(blk, &fd, 0, &mut buf).unwrap(), 4096);
        assert!(buf.iter().all(|&b| b == blk.block_id() as u8 + 1));
        mount.close(blk, fd).unwrap();
    });
    let (all, t0, t1) = (
        mount.counters(),
        mount.tenant_counters(0),
        mount.tenant_counters(1),
    );
    // Both tenants did real cache work on their own sheets.
    assert!(t0.misses.get() > 0, "tenant 0 faulted its file");
    assert!(t1.misses.get() > 0, "tenant 1 faulted its file");
    // Every counter row sums across tenant sheets to the aggregate —
    // iterated over the snapshot so a future counter can't escape.
    for (i, (name, total)) in all.snapshot().into_iter().enumerate() {
        assert_eq!(
            t0.snapshot()[i].1 + t1.snapshot()[i].1,
            total,
            "per-tenant cache sheets must sum to the aggregate for `{name}`"
        );
    }
}
