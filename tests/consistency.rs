//! Cross-GPU consistency-model tests: the locality-optimized weak
//! consistency of paper §3.1 — local reads after fetch, propagation only
//! on explicit sync, visibility to other GPUs only on reopen — plus the
//! K-GPU randomized close-to-open property over the cluster layer.

use std::sync::Arc;

use gpufs::cluster::{CoherenceOp, FleetBuilder, HostFleet};
use gpufs::{GOpenMode, GpufsConfig, GpufsHost};
use gpusim::{Gpu, GpuSpec, Grid};
use hostfs::{HostFs, HostFsConfig};
use proptest::prelude::*;

fn rig(n_gpus: usize) -> (Arc<HostFs>, GpufsHost, Vec<Arc<Gpu>>) {
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    let gpus: Vec<Arc<Gpu>> = (0..n_gpus)
        .map(|i| Arc::new(Gpu::new(i, GpuSpec::small_test())))
        .collect();
    let host = GpufsHost::new(Arc::clone(&fs), gpus.clone());
    (fs, host, gpus)
}

#[test]
fn writes_become_visible_to_other_gpus_only_on_reopen() {
    let (fs, host, gpus) = rig(2);
    fs.create("/wc.dat", &[0u8; 4096]).unwrap();
    let m0 = host.mount(0, GpufsConfig::small_test()).unwrap();
    let m1 = host.mount(1, GpufsConfig::small_test()).unwrap();

    // GPU 1 caches the original content.
    let k_read = gpus[1].launch(Grid::new(1, 32), 0, |blk| {
        let fd = m1.open(blk, "/wc.dat", GOpenMode::ReadOnly).unwrap();
        let mut b = [0u8; 16];
        m1.read(blk, &fd, 0, &mut b).unwrap();
        assert!(b.iter().all(|&x| x == 0));
        m1.close(blk, fd).unwrap();
    });

    // GPU 0 writes and synchronizes.
    let k_write = gpus[0].launch(Grid::new(1, 32), 0, |blk| {
        let fd = m0.open(blk, "/wc.dat", GOpenMode::ReadWrite).unwrap();
        m0.write(blk, &fd, 0, &[7u8; 16]).unwrap();
        m0.fsync(blk, &fd).unwrap();
        m0.close(blk, fd).unwrap();
    });

    // GPU 1 reopens: lazy invalidation must surface GPU 0's writes.
    gpus[1].launch(Grid::new(1, 32), k_read.end.max(k_write.end), |blk| {
        let fd = m1.open(blk, "/wc.dat", GOpenMode::ReadOnly).unwrap();
        let mut b = [0u8; 16];
        m1.read(blk, &fd, 0, &mut b).unwrap();
        assert!(
            b.iter().all(|&x| x == 7),
            "reopen after foreign sync must see the new content"
        );
        m1.close(blk, fd).unwrap();
    });
}

#[test]
fn unsynced_writes_stay_invisible_across_gpus() {
    let (fs, host, gpus) = rig(2);
    fs.create("/priv.dat", &[1u8; 1024]).unwrap();
    let m0 = host.mount(0, GpufsConfig::small_test()).unwrap();
    let m1 = host.mount(1, GpufsConfig::small_test()).unwrap();

    // GPU 0 writes but never syncs (close does not propagate, §3.2).
    let k0 = gpus[0].launch(Grid::new(1, 32), 0, |blk| {
        let fd = m0.open(blk, "/priv.dat", GOpenMode::ReadWrite).unwrap();
        m0.write(blk, &fd, 0, &[9u8; 1024]).unwrap();
        m0.close(blk, fd).unwrap();
    });

    gpus[1].launch(Grid::new(1, 32), k0.end, |blk| {
        let fd = m1.open(blk, "/priv.dat", GOpenMode::ReadOnly).unwrap();
        let mut b = [0u8; 1024];
        m1.read(blk, &fd, 0, &mut b).unwrap();
        assert!(
            b.iter().all(|&x| x == 1),
            "unsynced foreign writes must not be visible"
        );
        m1.close(blk, fd).unwrap();
    });

    // The writer's own cache still sees its writes on reopen (revival).
    gpus[0].launch(Grid::new(1, 32), k0.end, |blk| {
        let fd = m0.open(blk, "/priv.dat", GOpenMode::ReadWrite).unwrap();
        let mut b = [0u8; 1024];
        m0.read(blk, &fd, 0, &mut b).unwrap();
        assert!(b.iter().all(|&x| x == 9), "own writes must survive reopen");
        m0.close(blk, fd).unwrap();
    });
}

#[test]
fn two_gpus_produce_one_write_once_file() {
    // The paper's "concurrent non-overlapping writes" common case: a
    // parallel task on several GPUs producing disjoint ranges of one
    // output file under O_GWRONCE.
    let (fs, host, gpus) = rig(2);
    let m: Vec<_> = (0..2)
        .map(|g| host.mount(g, GpufsConfig::new(4 << 10, 256 << 10)).unwrap())
        .collect();

    std::thread::scope(|s| {
        for g in 0..2usize {
            let mount = Arc::clone(&m[g]);
            let gpu = Arc::clone(&gpus[g]);
            s.spawn(move || {
                gpu.launch(Grid::new(4, 32), 0, |blk| {
                    let fd = mount
                        .open(blk, "/produced.out", GOpenMode::WriteOnce)
                        .unwrap();
                    let lane = (g * 4 + blk.block_id()) as u64;
                    let payload = vec![lane as u8 + 1; 1500];
                    mount.write(blk, &fd, lane * 1500, &payload).unwrap();
                    mount.fsync(blk, &fd).unwrap();
                    mount.close(blk, fd).unwrap();
                });
            });
        }
    });

    let (data, _) = fs.read_whole("/produced.out", 0).unwrap();
    assert_eq!(data.len(), 8 * 1500);
    for lane in 0..8usize {
        assert!(
            data[lane * 1500..(lane + 1) * 1500]
                .iter()
                .all(|&b| b == lane as u8 + 1),
            "lane {lane} merged incorrectly"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The §4.4 close-to-open property at fleet scale: K ≥ 4 GPUs
    /// interleave open→write→close→reopen on one shared file under a
    /// *randomized* schedule, and every reopen must observe the latest
    /// closed generation — whichever GPU wrote it, however the writers
    /// and readers alternate. Extends PR 4's deterministic 2-GPU walk.
    #[test]
    fn k_gpus_randomized_close_to_open_schedules(
        k in 4usize..7,
        steps in proptest::collection::vec((any::<bool>(), any::<prop::sample::Index>()), 6..24),
    ) {
        let fleet = FleetBuilder::new(k)
            .spec(GpuSpec::small_test())
            .config(GpufsConfig::small_test())
            .build()
            .expect("fleet");
        let mut tag = 0u64;
        let ops: Vec<CoherenceOp> = steps
            .iter()
            .map(|&(write, ref gpu)| {
                let gpu = gpu.index(k);
                if write {
                    tag += 1;
                    CoherenceOp::WriteClose { gpu, tag }
                } else {
                    CoherenceOp::OpenCheck { gpu }
                }
            })
            .collect();
        let report = fleet
            .run_close_to_open_schedule("/prop_c2o", &ops)
            .expect("schedule runs clean");
        prop_assert_eq!(
            report.checks,
            ops.iter()
                .filter(|op| matches!(op, CoherenceOp::OpenCheck { .. }))
                .count()
        );
        prop_assert!(
            report.mismatches.is_empty(),
            "close-to-open violated: {:?} under schedule {:?}",
            report.mismatches,
            ops
        );
        // The registry never tracks a GPU outside the fleet, and every
        // registered cache is at most the current generation.
        for file in fleet.coherence_audit() {
            for &(gpu, gen) in &file.cachers {
                prop_assert!(gpu < k);
                prop_assert!(gen <= file.generation);
            }
        }
    }

    /// The same close-to-open property *across hosts*: M×N GPUs behind
    /// per-host proxies (warm host page caches, non-zero network link)
    /// interleave open→write→close→reopen on one file served by a single
    /// storage server. Every reopen must observe the latest closed tag
    /// even when writer and reader sit on different hosts and the
    /// reader's host cache still holds the stale generation — and any
    /// invalidation the host caches perform must be *lazy*: entries die
    /// only when a later-generation read touches them, never by
    /// broadcast at publication time.
    #[test]
    fn cross_host_randomized_close_to_open_schedules(
        hosts in 2usize..4,
        gpus_per_host in 1usize..3,
        cached in any::<bool>(),
        steps in proptest::collection::vec((any::<bool>(), any::<prop::sample::Index>()), 6..20),
    ) {
        let fleet = HostFleet::builder(hosts, gpus_per_host)
            .spec(GpuSpec::small_test())
            .config(GpufsConfig::small_test())
            .host_cache_pages(if cached { 64 } else { 0 })
            .build()
            .expect("host fleet");
        let k = hosts * gpus_per_host;
        let mut tag = 0u64;
        let ops: Vec<CoherenceOp> = steps
            .iter()
            .map(|&(write, ref gpu)| {
                let gpu = gpu.index(k);
                if write {
                    tag += 1;
                    CoherenceOp::WriteClose { gpu, tag }
                } else {
                    CoherenceOp::OpenCheck { gpu }
                }
            })
            .collect();
        let report = fleet
            .run_close_to_open_schedule("/prop_xhost", &ops)
            .expect("schedule runs clean");
        prop_assert_eq!(
            report.checks,
            ops.iter()
                .filter(|op| matches!(op, CoherenceOp::OpenCheck { .. }))
                .count()
        );
        prop_assert!(
            report.mismatches.is_empty(),
            "cross-host close-to-open violated: {:?} under schedule {:?}",
            report.mismatches,
            ops
        );
        // The registry tracks host-qualified coherence ids, never an id
        // outside the fleet, never a generation from the future.
        for file in fleet.coherence_audit() {
            for &(cid, gen) in &file.cachers {
                prop_assert!(cid < k);
                prop_assert!(gen <= file.generation);
            }
        }
        // Lazy, never eager: a host cache entry is only ever invalidated
        // by a read that found it stale, so the lazy-invalidation count
        // can never exceed the misses that re-fetched (every
        // invalidation immediately becomes a miss). With the cache
        // disabled nothing is ever counted at all.
        for h in 0..hosts {
            let stats = fleet.proxy(h).cache().stats();
            if cached {
                prop_assert!(stats.lazy_invalidations.get() <= stats.misses.get());
            } else {
                prop_assert_eq!(stats.hits.get() + stats.misses.get(), 0);
            }
        }
    }
}

#[test]
fn generation_counters_line_up_with_registry() {
    let (fs, host, gpus) = rig(1);
    let ino = fs.create("/gen.dat", &[0u8; 64]).unwrap();
    let mount = host.mount(0, GpufsConfig::small_test()).unwrap();
    let g0 = fs.consistency().generation(ino);
    gpus[0].launch(Grid::new(1, 32), 0, |blk| {
        let fd = mount.open(blk, "/gen.dat", GOpenMode::ReadWrite).unwrap();
        mount.write(blk, &fd, 0, &[5u8; 8]).unwrap();
        mount.fsync(blk, &fd).unwrap();
        mount.close(blk, fd).unwrap();
    });
    let g1 = fs.consistency().generation(ino);
    assert!(
        g1 > g0,
        "open-for-write and write-back must bump the generation"
    );
    // A further kernel that only reads does not bump it.
    gpus[0].launch(Grid::new(1, 32), 0, |blk| {
        let fd = mount.open(blk, "/gen.dat", GOpenMode::ReadOnly).unwrap();
        let mut b = [0u8; 8];
        mount.read(blk, &fd, 0, &mut b).unwrap();
        assert_eq!(b, [5u8; 8]);
        mount.close(blk, fd).unwrap();
    });
    assert_eq!(fs.consistency().generation(ino), g1);
}
