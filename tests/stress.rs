//! Cross-channel concurrency stress (repeat-run target of
//! `scripts/stress.sh`).
//!
//! Multiple threadblocks mix reads and writes of one shared file through
//! a multi-channel RPC hub served by a daemon worker pool, under constant
//! eviction pressure (the cache holds a third of the touched pages), with
//! batched write-back enabled. Each round asserts the paper's page-lookup
//! accounting invariant (`hits + misses == lockfree + locked`, Table 2's
//! columns) and byte-exact file contents; the test repeats the round ten
//! times so rare interleavings — block dispatch order, channel claims,
//! worker scheduling, eviction races — get fresh dice every time. CI runs
//! the whole binary repeatedly on top via `scripts/stress.sh`.

use std::sync::Arc;

use gpufs::{GOpenMode, GpufsConfig, GpufsHost};
use gpusim::{Gpu, GpuSpec, Grid};
use hostfs::{HostFs, HostFsConfig};

/// Rounds per test-process run (each with a fresh rig and RNG seed from
/// the shuffled block dispatch).
const ROUNDS: usize = 10;

const BLOCKS: usize = 8;
const PAGE: usize = 4096;
/// Pages 0..8 are read-shared; pages 8..16 are written, one per block.
const READ_PAGES: usize = BLOCKS;

fn one_round(channels: usize, workers: usize, write_batch: usize) {
    one_round_wb(channels, workers, write_batch, 0, 0);
}

fn one_round_wb(
    channels: usize,
    workers: usize,
    write_batch: usize,
    dirty_high: usize,
    dirty_low: usize,
) {
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    let base: Vec<u8> = (0..(2 * READ_PAGES * PAGE) as u32)
        .map(|i| (i % 239) as u8)
        .collect();
    fs.create("/stress.bin", &base).unwrap();
    let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
    let host =
        GpufsHost::with_concurrency(Arc::clone(&fs), vec![Arc::clone(&gpu)], channels, workers);
    // 8 frames against 16+ touched pages: constant reclaim, so eviction's
    // batched write-back and the fault path race on every channel.
    let cfg = GpufsConfig::new(PAGE, 8 * PAGE)
        .with_concurrency(channels, workers)
        .with_write_batch(write_batch)
        .with_readahead(2)
        .with_async_writeback(dirty_high, dirty_low);
    let mount = host.mount(0, cfg).unwrap();

    gpu.launch(Grid::new(BLOCKS, 64), 0, |blk| {
        let fd = mount
            .open(blk, "/stress.bin", GOpenMode::ReadWrite)
            .unwrap();
        let my = blk.block_id();
        // Write this block's private page in two halves (two dirtyings).
        let off = ((READ_PAGES + my) * PAGE) as u64;
        mount
            .write(blk, &fd, off, &[my as u8 + 1; PAGE / 2])
            .unwrap();
        mount
            .write(
                blk,
                &fd,
                off + (PAGE / 2) as u64,
                &[my as u8 + 101; PAGE / 2],
            )
            .unwrap();
        // Interleave shared reads across the read half.
        let mut buf = vec![0u8; PAGE / 2];
        for step in 0..8usize {
            let roff = (((my + step) % READ_PAGES) * PAGE + PAGE / 4) as u64;
            let n = mount.read(blk, &fd, roff, &mut buf).unwrap();
            assert_eq!(n, PAGE / 2);
            assert_eq!(&buf[..], &base[roff as usize..roff as usize + PAGE / 2]);
        }
        mount.fsync(blk, &fd).unwrap();
        mount.close(blk, fd).unwrap();
    });

    let c = mount.counters();
    assert_eq!(
        c.hits.get() + c.misses.get(),
        c.lockfree_accesses.get() + c.locked_accesses.get(),
        "page-lookup accounting invariant violated"
    );
    assert!(c.pages_reclaimed.get() > 0, "round must run under pressure");
    assert!(c.write_rpcs.get() > 0, "writes batched through WritePages");

    // Byte-exact contents: read half untouched, each written page holds
    // exactly its block's two half-page patterns.
    let (data, _) = fs.read_whole("/stress.bin", 0).unwrap();
    assert_eq!(
        &data[..READ_PAGES * PAGE],
        &base[..READ_PAGES * PAGE],
        "read-shared half corrupted"
    );
    for b in 0..BLOCKS {
        let off = (READ_PAGES + b) * PAGE;
        assert!(
            data[off..off + PAGE / 2].iter().all(|&x| x == b as u8 + 1),
            "block {b} first half lost"
        );
        assert!(
            data[off + PAGE / 2..off + PAGE]
                .iter()
                .all(|&x| x == b as u8 + 101),
            "block {b} second half lost"
        );
    }
}

#[test]
fn stress_cross_channel_mixed_read_write() {
    for round in 0..ROUNDS {
        one_round(4, 3, 4);
        let _ = round;
    }
}

#[test]
fn stress_single_fifo_baseline_matches() {
    // The same workload through the original single-FIFO, single-worker,
    // per-page-write-back shape: the concurrency and batching knobs must
    // never change correctness, only scheduling.
    for _ in 0..ROUNDS {
        one_round(1, 1, 1);
    }
}

#[test]
fn stress_async_flusher_and_throttle_under_eviction() {
    // The same workload with the background flusher on and the dirty
    // watermarks squeezed (high = 4 against 8 written pages), so the
    // writer blocks repeatedly trip the throttle while the flusher, the
    // fsync drain loop, and eviction's write-back all gather from the
    // same dirty set across real threads. The round's own asserts carry
    // the payload: the accounting identity `hits + misses == lockfree +
    // locked` must survive the extra flusher traffic (its lane takes no
    // counters), and the file must come out byte-exact even when every
    // page's shipment may have happened on the flusher thread instead of
    // the writer's fsync.
    for _ in 0..ROUNDS {
        one_round_wb(4, 3, 4, 4, 1);
    }
}

#[test]
fn stress_flusher_watermarks_wide_open() {
    // Flusher on but never throttling (high above every dirty count this
    // workload can reach): pure background draining racing foreground
    // fsync; results must be indistinguishable from the sync rounds.
    for _ in 0..ROUNDS {
        one_round_wb(2, 2, 4, 64, 2);
    }
}

/// One traffic replay of the two-tenant tail trace at the given hog
/// intensity (scan sessions per hog block), returning the victim's p99.
fn victim_p99_under_hog(hog_sessions: usize) -> u64 {
    use gpufs::cluster::FleetBuilder;
    use simtime::Timings;
    use workloads::traffic::{run_traffic, TenantClass, TenantLoad, TrafficConfig};

    let cfg = TrafficConfig {
        seed: 42,
        dir: "/tail".into(),
        n_files: 64,
        file_bytes: 64 << 10,
        zipf_s: 0.3,
        op_bytes: PAGE,
        pace_lag_ns: 200_000,
        tenants: vec![
            // The victim: point lookups over a 3-file (48-page) hot set
            // that fits its 56-frame quota. 800 sessions x 8 ops keeps
            // the 48 compulsory cold faults well under 1% of samples, so
            // its p99 sits in the cache-hit bucket whenever the hot set
            // stays resident.
            TenantLoad {
                class: TenantClass::PointLookup,
                blocks: 2,
                sessions: 800,
                arrival_gap_ns: 20_000,
                burst_sessions: 8,
                off_gap_ns: 100_000,
                ops_per_session: 8,
                hot_files: 3,
            },
            // The hog: streaming scans over the whole corpus.
            TenantLoad {
                class: TenantClass::Scan,
                blocks: 8,
                sessions: hog_sessions,
                arrival_gap_ns: 5_000,
                burst_sessions: 16,
                off_gap_ns: 50_000,
                ops_per_session: 16,
                hot_files: 0,
            },
        ],
    };
    let mut fleet = FleetBuilder::new(1)
        .config(
            GpufsConfig::new(PAGE, 64 * PAGE)
                .with_tenant_weights(vec![8, 1])
                .with_tenant_admission(vec![0, 4])
                .with_tenant_quotas(vec![56, 8]),
        )
        .timings(Timings::default())
        .build()
        .expect("fleet");
    let out = run_traffic(&fleet, &cfg).expect("traffic");
    let p99 = out.per_tenant[0].p99;
    fleet.shutdown();
    p99
}

#[test]
fn stress_tenant_isolation_bounds_victim_p99_under_10x_load() {
    // The multi-tenant isolation contract under overload: a hog pushing
    // 10x its baseline scan load must not move a quota-protected victim's
    // p99 by more than a small constant factor. The victim's hot set
    // stays resident inside its cache quota, so its p99 lives in the
    // cache-hit bucket at both intensities; without the quota the 10x hog
    // flushes the hot set continuously and the victim's p99 lands in the
    // disk bucket, ~7-11x worse (see `examples/multi_tenant.rs`). Each
    // round replays the identical trace pair with fresh real-thread
    // interleavings (worker scheduling, channel claims, freelist shards).
    for round in 0..3 {
        let baseline = victim_p99_under_hog(10);
        let loaded = victim_p99_under_hog(100);
        assert!(
            loaded <= baseline.saturating_mul(4),
            "round {round}: 10x hog load pushed the victim's p99 from \
             {baseline} ns to {loaded} ns (> 4x: isolation broken)"
        );
    }
}
