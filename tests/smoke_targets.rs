//! Smoke test against bench/example rot: builds every example and bench
//! target and checks that the full expected target set is still declared.
//!
//! `cargo test` only compiles test targets, so a broken bench or example
//! would otherwise go unnoticed until someone runs `cargo bench`. This
//! test shells back out to cargo (cheap when the targets are already
//! built) so the tier-1 suite fails the moment any of them stops
//! compiling or is dropped from the manifests.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "cluster_search",
    "dist_hosts",
    "grep_search",
    "image_search",
    "matvec_oom",
    "multi_tenant",
    "quickstart",
];

const BENCHES: &[&str] = &[
    "ablation_design",
    "fig4_seq_read",
    "fig5_breakdown",
    "fig6_random_read",
    "fig7_cache_access",
    "fig8_matvec",
    "micro_pagecache",
    "micro_radix",
    "table2_cache_size",
    "table3_imgmatch",
    "table4_grep",
    "write_throughput",
];

/// Tooling binaries (perf-trajectory recorders driven by `scripts/`).
const BINS: &[&str] = &[
    "dist_json",
    "fig4_json",
    "fig5_json",
    "fig7_json",
    "fig_scale_json",
    "tail_json",
    "trace_json",
];

fn cargo() -> Command {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

#[test]
fn all_examples_and_benches_compile() {
    let output = cargo()
        .args(["build", "--examples", "--benches", "--bins"])
        .output()
        .expect("failed to spawn cargo");
    assert!(
        output.status.success(),
        "`cargo build --examples --benches --bins` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

#[test]
fn expected_target_set_is_declared() {
    let output = cargo()
        .args(["metadata", "--format-version", "1", "--no-deps"])
        .output()
        .expect("failed to spawn cargo");
    assert!(output.status.success(), "cargo metadata failed");
    let metadata = String::from_utf8_lossy(&output.stdout);

    // Naive but dependency-free: each target appears in the metadata as a
    // ["kind"],"name" pair. Enough to catch a target being deleted or
    // renamed without updating this list.
    for example in EXAMPLES {
        let needle = format!("[\"example\"],\"crate_types\":[\"bin\"],\"name\":\"{example}\"");
        assert!(
            metadata.contains(&needle),
            "example target {example} missing"
        );
    }
    for bench in BENCHES {
        let needle = format!("[\"bench\"],\"crate_types\":[\"bin\"],\"name\":\"{bench}\"");
        assert!(metadata.contains(&needle), "bench target {bench} missing");
    }
    for bin in BINS {
        let needle = format!("[\"bin\"],\"crate_types\":[\"bin\"],\"name\":\"{bin}\"");
        assert!(metadata.contains(&needle), "bin target {bin} missing");
    }
}
