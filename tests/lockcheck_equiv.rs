//! Observer-effect guard for the lockcheck instrumentation: one
//! Figure-4-style smoke point (sequential read walk with readahead) run
//! twice in one process — detector enabled, then runtime-disabled —
//! must produce identical cache counters and a bit-identical virtual
//! finish time. The checker may only watch; the moment it perturbs lock
//! semantics or the simulated clock, this fails.

use std::sync::Arc;

use gpufs::{GOpenMode, GpuFsMount, GpufsConfig, GpufsHost};
use gpusim::{Gpu, GpuSpec, Grid};
use hostfs::{HostFs, HostFsConfig};
use parking_lot::lockcheck;

const PAGE: usize = 16 << 10;
const FILE_BYTES: u64 = 2 << 20; // 128 pages: enough to exercise readahead

/// Everything the run can observe: the virtual finish time (exact, in
/// nanos) and the full deterministic counter sheet.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    end_ns: u64,
    hits: u64,
    misses: u64,
    readahead_hits: u64,
    read_rpcs: u64,
    batched_rpcs: u64,
    pages_per_rpc: u64,
    writebacks: u64,
    pages_reclaimed: u64,
    daemon_requests: u64,
    daemon_opens: u64,
}

fn fig4_smoke_point() -> Observation {
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
    let host = GpufsHost::new(Arc::clone(&fs), vec![Arc::clone(&gpu)]);
    let cache = (FILE_BYTES as usize + 16 * PAGE).next_power_of_two();
    let cfg = GpufsConfig::new(PAGE, cache).with_readahead(8);
    let mount: Arc<GpuFsMount> = host.mount(0, cfg).unwrap();

    fs.create_synthetic("/seq.bin", FILE_BYTES, 4).unwrap();
    let _ = fs.read_whole("/seq.bin", 0).unwrap(); // warm, as fig4 does
    fs.reset_device_time();

    // One threadblock, unlike fig4's 28: with concurrent blocks the
    // readahead/demand races genuinely reorder RPC batching between
    // runs, so bit-identical virtual time is only a meaningful contract
    // on a single-client timeline.
    let blocks = 1usize;
    let per_block = FILE_BYTES / blocks as u64;
    let res = gpu.launch(Grid::new(blocks, 256), 0, |blk| {
        let fd = mount.open(blk, "/seq.bin", GOpenMode::ReadOnly).unwrap();
        let base = blk.block_id() as u64 * per_block;
        let mut buf = vec![0u8; PAGE];
        let mut off = 0u64;
        let mut sum = 0u64;
        while off < per_block {
            let n = mount.read(blk, &fd, base + off, &mut buf).unwrap();
            assert!(n > 0);
            sum += buf[..n].iter().map(|&b| b as u64).sum::<u64>();
            off += n as u64;
        }
        assert!(sum > 0, "synthetic data is non-zero");
        mount.close(blk, fd).unwrap();
    });

    let c = mount.counters();
    let d = host.stats();
    Observation {
        end_ns: res.end,
        hits: c.hits.get(),
        misses: c.misses.get(),
        readahead_hits: c.readahead_hits.get(),
        read_rpcs: c.read_rpcs.get(),
        batched_rpcs: c.batched_rpcs.get(),
        pages_per_rpc: c.pages_per_rpc.get(),
        writebacks: c.writebacks.get(),
        pages_reclaimed: c.pages_reclaimed.get(),
        daemon_requests: d.requests.get(),
        daemon_opens: d.opens.get(),
    }
}

#[test]
fn fig4_smoke_point_is_identical_with_lockcheck_on_and_off() {
    // `cargo test` compiles the shim with the `lockcheck` feature (via
    // the workspace dev-dependency), so unless the run was started with
    // LOCKCHECK=0 the first pass below actually exercises the detector.
    let compiled_in = lockcheck::enabled();

    lockcheck::set_enabled(true);
    let waived_before = lockcheck::waived_count();
    let on = fig4_smoke_point();
    if compiled_in {
        let reports = lockcheck::take_reports();
        assert!(
            reports.is_empty(),
            "clean run reports nothing: {reports:#?}"
        );
        assert!(
            lockcheck::waived_count() > waived_before,
            "the gopen path-lock waiver (lockcheck.toml) is exercised"
        );
    }

    lockcheck::set_enabled(false);
    let off = fig4_smoke_point();
    lockcheck::set_enabled(true);

    // Counters equal and virtual time bit-identical: the checker
    // observed the run without altering it.
    assert_eq!(on, off);
}
