//! Property-based tests (proptest) on the core data structures and
//! invariants: the radix tree against a model, the host file system
//! against a byte-vector model, diff-and-merge equivalence, and
//! virtual-time resource laws.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use gpufs::cache::{diff_extents, nonzero_extents, PageState, RadixTree};
use hostfs::{HostFs, HostFsConfig, OpenFlags, PageCache};
use simtime::ByteLedger;
use simtime::{BandwidthResource, Clock, Nanos};

/// Reference LRU used to model the page cache.
#[derive(Default)]
struct ModelLru {
    order: Vec<(u64, u64)>, // most-recent last
}

impl ModelLru {
    fn touch(&mut self, key: (u64, u64), cap: usize) -> bool {
        let hit = if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            true
        } else {
            false
        };
        self.order.push(key);
        while self.order.len() > cap {
            self.order.remove(0);
        }
        hit
    }
}

// ---------------------------------------------------------------------
// Radix tree vs. a HashMap model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64),
    Lookup(u64),
    SetReady(u64, u32),
    Evict(u64),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    // Cluster indices so leaves are shared and revisited.
    let idx = prop_oneof![0u64..64, 64u64..4096, (1u64 << 20)..(1u64 << 20) + 64];
    prop_oneof![
        idx.clone().prop_map(TreeOp::Insert),
        idx.clone().prop_map(TreeOp::Lookup),
        (idx.clone(), 0u32..1000).prop_map(|(i, f)| TreeOp::SetReady(i, f)),
        idx.prop_map(TreeOp::Evict),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn radix_tree_matches_model(ops in proptest::collection::vec(tree_op(), 1..200)) {
        let tree = RadixTree::new();
        // Model: page index -> Some(frame) if Ready, None if Empty slot.
        let mut model: HashMap<u64, Option<u32>> = HashMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(i) => {
                    tree.get_or_insert(i);
                    model.entry(i).or_insert(None);
                }
                TreeOp::Lookup(i) => {
                    match tree.lookup(i) {
                        Some(fp) => {
                            // The whole leaf materializes at once, so a
                            // hit is allowed even if the model never
                            // touched this exact index; but a Ready state
                            // must match the model's frame.
                            if let Some(Some(frame)) = model.get(&i) {
                                prop_assert_eq!(fp.state(), PageState::Ready);
                                prop_assert_eq!(fp.frame(), Some(*frame));
                            }
                        }
                        None => {
                            prop_assert!(
                                !model.contains_key(&i),
                                "model has {} but tree lost it", i
                            );
                        }
                    }
                }
                TreeOp::SetReady(i, frame) => {
                    let fp = tree.get_or_insert(i);
                    fp.lock();
                    fp.begin_update();
                    fp.set_frame(Some(frame));
                    fp.set_state(PageState::Ready);
                    fp.end_update();
                    fp.unlock();
                    model.insert(i, Some(frame));
                }
                TreeOp::Evict(i) => {
                    if let Some(fp) = tree.lookup(i) {
                        if fp.state() == PageState::Ready && fp.refs() == 0 {
                            fp.lock();
                            fp.begin_update();
                            fp.set_frame(None);
                            fp.set_state(PageState::Empty);
                            fp.end_update();
                            fp.unlock();
                            model.insert(i, None);
                        }
                    }
                }
            }
        }
        // Final sweep: every Ready page in the model is found lock-free.
        for (&i, entry) in &model {
            if let Some(frame) = entry {
                let fp = tree.lookup(i).expect("model page present");
                prop_assert_eq!(fp.frame(), Some(*frame));
            }
        }
    }

    // -----------------------------------------------------------------
    // Host FS vs. a byte-vector model.
    // -----------------------------------------------------------------

    #[test]
    fn hostfs_read_your_writes(
        writes in proptest::collection::vec(
            (0u64..8192, proptest::collection::vec(any::<u8>(), 1..256)),
            1..24
        )
    ) {
        let fs = HostFs::new(HostFsConfig::default());
        fs.create("/f", b"").unwrap();
        let (fd, mut t) = fs.open("/f", OpenFlags::read_write(), 0).unwrap();
        let mut model: Vec<u8> = Vec::new();
        for (off, data) in writes {
            let (_, t2) = fs.pwrite(fd, off, &data, t).unwrap();
            t = t2;
            let end = off as usize + data.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[off as usize..end].copy_from_slice(&data);
        }
        let mut buf = vec![0u8; model.len() + 10];
        let (n, _) = fs.pread(fd, 0, &mut buf, t).unwrap();
        prop_assert_eq!(n, model.len());
        prop_assert_eq!(&buf[..n], &model[..]);
        fs.close(fd).unwrap();
    }

    #[test]
    fn hostfs_crash_preserves_exactly_the_synced_state(
        pre in proptest::collection::vec(any::<u8>(), 0..512),
        post in proptest::collection::vec(any::<u8>(), 1..512)
    ) {
        let fs = HostFs::new(HostFsConfig::default());
        fs.create("/f", b"").unwrap();
        let (fd, t) = fs.open("/f", OpenFlags::read_write(), 0).unwrap();
        let (_, t) = fs.pwrite(fd, 0, &pre, t).unwrap();
        let t = fs.fsync(fd, t).unwrap();
        let (_, _t) = fs.pwrite(fd, pre.len() as u64, &post, t).unwrap();
        fs.crash();
        let (data, _) = fs.read_whole("/f", 0).unwrap();
        prop_assert_eq!(data, pre, "crash must roll back to the fsync point");
    }

    // -----------------------------------------------------------------
    // Diff-and-merge laws.
    // -----------------------------------------------------------------

    #[test]
    fn diff_extents_reconstruct_working_copy(
        pristine in proptest::collection::vec(any::<u8>(), 1..512),
        edits in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 0..32),
        gap in 0usize..16
    ) {
        let mut working = pristine.clone();
        for (idx, byte) in edits {
            let i = idx.index(working.len());
            working[i] = byte;
        }
        let extents = diff_extents(&working, &pristine, gap);
        // Applying the extents to the pristine copy yields the working
        // copy: nothing modified is lost, nothing unmodified is claimed
        // that would change the merge result.
        let mut merged = pristine.clone();
        for (off, len) in &extents {
            let (off, len) = (*off as usize, *len as usize);
            merged[off..off + len].copy_from_slice(&working[off..off + len]);
        }
        prop_assert_eq!(&merged, &working);
        // Extents are sorted, non-overlapping, and separated by > gap.
        for pair in extents.windows(2) {
            let end = pair[0].0 as usize + pair[0].1 as usize;
            prop_assert!(end + gap < pair[1].0 as usize + 1,
                "extents {:?} not separated by more than {}", pair, gap);
        }
    }

    #[test]
    fn nonzero_extents_cover_every_nonzero_byte(
        page in proptest::collection::vec(any::<u8>(), 1..512),
        gap in 0usize..16
    ) {
        let extents = nonzero_extents(&page, gap);
        let mut covered = vec![false; page.len()];
        for (off, len) in &extents {
            for c in &mut covered[*off as usize..*off as usize + *len as usize] {
                *c = true;
            }
        }
        for (i, &b) in page.iter().enumerate() {
            if b != 0 {
                prop_assert!(covered[i], "nonzero byte {i} not covered");
            }
        }
        // Merging into an all-zero page reproduces exactly `page`.
        let mut merged = vec![0u8; page.len()];
        for (off, len) in &extents {
            let (off, len) = (*off as usize, *len as usize);
            merged[off..off + len].copy_from_slice(&page[off..off + len]);
        }
        prop_assert_eq!(&merged, &page);
    }

    // -----------------------------------------------------------------
    // Page cache vs. a reference LRU.
    // -----------------------------------------------------------------

    #[test]
    fn pagecache_tracks_reference_lru(
        touches in proptest::collection::vec((1u64..4, 0u64..32), 1..200),
        cap in 1usize..16
    ) {
        let ledger = Arc::new(ByteLedger::new(cap as u64 * 4096));
        let mut cache = PageCache::new(4096, ledger);
        let mut model = ModelLru::default();
        for (ino, page) in touches {
            let (hit, _) = cache.touch_read(ino, page);
            let model_hit = model.touch((ino, page), cap);
            prop_assert_eq!(hit, model_hit, "cache/model disagree on ({}, {})", ino, page);
        }
        // Residency agrees exactly at the end.
        for &(ino, page) in &model.order {
            prop_assert!(cache.is_resident(ino, page));
        }
        prop_assert_eq!(cache.resident_bytes(), model.order.len() as u64 * 4096);
    }

    // -----------------------------------------------------------------
    // Virtual-time laws.
    // -----------------------------------------------------------------

    #[test]
    fn bandwidth_resource_enforces_capacity(
        requests in proptest::collection::vec((0u64..1_000_000, 1u64..1_000_000), 1..50)
    ) {
        let bw = BandwidthResource::new(1000.0, 100);
        let mut total_service: Nanos = 0;
        let mut max_end: Nanos = 0;
        for (earliest, bytes) in &requests {
            let r = bw.transfer(*earliest, *bytes);
            prop_assert!(r.start >= *earliest, "transfer cannot start before issue");
            prop_assert_eq!(r.busy(), bw.service_time(*bytes));
            total_service += r.busy();
            max_end = max_end.max(r.end);
        }
        // Work conservation: everything finishes no later than the last
        // issue time plus the total service demand.
        let max_earliest = requests.iter().map(|&(e, _)| e).max().unwrap_or(0);
        prop_assert!(max_end <= max_earliest + total_service);
    }

    #[test]
    fn clock_is_monotone_under_any_op_sequence(
        ops in proptest::collection::vec((any::<bool>(), 0u64..1_000_000), 1..100)
    ) {
        let mut clock = Clock::new();
        let mut last = clock.now();
        for (advance, v) in ops {
            if advance {
                clock.advance(v);
            } else {
                clock.wait_until(v);
            }
            prop_assert!(clock.now() >= last);
            last = clock.now();
        }
    }
}
