//! Property-based tests (proptest) on the core data structures and
//! invariants: the radix tree against a model, the host file system
//! against a byte-vector model, diff-and-merge equivalence, and
//! virtual-time resource laws.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use gpufs::cache::{diff_extents, nonzero_extents, PageState, RadixTree};
use hostfs::{HostFs, HostFsConfig, OpenFlags, PageCache};
use simtime::ByteLedger;
use simtime::{BandwidthResource, Clock, Nanos};

/// Reference LRU used to model the page cache.
#[derive(Default)]
struct ModelLru {
    order: Vec<(u64, u64)>, // most-recent last
}

impl ModelLru {
    fn touch(&mut self, key: (u64, u64), cap: usize) -> bool {
        let hit = if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            true
        } else {
            false
        };
        self.order.push(key);
        while self.order.len() > cap {
            self.order.remove(0);
        }
        hit
    }
}

// ---------------------------------------------------------------------
// Radix tree vs. a HashMap model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64),
    Lookup(u64),
    SetReady(u64, u32),
    Evict(u64),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    // Cluster indices so leaves are shared and revisited.
    let idx = prop_oneof![0u64..64, 64u64..4096, (1u64 << 20)..(1u64 << 20) + 64];
    prop_oneof![
        idx.clone().prop_map(TreeOp::Insert),
        idx.clone().prop_map(TreeOp::Lookup),
        (idx.clone(), 0u32..1000).prop_map(|(i, f)| TreeOp::SetReady(i, f)),
        idx.prop_map(TreeOp::Evict),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn radix_tree_matches_model(ops in proptest::collection::vec(tree_op(), 1..200)) {
        let tree = RadixTree::new();
        // Model: page index -> Some(frame) if Ready, None if Empty slot.
        let mut model: HashMap<u64, Option<u32>> = HashMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(i) => {
                    tree.get_or_insert(i);
                    model.entry(i).or_insert(None);
                }
                TreeOp::Lookup(i) => {
                    match tree.lookup(i) {
                        Some(fp) => {
                            // The whole leaf materializes at once, so a
                            // hit is allowed even if the model never
                            // touched this exact index; but a Ready state
                            // must match the model's frame.
                            if let Some(Some(frame)) = model.get(&i) {
                                prop_assert_eq!(fp.state(), PageState::Ready);
                                prop_assert_eq!(fp.frame(), Some(*frame));
                            }
                        }
                        None => {
                            prop_assert!(
                                !model.contains_key(&i),
                                "model has {} but tree lost it", i
                            );
                        }
                    }
                }
                TreeOp::SetReady(i, frame) => {
                    let fp = tree.get_or_insert(i);
                    fp.lock();
                    fp.begin_update();
                    fp.set_frame(Some(frame));
                    fp.set_state(PageState::Ready);
                    fp.end_update();
                    fp.unlock();
                    model.insert(i, Some(frame));
                }
                TreeOp::Evict(i) => {
                    if let Some(fp) = tree.lookup(i) {
                        if fp.state() == PageState::Ready && fp.refs() == 0 {
                            fp.lock();
                            fp.begin_update();
                            fp.set_frame(None);
                            fp.set_state(PageState::Empty);
                            fp.end_update();
                            fp.unlock();
                            model.insert(i, None);
                        }
                    }
                }
            }
        }
        // Final sweep: every Ready page in the model is found lock-free.
        for (&i, entry) in &model {
            if let Some(frame) = entry {
                let fp = tree.lookup(i).expect("model page present");
                prop_assert_eq!(fp.frame(), Some(*frame));
            }
        }
    }

    // -----------------------------------------------------------------
    // Host FS vs. a byte-vector model.
    // -----------------------------------------------------------------

    #[test]
    fn hostfs_read_your_writes(
        writes in proptest::collection::vec(
            (0u64..8192, proptest::collection::vec(any::<u8>(), 1..256)),
            1..24
        )
    ) {
        let fs = HostFs::new(HostFsConfig::default());
        fs.create("/f", b"").unwrap();
        let (fd, mut t) = fs.open("/f", OpenFlags::read_write(), 0).unwrap();
        let mut model: Vec<u8> = Vec::new();
        for (off, data) in writes {
            let (_, t2) = fs.pwrite(fd, off, &data, t).unwrap();
            t = t2;
            let end = off as usize + data.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[off as usize..end].copy_from_slice(&data);
        }
        let mut buf = vec![0u8; model.len() + 10];
        let (n, _) = fs.pread(fd, 0, &mut buf, t).unwrap();
        prop_assert_eq!(n, model.len());
        prop_assert_eq!(&buf[..n], &model[..]);
        fs.close(fd).unwrap();
    }

    #[test]
    fn hostfs_crash_preserves_exactly_the_synced_state(
        pre in proptest::collection::vec(any::<u8>(), 0..512),
        post in proptest::collection::vec(any::<u8>(), 1..512)
    ) {
        let fs = HostFs::new(HostFsConfig::default());
        fs.create("/f", b"").unwrap();
        let (fd, t) = fs.open("/f", OpenFlags::read_write(), 0).unwrap();
        let (_, t) = fs.pwrite(fd, 0, &pre, t).unwrap();
        let t = fs.fsync(fd, t).unwrap();
        let (_, _t) = fs.pwrite(fd, pre.len() as u64, &post, t).unwrap();
        fs.crash();
        let (data, _) = fs.read_whole("/f", 0).unwrap();
        prop_assert_eq!(data, pre, "crash must roll back to the fsync point");
    }

    // -----------------------------------------------------------------
    // Diff-and-merge laws.
    // -----------------------------------------------------------------

    #[test]
    fn diff_extents_reconstruct_working_copy(
        pristine in proptest::collection::vec(any::<u8>(), 1..512),
        edits in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 0..32),
        gap in 0usize..16
    ) {
        let mut working = pristine.clone();
        for (idx, byte) in edits {
            let i = idx.index(working.len());
            working[i] = byte;
        }
        let extents = diff_extents(&working, &pristine, gap);
        // Applying the extents to the pristine copy yields the working
        // copy: nothing modified is lost, nothing unmodified is claimed
        // that would change the merge result.
        let mut merged = pristine.clone();
        for (off, len) in &extents {
            let (off, len) = (*off as usize, *len as usize);
            merged[off..off + len].copy_from_slice(&working[off..off + len]);
        }
        prop_assert_eq!(&merged, &working);
        // Extents are sorted, non-overlapping, and separated by > gap.
        for pair in extents.windows(2) {
            let end = pair[0].0 as usize + pair[0].1 as usize;
            prop_assert!(end + gap < pair[1].0 as usize + 1,
                "extents {:?} not separated by more than {}", pair, gap);
        }
    }

    #[test]
    fn nonzero_extents_cover_every_nonzero_byte(
        page in proptest::collection::vec(any::<u8>(), 1..512),
        gap in 0usize..16
    ) {
        let extents = nonzero_extents(&page, gap);
        let mut covered = vec![false; page.len()];
        for (off, len) in &extents {
            for c in &mut covered[*off as usize..*off as usize + *len as usize] {
                *c = true;
            }
        }
        for (i, &b) in page.iter().enumerate() {
            if b != 0 {
                prop_assert!(covered[i], "nonzero byte {i} not covered");
            }
        }
        // Merging into an all-zero page reproduces exactly `page`.
        let mut merged = vec![0u8; page.len()];
        for (off, len) in &extents {
            let (off, len) = (*off as usize, *len as usize);
            merged[off..off + len].copy_from_slice(&page[off..off + len]);
        }
        prop_assert_eq!(&merged, &page);
    }

    // -----------------------------------------------------------------
    // Page cache vs. a reference LRU.
    // -----------------------------------------------------------------

    #[test]
    fn pagecache_tracks_reference_lru(
        touches in proptest::collection::vec((1u64..4, 0u64..32), 1..200),
        cap in 1usize..16
    ) {
        let ledger = Arc::new(ByteLedger::new(cap as u64 * 4096));
        let mut cache = PageCache::new(4096, ledger);
        let mut model = ModelLru::default();
        for (ino, page) in touches {
            let (hit, _) = cache.touch_read(ino, page);
            let model_hit = model.touch((ino, page), cap);
            prop_assert_eq!(hit, model_hit, "cache/model disagree on ({}, {})", ino, page);
        }
        // Residency agrees exactly at the end.
        for &(ino, page) in &model.order {
            prop_assert!(cache.is_resident(ino, page));
        }
        prop_assert_eq!(cache.resident_bytes(), model.order.len() as u64 * 4096);
    }

    // -----------------------------------------------------------------
    // Virtual-time laws.
    // -----------------------------------------------------------------

    #[test]
    fn bandwidth_resource_enforces_capacity(
        requests in proptest::collection::vec((0u64..1_000_000, 1u64..1_000_000), 1..50)
    ) {
        let bw = BandwidthResource::new(1000.0, 100);
        let mut total_service: Nanos = 0;
        let mut max_end: Nanos = 0;
        for (earliest, bytes) in &requests {
            let r = bw.transfer(*earliest, *bytes);
            prop_assert!(r.start >= *earliest, "transfer cannot start before issue");
            prop_assert_eq!(r.busy(), bw.service_time(*bytes));
            total_service += r.busy();
            max_end = max_end.max(r.end);
        }
        // Work conservation: everything finishes no later than the last
        // issue time plus the total service demand.
        let max_earliest = requests.iter().map(|&(e, _)| e).max().unwrap_or(0);
        prop_assert!(max_end <= max_earliest + total_service);
    }

    #[test]
    fn clock_is_monotone_under_any_op_sequence(
        ops in proptest::collection::vec((any::<bool>(), 0u64..1_000_000), 1..100)
    ) {
        let mut clock = Clock::new();
        let mut last = clock.now();
        for (advance, v) in ops {
            if advance {
                clock.advance(v);
            } else {
                clock.wait_until(v);
            }
            prop_assert!(clock.now() >= last);
            last = clock.now();
        }
    }
}

// ---------------------------------------------------------------------
// Wire protocol: randomized round-trips and hostile-input rejection.
// ---------------------------------------------------------------------

use gpufs::remote::proto::{
    decode_request, decode_response, encode_request, encode_response, ProtoError, VERSION,
};
use gpufs::remote::{WireRequest, WireResponse};
use hostfs::FsError;

/// The largest payload a single page can carry on the wire (one 64 KiB
/// buffer-cache page).
const MAX_WIRE_PAGE: usize = 64 << 10;

/// Paths as they appear on the wire: arbitrary bytes squeezed into UTF-8
/// (lossily), so decoded strings always round-trip byte-identically.
fn wire_path() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..24)
        .prop_map(|b| format!("/{}", String::from_utf8_lossy(&b)))
}

/// Page payloads: mostly small random buffers, with a full max-size
/// (64 KiB) page on half the draws so every batch shape sees the
/// largest frames the cache ever ships.
fn wire_page_bytes() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..48),
        any::<u8>().prop_map(|b| vec![b; MAX_WIRE_PAGE]),
    ]
}

/// Every server-side error variant, with arbitrary diagnostic payloads.
fn wire_fs_error() -> impl Strategy<Value = FsError> {
    prop_oneof![
        wire_path().prop_map(FsError::NotFound),
        wire_path().prop_map(FsError::AlreadyExists),
        wire_path().prop_map(FsError::IsADirectory),
        wire_path().prop_map(FsError::NotADirectory),
        wire_path().prop_map(FsError::DirectoryNotEmpty),
        wire_path().prop_map(FsError::PermissionDenied),
        any::<u64>().prop_map(FsError::BadDescriptor),
        wire_path().prop_map(FsError::InvalidPath),
        wire_path().prop_map(FsError::ImmutableFile),
    ]
}

/// All eight request variants with randomized fields, including
/// max-size page batches.
fn wire_request() -> impl Strategy<Value = WireRequest> {
    prop_oneof![
        (wire_path(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
            |(path, write, create, truncate)| WireRequest::Open {
                path,
                write,
                create,
                truncate,
            }
        ),
        any::<u64>().prop_map(|fd| WireRequest::Close { fd }),
        (
            any::<u64>(),
            proptest::collection::vec((any::<u64>(), 0u32..(MAX_WIRE_PAGE as u32 + 1)), 0..9),
        )
            .prop_map(|(fd, pages)| WireRequest::ReadPages { fd, pages }),
        (
            any::<u64>(),
            proptest::collection::vec((any::<u64>(), wire_page_bytes()), 0..5),
        )
            .prop_map(|(fd, extents)| WireRequest::WritePages { fd, extents }),
        any::<u64>().prop_map(|fd| WireRequest::Fsync { fd }),
        wire_path().prop_map(|path| WireRequest::Unlink { path }),
        (any::<u64>(), any::<u64>()).prop_map(|(fd, size)| WireRequest::Truncate { fd, size }),
        wire_path().prop_map(|path| WireRequest::Stat { path }),
    ]
}

/// All six response variants, including every [`FsError`] and max-size
/// read payloads.
fn wire_response() -> impl Strategy<Value = WireResponse> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(fd, ino, size, generation)| WireResponse::Opened {
                fd,
                ino,
                size,
                generation,
            }
        ),
        proptest::collection::vec(wire_page_bytes(), 0..5)
            .prop_map(|pages| WireResponse::Read { pages }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(n, generation)| WireResponse::Wrote { n, generation }),
        (any::<u64>(), any::<u64>(), any::<bool>(), any::<u64>()).prop_map(
            |(ino, size, writable, generation)| WireResponse::Stat {
                ino,
                size,
                writable,
                generation,
            }
        ),
        (0u32..1).prop_map(|_| WireResponse::Done),
        wire_fs_error().prop_map(WireResponse::Err),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wire_requests_round_trip(req in wire_request()) {
        let frame = encode_request(&req);
        prop_assert_eq!(decode_request(&frame), Ok(req));
    }

    #[test]
    fn wire_responses_round_trip(resp in wire_response()) {
        let frame = encode_response(&resp);
        prop_assert_eq!(decode_response(&frame), Ok(resp));
    }

    /// Any strict prefix of a well-formed frame is rejected — the decoder
    /// returns an error, it never panics or invents a value.
    #[test]
    fn truncated_wire_frames_reject(
        req in wire_request(),
        resp in wire_response(),
        cut in any::<prop::sample::Index>()
    ) {
        let frame = encode_request(&req);
        prop_assert!(decode_request(&frame[..cut.index(frame.len())]).is_err());
        let frame = encode_response(&resp);
        prop_assert!(decode_response(&frame[..cut.index(frame.len())]).is_err());
    }

    /// Flipping any single byte never panics the decoder: it either
    /// rejects the frame or yields a value that is itself well-formed
    /// (re-encodes to a decodable frame). Flips inside payload bytes may
    /// legitimately decode to a *different* value; flips that break the
    /// structure must come back as errors, not panics.
    #[test]
    fn corrupted_wire_frames_reject_or_stay_well_formed(
        req in wire_request(),
        resp in wire_response(),
        at in any::<prop::sample::Index>(),
        bit in 0u32..8
    ) {
        let mut frame = encode_request(&req);
        let i = at.index(frame.len());
        frame[i] ^= 1 << bit;
        if let Ok(decoded) = decode_request(&frame) {
            let regenerated = encode_request(&decoded);
            prop_assert_eq!(decode_request(&regenerated), Ok(decoded));
        }
        let mut frame = encode_response(&resp);
        let i = at.index(frame.len());
        frame[i] ^= 1 << bit;
        if let Ok(decoded) = decode_response(&frame) {
            let regenerated = encode_response(&decoded);
            prop_assert_eq!(decode_response(&regenerated), Ok(decoded));
        }
    }

    /// Every version other than the one this build speaks is rejected
    /// with `BadVersion` carrying the offending version.
    #[test]
    fn version_mismatched_wire_frames_reject(req in wire_request(), version in any::<u16>()) {
        let mut frame = encode_request(&req);
        frame[4..6].copy_from_slice(&version.to_le_bytes());
        if version == VERSION {
            prop_assert_eq!(decode_request(&frame), Ok(req));
        } else {
            prop_assert_eq!(decode_request(&frame), Err(ProtoError::BadVersion(version)));
        }
    }
}

// ---------------------------------------------------------------------
// Paging-layer invariants: the lock-free pin protocol against a model.
// ---------------------------------------------------------------------

/// The fpage lifecycle transitions the paging and reclaim layers perform,
/// plus the two pin protocols whose agreement the paper's lock-free
/// design depends on (§4.2).
#[derive(Debug, Clone, Copy)]
enum PageOp {
    /// `Empty -> Initializing`: a miss claims the slot.
    BeginInit,
    /// `Initializing -> Ready(frame)`: the fault publishes a frame.
    Publish(u32),
    /// `Initializing -> Empty`: a failed fault backs out.
    AbortInit,
    /// `Ready -> (detached) -> Empty`: eviction, with the write-back
    /// happening while the fpage is detached, exactly like
    /// `try_evict_page`.
    Evict,
    /// One lock-free pin attempt.
    PinLockfree,
    /// One pin through the fpage lock.
    PinLocked,
    /// Drop one pin.
    Unpin,
}

fn page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        (0u32..1).prop_map(|_| PageOp::BeginInit),
        (0u32..8).prop_map(PageOp::Publish),
        (0u32..1).prop_map(|_| PageOp::AbortInit),
        (0u32..1).prop_map(|_| PageOp::Evict),
        (0u32..1).prop_map(|_| PageOp::PinLockfree),
        (0u32..1).prop_map(|_| PageOp::PinLocked),
        (0u32..1).prop_map(|_| PageOp::Unpin),
    ]
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ModelPage {
    Empty,
    Init,
    Ready(u32),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of initialization, eviction (write-back), and
    /// pinning on one page keeps the two pin protocols in agreement:
    /// `try_pin_lockfree` and `pin_locked` observe the same snapshot, a
    /// pinned frame is always the one the model says is installed, and
    /// the pin count never drifts.
    #[test]
    fn fpage_lockfree_and_locked_pins_agree(
        ops in proptest::collection::vec(page_op(), 1..300)
    ) {
        use gpufs::cache::Snapshot;

        let tree = RadixTree::new();
        let fp = tree.get_or_insert(0);
        let mut model = ModelPage::Empty;
        let mut pins: u32 = 0;
        let lifecycle = |to_init: bool, frame: Option<u32>, to: PageState| {
            fp.lock();
            fp.begin_update();
            if to_init {
                fp.set_state(PageState::Initializing);
            }
            fp.set_frame(frame);
            fp.set_state(to);
            fp.end_update();
            fp.unlock();
        };
        for op in ops {
            match op {
                PageOp::BeginInit => {
                    if model == ModelPage::Empty {
                        lifecycle(true, None, PageState::Initializing);
                        model = ModelPage::Init;
                    }
                }
                PageOp::Publish(frame) => {
                    if model == ModelPage::Init {
                        lifecycle(false, Some(frame), PageState::Ready);
                        model = ModelPage::Ready(frame);
                    }
                }
                PageOp::AbortInit => {
                    if model == ModelPage::Init {
                        lifecycle(false, None, PageState::Empty);
                        model = ModelPage::Empty;
                    }
                }
                PageOp::Evict => {
                    if matches!(model, ModelPage::Ready(_)) && pins == 0 {
                        // Detach (blocks new pins), "write back", free.
                        lifecycle(true, None, PageState::Initializing);
                        lifecycle(false, None, PageState::Empty);
                        model = ModelPage::Empty;
                    }
                }
                PageOp::PinLockfree | PageOp::PinLocked => {
                    let snap = match op {
                        PageOp::PinLockfree => fp
                            .try_pin_lockfree()
                            .expect("sequential schedule has no in-flight update"),
                        _ => fp.pin_locked(),
                    };
                    match snap {
                        Snapshot::Pinned(f) => {
                            prop_assert_eq!(ModelPage::Ready(f), model, "pinned a stale frame");
                            pins += 1;
                        }
                        Snapshot::Empty => prop_assert_eq!(ModelPage::Empty, model),
                        Snapshot::Initializing => prop_assert_eq!(ModelPage::Init, model),
                    }
                }
                PageOp::Unpin => {
                    if pins > 0 {
                        fp.unpin();
                        pins -= 1;
                    }
                }
            }
            // Agreement after every step: both protocols see one truth.
            let lockfree = fp.try_pin_lockfree().expect("quiescent seqlock");
            let locked = fp.pin_locked();
            prop_assert_eq!(lockfree, locked, "protocols disagree");
            if matches!(lockfree, Snapshot::Pinned(_)) {
                fp.unpin();
                fp.unpin();
            }
            prop_assert_eq!(fp.refs(), pins, "pin count drifted");
        }
    }
}

// ---------------------------------------------------------------------
// Sharded frame arena: conservation under concurrent alloc/free/steal.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The sharded free list conserves frames under concurrent traffic:
    /// with `threads` workers hammering alloc/release from different home
    /// shards (so steals and migrations happen constantly), no frame is
    /// ever lost, duplicated, or handed to two owners at once, and after
    /// every worker returns what it took the arena is exactly full again
    /// — regardless of the shard count or the alloc/release schedule.
    #[test]
    fn sharded_frame_arena_conserves_frames(
        shards in 1usize..6,
        threads in 2usize..6,
        // Per-thread op tape: `true` = try to alloc, `false` = release
        // one held frame (if any).
        tapes in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 20..120),
            6..7
        )
    ) {
        use std::sync::atomic::{AtomicBool, Ordering};

        use gpufs::cache::FrameArena;
        use gpusim::GlobalMem;

        const FRAMES: usize = 24;
        let mem = GlobalMem::new(1 << 20);
        let arena = FrameArena::new(&mem, 4096, FRAMES, shards).unwrap();
        // One owner flag per frame: set on alloc, cleared on release. A
        // frame handed out twice trips the swap assertion in the worker.
        let owned: Vec<AtomicBool> = (0..FRAMES).map(|_| AtomicBool::new(false)).collect();

        std::thread::scope(|s| {
            for (t, tape) in tapes.iter().take(threads).enumerate() {
                let arena = &arena;
                let owned = &owned;
                s.spawn(move || {
                    let mut held: Vec<u32> = Vec::new();
                    // Distinct home shards force cross-shard steals.
                    for &do_alloc in tape {
                        if do_alloc {
                            if let Some(f) = arena.alloc(t) {
                                assert!(
                                    !owned[f as usize].swap(true, Ordering::AcqRel),
                                    "frame {f} handed to two owners"
                                );
                                held.push(f);
                            }
                        } else if let Some(f) = held.pop() {
                            assert!(
                                owned[f as usize].swap(false, Ordering::AcqRel),
                                "released frame {f} that was not owned"
                            );
                            arena.release(t, f);
                        }
                    }
                    // Drain: every worker returns what it still holds.
                    for f in held {
                        assert!(owned[f as usize].swap(false, Ordering::AcqRel));
                        arena.release(t, f);
                    }
                });
            }
        });

        // Conservation: the arena is exactly full, every frame exactly
        // once across all shards, no owner flag left set.
        prop_assert_eq!(arena.free_frames(), FRAMES);
        let mut seen = [false; FRAMES];
        while let Some(f) = arena.alloc(0) {
            prop_assert!(!seen[f as usize], "frame {} duplicated in the freelists", f);
            seen[f as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "a frame vanished from the freelists");
        prop_assert!(owned.iter().all(|o| !o.load(std::sync::atomic::Ordering::Acquire)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-tenant accounting conserves the arena: with concurrent workers
    /// allocating on behalf of random tenants (`alloc_owned`) and
    /// releasing from arbitrary shards, at every quiescent point
    /// `sum(tenant_held) + free_frames == num_frames` — frames are
    /// charged to exactly one tenant while out and to nobody once back,
    /// regardless of quotas, shard count, or the interleaving. Quotas are
    /// soft: allocation never fails while a free frame exists, even for a
    /// tenant already over its quota, and `over_quota` answers exactly
    /// `held > quota`.
    #[test]
    fn tenant_holdings_conserve_the_arena(
        shards in 1usize..6,
        threads in 2usize..6,
        quota0 in 1usize..32,
        quota1 in 1usize..32,
        // Per-thread op tape: values 0..4 = alloc charged to that tenant
        // (tenant 3 exceeds the sheet count, exercising clamping); 4..8 =
        // release one held frame (if any).
        tapes in proptest::collection::vec(
            proptest::collection::vec(0usize..8, 20..120),
            6..7
        )
    ) {
        use gpufs::cache::FrameArena;
        use gpusim::GlobalMem;

        const FRAMES: usize = 24;
        const TENANTS: usize = 3;
        let mem = GlobalMem::new(1 << 20);
        let arena = FrameArena::with_quotas(
            &mem, 4096, FRAMES, shards, TENANTS, &[quota0, quota1],
        ).unwrap();
        prop_assert_eq!(arena.num_tenants(), TENANTS);
        prop_assert_eq!(arena.tenant_quota(0), quota0);
        prop_assert_eq!(arena.tenant_quota(1), quota1);
        // Unlisted tenants get an unlimited quota; out-of-range lookups
        // clamp to the last sheet.
        prop_assert_eq!(arena.tenant_quota(2), usize::MAX);
        prop_assert_eq!(arena.tenant_quota(99), usize::MAX);

        std::thread::scope(|s| {
            for (t, tape) in tapes.iter().take(threads).enumerate() {
                let arena = &arena;
                s.spawn(move || {
                    let mut held: Vec<u32> = Vec::new();
                    for &op in tape {
                        if op < 4 {
                            // Soft quotas: a free frame is never refused,
                            // whoever asks.
                            if let Some(f) = arena.alloc_owned(t, op) {
                                held.push(f);
                            }
                        } else if let Some(f) = held.pop() {
                            arena.release(t, f);
                        }
                    }
                    for f in held {
                        arena.release(t, f);
                    }
                });
            }
        });

        // Conservation at quiescence: everything came back, and no tenant
        // is still charged for anything.
        let held_sum: usize = (0..TENANTS).map(|t| arena.tenant_held(t)).sum();
        prop_assert_eq!(held_sum + arena.free_frames(), FRAMES);
        prop_assert_eq!(arena.free_frames(), FRAMES);
        for t in 0..TENANTS {
            prop_assert_eq!(arena.tenant_held(t), 0);
            prop_assert!(!arena.over_quota(t));
        }

        // Single-threaded replay of the invariant mid-flight: drain the
        // arena charging alternating tenants and check the ledger balances
        // after every step, including while tenants sit over quota.
        let mut held: Vec<u32> = Vec::new();
        let mut charged = 0usize;
        while let Some(f) = arena.alloc_owned(0, charged % TENANTS) {
            held.push(f);
            charged += 1;
            let held_now: usize = (0..TENANTS).map(|t| arena.tenant_held(t)).sum();
            prop_assert_eq!(held_now, charged);
            prop_assert_eq!(held_now + arena.free_frames(), FRAMES);
        }
        prop_assert_eq!(charged, FRAMES);
        // With all 24 frames out across quotas of at most 31, over_quota
        // must answer exactly `held > quota` for every tenant.
        for (t, quota) in [(0, quota0), (1, quota1), (2, usize::MAX)] {
            prop_assert_eq!(arena.over_quota(t), arena.tenant_held(t) > quota);
        }
        for f in held {
            arena.release(0, f);
        }
        prop_assert_eq!(arena.free_frames(), FRAMES);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Mount-level stress on a single shared page: concurrent threadblocks
    /// interleave `pin_page` (reads and writes), `gmsync` write-back, and
    /// eviction pressure. No write may be lost, every pin must be released
    /// (free frames return to capacity once the cache is discarded), and
    /// the access-accounting invariant `hits + misses =
    /// lockfree + locked` must hold — every pin took exactly one of the
    /// two protocols.
    #[test]
    fn one_page_survives_interleaved_pin_evict_writeback(
        burn_pages in proptest::collection::vec(1u64..4, 4..5),
        fill in 1u8..250
    ) {
        use gpufs::{GOpenMode, GpufsConfig, GpufsHost};
        use gpusim::{Gpu, GpuSpec, Grid};

        let fs = Arc::new(HostFs::new(HostFsConfig::default()));
        fs.create("/prop_share", &[0u8; 4096]).unwrap();
        let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
        let host = GpufsHost::new(Arc::clone(&fs), vec![Arc::clone(&gpu)]);
        // 6 frames: the shared page + its pristine copy + little slack, so
        // the burn file's pages constantly evict the shared one.
        let mount = host.mount(0, GpufsConfig::new(4096, 6 * 4096)).unwrap();
        let burn_for_kernel = burn_pages.clone();
        let kernel_mount = Arc::clone(&mount);
        gpu.launch(Grid::new(4, 32), 0, move |blk| {
            let mount = &kernel_mount;
            let b = blk.block_id();
            let fd = mount.open(blk, "/prop_share", GOpenMode::ReadWrite).unwrap();
            let my = fill.wrapping_add(b as u8);
            // Write my disjoint slice of the one page, then propagate it.
            mount.write(blk, &fd, b as u64 * 1024, &[my; 1024]).unwrap();
            mount.msync(blk, &fd, 0).unwrap();
            // Interleave eviction pressure: a temp file large enough to
            // need the shared page's frames.
            let tmp = mount.open(blk, &format!("/burn{b}"), GOpenMode::Temp).unwrap();
            for page in 0..burn_for_kernel[b] {
                mount.write(blk, &tmp, page * 4096, &[9u8; 4096]).unwrap();
            }
            mount.close(blk, tmp).unwrap();
            // Read my slice back through a fresh fault if it was evicted:
            // the msync above makes it durable on the host.
            let mut buf = [0u8; 1024];
            let n = mount.read(blk, &fd, b as u64 * 1024, &mut buf).unwrap();
            assert_eq!(n, 1024);
            assert!(buf.iter().all(|&x| x == my), "block {b} lost its slice");
            mount.close(blk, fd).unwrap();
        });
        // No write lost on the host after the msyncs.
        let (data, _) = fs.read_whole("/prop_share", 0).unwrap();
        for b in 0..4usize {
            let my = fill.wrapping_add(b as u8);
            prop_assert!(
                data[b * 1024..(b + 1) * 1024].iter().all(|&x| x == my),
                "slice {} lost through evict/writeback interleaving", b
            );
        }
        // Every pin took exactly one of the two protocols, and nothing
        // else touched the counters: the accounting identity holds.
        let c = mount.counters();
        prop_assert_eq!(
            c.hits.get() + c.misses.get(),
            c.lockfree_accesses.get() + c.locked_accesses.get(),
            "every access is either lock-free or locked, never both or neither"
        );
    }
}
