//! Multi-GPU image search over one shared corpus: the cluster layer's
//! fleet + work-distribution scheduler end to end (paper §6).
//!
//! Builds a skewed set of image databases (two big files, four small
//! ones), mounts a 4-GPU fleet over one shared host file system, and
//! runs the exhaustive distributed search twice — static file sharding
//! vs dynamic work stealing — printing per-GPU virtual times, per-GPU
//! fault/RPC counters (client *and* daemon side, via the per-GPU
//! `stats_for` attribution), and the steal count.
//!
//! Measured (this configuration, 4 GPUs, 64 KB pages, chunk 16 images,
//! warm host page cache): the contiguous file deal gives GPU 0 both big
//! databases — 107 of 135 chunks — so static sharding finishes in
//! **3.72 ms** with GPUs 1–3 idle from ~1.0 ms; work stealing migrates
//! **71 chunks** and the same corpus finishes in **1.86 ms** (**2.0x**),
//! every GPU busy to within 0.02 ms of the last (36/31/34/34 chunks).
//! Both runs match exactly the planted copies. RPC audit per GPU
//! (stealing run): **10–17 page faults served by exactly as many
//! ReadPages RPCs** per GPU — the corpus is read-only, and the write
//! path is asserted at **0 dirty pages / 0 WritePages RPCs** on every
//! GPU; the daemon's per-GPU attribution sheets (`stats_for`) sum
//! exactly to the aggregate (70 requests).
//!
//! Run with: `cargo run --release --example cluster_search`

use std::sync::Arc;

use gpufs::cluster::{FleetBuilder, ShardStrategy};
use gpufs::GpufsConfig;
use gpusim::GpuSpec;
use hostfs::{HostFs, HostFsConfig};
use workloads::cluster::cluster_search;
use workloads::corpus::{gen_image_dataset, ImageDatasetConfig};

const N_GPUS: usize = 4;

fn main() {
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    // Skewed on purpose: files are dealt to shards in contiguous runs,
    // so GPUs 0-1 get the two big databases and GPUs 2-3 the small ones.
    let ds = gen_image_dataset(
        &fs,
        &ImageDatasetConfig {
            dir: "/imagedbs".into(),
            db_sizes: vec![900, 800, 100, 100, 100, 100],
            n_queries: 64,
            dim: 256,
            match_fraction: 0.5,
            plant_in_first_db_prefix: false,
            seed: 41,
        },
    );
    println!(
        "{} queries against {} databases ({} images, skew {}x)",
        ds.n_queries,
        ds.db_paths.len(),
        ds.db_sizes.iter().sum::<usize>(),
        ds.db_sizes.iter().max().unwrap() / ds.db_sizes.iter().min().unwrap(),
    );

    // Warm the shared host page cache so both runs measure the sharding
    // policy, not who pays the one-off disk fetch.
    for path in ds.db_paths.iter().chain([&ds.query_path]) {
        let _ = fs.read_whole(path, 0).expect("warm cache");
    }
    fs.reset_device_time();

    let spec = GpuSpec {
        memory_bytes: 128 << 20,
        ..GpuSpec::tesla_c2075()
    };
    let fleet = FleetBuilder::new(N_GPUS)
        .spec(spec)
        .config(GpufsConfig::new(64 << 10, 32 << 20))
        .host_fs(Arc::clone(&fs))
        .build()
        .expect("fleet");

    let stat = cluster_search(&fleet, &ds, 0.5, 16, ShardStrategy::Static).expect("static");
    // A fresh fleet for the stealing run: cold buffer caches both times.
    let fleet = FleetBuilder::new(N_GPUS)
        .spec(GpuSpec {
            memory_bytes: 128 << 20,
            ..GpuSpec::tesla_c2075()
        })
        .config(GpufsConfig::new(64 << 10, 32 << 20))
        .host_fs(Arc::clone(&fs))
        .build()
        .expect("fleet");
    let steal = cluster_search(&fleet, &ds, 0.5, 16, ShardStrategy::WorkStealing).expect("steal");

    // Distribution never changes results: both runs find exactly the
    // planted copies.
    assert_eq!(stat.matches, ds.planted);
    assert_eq!(steal.matches, ds.planted);
    println!(
        "matched {} of {} queries (identical under both policies)",
        steal.matches.iter().flatten().count(),
        ds.n_queries
    );

    for (name, out) in [("static", &stat), ("stealing", &steal)] {
        println!(
            "\n{name:>9}: fleet {:>8.2} ms, steals {}",
            out.elapsed as f64 / 1e6,
            out.steals
        );
        for g in 0..N_GPUS {
            println!(
                "  gpu{g}: {:>8.2} ms, {:>3} chunks",
                out.per_gpu_elapsed[g] as f64 / 1e6,
                out.items_per_gpu[g]
            );
        }
    }
    println!(
        "\nstealing speedup on the skewed corpus: {:.2}x",
        stat.elapsed as f64 / steal.elapsed as f64
    );
    assert!(steal.steals > 0, "the idle GPUs must steal");
    assert!(steal.elapsed < stat.elapsed, "stealing must win on skew");

    // Per-GPU RPC audit of the stealing run: client-side buffer-cache
    // counters next to the daemon's per-GPU attribution sheet.
    println!();
    let mut daemon_requests_sum = 0;
    for g in 0..N_GPUS {
        let c = fleet.mount(g).counters();
        let d = fleet.stats_for(g);
        daemon_requests_sum += d.requests.get();
        println!(
            "gpu{g} read path:  {:>4} faults in {:>4} ReadPages RPCs \
             ({} daemon-attributed requests, {} KB H2D)",
            c.misses.get(),
            c.read_rpcs.get(),
            d.requests.get(),
            d.bytes_h2d.get() >> 10,
        );
        println!(
            "gpu{g} write path: {} dirty pages in {} WritePages RPCs \
             (read-only corpus: both must be 0)",
            c.pages_per_write_rpc.get(),
            c.write_rpcs.get(),
        );
        assert_eq!(c.write_rpcs.get(), 0, "the search never writes files");
        assert_eq!(d.bytes_d2h.get(), 0);
    }
    assert_eq!(
        daemon_requests_sum,
        fleet.host_for(0).stats().requests.get(),
        "per-GPU daemon sheets must sum to the aggregate"
    );
    println!("\nper-GPU daemon sheets sum to the aggregate: {daemon_requests_sum} requests");
}
