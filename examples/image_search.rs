//! Prioritized approximate image matching across multiple GPUs
//! (paper §5.2.1).
//!
//! Builds several image databases that must be scanned in priority order,
//! plants exact copies of some query images, and matches on 1 and 2 GPUs
//! plus the CPU baseline — demonstrating the dynamic, data-dependent file
//! working set GPUfs makes trivial, and the early-exit behaviour when
//! matches are found early.
//!
//! RPC audit: the example prints each mount's live read/write round-trip
//! counters. Measured (2-GPU run, 64 KB pages, default on-demand
//! paging): **41 page faults served by 41 `ReadPages` RPCs per GPU** —
//! early exit keeps the touched working set far below the databases'
//! full size, and with readahead off before/after round-trips are equal
//! by construction (one RPC per fault; a readahead window would shrink
//! the RPC column, not the fault column). The write side is asserted at
//! **0 dirty pages / 0 `WritePages` RPCs**: match results live in GPU
//! memory, so a nonzero write counter here would flag a regression that
//! started writing files behind the workload's back.
//!
//! Run with: `cargo run --release --example image_search`

use std::sync::Arc;

use gpufs::{GpufsConfig, GpufsHost};
use gpusim::{Gpu, GpuSpec};
use hostfs::{HostFs, HostFsConfig};
use simtime::Timings;
use workloads::corpus::{gen_image_dataset, ImageDatasetConfig};
use workloads::imgmatch::{imgmatch_cpu, imgmatch_gpufs};

fn main() {
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    let ds = gen_image_dataset(
        &fs,
        &ImageDatasetConfig {
            dir: "/imagedbs".into(),
            db_sizes: vec![800, 700, 900],
            n_queries: 96,
            dim: 256,
            match_fraction: 0.5,
            plant_in_first_db_prefix: false,
            seed: 99,
        },
    );
    println!(
        "{} query images against {} databases ({} images total)",
        ds.n_queries,
        ds.db_paths.len(),
        ds.db_sizes.iter().sum::<usize>()
    );

    let spec = GpuSpec {
        memory_bytes: 128 << 20,
        ..GpuSpec::tesla_c2075()
    };
    let gpus: Vec<Arc<Gpu>> = (0..2)
        .map(|i| Arc::new(Gpu::with_timings(i, spec.clone(), &Timings::default())))
        .collect();
    let host = GpufsHost::new(Arc::clone(&fs), gpus.clone());
    let mounts: Vec<_> = (0..2)
        .map(|g| {
            host.mount(g, GpufsConfig::new(64 << 10, 32 << 20))
                .expect("mount")
        })
        .collect();

    let one = imgmatch_gpufs(&mounts[..1], &gpus[..1], &ds, 0.5).expect("1 gpu");
    let two = imgmatch_gpufs(&mounts, &gpus, &ds, 0.5).expect("2 gpus");
    let cpu = imgmatch_cpu(&fs, 8, &ds, 0.5).expect("cpu");

    assert_eq!(
        one.matches, ds.planted,
        "matches must be exactly the planted copies"
    );
    assert_eq!(two.matches, ds.planted);
    assert_eq!(cpu.matches, ds.planted);

    println!(
        "matched {} of {} queries",
        one.queries_matched, ds.n_queries
    );
    println!("CPU x8: {:>8.2} ms", cpu.elapsed as f64 / 1e6);
    println!("1 GPU:  {:>8.2} ms", one.elapsed as f64 / 1e6);
    println!(
        "2 GPUs: {:>8.2} ms ({:.2}x scaling)",
        two.elapsed as f64 / 1e6,
        one.elapsed as f64 / two.elapsed as f64
    );
    for (q, m) in ds
        .planted
        .iter()
        .enumerate()
        .filter(|(_, m)| m.is_some())
        .take(3)
    {
        let (db, slot) = m.unwrap();
        println!("  e.g. query {q} found in db{db} at image {slot}");
    }

    // RPC audit (the 2-GPU run, which touched both mounts): the workload
    // is read-only — every database page faults exactly once per GPU that
    // scans it, one ReadPages round-trip per fault, and not a single
    // WritePages RPC (results live in GPU memory, not files).
    for (g, mount) in mounts.iter().enumerate() {
        let c = mount.counters();
        let read_rpcs = c.read_rpcs.get();
        println!(
            "gpu{g} read path:  {} page faults served by {} ReadPages RPC(s), \
             {} reclaimed under pressure",
            c.misses.get(),
            read_rpcs,
            c.pages_reclaimed.get(),
        );
        println!(
            "gpu{g} write path: {} dirty pages in {} WritePages RPC(s) \
             (read-only workload: both must be 0)",
            c.pages_per_write_rpc.get(),
            c.write_rpcs.get(),
        );
        assert_eq!(c.write_rpcs.get(), 0, "image search never writes files");
    }
}
