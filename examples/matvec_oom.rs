//! Matrix–vector product on a matrix larger than the GPU buffer cache
//! (paper §5.1.4, Figure 8).
//!
//! The GPUfs kernel is oblivious to the matrix not fitting: `gmmap` pages
//! stream through the cache under the FIFO-like replacement policy, with
//! no double-buffering code, no chunking logic, and no CPU-side pipeline.
//! The result is validated against a host-side reference.
//!
//! Write-path audit: the kernel syncs its output with **one `gfsync` per
//! block at the end of its band** (never `gmsync` per written region),
//! so batched write-back coalesces every dirty output page a block sees
//! into capped `WritePages` round-trips. Measured here the before/after
//! RPC counts are **equal (8 = 8)**: the 8 KB result vector fits in one
//! 16 KB page, each block's end-of-band `gfsync` re-ships that one page
//! after later rows re-dirty it, and a batch of one costs exactly the
//! old per-page RPC — the example prints the live counters to keep that
//! honest. The batching win needs multi-page dirty sets; see
//! `grep_search` (68 pages → 28 RPCs) and the `write_throughput` bench.
//!
//! Run with: `cargo run --release --example matvec_oom`

use std::sync::Arc;

use gpufs::{GpufsConfig, GpufsHost};
use gpusim::{Gpu, GpuSpec};
use hostfs::{HostFs, HostFsConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use workloads::matvec::{matvec_cpu_reference, matvec_cuda, matvec_gpufs};

const ROWS: u64 = 2048;
const COLS: u64 = 512;

fn main() {
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    // A real (checkable) matrix: 4 MB, which we will stream through a
    // deliberately tiny 256 KB GPU buffer cache.
    let mut rng = StdRng::seed_from_u64(7);
    let mut mbytes = Vec::with_capacity((ROWS * COLS * 4) as usize);
    for _ in 0..ROWS * COLS {
        mbytes.extend_from_slice(&rng.gen_range(-1.0f32..1.0).to_le_bytes());
    }
    fs.create("/A", &mbytes).expect("matrix");
    let mut vbytes = Vec::with_capacity((COLS * 4) as usize);
    for _ in 0..COLS {
        vbytes.extend_from_slice(&rng.gen_range(-1.0f32..1.0).to_le_bytes());
    }
    fs.create("/x", &vbytes).expect("vector");

    let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
    let host = GpufsHost::new(Arc::clone(&fs), vec![Arc::clone(&gpu)]);
    let cache_bytes = 256 << 10; // far smaller than the 4 MB matrix
    let mount = host
        .mount(0, GpufsConfig::new(16 << 10, cache_bytes))
        .expect("mount");

    let g = matvec_gpufs(&mount, &gpu, "/A", "/x", "/y", ROWS, COLS).expect("gpufs matvec");
    println!(
        "GPUfs: {:.2} ms for a {} KB matrix through a {} KB cache ({} pages reclaimed)",
        g.elapsed as f64 / 1e6,
        (ROWS * COLS * 4) >> 10,
        cache_bytes >> 10,
        mount.counters().pages_reclaimed.get()
    );
    assert!(
        mount.counters().pages_reclaimed.get() > 0,
        "must have paged"
    );
    println!(
        "write-back: {} dirty pages shipped in {} WritePages RPC(s) \
         (per-page write-back would have issued {})",
        mount.counters().pages_per_write_rpc.get(),
        mount.counters().write_rpcs.get(),
        mount.counters().writebacks.get(),
    );

    let naive = matvec_cuda(&fs, &gpu, "/A", "/x", ROWS, COLS, None, 2).expect("cuda naive");
    println!(
        "CUDA double-buffering baseline: {:.2} ms",
        naive.elapsed as f64 / 1e6
    );

    // Validate against the host reference.
    let expected = matvec_cpu_reference(&fs, "/A", "/x", ROWS, COLS).expect("reference");
    let (ybytes, _) = fs.read_whole("/y", 0).expect("output");
    assert_eq!(ybytes.len() as u64, ROWS * 4);
    let mut worst = 0.0f32;
    for (r, want) in expected.iter().enumerate() {
        let got = f32::from_le_bytes(ybytes[r * 4..r * 4 + 4].try_into().unwrap());
        worst = worst.max((got - want).abs());
        assert!(
            (got - want).abs() <= want.abs() * 1e-4 + 1e-4,
            "row {r}: {got} vs {want}"
        );
    }
    println!("all {ROWS} rows match the host reference (worst abs err {worst:.2e})");
}
