//! Quickstart: a self-contained GPU kernel that reads, transforms, and
//! writes host files through GPUfs — no CPU-side application code beyond
//! the kernel launch, the paper's headline programming-model win.
//!
//! RPC audit: the example prints the live read/write round-trip
//! counters. Measured (4 blocks, 4 KB pages): the shared 32-byte input
//! costs **2 page faults but only 1 `ReadPages` RPC** — all four blocks
//! coalesce onto one descriptor and one fetched page, and the
//! `O_GWRONCE` output page is the second fault, zero-filled with no host
//! traffic. The write side is an honest null for batching: **4 dirty
//! pages ship in 4 `WritePages` RPCs** (before/after equal), because
//! each block's own `gfsync` finds exactly the one shared output page
//! its write just re-dirtied — a batch of one per sync, the same cost as
//! per-page write-back. Multi-page dirty sets are where batching wins;
//! see `grep_search` (68 pages → 28 RPCs).
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use gpufs::{GOpenMode, GpufsConfig, GpufsHost};
use gpusim::{Gpu, GpuSpec, Grid};
use hostfs::{HostFs, HostFsConfig};

fn main() {
    // ---- Host setup: a file system, one GPU, the GPUfs daemon. --------
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    fs.create("/input.txt", b"GPUs deserve a file system too.\n")
        .expect("create input");
    let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
    let host = GpufsHost::new(Arc::clone(&fs), vec![Arc::clone(&gpu)]);
    let mount = host
        .mount(0, GpufsConfig::small_test())
        .expect("mount gpufs");

    // ---- The entire application: one GPU kernel. ----------------------
    // Four threadblocks each read the input and write an uppercased copy
    // of one slice into a shared write-once output file.
    let input_len = fs.stat("/input.txt").expect("stat").size as usize;
    let result = gpu.launch(Grid::new(4, 32), 0, |blk| {
        let fd_in = mount.open(blk, "/input.txt", GOpenMode::ReadOnly).unwrap();
        let fd_out = mount
            .open(blk, "/output.txt", GOpenMode::WriteOnce)
            .unwrap();

        let nb = blk.grid().blocks;
        let span = input_len.div_ceil(nb);
        let off = blk.block_id() * span;
        let len = span.min(input_len.saturating_sub(off));
        if len > 0 {
            let mut buf = vec![0u8; len];
            let n = mount.read(blk, &fd_in, off as u64, &mut buf).unwrap();
            for b in &mut buf[..n] {
                b.make_ascii_uppercase();
            }
            mount.write(blk, &fd_out, off as u64, &buf[..n]).unwrap();
        }
        // gclose does not write back; gfsync propagates this block's
        // dirty pages to the host (decoupled close/sync, paper §3.2).
        mount.fsync(blk, &fd_out).unwrap();
        mount.close(blk, fd_out).unwrap();
        mount.close(blk, fd_in).unwrap();
    });

    // ---- Back on the host: the file is just... there. ------------------
    let (out, _) = fs
        .read_whole("/output.txt", result.end)
        .expect("read output");
    println!(
        "GPU kernel finished in {:.1} us of device time",
        result.elapsed() as f64 / 1e3
    );
    println!("host sees: {}", String::from_utf8_lossy(&out).trim_end());
    assert_eq!(out, b"GPUS DESERVE A FILE SYSTEM TOO.\n");
    println!(
        "buffer cache: {} misses, {} lock-free hits",
        mount.counters().misses.get(),
        mount.counters().lockfree_accesses.get()
    );
    // RPC audit: four blocks share one input page (one fault, one
    // ReadPages round-trip — open coalescing and the shared buffer cache
    // at work) and co-produce one output page, each syncing it once.
    let c = mount.counters();
    println!(
        "read path:  {} page fault(s), {} ReadPages RPC(s) \
         (the O_GWRONCE output page zero-fills with no host traffic)",
        c.misses.get(),
        c.read_rpcs.get(),
    );
    println!(
        "write path: {} dirty page(s) shipped in {} WritePages RPC(s) \
         (per-page write-back would have issued {})",
        c.pages_per_write_rpc.get(),
        c.write_rpcs.get(),
        c.writebacks.get(),
    );
}
