//! Quickstart: a self-contained GPU kernel that reads, transforms, and
//! writes host files through GPUfs — no CPU-side application code beyond
//! the kernel launch, the paper's headline programming-model win.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use gpufs::{GOpenMode, GpufsConfig, GpufsHost};
use gpusim::{Gpu, GpuSpec, Grid};
use hostfs::{HostFs, HostFsConfig};

fn main() {
    // ---- Host setup: a file system, one GPU, the GPUfs daemon. --------
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    fs.create("/input.txt", b"GPUs deserve a file system too.\n")
        .expect("create input");
    let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
    let host = GpufsHost::new(Arc::clone(&fs), vec![Arc::clone(&gpu)]);
    let mount = host
        .mount(0, GpufsConfig::small_test())
        .expect("mount gpufs");

    // ---- The entire application: one GPU kernel. ----------------------
    // Four threadblocks each read the input and write an uppercased copy
    // of one slice into a shared write-once output file.
    let input_len = fs.stat("/input.txt").expect("stat").size as usize;
    let result = gpu.launch(Grid::new(4, 32), 0, |blk| {
        let fd_in = mount.open(blk, "/input.txt", GOpenMode::ReadOnly).unwrap();
        let fd_out = mount
            .open(blk, "/output.txt", GOpenMode::WriteOnce)
            .unwrap();

        let nb = blk.grid().blocks;
        let span = input_len.div_ceil(nb);
        let off = blk.block_id() * span;
        let len = span.min(input_len.saturating_sub(off));
        if len > 0 {
            let mut buf = vec![0u8; len];
            let n = mount.read(blk, &fd_in, off as u64, &mut buf).unwrap();
            for b in &mut buf[..n] {
                b.make_ascii_uppercase();
            }
            mount.write(blk, &fd_out, off as u64, &buf[..n]).unwrap();
        }
        // gclose does not write back; gfsync propagates this block's
        // dirty pages to the host (decoupled close/sync, paper §3.2).
        mount.fsync(blk, &fd_out).unwrap();
        mount.close(blk, fd_out).unwrap();
        mount.close(blk, fd_in).unwrap();
    });

    // ---- Back on the host: the file is just... there. ------------------
    let (out, _) = fs
        .read_whole("/output.txt", result.end)
        .expect("read output");
    println!(
        "GPU kernel finished in {:.1} us of device time",
        result.elapsed() as f64 / 1e3
    );
    println!("host sees: {}", String::from_utf8_lossy(&out).trim_end());
    assert_eq!(out, b"GPUS DESERVE A FILE SYSTEM TOO.\n");
    println!(
        "buffer cache: {} misses, {} lock-free hits",
        mount.counters().misses.get(),
        mount.counters().lockfree_accesses.get()
    );
}
