//! Cross-host storage tier end to end: 2 hosts × 2 GPUs behind per-host
//! proxies and host page caches, one storage server over a simulated
//! LAN link.
//!
//! Builds an image corpus on the storage server, mounts a `HostFleet`
//! (each host a `GpuFleet` whose daemon serves every request through
//! its `HostProxy`'s wire frames), runs the exhaustive image search
//! across all four GPUs with work stealing, and prints the per-host
//! accounting the tier adds: the daemon request sheet, the host-cache
//! hit/miss/insertion counters, and the wire-RPC frame/byte counters.
//! A cross-host close-to-open schedule then publishes from one host and
//! reopens on the other, with the fleet-level audit showing the
//! host-qualified coherence ids.
//!
//! Measured (this configuration, 2×2, 64 KB pages, 30 µs RTT /
//! 11.6 GB/s link, 512-page host caches, warm server page cache): the
//! search scans 1.5 MB of databases in **1.15 ms** aggregate with 15
//! steals; the hosts' proxies cross the wire **19 and 23 times** (832
//! and 1024 KB down), their caches absorb the re-reads of the shared
//! query file, and the two wire counters sum exactly to the server's
//! 42 served frames. The closing schedule then shows two stale host-
//! cache pages dropped lazily at reopen — never broadcast-invalidated.
//!
//! Run with: `cargo run --release --example dist_hosts`

use gpufs::cluster::{CoherenceOp, HostFleet, ShardStrategy};
use gpufs::GpufsConfig;
use gpusim::GpuSpec;
use workloads::cluster::cluster_search;
use workloads::corpus::{gen_image_dataset, ImageDatasetConfig};

const HOSTS: usize = 2;
const GPUS_PER_HOST: usize = 2;

fn main() {
    let fleet = HostFleet::builder(HOSTS, GPUS_PER_HOST)
        .spec(GpuSpec {
            memory_bytes: 128 << 20,
            ..GpuSpec::tesla_c2075()
        })
        .config(GpufsConfig::new(64 << 10, 32 << 20))
        .host_cache_pages(512)
        .build()
        .expect("host fleet");
    println!(
        "{fleet:?}: one storage server, {} proxied links ({} ns RTT, {:.0} MB/s)",
        fleet.num_hosts(),
        fleet.proxy(0).timings().net_rtt_ns,
        fleet.proxy(0).timings().net_mb_s,
    );

    // The corpus lives on the storage server; the GPUs only ever see it
    // through their host's proxy.
    let fs = fleet.fs();
    let ds = gen_image_dataset(
        fs,
        &ImageDatasetConfig {
            dir: "/imagedbs".into(),
            db_sizes: vec![384; 4],
            n_queries: 64,
            dim: 256,
            match_fraction: 0.5,
            plant_in_first_db_prefix: false,
            seed: 41,
        },
    );
    for path in ds.db_paths.iter().chain([&ds.query_path]) {
        let _ = fs.read_whole(path, 0).expect("warm server cache");
    }
    fs.reset_device_time();

    let out = cluster_search(&fleet, &ds, 0.5, 16, ShardStrategy::WorkStealing).expect("search");
    assert_eq!(
        out.matches, ds.planted,
        "the host split never changes results"
    );
    println!(
        "\nsearch: {} queries x {} images, {:.2} ms aggregate, {} steals, {} KB scanned",
        ds.n_queries,
        ds.db_sizes.iter().sum::<usize>(),
        out.elapsed as f64 / 1e6,
        out.steals,
        out.bytes_scanned >> 10,
    );

    // Per-host accounting: daemon sheet, host cache, wire link.
    let mut frames_sum = 0;
    for h in 0..HOSTS {
        let d = fleet.host_stats(h);
        let cache = fleet.proxy(h).cache().stats();
        let wire = fleet.proxy(h).wire();
        frames_sum += wire.wire_rpcs.get();
        let looked_up = cache.hits.get() + cache.misses.get();
        println!(
            "\nhost{h} daemon: {:>3} requests, {:>4} KB H2D, {} KB D2H",
            d.requests.get(),
            d.bytes_h2d.get() >> 10,
            d.bytes_d2h.get() >> 10,
        );
        println!(
            "host{h} cache:  {:>3} hits / {:<3} misses (ratio {:.2}), {} insertions, {} resident",
            cache.hits.get(),
            cache.misses.get(),
            if looked_up == 0 {
                0.0
            } else {
                cache.hits.get() as f64 / looked_up as f64
            },
            cache.insertions.get(),
            fleet.proxy(h).cache().len(),
        );
        println!(
            "host{h} wire:   {:>3} round-trips, {:>4} KB up / {} KB down, {} write-back batches",
            wire.wire_rpcs.get(),
            wire.wire_req_bytes.get() >> 10,
            wire.wire_resp_bytes.get() >> 10,
            wire.writeback_batches.get(),
        );
    }
    assert_eq!(
        frames_sum,
        fleet.server().stats().frames.get(),
        "the proxies' round-trips must sum to the server's frame count"
    );
    println!(
        "\nproxy round-trips sum to the server's frame count: {frames_sum} \
         ({} KB read / {} KB written server-side)",
        fleet.server().stats().bytes_read.get() >> 10,
        fleet.server().stats().bytes_written.get() >> 10,
    );

    // Close-to-open across hosts: GPU 0 (host 0) publishes, GPU 3
    // (host 1) must observe it on reopen through its own host cache.
    let report = fleet
        .run_close_to_open_schedule(
            "/shared.cfg",
            &[
                CoherenceOp::WriteClose { gpu: 0, tag: 7 },
                CoherenceOp::OpenCheck { gpu: 3 },
                CoherenceOp::WriteClose { gpu: 3, tag: 9 },
                CoherenceOp::OpenCheck { gpu: 0 },
                CoherenceOp::OpenCheck { gpu: 1 },
            ],
        )
        .expect("schedule");
    assert!(report.mismatches.is_empty(), "close-to-open must hold");
    let audit = fleet.audit_file("/shared.cfg").expect("audited");
    println!(
        "\ncross-host close-to-open: {} reopens checked, 0 violations; \
         /shared.cfg at generation {} cached by coherence ids {:?}",
        report.checks,
        audit.generation,
        audit.cachers.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
    );
    let lazy: u64 = (0..HOSTS)
        .map(|h| fleet.proxy(h).cache().stats().lazy_invalidations.get())
        .sum();
    println!("host caches invalidated lazily on reopen: {lazy} stale pages dropped");
}
