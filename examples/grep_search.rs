//! Exact string search over a source-tree-like corpus (paper §5.2.2).
//!
//! Generates a synthetic many-small-files corpus and a 32-byte-aligned
//! dictionary, then runs the paper's three implementations — GPUfs,
//! vanilla GPU (prefetch everything), and an 8-core CPU baseline — and
//! prints their virtual times and agreement.
//!
//! Write-path audit: the GPUfs kernel buffers formatted matches
//! per-block and flushes them with `gwrite` into the shared `O_GWRONCE`
//! output file, syncing with **one `gfsync` per block at the very end**
//! — never a per-region `gmsync` — so batched write-back gathers each
//! block's dirty output pages into capped `WritePages` round-trips.
//! Measured here (4 MB corpus, ~2.5 MB of formatted output, 64 KB
//! pages, default batch): **68 dirty output pages ship in 28 write
//! RPCs** — one batch per flushing block — where per-page write-back
//! (`write_batch_pages = 1`, the old behaviour) would issue all 68.
//! The example prints the live counters so the ratio stays visible.
//!
//! Run with: `cargo run --release --example grep_search`

use std::sync::Arc;

use gpufs::{GpufsConfig, GpufsHost};
use gpusim::{Gpu, GpuSpec, Grid};
use hostfs::{HostFs, HostFsConfig};
use workloads::corpus::{gen_text_corpus, TextCorpusConfig};
use workloads::grep::{grep_cpu, grep_gpufs, grep_vanilla_gpu};

fn main() {
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    let corpus = gen_text_corpus(
        &fs,
        &TextCorpusConfig {
            dir: "/src-tree".into(),
            n_files: 400,
            total_bytes: 4 << 20,
            vocab_size: 5_000,
            dict_words: 2_000,
            seed: 2024,
        },
    );
    println!(
        "corpus: {} files, {} bytes; dictionary: {} words",
        corpus.files.len(),
        corpus.total_bytes,
        corpus.dict_words.len()
    );

    let gpu = Arc::new(Gpu::new(0, GpuSpec::tesla_c2075_scaled(32)));
    let host = GpufsHost::new(Arc::clone(&fs), vec![Arc::clone(&gpu)]);
    let mount = host
        .mount(0, GpufsConfig::new(64 << 10, 64 << 20))
        .expect("mount");

    let g = grep_gpufs(
        &mount,
        &gpu,
        &corpus.file_list_path,
        &corpus.dict_path,
        "/matches.txt",
    )
    .expect("gpufs grep");
    let v = grep_vanilla_gpu(&fs, &gpu, &corpus.file_list_path, &corpus.dict_path)
        .expect("vanilla grep");
    let c = grep_cpu(&fs, 8, &corpus.file_list_path, &corpus.dict_path).expect("cpu grep");

    assert_eq!(g.word_totals, c.word_totals, "GPU and CPU must agree");
    assert_eq!(g.word_totals, v.word_totals, "vanilla must agree");
    println!(
        "GPUfs:   {:>8.2} ms, {} (word,file) matches, {} bytes of output",
        g.elapsed as f64 / 1e6,
        g.match_records,
        g.output_bytes
    );
    println!("vanilla: {:>8.2} ms", v.elapsed as f64 / 1e6);
    println!("CPU x8:  {:>8.2} ms", c.elapsed as f64 / 1e6);
    println!(
        "write-back: {} dirty pages shipped in {} WritePages RPC(s) \
         (per-page write-back would have issued {})",
        mount.counters().pages_per_write_rpc.get(),
        mount.counters().write_rpcs.get(),
        mount.counters().writebacks.get(),
    );

    // The formatted output really is in the host file system.
    let (out, _) = fs.read_whole("/matches.txt", 0).expect("output exists");
    let first = String::from_utf8_lossy(&out);
    println!(
        "first output line: {}",
        first.lines().next().unwrap_or("<empty>")
    );

    // Keep the kernel-launch plumbing visible: this is all the CPU code a
    // GPUfs application actually needs.
    let _ = Grid::new(1, 1);
}
