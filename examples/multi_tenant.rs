//! Two tenants, one GPU: tail-latency isolation from the multi-tenant
//! knobs (weighted dispatch, admission throttling, cache quotas).
//!
//! A latency-sensitive *victim* (2 threadblocks of point lookups over a
//! 3-file hot set) shares a 64-frame buffer cache with a *hog* (8
//! threadblocks streaming scans over the whole 64-file corpus). Both
//! legs replay the identical synthesized trace (seed 42); the only
//! difference is the mount configuration:
//!
//! * **FIFO leg** — stock `GpufsConfig`: one shared cache, first-come
//!   dispatch. The hog's streaming scans continuously evict the victim's
//!   hot pages, so the victim takes thousands of capacity misses and its
//!   p99 lands in the disk-latency bucket.
//! * **Weighted leg** — `with_tenant_weights([8,1])`,
//!   `with_tenant_admission([0,4])`, `with_tenant_quotas([56,8])`: the
//!   victim's 48 hot pages stay resident inside its 56-frame quota, so
//!   after the compulsory cold faults every lookup is a cache hit.
//!
//! Measured (one representative run of this binary): FIFO victim
//! p50/p99 = 831 ns / **49–74 µs** (run-to-run the p99 moves within the
//! disk bucket) with ~2500 victim-visible cache misses; weighted victim
//! p50/p99 = 831 ns / **6.7 µs** with exactly 48 misses (its compulsory
//! cold faults) — a **7–11x** p99 improvement. Aggregate throughput is
//! identical (55.4 MB/s both legs) and the hog's own p99 is unchanged:
//! isolation here costs the hog nothing, because the pages the quota
//! protects are ones the hog would have evicted and re-fetched anyway.
//!
//! Run with: `cargo run --release --example multi_tenant`

use gpufs::cluster::FleetBuilder;
use gpufs::GpufsConfig;
use simtime::Timings;
use workloads::traffic::{run_traffic, TenantClass, TenantLoad, TrafficConfig};

const PAGE: usize = 4 << 10;
const FRAMES: usize = 64;

fn trace() -> TrafficConfig {
    TrafficConfig {
        seed: 42,
        dir: "/tail".into(),
        n_files: 64,
        file_bytes: 64 << 10,
        zipf_s: 0.3,
        op_bytes: PAGE,
        pace_lag_ns: 200_000,
        tenants: vec![
            // Tenant 0: the latency-sensitive victim. 3 hot files
            // (48 pages) — fits its 56-frame quota with room to spare.
            TenantLoad {
                class: TenantClass::PointLookup,
                blocks: 2,
                sessions: 800,
                arrival_gap_ns: 20_000,
                burst_sessions: 8,
                off_gap_ns: 100_000,
                ops_per_session: 8,
                hot_files: 3,
            },
            // Tenant 1: the bandwidth hog, streaming the whole corpus.
            TenantLoad {
                class: TenantClass::Scan,
                blocks: 8,
                sessions: 96,
                arrival_gap_ns: 5_000,
                burst_sessions: 16,
                off_gap_ns: 50_000,
                ops_per_session: 16,
                hot_files: 0,
            },
        ],
    }
}

fn run_leg(name: &str, config: GpufsConfig) -> (u64, f64) {
    let mut fleet = FleetBuilder::new(1)
        .config(config)
        .timings(Timings::default())
        .build()
        .expect("fleet");
    let out = run_traffic(&fleet, &trace()).expect("traffic");

    println!("\n{name}:");
    for (t, d) in out.per_tenant.iter().enumerate() {
        let who = if t == 0 { "victim" } else { "hog" };
        println!(
            "  t{t} {who:>6}: {:>5} ops, p50 {:>6} ns, p99 {:>9} ns, \
             p999 {:>9} ns, max {:.2} ms",
            d.ops,
            d.p50,
            d.p99,
            d.p999,
            d.max as f64 / 1e6,
        );
    }
    let mount = fleet.mount(0);
    let host = fleet.host_for(0);
    for t in 0..mount.num_tenants() {
        // With one tenant sheet (the FIFO leg) this is the aggregate.
        let c = mount.tenant_counters(t);
        let d = host.stats_for_tenant(t);
        println!(
            "  t{t} cache: {:>6} hits, {:>5} misses | rpc: {:>5} requests, \
             {:>5} KB H2D, {:>3} admission stalls",
            c.hits.get(),
            c.misses.get(),
            d.requests.get(),
            d.bytes_h2d.get() >> 10,
            host.hub().tenant_stalls(t),
        );
    }
    println!(
        "  aggregate: {:.1} MB/s, fairness {:.3}, elapsed {:.2} ms",
        out.throughput_mb_s,
        out.fairness,
        out.elapsed as f64 / 1e6
    );
    let (p99, mb_s) = (out.per_tenant[0].p99, out.throughput_mb_s);
    fleet.shutdown();
    (p99, mb_s)
}

fn main() {
    println!(
        "two tenants on one GPU, {FRAMES}-frame cache: \
         victim (point lookups, 3-file hot set) vs hog (streaming scans)"
    );

    let (fifo_p99, fifo_mb_s) =
        run_leg("FIFO, unpartitioned", GpufsConfig::new(PAGE, FRAMES * PAGE));
    let (weighted_p99, weighted_mb_s) = run_leg(
        "weighted + admission + quotas",
        GpufsConfig::new(PAGE, FRAMES * PAGE)
            .with_tenant_weights(vec![8, 1])
            .with_tenant_admission(vec![0, 4])
            .with_tenant_quotas(vec![56, 8]),
    );

    let speedup = fifo_p99 as f64 / weighted_p99 as f64;
    println!(
        "\nvictim p99: {fifo_p99} ns -> {weighted_p99} ns ({speedup:.1}x better), \
         throughput {fifo_mb_s:.1} -> {weighted_mb_s:.1} MB/s"
    );
    assert!(speedup >= 2.0, "isolation must hold the victim's tail");
    assert!(
        weighted_mb_s >= 0.9 * fifo_mb_s,
        "isolation must not tax aggregate throughput"
    );
}
