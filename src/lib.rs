//! Root package library stub; all functionality lives in the workspace crates.
