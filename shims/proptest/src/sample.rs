//! Sampling helper types.

use rand::rngs::StdRng;
use rand::RngCore;

use crate::Arbitrary;

/// A length-independent random index: generated once, projected onto any
/// slice length with [`Index::index`]. Mirrors `proptest::sample::Index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Projects this draw onto `0..len`. Panics if `len` is zero.
    #[must_use]
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        ((self.0 as u128 * len as u128) >> 64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        Self(rng.next_u64())
    }
}
