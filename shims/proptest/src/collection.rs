//! Collection strategies.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.len.start + 1 >= self.len.end {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A strategy producing vectors of `element` values whose length is drawn
/// uniformly from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}
