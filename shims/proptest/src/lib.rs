//! Offline shim for the `proptest` crate.
//!
//! The build container has no access to crates.io, so this crate provides a
//! minimal property-testing harness with the proptest surface the workspace
//! tests use: the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], and
//! [`prop_assert_eq!`] macros, the [`Strategy`] trait with
//! [`Strategy::prop_map`], [`collection::vec`], [`any`], and
//! [`sample::Index`].
//!
//! Cases are generated from a seed derived deterministically from the test
//! name and case number, so failures reproduce exactly on re-run. There is
//! no shrinking: a failure reports the case number and assertion message.

use std::ops::Range;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

pub mod collection;
pub mod sample;

/// Everything the `proptest!` test modules need in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy,
        TestCaseResult,
    };
}

/// Mirror of proptest's `prop` facade module (`prop::sample::Index`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), String>;

/// Number of generated cases per property and related knobs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy producing `f(value)` for each generated `value`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy so heterogeneous strategies of the same
    /// `Value` can share a collection (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.new_value(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut StdRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between boxed strategies (the engine of [`prop_oneof!`]).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A strategy that picks one of `branches` uniformly per value.
    #[must_use]
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Self { branches }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            branches: self.branches.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        let branch = rng.gen_range(0..self.branches.len());
        self.branches[branch].new_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Values with a canonical "anything goes" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Self(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T` ([`Arbitrary`]).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// FNV-1a over the test name: a stable per-test seed base so every run
/// regenerates identical cases.
#[must_use]
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Runs `body` over `config.cases` generated cases; panics with the case
/// number and message on the first failure. Used by [`proptest!`].
pub fn run_cases<F>(test_name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut StdRng) -> TestCaseResult,
{
    for case in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(seed_for(test_name, case));
        if let Err(msg) = body(&mut rng) {
            panic!(
                "property {test_name} failed at case {case}/{}: {msg}",
                config.cases
            );
        }
    }
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($binding:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &config, |rng| {
                    $(let $binding = $crate::Strategy::new_value(&$strat, rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Uniformly picks one of several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Like `assert!` inside [`proptest!`]: fails the case instead of
/// panicking, so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format_args!($($fmt)+)
            ));
        }
    };
}

/// Like `assert_eq!` inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err(format!(
                "assertion failed at {}:{}: {:?} != {:?}",
                file!(), line!(), left, right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err(format!(
                "assertion failed at {}:{}: {:?} != {:?}: {}",
                file!(), line!(), left, right, format_args!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_per_test_and_case() {
        assert_eq!(crate::seed_for("a", 0), crate::seed_for("a", 0));
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("a", 1));
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("b", 0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            (0u64..10).prop_map(|v| v * 2),
            (100u64..110).prop_map(|v| v + 1),
        ]) {
            prop_assert!(x % 2 == 0 && x < 20 || (101..111).contains(&x));
        }

        #[test]
        fn index_is_always_valid(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        crate::run_cases("always_fails", &ProptestConfig::with_cases(3), |_rng| {
            Err("nope".to_string())
        });
    }
}
