//! Offline shim for the `criterion` crate.
//!
//! The build container has no access to crates.io, so this crate provides a
//! minimal functional bench harness with Criterion's surface API as used by
//! the workspace benches: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. It measures for a short fixed budget and
//! prints mean per-iteration wall time — enough to compare hot paths
//! locally, without Criterion's statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement budget.
const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(120);

/// Top-level harness handle passed to each bench target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as the benchmark named `id` and prints its mean iteration
    /// time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        match b.iters {
            0 => println!("{id:<40} (no measurement recorded)"),
            iters => {
                let per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
                println!("{id:<40} {per_iter:>12.1} ns/iter ({iters} iters)");
            }
        }
        self
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim runs one input
/// per routine call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup output is small; many batches per measurement.
    SmallInput,
    /// Setup output is large; few batches per measurement.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// Timing context handed to the closure given to
/// [`Criterion::bench_function`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up untimed, then measure batches until the budget elapses.
        let warm_until = Instant::now() + WARMUP;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let start = Instant::now();
        let stop = start + MEASURE;
        let mut iters = 0u64;
        while Instant::now() < stop {
            for _ in 0..16 {
                black_box(routine());
            }
            iters += 16;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let stop = Instant::now() + MEASURE;
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while Instant::now() < stop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }
}

/// Declares a function `$name` that runs each listed bench target with a
/// fresh [`Criterion`] handle.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group declared by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke_iter", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_calls_setup_per_routine() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| {
                    runs += 1;
                    black_box(v.len())
                },
                BatchSize::SmallInput,
            )
        });
        assert!(runs > 0);
        assert_eq!(setups, runs, "every routine call gets a fresh input");
    }
}
