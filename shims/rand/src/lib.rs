//! Offline shim for the `rand` crate.
//!
//! The build container has no access to crates.io, so this crate provides
//! the subset of the `rand` 0.8 API the workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], [`seq::SliceRandom::shuffle`], and [`random`].
//!
//! The generator is SplitMix64 — statistically fine for workload synthesis
//! and deterministic under a fixed seed, which is all the callers need.
//! Streams differ from real `rand`, so seeds reproduce runs within this
//! repo only.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Core uniform-bits source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A range that knows how to sample one value of `T` uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift maps 64 uniform bits onto [0, span) with
                // negligible bias for the span sizes used here.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + draw
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128) - (start as u128) + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as $t;
                start + draw
            }
        }
    )+};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty => $u:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )+};
}

impl_signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Rounding (e.g. the f64->f32 cast of a unit within 2^-25
                // of 1.0) can land exactly on the excluded upper bound;
                // clamp to the largest value below it.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )+};
}

impl_float_sample_range!(f32, f64);

/// Types producible by [`random`].
pub trait RandomValue {
    /// Draws a uniform value of `Self` from `rng`.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_value {
    ($($t:ty),+) => {$(
        impl RandomValue for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_random_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandomValue for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandomValue for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl RandomValue for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Returns a value seeded from OS-provided entropy (the hash-map hasher's
/// per-process random keys), mirroring `rand::random`.
pub fn random<T: RandomValue>() -> T {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};

    let seed = RandomState::new().build_hasher().finish();
    let mut rng = rngs::StdRng::seed_from_u64(seed);
    T::random_from(&mut rng)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let g: f32 = rng.gen_range(2.0..3.0f32);
            assert!((2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn float_gen_range_never_returns_the_upper_bound() {
        // A one-ULP-wide range makes `start + span * unit` round up to the
        // excluded end for roughly half of all draws unless clamped.
        let mut rng = StdRng::seed_from_u64(11);
        let (start, end) = (1.0f32, 1.0f32 + f32::EPSILON);
        for _ in 0..1_000 {
            let v: f32 = rng.gen_range(start..end);
            assert!(v >= start && v < end, "v={v} escaped [{start}, {end})");
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_seeded_permutation() {
        use crate::seq::SliceRandom;
        let orig: Vec<u32> = (0..100).collect();
        let mut a = orig.clone();
        let mut b = orig.clone();
        a.shuffle(&mut StdRng::seed_from_u64(5));
        b.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        let mut c = orig.clone();
        c.shuffle(&mut StdRng::seed_from_u64(6));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn random_produces_varied_values() {
        let draws: Vec<u64> = (0..8).map(|_| random::<u64>()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
