//! Slice sampling helpers.

use crate::{RngCore, SampleRange};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let idx = (0..self.len()).sample_single(rng);
            Some(&self[idx])
        }
    }
}
