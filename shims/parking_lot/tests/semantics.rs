//! Shim-semantics coverage the detector depends on: `RwLock`
//! read-recursion, `Condvar` spurious-wakeup handling, and `try_lock`
//! paths must behave identically with the checker on and off — the
//! instrumentation may only observe, never alter results.
//!
//! The on/off comparison uses the runtime switch ([`lockcheck::set_enabled`])
//! so both modes run in one process; the feature-off compile is separately
//! exercised by the shim's own `cargo test -p parking_lot` (no features).

use std::sync::{Arc, Barrier, Mutex as StdMutex, PoisonError};

use parking_lot::{lockcheck, Condvar, Mutex, RwLock};

static SERIAL: StdMutex<()> = StdMutex::new(());

/// Run `f` twice — checker enabled, then disabled — and return both
/// results for equality assertions. Serialized: the switch is global.
fn on_and_off<R>(f: impl Fn() -> R) -> (R, R) {
    let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    lockcheck::configure(true, true, true);
    lockcheck::set_enabled(true);
    let on = f();
    lockcheck::set_enabled(false);
    let off = f();
    lockcheck::set_enabled(true);
    let _ = lockcheck::take_reports();
    (on, off)
}

#[test]
fn rwlock_read_recursion_works_identically() {
    let (on, off) = on_and_off(|| {
        let l = RwLock::new(7u64);
        let outer = l.read();
        let inner = l.read(); // same-thread read recursion is supported
        let nested = l.try_read().map(|g| *g);
        let sum = *outer + *inner;
        drop((outer, inner));
        // After all readers unwind, a writer gets through.
        *l.write() += 1;
        let last = *l.read();
        (sum, nested, last)
    });
    assert_eq!(on, off);
    assert_eq!(on, (14, Some(7), 8));
}

#[test]
fn rwlock_readers_block_writers_identically() {
    let (on, off) = on_and_off(|| {
        let l = Arc::new(RwLock::new(0u64));
        let gate = Arc::new(Barrier::new(2));
        let reader = {
            let (l, gate) = (Arc::clone(&l), Arc::clone(&gate));
            std::thread::spawn(move || {
                let g = l.read();
                gate.wait(); // main thread now probes try_write
                gate.wait(); // hold the read lock until probed
                *g
            })
        };
        gate.wait();
        let blocked = l.try_write().is_none();
        gate.wait();
        let seen = reader.join().expect("reader thread");
        *l.write() += 3;
        let last = *l.read();
        (blocked, seen, last)
    });
    assert_eq!(on, off);
    assert_eq!(on, (true, 0, 3));
}

#[test]
fn condvar_spurious_wakeups_are_absorbed_identically() {
    let (on, off) = on_and_off(|| {
        let state = Arc::new((Mutex::new(0u32), Condvar::new()));
        let gate = Arc::new(Barrier::new(2));
        let waiter = {
            let state = Arc::clone(&state);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let (lock, cvar) = &*state;
                let mut count = lock.lock();
                // Holding the lock across the barrier guarantees the main
                // thread's first increment can only happen after this
                // thread has released it inside `cvar.wait` — so at least
                // one real wait always occurs.
                gate.wait();
                let mut wakeups = 0u32;
                // The guard-the-predicate loop: spurious notifies (the two
                // below that don't change the predicate) must be absorbed,
                // not treated as completion.
                while *count < 3 {
                    cvar.wait(&mut count);
                    wakeups += 1;
                }
                (*count, wakeups)
            })
        };
        let (lock, cvar) = &*state;
        gate.wait();
        for _ in 0..2 {
            // Spurious: wake without satisfying the predicate.
            cvar.notify_all();
            std::thread::yield_now();
        }
        for _ in 0..3 {
            *lock.lock() += 1;
            cvar.notify_all();
        }
        let (count, wakeups) = waiter.join().expect("waiter thread");
        assert!(wakeups >= 1, "the waiter actually waited");
        count
    });
    assert_eq!(on, off);
    assert_eq!(on, 3);
}

#[test]
fn try_lock_contention_outcomes_are_identical() {
    let (on, off) = on_and_off(|| {
        let m = Mutex::new(5u32);
        let free = m.try_lock().map(|g| *g);
        let held = m.lock();
        let contended = m.try_lock().is_none();
        drop(held);
        let refree = m.try_lock().is_some();
        (free, contended, refree)
    });
    assert_eq!(on, off);
    assert_eq!(on, (Some(5), true, true));
}

#[test]
fn counters_match_under_contention_on_and_off() {
    // A fixed workload — N threads, K increments each, mixed lock and
    // try_lock traffic — must produce the same final counter either way.
    let (on, off) = on_and_off(|| {
        let m = Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        if i % 3 == 0 {
                            if let Some(mut g) = m.try_lock() {
                                *g += 1;
                                continue;
                            }
                        }
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker");
        }
        Arc::try_unwrap(m).expect("all threads joined").into_inner()
    });
    assert_eq!(on, off);
    assert_eq!(on, 4 * 200);
}
