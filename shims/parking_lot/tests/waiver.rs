//! Waiver-path coverage: a named entry in the TOML file named by
//! `LOCKCHECK_TOML` suppresses a matching finding — counted, never
//! silent — while non-matching findings still panic.
//!
//! Lives in its own integration-test binary because the waiver table is
//! cached process-wide on first use: the env var must be set before any
//! check fires, and must not leak into the other detector tests.

#![cfg(feature = "lockcheck")]

use parking_lot::{lockcheck, Mutex};

#[test]
fn waivers_suppress_matching_findings_and_count_them() {
    let dir = std::env::temp_dir().join(format!("lockcheck-waiver-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let toml = dir.join("lockcheck.toml");
    std::fs::write(
        &toml,
        r#"
# Test-only waiver table.
[[waiver]]
name = "waived-blocking-region"
reason = "seeded by tests/waiver.rs to prove the waiver path works"
match = ["lock held across blocking region", "waiver-demo"]
"#,
    )
    .expect("write waiver file");
    // Must happen before the first finding loads the (cached) table.
    std::env::set_var("LOCKCHECK_TOML", &toml);
    lockcheck::set_enabled(true);
    lockcheck::configure(true, true, true);

    let m = Mutex::new(());
    let g = m.lock();
    // Matches the waiver: runs instead of panicking, and is counted.
    let value = lockcheck::blocking_region("waiver-demo", || 42);
    assert_eq!(value, 42);
    assert_eq!(lockcheck::waived_count(), 1, "suppression is counted");
    drop(g);

    // A finding the waiver does NOT match still panics.
    let unwaived = std::thread::spawn(|| {
        let m = Mutex::new(());
        let g = m.lock();
        lockcheck::blocking_region("not-waived", || ());
        drop(g);
    })
    .join();
    assert!(unwaived.is_err(), "non-matching finding still panics");

    let _ = std::fs::remove_dir_all(&dir);
}
