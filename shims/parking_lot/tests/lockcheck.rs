//! Seeded regressions for the lock-correctness checker: the detector —
//! not a timeout — must catch the bug shapes this repo has actually
//! shipped fixes for (the PR-2 pair-alloc hold-and-wait deadlock and a
//! 2-lock ABBA inversion), and a clean run must report nothing.
//!
//! The checker's registry, report log, and check toggles are process
//! globals, so every test here serializes on one mutex and drains the
//! report log on entry and exit.

#![cfg(feature = "lockcheck")]

use std::sync::{Arc, Barrier, Mutex as StdMutex, PoisonError};

use parking_lot::{lockcheck, Mutex};

static SERIAL: StdMutex<()> = StdMutex::new(());

/// Serialize the test, reset toggles to defaults, and drain stale reports.
fn serialized() -> std::sync::MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    lockcheck::set_enabled(true);
    lockcheck::configure(true, true, true);
    let _ = lockcheck::take_reports();
    guard
}

#[test]
fn abba_inversion_is_reported_from_one_clean_run() {
    let _serial = serialized();
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));

    // Thread 1 takes A then B and finishes completely before thread 2
    // starts: the runs never overlap, so no deadlock can actually occur —
    // the *order graph* alone must convict the inversion.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        std::thread::spawn(move || {
            let ga = a.lock();
            let gb = b.lock();
            drop((ga, gb));
        })
        .join()
        .expect("A->B order is clean");
    }
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    let inverted = std::thread::spawn(move || {
        let gb = b2.lock();
        let ga = a2.lock(); // closes the cycle: panics here
        drop((gb, ga));
    })
    .join();
    assert!(inverted.is_err(), "the inverted order must panic");
    let reports = lockcheck::take_reports();
    assert_eq!(reports.len(), 1, "exactly one cycle report");
    assert!(
        reports[0].contains("lock-order cycle"),
        "report names the finding: {}",
        reports[0]
    );
    assert!(
        reports[0].contains("lockcheck.rs"),
        "report carries the acquisition sites: {}",
        reports[0]
    );
}

#[test]
fn pair_alloc_hold_and_wait_panics_instead_of_hanging() {
    let _serial = serialized();
    // The PR-2 pair-alloc shape: every fault needs two frames, grabs them
    // one at a time, and two faults approach the pool from opposite ends —
    // each holds its first frame while waiting for the other's. Disable
    // the order-graph check so the *wait-for* detector (not the static
    // cycle check) is what converts the hang into a panic.
    lockcheck::configure(false, true, true);
    let frame1 = Arc::new(Mutex::new("frame-1"));
    let frame2 = Arc::new(Mutex::new("frame-2"));
    let both_hold = Arc::new(Barrier::new(2));

    let spawn_fault =
        |first: Arc<Mutex<&'static str>>, second: Arc<Mutex<&'static str>>, gate: Arc<Barrier>| {
            std::thread::Builder::new()
                .name("pair-alloc-fault".into())
                .spawn(move || {
                    let g1 = first.lock();
                    gate.wait(); // both faults now hold one frame each
                    let g2 = second.lock(); // hold-and-wait: would hang forever
                    drop((g1, g2));
                })
                .expect("spawn fault thread")
        };
    let t1 = spawn_fault(
        Arc::clone(&frame1),
        Arc::clone(&frame2),
        Arc::clone(&both_hold),
    );
    let t2 = spawn_fault(
        Arc::clone(&frame2),
        Arc::clone(&frame1),
        Arc::clone(&both_hold),
    );
    let outcomes = [t1.join(), t2.join()];
    assert!(
        outcomes.iter().any(Result::is_err),
        "at least one fault must panic out of the deadlock"
    );
    let reports = lockcheck::take_reports();
    assert!(
        !reports.is_empty(),
        "the wait-for detector must file a report"
    );
    assert!(
        reports[0].contains("deadlock (wait-for cycle)"),
        "report names the finding: {}",
        reports[0]
    );
    // The report must show *both* threads' held-lock stacks.
    assert!(
        reports[0].matches("pair-alloc-fault").count() >= 2,
        "both deadlocked threads appear: {}",
        reports[0]
    );
    assert!(
        reports[0].matches("acquired at").count() >= 2,
        "held stacks with sites for both threads: {}",
        reports[0]
    );
    lockcheck::configure(true, true, true);
}

#[test]
fn self_deadlock_is_reported() {
    let _serial = serialized();
    let outcome = std::thread::spawn(|| {
        let m = Mutex::new(());
        let g = m.lock();
        let g2 = m.lock(); // would block on ourselves forever
        drop((g, g2));
    })
    .join();
    assert!(outcome.is_err(), "recursive lock must panic");
    let reports = lockcheck::take_reports();
    assert!(reports[0].contains("self-deadlock"), "{}", reports[0]);
}

#[test]
fn blocking_region_flags_a_held_lock() {
    let _serial = serialized();
    let outcome = std::thread::spawn(|| {
        let m = Mutex::new(());
        let g = m.lock();
        // The canonical latent-hang shape: a lock held across an RPC
        // round-trip. The marker must refuse it.
        lockcheck::blocking_region("test-rpc-roundtrip", || 42);
        drop(g);
    })
    .join();
    assert!(outcome.is_err(), "held lock across blocking region panics");
    let reports = lockcheck::take_reports();
    assert!(
        reports[0].contains("blocking region \"test-rpc-roundtrip\""),
        "{}",
        reports[0]
    );
}

#[test]
fn clean_runs_report_nothing() {
    let _serial = serialized();
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    // Consistent A->B nesting from several threads, try_lock traffic, and
    // an unlocked blocking region: all clean, so the detector must stay
    // silent and the report log empty.
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let mut ga = a.lock();
                    *ga += 1;
                    let mut gb = b.lock();
                    *gb += 1;
                    drop(gb);
                    drop(ga);
                    if let Some(mut g) = b.try_lock() {
                        *g += 1;
                    }
                    lockcheck::blocking_region("clean-roundtrip", || ());
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("clean schedule must not panic");
    }
    assert_eq!(
        lockcheck::take_reports(),
        Vec::<String>::new(),
        "a clean run files no reports"
    );
}
