//! Runtime lock-correctness checker (the `lockcheck` feature).
//!
//! Every `Mutex`/`RwLock` acquisition and `Condvar` re-acquisition in this
//! shim reports into a process-global registry that maintains three views
//! of the program's locking behaviour:
//!
//! 1. **Lock-order graph** — a directed edge `A → B` is recorded whenever
//!    a thread *blocks* (calls a blocking acquire) on `B` while holding
//!    `A`. A cycle in this graph is a potential deadlock even if no run
//!    ever interleaves into it: one clean pass over an ABBA inversion is
//!    enough to close the cycle and fail the test. `try_lock` acquisitions
//!    never add edges (they cannot wait, so they cannot contribute to a
//!    deadlock), but the locks they hold do appear as edge *sources* for
//!    later blocking acquisitions.
//! 2. **Wait-for graph** — while a thread is blocked on a lock, the
//!    registry knows which thread holds that lock and what *that* thread
//!    is blocked on. A cycle here is a deadlock that is happening right
//!    now; instead of hanging, the detecting thread panics with every
//!    participating thread's held-lock stack and wanted lock.
//! 3. **Blocking regions** — [`blocking_region`] marks a code region that
//!    performs a blocking round-trip to another thread or process (the
//!    RPC hub's daemon round-trip is the canonical one). Entering such a
//!    region while holding any shim lock is the repo's canonical
//!    latent-hang shape and is reported immediately.
//!
//! All three checks panic on detection, which is what gates CI: a seeded
//! violation fails `cargo test` instead of timing out. Reports are also
//! appended to an in-process log (see [`take_reports`]) so tests can
//! assert on report *content* after catching the panic.
//!
//! ## Scope and non-goals
//!
//! * The checker sees only locks that go through this shim (which the
//!   `xtask lint` pass enforces for `crates/`) plus any custom lock that
//!   calls the [`custom_acquired`]/[`custom_released`] hooks.
//! * The re-acquisition a `Condvar::wait` performs internally is recorded
//!   in the order graph but not interposed in the wait-for graph.
//! * `RwLock` read-recursion by one thread is deliberately not flagged
//!   (it is part of the shim's supported semantics; see the semantics
//!   tests), though a shared→exclusive upgrade on one thread is.
//!
//! ## Waivers
//!
//! A finding can be waived by a named entry in `lockcheck.toml` at the
//! workspace root (or the path named by `LOCKCHECK_TOML`). A waiver lists
//! `match` substrings; a report is suppressed only if *every* substring
//! occurs in the report text, and each suppression is counted (see
//! [`waived_count`]) — there are no silent suppressions.
//!
//! ## Runtime control
//!
//! The feature compiles the instrumentation in; the `LOCKCHECK` env var
//! (`0` disables) and [`set_enabled`] gate it at runtime, which is what
//! lets the equivalence tests compare checked and unchecked behaviour in
//! one process. Individual checks toggle via [`configure`].

use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};
use std::thread::ThreadId;
use std::time::Duration;

/// How a lock is being held: shared (`RwLock` readers) or exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Shared acquisition (a read lock).
    Shared,
    /// Exclusive acquisition (a mutex or write lock).
    Exclusive,
}

/// Acquisition site: the `#[track_caller]` location of the lock call.
pub type Site = &'static Location<'static>;

#[derive(Debug, Clone, Copy)]
struct Held {
    id: u64,
    what: &'static str,
    site: Site,
    kind: Kind,
}

#[derive(Debug, Clone, Copy)]
struct Want {
    id: u64,
    what: &'static str,
    site: Site,
}

#[derive(Debug, Default)]
struct ThreadRec {
    name: String,
    held: Vec<Held>,
    want: Option<Want>,
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    from_site: Site,
    to_site: Site,
}

#[derive(Debug, Default)]
struct Registry {
    /// Lock-order graph: `from → (to → first edge's sites)`.
    edges: HashMap<u64, HashMap<u64, Edge>>,
    /// Current holders of each lock id.
    holders: HashMap<u64, Vec<(ThreadId, Kind)>>,
    /// Per-thread held stacks and current wants.
    threads: HashMap<ThreadId, ThreadRec>,
    /// Every unwaived report emitted (including ones that then
    /// panicked). Waived findings are only counted, never recorded.
    reports: Vec<String>,
    /// Findings suppressed by a `lockcheck.toml` waiver.
    waived: u64,
}

static REGISTRY: StdMutex<Option<Registry>> = StdMutex::new(None);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static ORDER_CHECK: AtomicBool = AtomicBool::new(true);
static WAITFOR_CHECK: AtomicBool = AtomicBool::new(true);
static BLOCKING_CHECK: AtomicBool = AtomicBool::new(true);
static ENABLED: OnceLock<AtomicBool> = OnceLock::new();

fn enabled_flag() -> &'static AtomicBool {
    ENABLED.get_or_init(|| {
        let on = !matches!(std::env::var("LOCKCHECK").as_deref(), Ok("0"));
        AtomicBool::new(on)
    })
}

/// Whether the checker is currently active.
#[must_use]
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Enable or disable the checker at runtime (the `LOCKCHECK` env var sets
/// the initial state; `LOCKCHECK=0` starts disabled). Disabling does not
/// clear already-recorded state.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

/// Toggle the individual checks: lock-order cycles, wait-for deadlocks,
/// and locks held across blocking regions. All default to on.
pub fn configure(order: bool, waitfor: bool, blocking: bool) {
    ORDER_CHECK.store(order, Ordering::Relaxed);
    WAITFOR_CHECK.store(waitfor, Ordering::Relaxed);
    BLOCKING_CHECK.store(blocking, Ordering::Relaxed);
}

/// Drain and return every report emitted so far (panicking detections
/// append their report before unwinding).
#[must_use]
pub fn take_reports() -> Vec<String> {
    with_registry(|r| std::mem::take(&mut r.reports))
}

/// Number of reports emitted so far (without draining them).
#[must_use]
pub fn report_count() -> usize {
    with_registry(|r| r.reports.len())
}

/// Number of findings suppressed by `lockcheck.toml` waivers.
#[must_use]
pub fn waived_count() -> u64 {
    with_registry(|r| r.waived)
}

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    f(guard.get_or_insert_with(Registry::default))
}

/// Assign (or fetch) the registry id of a lock from its id cell. Cells
/// start at 0 (= unassigned); ids are process-unique and never reused.
pub fn ensure_id(cell: &AtomicU64) -> u64 {
    let cur = cell.load(Ordering::Relaxed);
    if cur != 0 {
        return cur;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    match cell.compare_exchange(0, id, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => id,
        Err(winner) => winner,
    }
}

fn thread_label(rec: &ThreadRec, tid: ThreadId) -> String {
    if rec.name.is_empty() {
        format!("{tid:?}")
    } else {
        format!("\"{}\" ({tid:?})", rec.name)
    }
}

fn held_stack(rec: &ThreadRec) -> String {
    if rec.held.is_empty() {
        return "      (no locks held)".into();
    }
    rec.held
        .iter()
        .map(|h| {
            format!(
                "      #{} {} ({:?}) acquired at {}",
                h.id, h.what, h.kind, h.site
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

// ---------------------------------------------------------------------------
// Waivers (lockcheck.toml)
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Waiver {
    name: String,
    matches: Vec<String>,
}

fn waivers() -> &'static [Waiver] {
    static WAIVERS: OnceLock<Vec<Waiver>> = OnceLock::new();
    WAIVERS.get_or_init(|| {
        let path = std::env::var("LOCKCHECK_TOML").ok().or_else(find_toml);
        path.and_then(|p| std::fs::read_to_string(p).ok())
            .map(|text| parse_waivers(&text))
            .unwrap_or_default()
    })
}

fn find_toml() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join("lockcheck.toml");
        if candidate.is_file() {
            return candidate.to_str().map(String::from);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Minimal parser for the subset of TOML `lockcheck.toml` uses:
/// `[[waiver]]` tables with `name`, `reason`, and `match` (string array)
/// keys. Unknown keys are ignored; `reason` is for the human reader.
fn parse_waivers(text: &str) -> Vec<Waiver> {
    let mut out = Vec::new();
    let mut cur: Option<Waiver> = None;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(w) = cur.take() {
                out.push(w);
            }
            cur = Some(Waiver {
                name: String::new(),
                matches: Vec::new(),
            });
            continue;
        }
        let Some(w) = cur.as_mut() else { continue };
        if let Some(rest) = line.strip_prefix("name") {
            if let Some(v) = parse_toml_string(rest) {
                w.name = v;
            }
        } else if let Some(rest) = line.strip_prefix("match") {
            w.matches = parse_toml_string_array(rest);
        }
    }
    if let Some(w) = cur.take() {
        out.push(w);
    }
    out
}

fn parse_toml_string(after_key: &str) -> Option<String> {
    let rest = after_key.trim_start().strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    rest.split('"').next().map(String::from)
}

fn parse_toml_string_array(after_key: &str) -> Vec<String> {
    let Some(rest) = after_key.trim_start().strip_prefix('=') else {
        return Vec::new();
    };
    rest.split('"')
        .skip(1)
        .step_by(2)
        .map(String::from)
        .collect()
}

/// Whether a report is waived: some waiver's `match` substrings all occur
/// in the report text. Counts the suppression.
fn check_waived(report: &str) -> bool {
    let hit = waivers()
        .iter()
        .find(|w| !w.matches.is_empty() && w.matches.iter().all(|m| report.contains(m)));
    match hit {
        Some(_) => {
            with_registry(|r| r.waived += 1);
            true
        }
        None => false,
    }
}

/// Dispose of a fresh finding: a waived one is counted and dropped (a
/// deliberately accepted pattern must not dirty [`report_count`]); an
/// unwaived one is recorded for [`take_reports`] and then panics.
///
/// Must be called *outside* [`with_registry`] — the waiver lookup and the
/// panic both need the registry lock released.
fn dispose(report: String) {
    if check_waived(&report) {
        return;
    }
    with_registry(|r| r.reports.push(report.clone()));
    panic!("{report}");
}

// ---------------------------------------------------------------------------
// Acquisition hooks
// ---------------------------------------------------------------------------

/// Record the *intent* to block on lock `id`: adds lock-order edges from
/// every held lock and panics if one of them closes a cycle (or if the
/// acquisition is an immediate self-deadlock). Call before any blocking
/// acquire; harmless if the fast path then succeeds without waiting.
///
/// # Panics
///
/// Panics when the new edges close a lock-order cycle, or when the thread
/// already holds `id` in a conflicting mode (self-deadlock).
pub fn pre_blocking_acquire(id: u64, what: &'static str, site: Site, kind: Kind) {
    let tid = std::thread::current().id();
    let report = with_registry(|r| {
        let rec = r.threads.entry(tid).or_default();
        if rec.name.is_empty() {
            rec.name = std::thread::current().name().unwrap_or("").to_string();
        }
        // Same-lock reacquisition: shared-after-shared is supported
        // (RwLock read recursion); anything else deadlocks against
        // ourselves right here.
        if let Some(prior) = rec.held.iter().find(|h| h.id == id) {
            if kind == Kind::Shared && prior.kind == Kind::Shared {
                return None;
            }
            let report = format!(
                "lockcheck: self-deadlock\n  thread {} blocking on {} #{id} ({kind:?}) at {site}\n  while already holding it ({:?}) from {}\n    held locks:\n{}",
                thread_label(rec, tid),
                what,
                prior.kind,
                prior.site,
                held_stack(rec),
            );
            return Some(report);
        }
        if !ORDER_CHECK.load(Ordering::Relaxed) {
            return None;
        }
        let held: Vec<Held> = rec.held.clone();
        for h in held {
            if h.id == id {
                continue;
            }
            let slot = r.edges.entry(h.id).or_default();
            if slot.contains_key(&id) {
                continue;
            }
            slot.insert(
                id,
                Edge {
                    from_site: h.site,
                    to_site: site,
                },
            );
            // New edge h.id → id: a path id ⇝ h.id now closes a cycle.
            if let Some(path) = find_path(&r.edges, id, h.id) {
                let mut lines = vec![format!(
                    "lockcheck: lock-order cycle ({} #{} acquired at {site} while holding #{} from {})",
                    what, id, h.id, h.site
                )];
                lines.push(format!(
                    "  cycle: {}",
                    describe_cycle(&r.edges, &path, h.id)
                ));
                return Some(lines.join("\n"));
            }
        }
        None
    });
    if let Some(report) = report {
        dispose(report);
    }
}

/// Depth-first search for a path `from ⇝ to` in the order graph.
fn find_path(edges: &HashMap<u64, HashMap<u64, Edge>>, from: u64, to: u64) -> Option<Vec<u64>> {
    fn dfs(
        edges: &HashMap<u64, HashMap<u64, Edge>>,
        cur: u64,
        to: u64,
        seen: &mut Vec<u64>,
        path: &mut Vec<u64>,
    ) -> bool {
        if seen.contains(&cur) {
            return false;
        }
        seen.push(cur);
        path.push(cur);
        if cur == to {
            return true;
        }
        if let Some(next) = edges.get(&cur) {
            for &n in next.keys() {
                if dfs(edges, n, to, seen, path) {
                    return true;
                }
            }
        }
        path.pop();
        false
    }
    let mut seen = Vec::new();
    let mut path = Vec::new();
    dfs(edges, from, to, &mut seen, &mut path).then_some(path)
}

fn describe_cycle(edges: &HashMap<u64, HashMap<u64, Edge>>, path: &[u64], closing: u64) -> String {
    let mut hops = Vec::new();
    for pair in path.windows(2) {
        if let Some(e) = edges.get(&pair[0]).and_then(|m| m.get(&pair[1])) {
            hops.push(format!(
                "#{} (held at {}) -> #{} (wanted at {})",
                pair[0], e.from_site, pair[1], e.to_site
            ));
        }
    }
    hops.push(format!("#{closing} -> back to #{}", path[0]));
    hops.join("; ")
}

/// Record a successful acquisition: the lock joins the thread's held
/// stack and the lock's holder set.
pub fn acquired(id: u64, what: &'static str, site: Site, kind: Kind) {
    let tid = std::thread::current().id();
    with_registry(|r| {
        let rec = r.threads.entry(tid).or_default();
        if rec.name.is_empty() {
            rec.name = std::thread::current().name().unwrap_or("").to_string();
        }
        rec.held.push(Held {
            id,
            what,
            site,
            kind,
        });
        r.holders.entry(id).or_default().push((tid, kind));
    });
}

/// Record a release: drops the most recent matching entry from the held
/// stack and the holder set. Tolerates unbalanced calls (a lock acquired
/// while the checker was disabled releases as a no-op).
pub fn released(id: u64) {
    let tid = std::thread::current().id();
    with_registry(|r| {
        if let Some(rec) = r.threads.get_mut(&tid) {
            if let Some(pos) = rec.held.iter().rposition(|h| h.id == id) {
                rec.held.remove(pos);
            }
        }
        if let Some(holders) = r.holders.get_mut(&id) {
            if let Some(pos) = holders.iter().rposition(|(t, _)| *t == tid) {
                holders.remove(pos);
            }
            if holders.is_empty() {
                r.holders.remove(&id);
            }
        }
    });
}

/// Hook for custom (non-shim) locks: record an acquisition that did not
/// go through `Mutex`/`RwLock`. Pair with [`custom_released`]. The lock
/// participates in held stacks (and thus blocking-region and lock-order
/// source checks) under the id from `cell`.
#[track_caller]
pub fn custom_acquired(cell: &AtomicU64, what: &'static str) -> u64 {
    let id = ensure_id(cell);
    acquired(id, what, Location::caller(), Kind::Exclusive);
    id
}

/// Release a custom-lock acquisition recorded by [`custom_acquired`].
pub fn custom_released(id: u64) {
    released(id);
}

// ---------------------------------------------------------------------------
// Wait-for graph
// ---------------------------------------------------------------------------

struct WaitGuard {
    tid: ThreadId,
}

impl Drop for WaitGuard {
    fn drop(&mut self) {
        with_registry(|r| {
            if let Some(rec) = r.threads.get_mut(&self.tid) {
                rec.want = None;
            }
        });
    }
}

/// Blocking-acquire loop with deadlock detection: spins on `try_acquire`
/// while registered in the wait-for graph, panicking (instead of hanging)
/// if the graph develops a cycle through this thread.
///
/// # Panics
///
/// Panics when this thread's wait is part of a wait-for cycle.
pub fn wait_acquire(
    id: u64,
    what: &'static str,
    site: Site,
    mut try_acquire: impl FnMut() -> bool,
) {
    if try_acquire() {
        return;
    }
    let tid = std::thread::current().id();
    with_registry(|r| {
        r.threads.entry(tid).or_default().want = Some(Want { id, what, site });
    });
    let _unregister = WaitGuard { tid };
    let mut spins = 0u32;
    loop {
        if try_acquire() {
            return;
        }
        if WAITFOR_CHECK.load(Ordering::Relaxed) {
            if let Some(report) = deadlock_report(tid) {
                dispose(report);
            }
        }
        spins += 1;
        if spins < 64 {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

/// If `tid`'s registered want is part of a wait-for cycle, build the
/// report (each participating thread's held stack and wanted lock).
fn deadlock_report(tid: ThreadId) -> Option<String> {
    with_registry(|r| {
        let mut chain: Vec<ThreadId> = vec![tid];
        loop {
            let cur = *chain.last().expect("chain starts non-empty");
            let want = r.threads.get(&cur).and_then(|rec| rec.want)?;
            // Prefer an exclusive holder; shared holders can also block an
            // exclusive want, so follow the first blocked holder found.
            let holders = r.holders.get(&want.id)?;
            let mut next = None;
            for &(holder, _) in holders {
                if holder == cur {
                    continue;
                }
                if chain.contains(&holder) {
                    // Cycle closed.
                    chain.push(holder);
                    let mut lines =
                        vec!["lockcheck: deadlock (wait-for cycle), would hang:".to_string()];
                    for t in &chain[..chain.len() - 1] {
                        let rec = r.threads.get(t)?;
                        let w = rec.want?;
                        lines.push(format!(
                            "  thread {} waiting for {} #{} at {}",
                            thread_label(rec, *t),
                            w.what,
                            w.id,
                            w.site
                        ));
                        lines.push("    holding:".into());
                        lines.push(held_stack(rec));
                    }
                    return Some(lines.join("\n"));
                }
                if r.threads.get(&holder).and_then(|rec| rec.want).is_some() {
                    next = Some(holder);
                    break;
                }
            }
            chain.push(next?);
        }
    })
}

// ---------------------------------------------------------------------------
// Blocking regions
// ---------------------------------------------------------------------------

/// Run `f`, first checking that the calling thread holds no shim locks:
/// a lock held across a blocking round-trip (an RPC to the host daemon,
/// a cross-thread join) is the repo's canonical latent-hang shape.
///
/// With the `lockcheck` feature off (or the checker disabled) this is a
/// plain passthrough.
///
/// # Panics
///
/// Panics when the thread enters the region holding locks and the finding
/// is not waived in `lockcheck.toml`.
#[track_caller]
pub fn blocking_region<R>(name: &str, f: impl FnOnce() -> R) -> R {
    if enabled() && BLOCKING_CHECK.load(Ordering::Relaxed) {
        let site = Location::caller();
        let tid = std::thread::current().id();
        let report = with_registry(|r| {
            let rec = r.threads.entry(tid).or_default();
            if rec.held.is_empty() {
                return None;
            }
            let report = format!(
                "lockcheck: lock held across blocking region \"{name}\" at {site}\n  thread {}\n    holding:\n{}",
                thread_label(rec, tid),
                held_stack(rec),
            );
            Some(report)
        });
        if let Some(report) = report {
            dispose(report);
        }
    }
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_parser_reads_waiver_tables() {
        let text = r#"
# comment
[[waiver]]
name = "first"
reason = "why"
match = ["alpha", "beta"]

[[waiver]]
name = "second"
match = ["gamma"]
"#;
        let ws = parse_waivers(text);
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].name, "first");
        assert_eq!(ws[0].matches, vec!["alpha", "beta"]);
        assert_eq!(ws[1].name, "second");
        assert_eq!(ws[1].matches, vec!["gamma"]);
    }

    #[test]
    fn ids_are_unique_and_sticky() {
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let ia = ensure_id(&a);
        let ib = ensure_id(&b);
        assert_ne!(ia, ib);
        assert_eq!(ensure_id(&a), ia);
    }
}
