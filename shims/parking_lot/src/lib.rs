//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so this crate provides
//! the subset of the `parking_lot` 0.12 API the workspace uses — `Mutex`
//! with non-poisoning guards and `Condvar::wait` taking `&mut MutexGuard` —
//! implemented on top of `std::sync`. Poisoned std locks are recovered
//! transparently, matching parking_lot's "no poisoning" semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The guard internally holds an `Option` so [`Condvar::wait`] can hand the
/// underlying std guard to `std::sync::Condvar::wait` and put it back; the
/// option is `Some` at all times outside that exchange.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard invariant")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable usable with [`MutexGuard`] by `&mut` reference.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and waits for a notification,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard invariant");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wakes one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all threads blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                cvar.wait(&mut done);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        waiter.join().unwrap();
    }
}
