//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no access to crates.io, so this crate provides
//! the subset of the `parking_lot` 0.12 API the workspace uses — `Mutex`
//! and `RwLock` with non-poisoning guards and `Condvar::wait` taking
//! `&mut MutexGuard` — implemented on top of `std::sync`. Poisoned std
//! locks are recovered transparently, matching parking_lot's "no
//! poisoning" semantics.
//!
//! ## The `lockcheck` feature
//!
//! Because every lock in the workspace funnels through this shim (the
//! `xtask lint` pass enforces it), the shim is also the choke point for
//! concurrency-correctness checking. With the `lockcheck` feature enabled
//! — which the workspace turns on for every `cargo test` via
//! dev-dependencies, and release builds leave off — each acquisition
//! records its `#[track_caller]` site and thread into the global registry
//! of [`lockcheck`], which maintains a lock-order graph (cycles panic: a
//! potential deadlock is reported from one clean run), a wait-for graph
//! (an actual deadlock panics with both threads' held-lock stacks instead
//! of hanging), and a held-locks check at [`lockcheck::blocking_region`]
//! markers. See the module docs of [`lockcheck`] for scope and waivers.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

#[cfg(feature = "lockcheck")]
use std::sync::atomic::AtomicU64;

#[cfg(feature = "lockcheck")]
pub mod lockcheck;

/// No-op stand-in for the checker so call sites (e.g. the RPC layer's
/// [`lockcheck::blocking_region`] markers) compile identically with the
/// `lockcheck` feature off; every entry point is an inlined passthrough.
#[cfg(not(feature = "lockcheck"))]
pub mod lockcheck {
    /// Always `false` without the `lockcheck` feature.
    #[inline]
    #[must_use]
    pub fn enabled() -> bool {
        false
    }

    /// No-op without the `lockcheck` feature.
    #[inline]
    pub fn set_enabled(_on: bool) {}

    /// No-op without the `lockcheck` feature.
    #[inline]
    pub fn configure(_order: bool, _waitfor: bool, _blocking: bool) {}

    /// Always empty without the `lockcheck` feature.
    #[inline]
    #[must_use]
    pub fn take_reports() -> Vec<String> {
        Vec::new()
    }

    /// Always 0 without the `lockcheck` feature.
    #[inline]
    #[must_use]
    pub fn report_count() -> usize {
        0
    }

    /// Always 0 without the `lockcheck` feature.
    #[inline]
    #[must_use]
    pub fn waived_count() -> u64 {
        0
    }

    /// Passthrough without the `lockcheck` feature.
    #[inline]
    pub fn blocking_region<R>(_name: &str, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// No-op without the `lockcheck` feature.
    #[inline]
    pub fn custom_acquired(_cell: &std::sync::atomic::AtomicU64, _what: &'static str) -> u64 {
        0
    }

    /// No-op without the `lockcheck` feature.
    #[inline]
    pub fn custom_released(_id: u64) {}
}

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
pub struct Mutex<T: ?Sized> {
    /// Registry id of this lock (0 = not yet assigned; assigned from the
    /// checker's process-global counter on first acquisition).
    #[cfg(feature = "lockcheck")]
    lc_id: AtomicU64,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "lockcheck")]
            lc_id: AtomicU64::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        if lockcheck::enabled() {
            return self.lock_checked(std::panic::Location::caller());
        }
        MutexGuard::new(
            self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            None,
        )
    }

    /// The checked acquisition path: order edges and a cycle check before
    /// blocking, a deadlock-detecting wait loop instead of a bare block.
    #[cfg(feature = "lockcheck")]
    fn lock_checked(&self, site: lockcheck::Site) -> MutexGuard<'_, T> {
        let id = lockcheck::ensure_id(&self.lc_id);
        lockcheck::pre_blocking_acquire(id, "Mutex", site, lockcheck::Kind::Exclusive);
        let mut slot = None;
        lockcheck::wait_acquire(id, "Mutex", site, || match self.inner.try_lock() {
            Ok(g) => {
                slot = Some(g);
                true
            }
            Err(sync::TryLockError::Poisoned(e)) => {
                slot = Some(e.into_inner());
                true
            }
            Err(sync::TryLockError::WouldBlock) => false,
        });
        lockcheck::acquired(id, "Mutex", site, lockcheck::Kind::Exclusive);
        MutexGuard::new(
            slot.expect("wait_acquire returned without a guard"),
            Some(id),
        )
    }

    /// Attempts to acquire the lock without blocking.
    ///
    /// A successful `try_lock` joins the held-lock stack but records no
    /// lock-order edge: an acquisition that cannot wait cannot contribute
    /// to a deadlock cycle.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lockcheck")]
        if lockcheck::enabled() {
            let id = lockcheck::ensure_id(&self.lc_id);
            lockcheck::acquired(
                id,
                "Mutex",
                std::panic::Location::caller(),
                lockcheck::Kind::Exclusive,
            );
            return Some(MutexGuard::new(guard, Some(id)));
        }
        Some(MutexGuard::new(guard, None))
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The guard internally holds an `Option` so [`Condvar::wait`] can hand the
/// underlying std guard to `std::sync::Condvar::wait` and put it back; the
/// option is `Some` at all times outside that exchange.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
    /// Registry id this guard is tracked under (`None` = untracked:
    /// feature off, or checker disabled at acquisition time).
    #[cfg(feature = "lockcheck")]
    lc: Option<u64>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    #[cfg(feature = "lockcheck")]
    fn new(inner: sync::MutexGuard<'a, T>, lc: Option<u64>) -> Self {
        Self {
            inner: Some(inner),
            lc,
        }
    }

    #[cfg(not(feature = "lockcheck"))]
    fn new(inner: sync::MutexGuard<'a, T>, _lc: Option<u64>) -> Self {
        Self { inner: Some(inner) }
    }
}

#[cfg(feature = "lockcheck")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Unregister before the field drop actually unlocks: a transient
        // "held but unregistered" window can only miss a report, never
        // fabricate a double-holder.
        if let Some(id) = self.lc {
            lockcheck::released(id);
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard invariant")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard invariant")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
pub struct RwLock<T: ?Sized> {
    /// Registry id of this lock (0 = not yet assigned).
    #[cfg(feature = "lockcheck")]
    lc_id: AtomicU64,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    #[must_use]
    pub const fn new(value: T) -> Self {
        Self {
            #[cfg(feature = "lockcheck")]
            lc_id: AtomicU64::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until it is available.
    ///
    /// One thread may hold several read locks on the same `RwLock`
    /// (read recursion); the checker does not flag it.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        if lockcheck::enabled() {
            let site = std::panic::Location::caller();
            let id = lockcheck::ensure_id(&self.lc_id);
            lockcheck::pre_blocking_acquire(id, "RwLock(read)", site, lockcheck::Kind::Shared);
            let mut slot = None;
            lockcheck::wait_acquire(id, "RwLock(read)", site, || match self.inner.try_read() {
                Ok(g) => {
                    slot = Some(g);
                    true
                }
                Err(sync::TryLockError::Poisoned(e)) => {
                    slot = Some(e.into_inner());
                    true
                }
                Err(sync::TryLockError::WouldBlock) => false,
            });
            lockcheck::acquired(id, "RwLock(read)", site, lockcheck::Kind::Shared);
            return RwLockReadGuard::new(
                slot.expect("wait_acquire returned without a guard"),
                Some(id),
            );
        }
        RwLockReadGuard::new(
            self.inner.read().unwrap_or_else(PoisonError::into_inner),
            None,
        )
    }

    /// Acquires the exclusive write lock, blocking until it is available.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        if lockcheck::enabled() {
            let site = std::panic::Location::caller();
            let id = lockcheck::ensure_id(&self.lc_id);
            lockcheck::pre_blocking_acquire(id, "RwLock(write)", site, lockcheck::Kind::Exclusive);
            let mut slot = None;
            lockcheck::wait_acquire(id, "RwLock(write)", site, || match self.inner.try_write() {
                Ok(g) => {
                    slot = Some(g);
                    true
                }
                Err(sync::TryLockError::Poisoned(e)) => {
                    slot = Some(e.into_inner());
                    true
                }
                Err(sync::TryLockError::WouldBlock) => false,
            });
            lockcheck::acquired(id, "RwLock(write)", site, lockcheck::Kind::Exclusive);
            return RwLockWriteGuard::new(
                slot.expect("wait_acquire returned without a guard"),
                Some(id),
            );
        }
        RwLockWriteGuard::new(
            self.inner.write().unwrap_or_else(PoisonError::into_inner),
            None,
        )
    }

    /// Attempts to acquire a shared read lock without blocking. Records
    /// no lock-order edge (see [`Mutex::try_lock`]).
    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let guard = match self.inner.try_read() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lockcheck")]
        if lockcheck::enabled() {
            let id = lockcheck::ensure_id(&self.lc_id);
            lockcheck::acquired(
                id,
                "RwLock(read)",
                std::panic::Location::caller(),
                lockcheck::Kind::Shared,
            );
            return Some(RwLockReadGuard::new(guard, Some(id)));
        }
        Some(RwLockReadGuard::new(guard, None))
    }

    /// Attempts to acquire the write lock without blocking. Records no
    /// lock-order edge (see [`Mutex::try_lock`]).
    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let guard = match self.inner.try_write() {
            Ok(guard) => guard,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(feature = "lockcheck")]
        if lockcheck::enabled() {
            let id = lockcheck::ensure_id(&self.lc_id);
            lockcheck::acquired(
                id,
                "RwLock(write)",
                std::panic::Location::caller(),
                lockcheck::Kind::Exclusive,
            );
            return Some(RwLockWriteGuard::new(guard, Some(id)));
        }
        Some(RwLockWriteGuard::new(guard, None))
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    #[cfg(feature = "lockcheck")]
    lc: Option<u64>,
}

impl<'a, T: ?Sized> RwLockReadGuard<'a, T> {
    #[cfg(feature = "lockcheck")]
    fn new(inner: sync::RwLockReadGuard<'a, T>, lc: Option<u64>) -> Self {
        Self { inner, lc }
    }

    #[cfg(not(feature = "lockcheck"))]
    fn new(inner: sync::RwLockReadGuard<'a, T>, _lc: Option<u64>) -> Self {
        Self { inner }
    }
}

#[cfg(feature = "lockcheck")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(id) = self.lc {
            lockcheck::released(id);
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    #[cfg(feature = "lockcheck")]
    lc: Option<u64>,
}

impl<'a, T: ?Sized> RwLockWriteGuard<'a, T> {
    #[cfg(feature = "lockcheck")]
    fn new(inner: sync::RwLockWriteGuard<'a, T>, lc: Option<u64>) -> Self {
        Self { inner, lc }
    }

    #[cfg(not(feature = "lockcheck"))]
    fn new(inner: sync::RwLockWriteGuard<'a, T>, _lc: Option<u64>) -> Self {
        Self { inner }
    }
}

#[cfg(feature = "lockcheck")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(id) = self.lc {
            lockcheck::released(id);
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable usable with [`MutexGuard`] by `&mut` reference.
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and waits for a notification,
    /// reacquiring the lock before returning.
    ///
    /// Under `lockcheck` the release and reacquisition are mirrored into
    /// the registry (the reacquisition records lock-order edges against
    /// locks still held across the wait), but the block inside
    /// `std::sync::Condvar::wait` itself is not interposed in the
    /// wait-for graph.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "lockcheck")]
        let lc = {
            let lc = guard.lc;
            if let Some(id) = lc {
                lockcheck::released(id);
                lockcheck::pre_blocking_acquire(
                    id,
                    "Mutex",
                    std::panic::Location::caller(),
                    lockcheck::Kind::Exclusive,
                );
            }
            lc
        };
        let std_guard = guard.inner.take().expect("guard invariant");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        #[cfg(feature = "lockcheck")]
        if let Some(id) = lc {
            lockcheck::acquired(
                id,
                "Mutex",
                std::panic::Location::caller(),
                lockcheck::Kind::Exclusive,
            );
        }
    }

    /// Wakes one thread blocked in [`Condvar::wait`].
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all threads blocked in [`Condvar::wait`].
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn rwlock_try_paths_respect_contention() {
        let l = RwLock::new(0);
        let r = l.read();
        assert!(l.try_read().is_some(), "read-shared try_read succeeds");
        assert!(l.try_write().is_none(), "try_write fails under a reader");
        drop(r);
        let w = l.try_write().expect("uncontended try_write succeeds");
        drop(w);
        let w = l.write();
        assert!(l.try_read().is_none(), "try_read fails under a writer");
        drop(w);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                cvar.wait(&mut done);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        waiter.join().unwrap();
    }
}
