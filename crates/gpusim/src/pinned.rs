//! Pinned (page-locked) host memory.

use std::sync::Arc;

use simtime::ByteLedger;

/// A pinned host buffer, as allocated by `cudaHostMalloc` in the paper's
/// baselines.
///
/// Pinned memory is wired: the OS cannot reclaim it, so it competes with
/// the host page cache for physical memory. When created with
/// [`HostPinned::new_accounted`], the buffer charges a [`ByteLedger`] that
/// the host file system sizes its page cache against — this pressure is why
/// the paper's CUDA double-buffering baselines fall 4× behind GPUfs once
/// the workload is disk bound (Figure 8).
#[derive(Debug)]
pub struct HostPinned {
    buf: Vec<u8>,
    ledger: Option<Arc<ByteLedger>>,
}

impl HostPinned {
    /// Allocate `len` zeroed pinned bytes without memory accounting.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            buf: vec![0; len],
            ledger: None,
        }
    }

    /// Allocate `len` zeroed pinned bytes charged against `ledger`.
    #[must_use]
    pub fn new_accounted(len: usize, ledger: Arc<ByteLedger>) -> Self {
        ledger.charge(len as u64);
        Self {
            buf: vec![0; len],
            ledger: Some(ledger),
        }
    }

    /// Length of the buffer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl AsRef<[u8]> for HostPinned {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsMut<[u8]> for HostPinned {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for HostPinned {
    fn drop(&mut self) {
        if let Some(ledger) = &self.ledger {
            ledger.release(self.buf.len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounted_buffer_charges_and_releases() {
        let ledger = Arc::new(ByteLedger::new(1 << 20));
        {
            let buf = HostPinned::new_accounted(1000, Arc::clone(&ledger));
            assert_eq!(ledger.used(), 1000);
            assert_eq!(buf.len(), 1000);
            assert!(!buf.is_empty());
        }
        assert_eq!(ledger.used(), 0);
    }

    #[test]
    fn unaccounted_buffer_is_plain_memory() {
        let mut buf = HostPinned::new(16);
        buf.as_mut()[3] = 9;
        assert_eq!(buf.as_ref()[3], 9);
    }
}
