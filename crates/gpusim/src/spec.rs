//! GPU hardware descriptions.

/// Static description of one GPU's hardware resources.
///
/// The defaults mirror the paper's NVIDIA TESLA C2075 (Fermi): 14
/// multiprocessors, 32-wide warps, 6 GB of GDDR5. Tests and scaled-down
/// benchmarks use [`GpuSpec::small_test`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuSpec {
    /// Human-readable device name.
    pub name: String,
    /// Number of multiprocessors (MPs). The C2075 has 14.
    pub num_mps: usize,
    /// Threads per warp; 32 on all NVIDIA hardware.
    pub warp_size: usize,
    /// How many threadblocks one MP keeps resident concurrently. The
    /// paper's experiments launch `2 × active MPs` blocks, i.e. 2.
    pub resident_blocks_per_mp: usize,
    /// Global device memory in bytes.
    pub memory_bytes: usize,
    /// Per-block scratchpad ("shared") memory in bytes; 48 KB on Fermi.
    pub scratchpad_bytes: usize,
}

impl GpuSpec {
    /// The paper's TESLA C2075: 14 MPs, 6 GB GDDR5, 48 KB scratchpad.
    #[must_use]
    pub fn tesla_c2075() -> Self {
        Self {
            name: "TESLA C2075 (simulated)".to_owned(),
            num_mps: 14,
            warp_size: 32,
            resident_blocks_per_mp: 2,
            memory_bytes: 6 << 30,
            scratchpad_bytes: 48 << 10,
        }
    }

    /// A C2075 with its memory scaled down by `factor`, for benchmarks that
    /// shrink datasets and cache budgets together to keep wall time low.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn tesla_c2075_scaled(factor: usize) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        let mut spec = Self::tesla_c2075();
        spec.memory_bytes /= factor;
        spec
    }

    /// A small device for unit tests: 4 MPs, 64 MB memory.
    #[must_use]
    pub fn small_test() -> Self {
        Self {
            name: "test GPU".to_owned(),
            num_mps: 4,
            warp_size: 32,
            resident_blocks_per_mp: 2,
            memory_bytes: 64 << 20,
            scratchpad_bytes: 48 << 10,
        }
    }

    /// Number of threadblocks that can execute simultaneously:
    /// `num_mps * resident_blocks_per_mp`. This bounds the simulator's
    /// worker-thread pool, exactly as MP slots bound real concurrency.
    #[must_use]
    pub fn concurrent_blocks(&self) -> usize {
        self.num_mps * self.resident_blocks_per_mp
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::tesla_c2075()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2075_matches_paper() {
        let spec = GpuSpec::tesla_c2075();
        assert_eq!(spec.num_mps, 14);
        assert_eq!(spec.warp_size, 32);
        assert_eq!(spec.memory_bytes, 6 << 30);
        // The paper launches 28 blocks = "twice the number of active MPs".
        assert_eq!(spec.concurrent_blocks(), 28);
    }

    #[test]
    fn scaled_spec_divides_memory_only() {
        let spec = GpuSpec::tesla_c2075_scaled(8);
        assert_eq!(spec.memory_bytes, (6 << 30) / 8);
        assert_eq!(spec.num_mps, 14);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn zero_scale_factor_panics() {
        let _ = GpuSpec::tesla_c2075_scaled(0);
    }
}
