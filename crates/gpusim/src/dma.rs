//! PCIe DMA engines: full-duplex, bandwidth-arbitrated, setup-priced.

use simtime::{BandwidthResource, Nanos, Reservation, Timings};

use crate::{DevPtr, Gpu};

/// The two DMA directions of one GPU's PCIe link.
///
/// The link is full duplex (the paper's RPC daemon "uses multiple
/// asynchronous CPU-GPU channels to utilize full-duplex DMA"), so
/// host-to-device and device-to-host transfers are arbitrated
/// independently. Transfers on the same direction queue FIFO.
#[derive(Debug)]
pub struct DmaEngines {
    timings: Timings,
    h2d: BandwidthResource,
    d2h: BandwidthResource,
}

impl DmaEngines {
    /// Build both directions from a calibration table.
    #[must_use]
    pub fn from_timings(timings: &Timings) -> Self {
        Self {
            h2d: BandwidthResource::new(timings.pcie_mb_s, timings.dma_setup_ns),
            d2h: BandwidthResource::new(timings.pcie_mb_s, timings.dma_setup_ns),
            timings: timings.clone(),
        }
    }

    /// The calibration this engine was built from.
    #[must_use]
    pub fn timings(&self) -> &Timings {
        &self.timings
    }

    /// Reserve the host-to-device direction for `bytes`, without moving
    /// data (used for modeling a transfer whose bytes are moved elsewhere).
    pub fn reserve_h2d(&self, earliest: Nanos, bytes: u64) -> Reservation {
        self.h2d.transfer(earliest, bytes)
    }

    /// Reserve the device-to-host direction for `bytes`.
    pub fn reserve_d2h(&self, earliest: Nanos, bytes: u64) -> Reservation {
        self.d2h.transfer(earliest, bytes)
    }

    /// Reserve the host-to-device direction for one scatter-gather
    /// transaction over the given extents: setup is paid once for the
    /// whole descriptor list (see [`simtime::BandwidthResource::transfer_scattered`]).
    pub fn reserve_h2d_scattered(&self, earliest: Nanos, extent_bytes: &[u64]) -> Reservation {
        self.reserve_h2d_chunk(earliest, extent_bytes, true)
    }

    /// Reserve the device-to-host direction for one scatter-gather
    /// transaction over the given extents — the write-back mirror of
    /// [`DmaEngines::reserve_h2d_scattered`].
    pub fn reserve_d2h_scattered(&self, earliest: Nanos, extent_bytes: &[u64]) -> Reservation {
        self.reserve_d2h_chunk(earliest, extent_bytes, true)
    }

    /// Reserve the host-to-device direction for one *chunk* of a larger
    /// scatter-gather transaction: setup is paid only on the `first`
    /// chunk; continuations stream the already-programmed descriptor list
    /// at pure bandwidth (see [`simtime::BandwidthResource::transfer_chunk`]).
    /// The caller serializes chunks of one transaction by threading the
    /// previous chunk's `end` into `earliest`.
    pub fn reserve_h2d_chunk(
        &self,
        earliest: Nanos,
        extent_bytes: &[u64],
        first: bool,
    ) -> Reservation {
        self.h2d.transfer_chunk(earliest, extent_bytes, first)
    }

    /// Reserve the device-to-host direction for one chunk of a larger
    /// scatter-gather transaction — the write-back mirror of
    /// [`DmaEngines::reserve_h2d_chunk`].
    pub fn reserve_d2h_chunk(
        &self,
        earliest: Nanos,
        extent_bytes: &[u64],
        first: bool,
    ) -> Reservation {
        self.d2h.transfer_chunk(earliest, extent_bytes, first)
    }

    /// Forget queued work in both directions (between benchmark phases).
    pub fn reset(&self) {
        self.h2d.reset();
        self.d2h.reset();
    }
}

impl Gpu {
    /// DMA host memory into device memory: copies the bytes and charges
    /// the PCIe host-to-device direction. Returns the transfer window.
    ///
    /// # Panics
    ///
    /// Panics if the destination range is out of bounds.
    pub fn dma_h2d(&self, src: &[u8], dst: DevPtr, earliest: Nanos) -> Reservation {
        self.global().write(dst, src);
        self.dma().reserve_h2d(earliest, src.len() as u64)
    }

    /// DMA device memory into host memory: copies the bytes and charges
    /// the PCIe device-to-host direction. Returns the transfer window.
    ///
    /// # Panics
    ///
    /// Panics if the source range is out of bounds.
    pub fn dma_d2h(&self, src: DevPtr, dst: &mut [u8], earliest: Nanos) -> Reservation {
        self.global().read(src, dst);
        self.dma().reserve_d2h(earliest, dst.len() as u64)
    }

    /// DMA several host buffers into device memory as one scatter-gather
    /// transaction: every extent is copied, but the host-to-device
    /// direction is charged a single setup cost for the whole batch. This
    /// is the timing model behind the batched multi-page `ReadPages` RPC.
    ///
    /// # Panics
    ///
    /// Panics if any destination range is out of bounds.
    pub fn dma_h2d_scattered(&self, parts: &[(&[u8], DevPtr)], earliest: Nanos) -> Reservation {
        self.dma_h2d_scattered_chunk(parts, earliest, true)
    }

    /// DMA one *chunk* of a larger scatter-gather transaction into device
    /// memory: every extent is copied, but the host-to-device setup cost
    /// is charged only when this is the transaction's `first` chunk. This
    /// is the timing model behind the daemon's pipelined `ReadPages`
    /// engine, which streams a batch chunk by chunk so host file I/O of
    /// chunk *k+1* overlaps the DMA of chunk *k*. Callers serialize the
    /// chunks of one transaction by passing the previous chunk's `end`
    /// (max'ed with the data-ready time) as `earliest`.
    ///
    /// # Panics
    ///
    /// Panics if any destination range is out of bounds.
    pub fn dma_h2d_scattered_chunk(
        &self,
        parts: &[(&[u8], DevPtr)],
        earliest: Nanos,
        first: bool,
    ) -> Reservation {
        let mut extent_bytes = Vec::with_capacity(parts.len());
        for (src, dst) in parts {
            self.global().write(*dst, src);
            extent_bytes.push(src.len() as u64);
        }
        self.dma().reserve_h2d_chunk(earliest, &extent_bytes, first)
    }

    /// DMA several device extents into host buffers as one scatter-gather
    /// transaction: every extent is copied, but the device-to-host
    /// direction is charged a single setup cost for the whole batch. This
    /// is the timing model behind the batched multi-page `WritePages`
    /// write-back RPC, mirroring [`Gpu::dma_h2d_scattered`] on reads.
    ///
    /// # Panics
    ///
    /// Panics if any source range is out of bounds.
    pub fn dma_d2h_scattered(
        &self,
        parts: &mut [(DevPtr, &mut [u8])],
        earliest: Nanos,
    ) -> Reservation {
        self.dma_d2h_scattered_chunk(parts, earliest, true)
    }

    /// DMA one chunk of a larger device-to-host scatter-gather transaction
    /// — the write-back mirror of [`Gpu::dma_h2d_scattered_chunk`], behind
    /// the daemon's pipelined `WritePages` engine (the D2H gather of chunk
    /// *k+1* overlaps the host `pwrite`s of chunk *k*).
    ///
    /// # Panics
    ///
    /// Panics if any source range is out of bounds.
    pub fn dma_d2h_scattered_chunk(
        &self,
        parts: &mut [(DevPtr, &mut [u8])],
        earliest: Nanos,
        first: bool,
    ) -> Reservation {
        let mut extent_bytes = Vec::with_capacity(parts.len());
        for (src, dst) in parts.iter_mut() {
            self.global().read(*src, dst);
            extent_bytes.push(dst.len() as u64);
        }
        self.dma().reserve_d2h_chunk(earliest, &extent_bytes, first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuSpec;

    #[test]
    fn h2d_moves_bytes_and_charges_time() {
        let gpu = Gpu::new(0, GpuSpec::small_test());
        let dst = gpu.global().alloc(1 << 20).unwrap();
        let src = vec![0xabu8; 1 << 20];
        let r = gpu.dma_h2d(&src, dst, 0);
        assert!(r.end > r.start);
        // 1 MiB at 5731 MB/s ≈ 183 us plus the 25 us setup.
        assert!(
            r.busy() > 200_000 && r.busy() < 215_000,
            "busy = {}",
            r.busy()
        );
        let mut out = vec![0u8; 1 << 20];
        gpu.global().read(dst, &mut out);
        assert_eq!(out, src);
    }

    #[test]
    fn directions_are_independent() {
        let gpu = Gpu::new(0, GpuSpec::small_test());
        let a = gpu.global().alloc(1 << 20).unwrap();
        let r1 = gpu.dma_h2d(&vec![1u8; 1 << 20], a, 0);
        let mut sink = vec![0u8; 1 << 20];
        let r2 = gpu.dma_d2h(a, &mut sink, 0);
        // d2h did not queue behind h2d.
        assert_eq!(r2.start, 0);
        assert!(r1.start == 0);
    }

    #[test]
    fn same_direction_queues() {
        let gpu = Gpu::new(0, GpuSpec::small_test());
        let a = gpu.global().alloc(2 << 20).unwrap();
        let r1 = gpu.dma_h2d(&vec![1u8; 1 << 20], a, 0);
        let r2 = gpu.dma_h2d(&vec![2u8; 1 << 20], a + (1 << 20), 0);
        assert_eq!(r2.start, r1.end);
    }

    #[test]
    fn scattered_h2d_moves_all_extents_for_one_setup() {
        let gpu = Gpu::new(0, GpuSpec::small_test());
        let dst = gpu.global().alloc(3 << 20).unwrap();
        let a = vec![1u8; 1 << 20];
        let b = vec![2u8; 1 << 20];
        let scattered = gpu.dma_h2d_scattered(&[(&a, dst), (&b, dst + (2 << 20))], 0);
        let mut out = vec![0u8; 1 << 20];
        gpu.global().read(dst, &mut out);
        assert_eq!(out, a);
        gpu.global().read(dst + (2 << 20), &mut out);
        assert_eq!(out, b);
        // Same bytes as two singleton DMAs, minus one setup charge.
        let gpu2 = Gpu::new(1, GpuSpec::small_test());
        let dst2 = gpu2.global().alloc(2 << 20).unwrap();
        let r1 = gpu2.dma_h2d(&a, dst2, 0);
        let r2 = gpu2.dma_h2d(&b, dst2 + (1 << 20), 0);
        let serial = r1.busy() + r2.busy();
        let saved = serial - scattered.busy();
        let setup = gpu.dma().timings().dma_setup_ns;
        // Modulo per-extent integer rounding of the bandwidth term.
        assert!(
            (setup..=setup + 2).contains(&saved),
            "batch pays setup once: saved {saved}, setup {setup}"
        );
    }

    #[test]
    fn scattered_d2h_moves_all_extents_for_one_setup() {
        let gpu = Gpu::new(0, GpuSpec::small_test());
        let src = gpu.global().alloc(3 << 20).unwrap();
        gpu.global().write(src, &vec![7u8; 1 << 20]);
        gpu.global().write(src + (2 << 20), &vec![8u8; 1 << 20]);
        let mut a = vec![0u8; 1 << 20];
        let mut b = vec![0u8; 1 << 20];
        let scattered = {
            let mut parts: Vec<(DevPtr, &mut [u8])> =
                vec![(src, a.as_mut_slice()), (src + (2 << 20), b.as_mut_slice())];
            gpu.dma_d2h_scattered(&mut parts, 0)
        };
        assert!(a.iter().all(|&x| x == 7));
        assert!(b.iter().all(|&x| x == 8));
        // Same bytes as two singleton DMAs, minus one setup charge.
        let gpu2 = Gpu::new(1, GpuSpec::small_test());
        let src2 = gpu2.global().alloc(2 << 20).unwrap();
        let mut sink = vec![0u8; 1 << 20];
        let r1 = gpu2.dma_d2h(src2, &mut sink, 0);
        let r2 = gpu2.dma_d2h(src2 + (1 << 20), &mut sink, 0);
        let saved = r1.busy() + r2.busy() - scattered.busy();
        let setup = gpu.dma().timings().dma_setup_ns;
        assert!(
            (setup..=setup + 2).contains(&saved),
            "batch pays setup once: saved {saved}, setup {setup}"
        );
    }

    #[test]
    fn chunked_scattered_transfer_moves_data_and_pays_setup_once() {
        let gpu = Gpu::new(0, GpuSpec::small_test());
        let dst = gpu.global().alloc(2 << 20).unwrap();
        let a = vec![3u8; 1 << 20];
        let b = vec![4u8; 1 << 20];
        let c1 = gpu.dma_h2d_scattered_chunk(&[(&a, dst)], 0, true);
        let c2 = gpu.dma_h2d_scattered_chunk(&[(&b, dst + (1 << 20))], c1.end, false);
        let mut out = vec![0u8; 1 << 20];
        gpu.global().read(dst, &mut out);
        assert_eq!(out, a);
        gpu.global().read(dst + (1 << 20), &mut out);
        assert_eq!(out, b);
        assert_eq!(c2.start, c1.end, "chunks of one transaction serialize");
        // Whole transaction costs the same as one scattered batch.
        let gpu2 = Gpu::new(1, GpuSpec::small_test());
        let dst2 = gpu2.global().alloc(2 << 20).unwrap();
        let whole = gpu2.dma_h2d_scattered(&[(&a, dst2), (&b, dst2 + (1 << 20))], 0);
        // Modulo per-chunk integer rounding of the bandwidth term.
        let chunked = c2.end - c1.start;
        assert!(
            (whole.busy()..=whole.busy() + 1).contains(&chunked),
            "chunked {chunked} vs whole {}",
            whole.busy()
        );
    }

    #[test]
    fn zeroed_timings_make_dma_free_but_still_move_data() {
        let t = Timings::default().without_dma();
        let gpu = Gpu::with_timings(0, GpuSpec::small_test(), &t);
        let dst = gpu.global().alloc(4096).unwrap();
        let r = gpu.dma_h2d(&[5u8; 4096], dst, 0);
        assert_eq!(r.busy(), 0);
        let mut out = [0u8; 4096];
        gpu.global().read(dst, &mut out);
        assert_eq!(out, [5u8; 4096]);
    }
}
