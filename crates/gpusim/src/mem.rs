//! GPU global memory: a shared byte arena with a first-fit allocator.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::Add;

use parking_lot::Mutex;

/// A device pointer: an offset into one GPU's global memory.
///
/// `DevPtr` is plain data — it can be stored in RPC messages and shipped to
/// the host daemon, which uses it as a DMA target, exactly as GPUfs passes
/// raw device pointers in its read/write RPCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DevPtr(pub u64);

impl DevPtr {
    /// The offset in bytes from the base of global memory.
    #[must_use]
    pub fn offset(self) -> u64 {
        self.0
    }
}

impl Add<usize> for DevPtr {
    type Output = DevPtr;

    fn add(self, rhs: usize) -> DevPtr {
        DevPtr(self.0 + rhs as u64)
    }
}

impl fmt::Display for DevPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev:{:#x}", self.0)
    }
}

/// Errors from global-memory operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The allocator has no free region large enough.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Largest free region available.
        largest_free: usize,
    },
    /// An access fell outside the arena.
    OutOfBounds {
        /// Offset of the access.
        offset: u64,
        /// Length of the access.
        len: usize,
        /// Size of the arena.
        capacity: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory { requested, largest_free } => write!(
                f,
                "out of device memory: requested {requested} bytes, largest free region {largest_free}"
            ),
            MemError::OutOfBounds { offset, len, capacity } => write!(
                f,
                "device access out of bounds: [{offset}, {offset}+{len}) exceeds capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// The byte storage. `UnsafeCell` lets concurrently running threadblocks
/// access disjoint ranges through a shared reference; see the concurrency
/// contract on [`GlobalMem`].
struct Arena {
    bytes: Box<[UnsafeCell<u8>]>,
}

// SAFETY: the arena is shared across threadblock worker threads. All
// mutation goes through `GlobalMem`'s bounds-checked copy routines, and the
// layer above (the GPUfs buffer cache and application allocations) is
// responsible for range exclusivity, as on real GPU hardware where global
// memory has no per-byte protection.
unsafe impl Sync for Arena {}
unsafe impl Send for Arena {}

/// One GPU's global memory.
///
/// # Concurrency contract
///
/// Like real GPU DRAM, the arena performs no access checking between
/// concurrent writers: callers (the GPUfs buffer cache, application code)
/// must ensure that a range being written is not concurrently accessed.
/// Concurrent access to *disjoint* ranges is always fine. This mirrors the
/// paper's reliance on fpage reference counts and locks to protect pages
/// during memory transfers (§4.1).
pub struct GlobalMem {
    arena: Arena,
    free: Mutex<Vec<(u64, usize)>>, // sorted by offset, coalesced
    capacity: usize,
}

impl fmt::Debug for GlobalMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalMem")
            .field("capacity", &self.capacity)
            .field("free_bytes", &self.free_bytes())
            .finish()
    }
}

impl GlobalMem {
    /// An arena of `capacity` bytes, fully free.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        // SAFETY: `UnsafeCell<u8>` is `repr(transparent)` over `u8`, so a
        // zeroed `Box<[u8]>` can be reinterpreted as `Box<[UnsafeCell<u8>]>`.
        // This avoids a per-byte construction loop on multi-GB arenas.
        let bytes = unsafe {
            let raw = Box::into_raw(vec![0u8; capacity].into_boxed_slice());
            Box::from_raw(raw as *mut [UnsafeCell<u8>])
        };
        Self {
            arena: Arena { bytes },
            free: Mutex::new(vec![(0, capacity)]),
            capacity,
        }
    }

    /// Total arena size in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sum of all free regions.
    #[must_use]
    pub fn free_bytes(&self) -> usize {
        self.free.lock().iter().map(|&(_, len)| len).sum()
    }

    /// Allocate `len` bytes, first-fit.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] if no free region is large enough.
    pub fn alloc(&self, len: usize) -> Result<DevPtr, MemError> {
        let mut free = self.free.lock();
        let mut largest = 0;
        for i in 0..free.len() {
            let (off, region) = free[i];
            largest = largest.max(region);
            if region >= len {
                if region == len {
                    free.remove(i);
                } else {
                    free[i] = (off + len as u64, region - len);
                }
                return Ok(DevPtr(off));
            }
        }
        Err(MemError::OutOfMemory {
            requested: len,
            largest_free: largest,
        })
    }

    /// Return `[ptr, ptr+len)` to the allocator, coalescing neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the region is out of bounds or overlaps a free region
    /// (double free).
    pub fn dealloc(&self, ptr: DevPtr, len: usize) {
        assert!(
            (ptr.0 as usize).saturating_add(len) <= self.capacity,
            "dealloc out of bounds"
        );
        if len == 0 {
            return;
        }
        let mut free = self.free.lock();
        let idx = free.partition_point(|&(off, _)| off < ptr.0);
        // Check overlap with neighbours.
        if idx > 0 {
            let (poff, plen) = free[idx - 1];
            assert!(
                poff + plen as u64 <= ptr.0,
                "double free / overlap with previous region"
            );
        }
        if idx < free.len() {
            assert!(
                ptr.0 + len as u64 <= free[idx].0,
                "double free / overlap with next region"
            );
        }
        free.insert(idx, (ptr.0, len));
        // Coalesce with next, then previous.
        if idx + 1 < free.len() && free[idx].0 + free[idx].1 as u64 == free[idx + 1].0 {
            free[idx].1 += free[idx + 1].1;
            free.remove(idx + 1);
        }
        if idx > 0 && free[idx - 1].0 + free[idx - 1].1 as u64 == free[idx].0 {
            free[idx - 1].1 += free[idx].1;
            free.remove(idx);
        }
    }

    fn check(&self, ptr: DevPtr, len: usize) -> Result<(), MemError> {
        if (ptr.0 as usize).saturating_add(len) > self.capacity {
            return Err(MemError::OutOfBounds {
                offset: ptr.0,
                len,
                capacity: self.capacity,
            });
        }
        Ok(())
    }

    /// Copy `src` into device memory at `ptr`.
    ///
    /// # Panics
    ///
    /// Panics if the destination range is out of bounds.
    pub fn write(&self, ptr: DevPtr, src: &[u8]) {
        self.try_write(ptr, src)
            .expect("device write out of bounds");
    }

    /// Copy `src` into device memory at `ptr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range does not fit.
    pub fn try_write(&self, ptr: DevPtr, src: &[u8]) -> Result<(), MemError> {
        self.check(ptr, src.len())?;
        let base = self.arena.bytes.as_ptr() as *mut u8;
        // SAFETY: range checked above; exclusivity of the destination range
        // is the caller's contract (see type-level docs).
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), base.add(ptr.0 as usize), src.len());
        }
        Ok(())
    }

    /// Copy device memory at `ptr` into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if the source range is out of bounds.
    pub fn read(&self, ptr: DevPtr, dst: &mut [u8]) {
        self.try_read(ptr, dst).expect("device read out of bounds");
    }

    /// Copy device memory at `ptr` into `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range does not fit.
    pub fn try_read(&self, ptr: DevPtr, dst: &mut [u8]) -> Result<(), MemError> {
        self.check(ptr, dst.len())?;
        let base = self.arena.bytes.as_ptr() as *const u8;
        // SAFETY: range checked above; caller guarantees no concurrent
        // writer overlaps the source range.
        unsafe {
            std::ptr::copy_nonoverlapping(base.add(ptr.0 as usize), dst.as_mut_ptr(), dst.len());
        }
        Ok(())
    }

    /// Device-to-device copy within this GPU.
    ///
    /// # Panics
    ///
    /// Panics if either range is out of bounds or the ranges overlap.
    pub fn copy_within(&self, src: DevPtr, dst: DevPtr, len: usize) {
        self.check(src, len)
            .expect("device copy source out of bounds");
        self.check(dst, len)
            .expect("device copy destination out of bounds");
        let s = src.0 as usize;
        let d = dst.0 as usize;
        assert!(s + len <= d || d + len <= s, "overlapping device copy");
        let base = self.arena.bytes.as_ptr() as *mut u8;
        // SAFETY: both ranges checked in-bounds and disjoint above.
        unsafe {
            std::ptr::copy_nonoverlapping(base.add(s) as *const u8, base.add(d), len);
        }
    }

    /// Borrow `[ptr, ptr+len)` of device memory directly, without copying.
    ///
    /// This is how `gmmap` hands applications pointers straight into GPU
    /// buffer-cache pages (paper §3.2).
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no thread writes any byte of the
    /// range for the lifetime of the returned slice (GPUfs enforces this
    /// with fpage reference counts that pin pages against eviction and
    /// concurrent initialization).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub unsafe fn slice(&self, ptr: DevPtr, len: usize) -> &[u8] {
        self.check(ptr, len).expect("device slice out of bounds");
        let base = self.arena.bytes.as_ptr() as *const u8;
        std::slice::from_raw_parts(base.add(ptr.0 as usize), len)
    }

    /// Borrow `[ptr, ptr+len)` of device memory mutably, without copying.
    ///
    /// # Safety
    ///
    /// The caller must guarantee exclusive access to the range for the
    /// lifetime of the returned slice.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[allow(clippy::mut_from_ref)]
    #[must_use]
    pub unsafe fn slice_mut(&self, ptr: DevPtr, len: usize) -> &mut [u8] {
        self.check(ptr, len).expect("device slice out of bounds");
        let base = self.arena.bytes.as_ptr() as *mut u8;
        std::slice::from_raw_parts_mut(base.add(ptr.0 as usize), len)
    }

    /// Zero-fill `[ptr, ptr+len)`, used by O_GWRONCE page initialization.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn zero(&self, ptr: DevPtr, len: usize) {
        self.check(ptr, len).expect("device zero out of bounds");
        let base = self.arena.bytes.as_ptr() as *mut u8;
        // SAFETY: range checked above; exclusivity is the caller's contract.
        unsafe {
            std::ptr::write_bytes(base.add(ptr.0 as usize), 0, len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let mem = GlobalMem::new(4096);
        let p = mem.alloc(128).unwrap();
        mem.write(p, &[7u8; 128]);
        let mut out = [0u8; 128];
        mem.read(p, &mut out);
        assert_eq!(out, [7u8; 128]);
    }

    #[test]
    fn alloc_exhaustion_reports_largest_free() {
        let mem = GlobalMem::new(1024);
        let _a = mem.alloc(1000).unwrap();
        let err = mem.alloc(100).unwrap_err();
        assert_eq!(
            err,
            MemError::OutOfMemory {
                requested: 100,
                largest_free: 24
            }
        );
    }

    #[test]
    fn dealloc_coalesces_regions() {
        let mem = GlobalMem::new(1024);
        let a = mem.alloc(256).unwrap();
        let b = mem.alloc(256).unwrap();
        let c = mem.alloc(256).unwrap();
        mem.dealloc(a, 256);
        mem.dealloc(c, 256);
        // Fragmented: 256 + 256 + 256(tail) free, but not contiguous.
        assert_eq!(mem.free_bytes(), 768);
        assert!(
            mem.alloc(512).is_ok(),
            "c+tail should have coalesced into 512"
        );
        mem.dealloc(b, 256);
        // a+b now contiguous.
        assert!(mem.alloc(512).is_ok());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mem = GlobalMem::new(1024);
        let a = mem.alloc(100).unwrap();
        mem.dealloc(a, 100);
        mem.dealloc(a, 100);
    }

    #[test]
    fn out_of_bounds_write_is_error() {
        let mem = GlobalMem::new(64);
        let err = mem.try_write(DevPtr(60), &[0u8; 8]).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds { .. }));
    }

    #[test]
    fn zero_fills_range() {
        let mem = GlobalMem::new(256);
        let p = mem.alloc(64).unwrap();
        mem.write(p, &[0xffu8; 64]);
        mem.zero(p, 64);
        let mut out = [1u8; 64];
        mem.read(p, &mut out);
        assert_eq!(out, [0u8; 64]);
    }

    #[test]
    fn copy_within_moves_bytes() {
        let mem = GlobalMem::new(256);
        let a = mem.alloc(64).unwrap();
        let b = mem.alloc(64).unwrap();
        mem.write(a, &[9u8; 64]);
        mem.copy_within(a, b, 64);
        let mut out = [0u8; 64];
        mem.read(b, &mut out);
        assert_eq!(out, [9u8; 64]);
    }

    #[test]
    fn devptr_arithmetic_and_display() {
        let p = DevPtr(0x100);
        assert_eq!((p + 0x20).offset(), 0x120);
        assert_eq!(p.to_string(), "dev:0x100");
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let mem = GlobalMem::new(64 * 1024);
        let base = mem.alloc(64 * 1024).unwrap();
        std::thread::scope(|s| {
            for i in 0..8usize {
                let mem = &mem;
                s.spawn(move || {
                    mem.write(base + i * 8192, &[i as u8; 8192]);
                });
            }
        });
        let mut out = vec![0u8; 8192];
        mem.read(base + 7 * 8192, &mut out);
        assert!(out.iter().all(|&b| b == 7));
    }
}
