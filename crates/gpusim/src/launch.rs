//! Kernel launch and the non-preemptive threadblock scheduler.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use simtime::{Clock, Nanos};

use crate::{Gpu, GpuId};

/// Launch geometry: how many threadblocks, how many threads per block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Number of threadblocks in the kernel.
    pub blocks: usize,
    /// Threads per threadblock (the paper uses 256–512).
    pub threads_per_block: usize,
}

impl Grid {
    /// A grid of `blocks` threadblocks with `threads_per_block` threads each.
    #[must_use]
    pub fn new(blocks: usize, threads_per_block: usize) -> Self {
        Self {
            blocks,
            threads_per_block,
        }
    }

    /// Total threads in the kernel.
    #[must_use]
    pub fn total_threads(&self) -> usize {
        self.blocks * self.threads_per_block
    }
}

/// Result of a completed kernel: virtual start/end plus per-block end times.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Virtual time at which the kernel was launched.
    pub start: Nanos,
    /// Virtual completion time: the latest block-end over all MP slots.
    pub end: Nanos,
    /// Per-threadblock completion times, indexed by block id.
    pub block_ends: Vec<Nanos>,
}

impl KernelResult {
    /// Elapsed virtual time of the kernel.
    #[must_use]
    pub fn elapsed(&self) -> Nanos {
        self.end - self.start
    }
}

/// One warp of a threadblock: `warp_size` consecutive thread lanes.
///
/// GPUfs's API is defined at warp (or, in the prototype and here, at
/// threadblock) granularity; workloads use warps to structure per-lane work
/// and to charge divergence-aware compute time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpCtx {
    /// Index of this warp within its block.
    pub warp_id: usize,
    /// First thread lane of the warp.
    pub first_lane: usize,
    /// Number of lanes (equal to the warp size except for a ragged tail).
    pub lanes: usize,
}

/// Execution context handed to a kernel closure, one per threadblock.
///
/// The context owns the block's virtual [`Clock`] and its scratchpad
/// buffer. Application "threads" inside a block run sequentially via
/// [`BlockCtx::threads`]; the real concurrency in the simulator is between
/// blocks.
pub struct BlockCtx<'g> {
    gpu: &'g Gpu,
    grid: Grid,
    block_id: usize,
    clock: Clock,
    scratch: Vec<u8>,
}

impl std::fmt::Debug for BlockCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCtx")
            .field("gpu", &self.gpu.id())
            .field("block_id", &self.block_id)
            .field("now", &self.clock.now())
            .finish()
    }
}

impl<'g> BlockCtx<'g> {
    /// The GPU this block runs on.
    #[must_use]
    pub fn gpu(&self) -> &'g Gpu {
        self.gpu
    }

    /// Identifier of the GPU this block runs on.
    #[must_use]
    pub fn gpu_id(&self) -> GpuId {
        self.gpu.id()
    }

    /// The launch geometry.
    #[must_use]
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// This block's id in `[0, grid.blocks)`.
    #[must_use]
    pub fn block_id(&self) -> usize {
        self.block_id
    }

    /// Threads in this block.
    #[must_use]
    pub fn num_threads(&self) -> usize {
        self.grid.threads_per_block
    }

    /// Iterate the block's thread ids. Per-thread work runs sequentially;
    /// charge its cost once for the whole block via [`BlockCtx::advance`]
    /// using a per-thread-parallel cost model.
    pub fn threads(&self) -> std::ops::Range<usize> {
        0..self.grid.threads_per_block
    }

    /// Iterate the block's warps.
    pub fn warps(&self) -> impl Iterator<Item = WarpCtx> + '_ {
        let ws = self.gpu.spec().warp_size;
        let n = self.grid.threads_per_block;
        (0..n.div_ceil(ws)).map(move |warp_id| WarpCtx {
            warp_id,
            first_lane: warp_id * ws,
            lanes: ws.min(n - warp_id * ws),
        })
    }

    /// Block-wide barrier (`__syncthreads`). Since intra-block threads run
    /// sequentially here, this only charges the barrier's hardware cost.
    pub fn sync_threads(&mut self) {
        self.clock.advance(20);
    }

    /// System-scope memory fence (`__threadfence_system`): makes this
    /// block's global-memory writes visible to the host DMA engine. GPUfs
    /// issues one after every `gwrite` (paper §4.1).
    pub fn threadfence_system(&mut self) {
        self.clock.advance(250);
    }

    /// Current virtual time of this block.
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Charge `dur` nanoseconds of block-local work.
    pub fn advance(&mut self, dur: Nanos) {
        self.clock.advance(dur);
    }

    /// Wait (virtually) until `t`.
    pub fn wait_until(&mut self, t: Nanos) {
        self.clock.wait_until(t);
    }

    /// The block's scratchpad ("shared") memory.
    pub fn scratch(&mut self) -> &mut [u8] {
        &mut self.scratch
    }
}

impl Gpu {
    /// Launch a kernel: run `kernel` once per threadblock of `grid`,
    /// starting at virtual time `start`.
    ///
    /// Threadblocks are dispatched in a randomly shuffled order onto
    /// `spec.concurrent_blocks()` MP slots, each backed by a real OS
    /// thread. A slot runs its blocks back-to-back without preemption; the
    /// kernel completes when the slowest slot drains.
    ///
    /// # Panics
    ///
    /// Panics if a block panics (the paper notes a GPU software failure
    /// kills the whole GPU context; we surface it as a test failure).
    pub fn launch<F>(&self, grid: Grid, start: Nanos, kernel: F) -> KernelResult
    where
        F: Fn(&mut BlockCtx<'_>) + Sync,
    {
        let seed = rand::random::<u64>();
        self.launch_seeded(grid, start, seed, kernel)
    }

    /// [`Gpu::launch`] with a fixed dispatch-order seed, for reproducible
    /// tests of order-sensitive behaviour (e.g. the closed-file table
    /// reviving caches when blocks close and reopen a file).
    pub fn launch_seeded<F>(&self, grid: Grid, start: Nanos, seed: u64, kernel: F) -> KernelResult
    where
        F: Fn(&mut BlockCtx<'_>) + Sync,
    {
        assert!(grid.blocks > 0, "kernel must have at least one threadblock");
        assert!(
            grid.threads_per_block > 0,
            "threadblocks must have at least one thread"
        );

        // The hardware scheduler dispatches blocks in nondeterministic
        // order (paper §2); model it as a seeded shuffle.
        let mut order: Vec<usize> = (0..grid.blocks).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);

        let launch_overhead = self.timings().kernel_launch_ns;
        let t0 = start + launch_overhead;
        let slots = self.spec().concurrent_blocks().min(grid.blocks).max(1);
        let mut block_ends = vec![0u64; grid.blocks];

        // Blocks are assigned to MP slots round-robin over the shuffled
        // dispatch order. The hardware scheduler would instead hand the
        // next block to whichever slot drains first; round-robin matches
        // it exactly for uniform blocks and approximates it otherwise,
        // while keeping slot-local virtual time independent of host OS
        // scheduling (a work-stealing pull would let one host thread
        // grab many blocks per timeslice and skew per-slot clocks).
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..slots)
                .map(|slot| {
                    let order = &order;
                    let kernel = &kernel;
                    s.spawn(move || {
                        let mut ends = Vec::new();
                        let mut slot_clock = Clock::starting_at(t0);
                        let mut i = slot;
                        while i < order.len() {
                            let block_id = order[i];
                            i += slots;
                            let mut ctx = BlockCtx {
                                gpu: self,
                                grid,
                                block_id,
                                clock: slot_clock.clone(),
                                scratch: vec![0u8; self.spec().scratchpad_bytes],
                            };
                            kernel(&mut ctx);
                            slot_clock = ctx.clock;
                            ends.push((block_id, slot_clock.now()));
                        }
                        ends
                    })
                })
                .collect();
            for h in handles {
                for (block_id, end) in h.join().expect("threadblock panicked") {
                    block_ends[block_id] = end;
                }
            }
        });

        let end = block_ends.iter().copied().max().unwrap_or(t0);
        KernelResult {
            start,
            end,
            block_ends,
        }
    }

    /// Timing calibration this GPU was built with.
    #[must_use]
    pub fn timings(&self) -> &simtime::Timings {
        self.dma().timings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuSpec;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn gpu() -> Gpu {
        Gpu::new(0, GpuSpec::small_test())
    }

    #[test]
    fn every_block_runs_exactly_once() {
        let gpu = gpu();
        let hits = AtomicU64::new(0);
        let per_block: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        gpu.launch(Grid::new(100, 32), 0, |blk| {
            hits.fetch_add(1, Ordering::Relaxed);
            per_block[blk.block_id()].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert!(per_block.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn kernel_end_is_max_block_end() {
        let gpu = gpu();
        let res = gpu.launch(Grid::new(16, 32), 1000, |blk| {
            blk.advance(1_000 * (blk.block_id() as u64 + 1));
        });
        assert_eq!(res.start, 1000);
        assert_eq!(res.block_ends.len(), 16);
        assert_eq!(res.end, *res.block_ends.iter().max().unwrap());
        assert!(res.elapsed() >= 1_000);
    }

    #[test]
    fn dispatch_order_is_shuffled_but_seeded() {
        let gpu = gpu();
        let record = |seed: u64| {
            let order = parking_lot::Mutex::new(Vec::new());
            // One slot => strictly sequential, records dispatch order.
            let single = Gpu::new(
                0,
                GpuSpec {
                    num_mps: 1,
                    resident_blocks_per_mp: 1,
                    ..GpuSpec::small_test()
                },
            );
            single.launch_seeded(Grid::new(32, 32), 0, seed, |blk| {
                order.lock().push(blk.block_id());
            });
            let _ = &gpu;
            order.into_inner()
        };
        let a = record(42);
        let b = record(42);
        let c = record(7);
        assert_eq!(a, b, "same seed must give the same dispatch order");
        assert_ne!(a, c, "different seeds should shuffle differently");
        assert_ne!(
            a,
            (0..32).collect::<Vec<_>>(),
            "order should not be sequential"
        );
    }

    #[test]
    fn blocks_start_after_launch_overhead() {
        let gpu = gpu();
        let res = gpu.launch(Grid::new(1, 32), 500, |blk| {
            assert!(blk.now() >= 500 + blk.gpu().timings().kernel_launch_ns);
        });
        assert!(res.end >= 500);
    }

    #[test]
    fn warps_cover_all_threads() {
        let gpu = gpu();
        gpu.launch(Grid::new(1, 100), 0, |blk| {
            let warps: Vec<_> = blk.warps().collect();
            assert_eq!(warps.len(), 4); // ceil(100/32)
            let total: usize = warps.iter().map(|w| w.lanes).sum();
            assert_eq!(total, 100);
            assert_eq!(warps[3].lanes, 4);
            assert_eq!(warps[2].first_lane, 64);
        });
    }

    #[test]
    fn scratchpad_is_private_per_block() {
        let gpu = gpu();
        gpu.launch(Grid::new(8, 32), 0, |blk| {
            let id = blk.block_id() as u8;
            blk.scratch()[0] = id;
            blk.sync_threads();
            assert_eq!(blk.scratch()[0], id);
        });
    }

    #[test]
    fn threads_iterate_sequentially() {
        let gpu = gpu();
        gpu.launch(Grid::new(1, 64), 0, |blk| {
            let sum: usize = blk.threads().sum();
            assert_eq!(sum, 64 * 63 / 2);
        });
    }

    #[test]
    #[should_panic(expected = "at least one threadblock")]
    fn empty_grid_panics() {
        gpu().launch(Grid::new(0, 32), 0, |_| {});
    }
}
