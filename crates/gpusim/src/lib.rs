//! A discrete-GPU execution model.
//!
//! This crate stands in for the NVIDIA Fermi GPUs (TESLA C2075) of the
//! GPUfs paper. It reproduces the *execution-model* properties that GPUfs's
//! design responds to (paper §2):
//!
//! * **Threadblock scheduling is non-preemptive and nondeterministic.**
//!   A kernel's threadblocks are dispatched onto multiprocessor (MP) slots
//!   in shuffled order; once running, a block occupies its slot until it
//!   finishes. Blocks are backed by real OS threads, so synchronization
//!   between concurrently running blocks (spinlocks, lock-free structures,
//!   reference counts) is exercised under genuine races.
//! * **Global memory is a shared arena** ([`Gpu::global`]) with an
//!   allocator; per-block **scratchpad** memory models the on-die shared
//!   memory used by the paper's `gread`-into-scratchpad workloads.
//! * **Data movement costs virtual time.** Each GPU owns full-duplex DMA
//!   engines over a modeled PCIe link ([`Gpu::dma`]); pinned host buffers
//!   ([`HostPinned`]) register with a [`simtime::ByteLedger`] so they exert
//!   the host-memory pressure behind Figure 8's disk-bound regime.
//!
//! The simulator does not interpret SIMT instructions. Within a block,
//! application "threads" run as a sequential loop ([`BlockCtx::threads`])
//! for correctness, and compute/memory time is charged explicitly through
//! the block's virtual clock. What runs truly concurrently — and what
//! GPUfs's data structures must survive — are the threadblocks themselves.
//!
//! # Example: launch a kernel that fills an array
//!
//! ```
//! use gpusim::{Gpu, GpuSpec, Grid};
//!
//! let gpu = Gpu::new(0, GpuSpec::small_test());
//! let buf = gpu.global().alloc(1024).unwrap();
//! let result = gpu.launch(Grid::new(4, 32), 0, |blk| {
//!     let chunk = 1024 / blk.grid().blocks;
//!     let off = blk.block_id() * chunk;
//!     let data = vec![blk.block_id() as u8; chunk];
//!     blk.gpu().global().write(buf + off, &data);
//! });
//! assert!(result.end > 0);
//! let mut out = vec![0u8; 1024];
//! gpu.global().read(buf, &mut out);
//! assert_eq!(out[0], 0);
//! assert_eq!(out[1023], 3);
//! ```

mod dma;
mod launch;
mod mem;
mod pinned;
mod spec;

pub use dma::DmaEngines;
pub use launch::{BlockCtx, Grid, KernelResult, WarpCtx};
pub use mem::{DevPtr, GlobalMem, MemError};
pub use pinned::HostPinned;
pub use spec::GpuSpec;

use std::sync::Arc;

use simtime::Timings;

/// Identifier of one GPU in a multi-GPU system.
pub type GpuId = usize;

/// One simulated discrete GPU: spec, global memory, and its PCIe DMA link.
#[derive(Debug)]
pub struct Gpu {
    id: GpuId,
    spec: GpuSpec,
    global: GlobalMem,
    dma: DmaEngines,
}

impl Gpu {
    /// Create a GPU with the platform-default [`Timings`].
    #[must_use]
    pub fn new(id: GpuId, spec: GpuSpec) -> Self {
        Self::with_timings(id, spec, &Timings::default())
    }

    /// Create a GPU whose DMA link is calibrated from `timings`.
    #[must_use]
    pub fn with_timings(id: GpuId, spec: GpuSpec, timings: &Timings) -> Self {
        let global = GlobalMem::new(spec.memory_bytes);
        let dma = DmaEngines::from_timings(timings);
        Self {
            id,
            spec,
            global,
            dma,
        }
    }

    /// This GPU's identifier.
    #[must_use]
    pub fn id(&self) -> GpuId {
        self.id
    }

    /// Hardware description.
    #[must_use]
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// The GPU's global memory.
    #[must_use]
    pub fn global(&self) -> &GlobalMem {
        &self.global
    }

    /// The GPU's PCIe DMA engines.
    #[must_use]
    pub fn dma(&self) -> &DmaEngines {
        &self.dma
    }
}

/// A set of GPUs attached to one host, as in the paper's 4-GPU testbed.
///
/// Each GPU has its own PCIe link (the testbed gives every TESLA its own
/// slot), so multi-GPU scaling is limited by the host file system and RPC
/// daemon rather than by a shared bus — matching Table 3's near-linear
/// scaling.
#[derive(Debug, Default)]
pub struct GpuCluster {
    gpus: Vec<Arc<Gpu>>,
}

impl GpuCluster {
    /// An empty cluster.
    #[must_use]
    pub fn new() -> Self {
        Self { gpus: Vec::new() }
    }

    /// Build a cluster of `n` identical GPUs.
    #[must_use]
    pub fn homogeneous(n: usize, spec: &GpuSpec, timings: &Timings) -> Self {
        let gpus = (0..n)
            .map(|id| Arc::new(Gpu::with_timings(id, spec.clone(), timings)))
            .collect();
        Self { gpus }
    }

    /// Build a cluster from per-GPU `(spec, timings)` pairs — a fleet of
    /// independent devices whose links may differ (a mixed-generation
    /// server, or one GPU on a narrower PCIe slot). Each GPU gets its own
    /// DMA engines calibrated from its own [`Timings`]; ids are assigned
    /// in order.
    #[must_use]
    pub fn heterogeneous(links: &[(GpuSpec, Timings)]) -> Self {
        let gpus = links
            .iter()
            .enumerate()
            .map(|(id, (spec, timings))| Arc::new(Gpu::with_timings(id, spec.clone(), timings)))
            .collect();
        Self { gpus }
    }

    /// The GPUs as a shared-ownership slice (the shape the GPUfs host
    /// daemon consumes).
    #[must_use]
    pub fn gpus(&self) -> &[Arc<Gpu>] {
        &self.gpus
    }

    /// Add a GPU, returning its id.
    pub fn add(&mut self, gpu: Gpu) -> GpuId {
        let id = gpu.id();
        self.gpus.push(Arc::new(gpu));
        id
    }

    /// Number of GPUs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// Whether the cluster has no GPUs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    /// The GPU with identifier `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn gpu(&self, id: GpuId) -> &Arc<Gpu> {
        &self.gpus[id]
    }

    /// Iterate over the GPUs.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Gpu>> {
        self.gpus.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_of_four() {
        let cluster = GpuCluster::homogeneous(4, &GpuSpec::small_test(), &Timings::default());
        assert_eq!(cluster.len(), 4);
        assert!(!cluster.is_empty());
        for (i, gpu) in cluster.iter().enumerate() {
            assert_eq!(gpu.id(), i);
        }
    }

    #[test]
    fn heterogeneous_cluster_keeps_per_gpu_timings() {
        let slow = Timings {
            pcie_mb_s: 2000.0,
            ..Timings::default()
        };
        let cluster = GpuCluster::heterogeneous(&[
            (GpuSpec::small_test(), Timings::default()),
            (GpuSpec::small_test(), slow.clone()),
        ]);
        assert_eq!(cluster.len(), 2);
        assert_eq!(cluster.gpus()[0].timings().pcie_mb_s, 5731.0);
        assert_eq!(cluster.gpus()[1].timings().pcie_mb_s, 2000.0);
    }

    #[test]
    fn add_assigns_ids_from_gpu() {
        let mut cluster = GpuCluster::new();
        let id = cluster.add(Gpu::new(7, GpuSpec::small_test()));
        assert_eq!(id, 7);
        assert_eq!(cluster.gpu(0).id(), 7);
    }
}
