//! Span tracing on the virtual clock: trace contexts, the per-thread
//! scope, and the lock-free span buffers.
//!
//! The design rule that makes tracing time-transparent: **this module
//! never reads a clock**. Every span's `start`/`end` are virtual
//! nanoseconds supplied by the instrumented code from the clock it
//! already holds, and the only global state a disabled tracer touches is
//! one relaxed `AtomicBool` plus an unset thread-local.
//!
//! Scope propagation is thread-local, installed at trace *roots* (the
//! `g*` entry points, the daemon worker adopting an envelope's context,
//! the flusher pass) and read by [`span`] at every instrumented stage in
//! between — so no function signature on the hot path had to change to
//! carry a context argument.

use std::cell::{Cell, RefCell};
use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A trace context: the per-`g*`-call trace id plus the current parent
/// span. `trace == 0` means "no context" (tracing off, or a frame from
/// an un-instrumented peer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id, minted once per `g*` call. Zero = none.
    pub trace: u64,
    /// The span under which new work nests. Zero = none.
    pub span: u64,
}

impl TraceCtx {
    /// The absent context.
    pub const NONE: TraceCtx = TraceCtx { trace: 0, span: 0 };

    /// Whether this is the absent context.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.trace == 0
    }
}

/// One finished span: a node of the causal tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: u64,
    /// This span's id (unique within the tracer).
    pub span: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// Stage name (`"gread"`, `"pread"`, `"net_roundtrip"`, ...).
    pub name: &'static str,
    /// Virtual start, in nanoseconds.
    pub start: u64,
    /// Virtual end, in nanoseconds.
    pub end: u64,
    /// Numeric attributes (`("bytes", n)`, `("chunk", j)`, ...).
    pub attrs: Vec<(&'static str, u64)>,
}

const N_SHARDS: usize = 16;

struct Node {
    rec: SpanRecord,
    next: *mut Node,
}

/// A lock-free push list (Treiber stack) of finished spans.
struct Shard {
    head: AtomicPtr<Node>,
}

impl Shard {
    fn push(&self, rec: SpanRecord) {
        let node = Box::into_raw(Box::new(Node {
            rec,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: `node` came from Box::into_raw above and is not yet
            // shared — it is published only by the successful CAS below.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(cur) => head = cur,
            }
        }
    }

    fn drain(&self, out: &mut Vec<SpanRecord>) {
        let mut p = self.head.swap(ptr::null_mut(), Ordering::AcqRel);
        while !p.is_null() {
            // SAFETY: the swap above took sole ownership of the whole
            // list; every node in it was created by Box::into_raw in
            // `push` and is reachable exactly once.
            let node = unsafe { Box::from_raw(p) };
            p = node.next;
            out.push(node.rec);
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.drain(&mut Vec::new());
    }
}

struct TracerInner {
    enabled: AtomicBool,
    /// Id mint for traces and spans (shared namespace; starts at 1 so 0
    /// stays "none").
    next_id: AtomicU64,
    shards: [Shard; N_SHARDS],
}

impl TracerInner {
    fn mint(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn push(&self, rec: SpanRecord) {
        self.shards[shard_of()].push(rec);
    }
}

/// Round-robin shard assignment per thread, so concurrent workers never
/// contend on one list head.
fn shard_of() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static MINE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    MINE.with(|m| {
        if m.get() == usize::MAX {
            m.set(NEXT.fetch_add(1, Ordering::Relaxed) % N_SHARDS);
        }
        m.get()
    })
}

/// The span sink: owned by a `GpufsHost`, shared (cloned) into mounts,
/// daemon workers, and the flusher. Off by default; enabling it changes
/// nothing about the simulation's virtual time (see the module docs).
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// A fresh, disabled tracer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(false),
                next_id: AtomicU64::new(1),
                shards: std::array::from_fn(|_| Shard {
                    head: AtomicPtr::new(ptr::null_mut()),
                }),
            }),
        }
    }

    /// Turn span collection on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans are being collected.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Open a root span: mints a fresh trace id and installs this thread's
    /// scope so nested [`span`] calls (and RPC envelopes capturing
    /// [`current`]) attach to it. Inert when disabled.
    pub fn root(&self, name: &'static str) -> RootSpan {
        if !self.enabled() {
            return RootSpan { state: None };
        }
        let trace = self.inner.mint();
        let span = self.inner.mint();
        let prior = SCOPE.replace(Some(Scope {
            tracer: Arc::clone(&self.inner),
            trace,
            parents: vec![span],
        }));
        RootSpan {
            state: Some(RootState {
                tracer: Arc::clone(&self.inner),
                name,
                trace,
                span,
                prior,
            }),
        }
    }

    /// Adopt a context carried by an RPC envelope or a wire frame:
    /// installs this thread's scope so the serving side's spans nest
    /// under the caller's. Inert when disabled or the context is absent.
    pub fn adopt(&self, ctx: TraceCtx) -> ScopeGuard {
        if !self.enabled() || ctx.is_none() {
            return ScopeGuard { prior: None };
        }
        let prior = SCOPE.replace(Some(Scope {
            tracer: Arc::clone(&self.inner),
            trace: ctx.trace,
            parents: vec![ctx.span],
        }));
        ScopeGuard { prior: Some(prior) }
    }

    /// Drain every finished span, sorted by `(trace, start, span)`.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            shard.drain(&mut out);
        }
        out.sort_by_key(|r| (r.trace, r.start, r.span));
        out
    }
}

struct Scope {
    tracer: Arc<TracerInner>,
    trace: u64,
    parents: Vec<u64>,
}

thread_local! {
    static SCOPE: RefCell<Option<Scope>> = const { RefCell::new(None) };
}

/// The calling thread's current context — what an RPC envelope should
/// carry. [`TraceCtx::NONE`] when tracing is off or no root is open.
#[must_use]
pub fn current() -> TraceCtx {
    SCOPE.with(|s| {
        s.borrow().as_ref().map_or(TraceCtx::NONE, |sc| TraceCtx {
            trace: sc.trace,
            span: sc.parents.last().copied().unwrap_or(0),
        })
    })
}

/// Open a child span under the current scope. Inert (and free beyond the
/// thread-local check) when no scope is installed.
pub fn span(name: &'static str) -> Span {
    SCOPE.with(|s| {
        let mut b = s.borrow_mut();
        let Some(sc) = b.as_mut() else {
            return Span { state: None };
        };
        let id = sc.tracer.mint();
        let parent = sc.parents.last().copied().unwrap_or(0);
        let state = SpanState {
            tracer: Arc::clone(&sc.tracer),
            name,
            trace: sc.trace,
            span: id,
            parent,
        };
        sc.parents.push(id);
        Span { state: Some(state) }
    })
}

/// Re-parent the current scope onto a context decoded from a wire frame
/// (decode-side attribution on the storage server). Uses the already
/// installed tracer; inert when the context is absent or no scope
/// exists on this thread.
pub fn adopt_remote(ctx: TraceCtx) -> ScopeGuard {
    if ctx.is_none() {
        return ScopeGuard { prior: None };
    }
    SCOPE.with(|s| {
        let tracer = match s.borrow().as_ref() {
            Some(sc) => Arc::clone(&sc.tracer),
            None => return ScopeGuard { prior: None },
        };
        let prior = s.replace(Some(Scope {
            tracer,
            trace: ctx.trace,
            parents: vec![ctx.span],
        }));
        ScopeGuard { prior: Some(prior) }
    })
}

struct RootState {
    tracer: Arc<TracerInner>,
    name: &'static str,
    trace: u64,
    span: u64,
    prior: Option<Scope>,
}

/// Guard for a root span. Must be `finish`ed with the caller's virtual
/// start/end times to emit; dropping it unfinished restores the prior
/// scope and records nothing.
#[must_use]
pub struct RootSpan {
    state: Option<RootState>,
}

impl RootSpan {
    /// The context this root installed ([`TraceCtx::NONE`] when inert).
    #[must_use]
    pub fn ctx(&self) -> TraceCtx {
        self.state.as_ref().map_or(TraceCtx::NONE, |st| TraceCtx {
            trace: st.trace,
            span: st.span,
        })
    }

    /// Emit the root record with explicit virtual times and attributes,
    /// restoring the thread's prior scope.
    pub fn finish_attrs(mut self, start: u64, end: u64, attrs: &[(&'static str, u64)]) {
        if let Some(mut st) = self.state.take() {
            SCOPE.with(|s| *s.borrow_mut() = st.prior.take());
            st.tracer.push(SpanRecord {
                trace: st.trace,
                span: st.span,
                parent: 0,
                name: st.name,
                start,
                end,
                attrs: attrs.to_vec(),
            });
        }
    }

    /// [`RootSpan::finish_attrs`] without attributes.
    pub fn finish(self, start: u64, end: u64) {
        self.finish_attrs(start, end, &[]);
    }
}

impl Drop for RootSpan {
    fn drop(&mut self) {
        if let Some(mut st) = self.state.take() {
            SCOPE.with(|s| *s.borrow_mut() = st.prior.take());
        }
    }
}

/// Guard restoring the thread's prior scope when an adopted context goes
/// out of scope.
#[must_use]
pub struct ScopeGuard {
    prior: Option<Option<Scope>>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(prior) = self.prior.take() {
            SCOPE.with(|s| *s.borrow_mut() = prior);
        }
    }
}

struct SpanState {
    tracer: Arc<TracerInner>,
    name: &'static str,
    trace: u64,
    span: u64,
    parent: u64,
}

/// Guard for a child span. `finish` it with the caller's virtual times
/// to emit; dropping it unfinished just unwinds the parent stack.
#[must_use]
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// Whether a scope was present when this span opened.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.state.is_some()
    }

    fn unwind(id: u64) {
        SCOPE.with(|s| {
            if let Some(sc) = s.borrow_mut().as_mut() {
                if sc.parents.last() == Some(&id) {
                    sc.parents.pop();
                }
            }
        });
    }

    /// Emit the span with explicit virtual times and attributes.
    pub fn finish_attrs(mut self, start: u64, end: u64, attrs: &[(&'static str, u64)]) {
        if let Some(st) = self.state.take() {
            Self::unwind(st.span);
            st.tracer.push(SpanRecord {
                trace: st.trace,
                span: st.span,
                parent: st.parent,
                name: st.name,
                start,
                end,
                attrs: attrs.to_vec(),
            });
        }
    }

    /// [`Span::finish_attrs`] without attributes.
    pub fn finish(self, start: u64, end: u64) {
        self.finish_attrs(start, end, &[]);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(st) = self.state.take() {
            Self::unwind(st.span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_fully_inert() {
        let t = Tracer::new();
        let root = t.root("gread");
        assert_eq!(root.ctx(), TraceCtx::NONE);
        assert_eq!(current(), TraceCtx::NONE);
        let sp = span("child");
        assert!(!sp.is_active());
        sp.finish(1, 2);
        root.finish(0, 3);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn spans_nest_and_records_form_a_tree() {
        let t = Tracer::new();
        t.set_enabled(true);
        let root = t.root("gread");
        let rctx = root.ctx();
        assert_eq!(current().trace, rctx.trace);
        let a = span("pin_miss");
        let actx = current();
        assert_eq!(actx.trace, rctx.trace);
        assert_ne!(actx.span, rctx.span, "child is the new parent");
        let b = span("rpc");
        b.finish_attrs(10, 20, &[("pages", 4)]);
        a.finish(5, 25);
        assert_eq!(current(), rctx, "stack unwound to the root");
        root.finish(0, 30);
        assert_eq!(current(), TraceCtx::NONE);

        let spans = t.snapshot();
        assert_eq!(spans.len(), 3);
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).unwrap();
        let (g, pm, rpc) = (by_name("gread"), by_name("pin_miss"), by_name("rpc"));
        assert_eq!(g.parent, 0);
        assert_eq!(pm.parent, g.span);
        assert_eq!(rpc.parent, pm.span);
        assert!(spans.iter().all(|s| s.trace == rctx.trace));
        assert_eq!(rpc.attrs, vec![("pages", 4)]);
        assert!(t.snapshot().is_empty(), "snapshot drains");
    }

    #[test]
    fn adopt_carries_a_context_across_threads() {
        let t = Tracer::new();
        t.set_enabled(true);
        let root = t.root("gwrite");
        let ctx = current();
        let t2 = t.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                let _g = t2.adopt(ctx);
                let sp = span("serve");
                sp.finish(100, 200);
            });
        });
        root.finish(0, 300);
        let spans = t.snapshot();
        assert_eq!(spans.len(), 2);
        let serve = spans.iter().find(|s| s.name == "serve").unwrap();
        assert_eq!(serve.parent, ctx.span);
        assert_eq!(serve.trace, ctx.trace);
    }

    #[test]
    fn adopt_remote_reparents_within_a_scope() {
        let t = Tracer::new();
        t.set_enabled(true);
        let root = t.root("proxy");
        let outer = current();
        {
            let _g = adopt_remote(TraceCtx {
                trace: outer.trace,
                span: 999,
            });
            let sp = span("server_pread");
            sp.finish(1, 2);
        }
        assert_eq!(current(), outer, "scope restored");
        root.finish(0, 5);
        let spans = t.snapshot();
        let srv = spans.iter().find(|s| s.name == "server_pread").unwrap();
        assert_eq!(srv.parent, 999);
        // With no scope installed, adopt_remote is inert.
        let _g = adopt_remote(outer);
        assert_eq!(current(), TraceCtx::NONE);
    }

    #[test]
    fn dropped_guards_unwind_without_emitting() {
        let t = Tracer::new();
        t.set_enabled(true);
        let root = t.root("gread");
        let ctx = root.ctx();
        {
            let _sp = span("abandoned");
        }
        assert_eq!(current(), ctx, "drop unwound the stack");
        drop(root);
        assert_eq!(current(), TraceCtx::NONE);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn concurrent_pushes_all_land() {
        let t = Tracer::new();
        t.set_enabled(true);
        std::thread::scope(|s| {
            for k in 0..8u64 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..100u64 {
                        let root = t.root("w");
                        root.finish(k * 1000 + i, k * 1000 + i + 1);
                    }
                });
            }
        });
        assert_eq!(t.snapshot().len(), 800);
    }
}
