//! The metrics registry: named counters and histograms under
//! hierarchical labels, with one cheap snapshot.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::{Counter, Histogram};

/// Hierarchical metric labels. Every field is optional: an aggregate
/// sheet carries none, a per-GPU sheet carries `gpu`, a daemon leaf
/// carries `gpu` + `tenant`, a fleets-of-fleets sheet adds `host`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Labels {
    /// Host index within a fleet of fleets.
    pub host: Option<u32>,
    /// GPU index within a host.
    pub gpu: Option<u32>,
    /// Tenant class.
    pub tenant: Option<u32>,
    /// RPC channel index.
    pub channel: Option<u32>,
}

impl Labels {
    /// No labels: the aggregate scope.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Labels for one GPU.
    #[must_use]
    pub fn gpu(gpu: u32) -> Self {
        Self {
            gpu: Some(gpu),
            ..Self::default()
        }
    }

    /// Add a host index.
    #[must_use]
    pub fn with_host(mut self, host: u32) -> Self {
        self.host = Some(host);
        self
    }

    /// Add a tenant class.
    #[must_use]
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Add an RPC channel index.
    #[must_use]
    pub fn with_channel(mut self, channel: u32) -> Self {
        self.channel = Some(channel);
        self
    }

    /// Render as `host=0,gpu=1,tenant=2,channel=3` (present fields only,
    /// always in hierarchy order — the stable snapshot key).
    #[must_use]
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        if let Some(h) = self.host {
            parts.push(format!("host={h}"));
        }
        if let Some(g) = self.gpu {
            parts.push(format!("gpu={g}"));
        }
        if let Some(t) = self.tenant {
            parts.push(format!("tenant={t}"));
        }
        if let Some(c) = self.channel {
            parts.push(format!("channel={c}"));
        }
        parts.join(",")
    }
}

/// A shared handle to a registered histogram.
#[derive(Clone, Debug)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Record one virtual-time sample.
    pub fn record(&self, v: u64) {
        self.0.lock().record(v);
    }

    /// A point-in-time copy of the digest (p50/p99/p999 via
    /// [`Histogram::quantile`]).
    #[must_use]
    pub fn digest(&self) -> Histogram {
        self.0.lock().clone()
    }
}

/// One typed home for a subsystem's metrics. Counters registered here
/// are the same `Arc`-backed cells the owning structs hold — the
/// registry adds names and labels, it never forks the value.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<(&'static str, Labels, Counter)>>,
    hists: Mutex<Vec<(&'static str, Labels, HistogramHandle)>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Mint and register a fresh leaf counter.
    pub fn counter(&self, name: &'static str, labels: Labels) -> Counter {
        let c = Counter::new();
        self.register(name, labels, &c);
        c
    }

    /// Register an existing counter (leaf or view) under `name`/`labels`.
    pub fn register(&self, name: &'static str, labels: Labels, counter: &Counter) {
        self.counters.lock().push((name, labels, counter.clone()));
    }

    /// Mint and register a histogram; returns the recording handle.
    pub fn histogram(&self, name: &'static str, labels: Labels) -> HistogramHandle {
        let h = HistogramHandle(Arc::new(Mutex::new(Histogram::new())));
        self.hists.lock().push((name, labels, h.clone()));
        h
    }

    /// Every registered counter as a `(name{labels}, value)` row, in
    /// registration order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .iter()
            .map(|(name, labels, c)| (keyed(name, labels), c.get()))
            .collect()
    }

    /// Every registered histogram as a `(name{labels}, digest)` row.
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.hists
            .lock()
            .iter()
            .map(|(name, labels, h)| (keyed(name, labels), h.digest()))
            .collect()
    }
}

fn keyed(name: &str, labels: &Labels) -> String {
    let l = labels.render();
    if l.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{l}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_keys_and_values() {
        let r = Registry::new();
        let a = r.counter("requests", Labels::gpu(1).with_tenant(2));
        let agg = Counter::sum([&a]);
        r.register("requests", Labels::none(), &agg);
        a.add(7);
        let snap = r.snapshot();
        assert_eq!(
            snap,
            vec![
                ("requests{gpu=1,tenant=2}".to_owned(), 7),
                ("requests".to_owned(), 7),
            ]
        );
    }

    #[test]
    fn histogram_handles_share_state() {
        let r = Registry::new();
        let h = r.histogram("fault_ns", Labels::none().with_host(3));
        h.record(100);
        h.record(200);
        let rows = r.histograms();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "fault_ns{host=3}");
        assert_eq!(rows[0].1.count(), 2);
        assert_eq!(h.digest().max(), 200);
    }

    #[test]
    fn labels_render_in_hierarchy_order() {
        let l = Labels::gpu(4).with_channel(1).with_host(0).with_tenant(9);
        assert_eq!(l.render(), "host=0,gpu=4,tenant=9,channel=1");
        assert_eq!(Labels::none().render(), "");
    }
}
