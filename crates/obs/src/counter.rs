//! The registry's counter cell: a shared leaf, or a read-only sum view.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A relaxed atomic event counter with one twist over the plain
/// `simtime::Counter`: it is a cheap *handle* (clonable, `Arc`-backed),
/// and an aggregate sheet can be built as a [`Counter::sum`] view over
/// leaf cells instead of a separately-written copy.
///
/// That single property is the registry's anti-drift guarantee: the
/// daemon's per-`(gpu, tenant)` leaf sheet is the only thing ever
/// written, and the aggregate / per-GPU / per-tenant / per-host sheets
/// all *read through* to the same cells. A counter bumped on a leaf is
/// visible in every view by construction — there is no second write to
/// forget.
#[derive(Clone, Debug, Default)]
pub struct Counter(Inner);

#[derive(Clone, Debug)]
enum Inner {
    /// A writable cell.
    Leaf(Arc<AtomicU64>),
    /// A read-only view summing many cells.
    Sum(Arc<[Arc<AtomicU64>]>),
}

impl Default for Inner {
    fn default() -> Self {
        Inner::Leaf(Arc::new(AtomicU64::new(0)))
    }
}

impl Counter {
    /// A fresh leaf cell at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A read-only view reporting the sum of `parts` (leaves contribute
    /// their cell; sum views contribute every cell they cover).
    #[must_use]
    pub fn sum<'a>(parts: impl IntoIterator<Item = &'a Counter>) -> Self {
        let mut cells = Vec::new();
        for part in parts {
            match &part.0 {
                Inner::Leaf(cell) => cells.push(Arc::clone(cell)),
                Inner::Sum(inner) => cells.extend(inner.iter().cloned()),
            }
        }
        Counter(Inner::Sum(cells.into()))
    }

    /// Whether this counter is a writable leaf (false: a sum view).
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self.0, Inner::Leaf(_))
    }

    fn leaf(&self) -> &AtomicU64 {
        match &self.0 {
            Inner::Leaf(cell) => cell,
            // A write to an aggregate view would silently fork the books
            // the sum-view design exists to keep joined; fail loudly.
            Inner::Sum(_) => panic!("write to an aggregate counter view"),
        }
    }

    /// Increment by one. Panics on a sum view: aggregates are read-only.
    pub fn incr(&self) {
        self.leaf().fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`. Panics on a sum view: aggregates are read-only.
    pub fn add(&self, n: u64) {
        self.leaf().fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (a sum view reads every covered cell).
    #[must_use]
    pub fn get(&self) -> u64 {
        match &self.0 {
            Inner::Leaf(cell) => cell.load(Ordering::Relaxed),
            Inner::Sum(cells) => cells.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
        }
    }

    /// Reset to zero, returning the previous value (a sum view resets
    /// every covered cell).
    pub fn take(&self) -> u64 {
        match &self.0 {
            Inner::Leaf(cell) => cell.swap(0, Ordering::Relaxed),
            Inner::Sum(cells) => cells.iter().map(|c| c.swap(0, Ordering::Relaxed)).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaves_and_views_share_cells() {
        let a = Counter::new();
        let b = Counter::new();
        let total = Counter::sum([&a, &b]);
        a.incr();
        b.add(4);
        assert_eq!(total.get(), 5);
        // A clone of a leaf is the same cell, and a sum over a sum
        // flattens to the covered cells.
        let a2 = a.clone();
        a2.add(10);
        assert_eq!(a.get(), 11);
        let nested = Counter::sum([&total, &a]);
        assert_eq!(nested.get(), 15 + 11);
        assert!(a.is_leaf() && !total.is_leaf());
    }

    #[test]
    fn take_drains_through_views() {
        let a = Counter::new();
        let b = Counter::new();
        let total = Counter::sum([&a, &b]);
        a.add(3);
        b.add(7);
        assert_eq!(total.take(), 10);
        assert_eq!(a.get() + b.get() + total.get(), 0);
    }

    #[test]
    #[should_panic(expected = "aggregate counter view")]
    fn writes_to_views_panic() {
        let a = Counter::new();
        Counter::sum([&a]).incr();
    }
}
