//! Exporters: Chrome trace-event JSON (Perfetto-loadable) and
//! flamegraph-ready folded stacks.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::SpanRecord;

/// Render spans as Chrome trace-event JSON — the `{"traceEvents": [...]}`
/// object format, loadable in Perfetto or `chrome://tracing`.
///
/// Each span becomes one complete (`"ph": "X"`) event. Virtual
/// nanoseconds map onto the format's microsecond timestamps with three
/// decimal places, so nothing is rounded away. Spans of one trace share
/// a `tid` (one row per fault in the UI); `args` carries the span ids
/// and every recorded attribute.
#[must_use]
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dur = s.end.saturating_sub(s.start);
        let _ = write!(
            out,
            "{{\"name\":{:?},\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\
             \"pid\":1,\"tid\":{},\"args\":{{\"span\":{},\"parent\":{}",
            s.name,
            s.start / 1000,
            s.start % 1000,
            dur / 1000,
            dur % 1000,
            s.trace,
            s.span,
            s.parent,
        );
        for (k, v) in &s.attrs {
            let _ = write!(out, ",{k:?}:{v}");
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Render spans as folded stacks (`root;child;leaf self_ns` lines,
/// deterministically sorted) — the input format of flamegraph tools.
///
/// Each span contributes its *self* time: duration minus the summed
/// durations of its direct children, clamped at zero (concurrent
/// children — pipelined pread/DMA chunks — can legitimately overlap
/// their parent by more than its span).
#[must_use]
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span, s)).collect();
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if s.parent != 0 {
            *child_ns.entry(s.parent).or_default() += s.end.saturating_sub(s.start);
        }
    }
    let mut folded: HashMap<String, u64> = HashMap::new();
    for s in spans {
        let mut names = vec![s.name];
        let mut p = s.parent;
        while p != 0 {
            match by_id.get(&p) {
                Some(up) => {
                    names.push(up.name);
                    p = up.parent;
                }
                None => break,
            }
        }
        names.reverse();
        let dur = s.end.saturating_sub(s.start);
        let own = dur.saturating_sub(child_ns.get(&s.span).copied().unwrap_or(0));
        *folded.entry(names.join(";")).or_default() += own;
    }
    let mut rows: Vec<(String, u64)> = folded.into_iter().collect();
    rows.sort();
    let mut out = String::new();
    for (stack, ns) in rows {
        let _ = writeln!(out, "{stack} {ns}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(span: u64, parent: u64, name: &'static str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            trace: 1,
            span,
            parent,
            name,
            start,
            end,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn chrome_json_shape_and_precision() {
        let mut root = rec(1, 0, "gread", 0, 4500);
        root.attrs.push(("bytes", 65536));
        let spans = vec![root, rec(2, 1, "pread", 1000, 2500)];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"gread\""));
        assert!(json.contains("\"ts\":0.000,\"dur\":4.500"));
        assert!(json.contains("\"ts\":1.000,\"dur\":1.500"));
        assert!(json.contains("\"bytes\":65536"));
        assert!(json.contains("\"parent\":1"));
    }

    #[test]
    fn folded_stacks_compute_self_time() {
        let spans = vec![
            rec(1, 0, "gread", 0, 100),
            rec(2, 1, "pread", 10, 40),
            rec(3, 1, "dma", 40, 80),
            rec(4, 0, "gread", 200, 250),
        ];
        let folded = folded_stacks(&spans);
        let lines: Vec<&str> = folded.lines().collect();
        // gread self = (100 - 70) + 50; children keep their full time.
        assert_eq!(lines, vec!["gread 80", "gread;dma 40", "gread;pread 30"]);
    }

    #[test]
    fn overlapping_children_clamp_at_zero() {
        let spans = vec![
            rec(1, 0, "rpc", 0, 50),
            rec(2, 1, "pread", 0, 40),
            rec(3, 1, "dma", 20, 60),
        ];
        let folded = folded_stacks(&spans);
        assert!(folded.contains("rpc 0\n"), "folded:\n{folded}");
    }
}
