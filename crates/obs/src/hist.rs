//! Virtual-time latency histogram: HDR-style log-octave buckets.

/// Number of linear subbuckets per power-of-two octave (8 keeps the
/// relative quantile error under ~12%).
const HIST_SUB_BITS: u32 = 3;
const HIST_SUB: usize = 1 << HIST_SUB_BITS;

/// A latency histogram with logarithmic octaves split into linear
/// subbuckets — constant memory, bounded relative error, cheap merge.
///
/// This is the registry's one digest type: the traffic harness's
/// per-tenant tail reports and the trace bins' stage breakdowns all
/// build on it, so p50/p99/p999 mean the same thing everywhere.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; (64 - HIST_SUB_BITS as usize) * HIST_SUB],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        let v = v.max(1);
        let octave = 63 - v.leading_zeros();
        if octave < HIST_SUB_BITS {
            return v as usize; // exact below 2^SUB_BITS
        }
        let sub = ((v >> (octave - HIST_SUB_BITS)) & (HIST_SUB as u64 - 1)) as usize;
        (octave - HIST_SUB_BITS + 1) as usize * HIST_SUB + sub
    }

    /// Upper edge of `bucket` (quantiles report this conservative bound).
    fn value_of(bucket: usize) -> u64 {
        if bucket < HIST_SUB {
            return bucket as u64;
        }
        let octave = (bucket / HIST_SUB) as u32 + HIST_SUB_BITS - 1;
        let sub = (bucket % HIST_SUB) as u64;
        (1u64 << octave) + (sub + 1) * (1u64 << (octave - HIST_SUB_BITS)) - 1
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.5` = p50), as the upper edge of the bucket
    /// holding the `ceil(q * total)`-th sample; exact max for `q = 1`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_of(b).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bound_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((500..=625).contains(&p50), "p50 = {p50}");
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(h.quantile(1.0), 1000);

        let mut other = Histogram::new();
        other.record(4000);
        h.merge(&other);
        assert_eq!(h.count(), 1001);
        assert_eq!(h.max(), 4000);
        assert!(h.quantile(1.0) == 4000);
    }

    #[test]
    fn small_values_are_exact_and_mean_tracks() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.25), 1, "values below 2^3 are exact");
        assert!((h.mean() - 1.5).abs() < 1e-9);
    }
}
