//! Observability for the GPUfs reproduction: span tracing and unified
//! metrics on the **virtual clock**.
//!
//! The simulation's figures are explanations of time — where a GPU file
//! fault spends its nanoseconds across pin, RPC, daemon pread, DMA, and
//! the network hop. This crate turns those stages into data:
//!
//! * **Span tracing** ([`Tracer`], [`SpanRecord`]) — a trace id is
//!   minted per `g*` call and carried through the RPC envelopes, the
//!   daemon pipeline, the remote wire protocol, and the flusher. Each
//!   stage emits `(span, parent, start_vns, end_vns, attrs)` into
//!   per-thread lock-free buffers drained at [`Tracer::snapshot`], so a
//!   single fault renders as a causal tree: `gread → pin_miss →
//!   rpc:ReadPages → [pread ∥ dma] → net_roundtrip → server:ReadPages`.
//! * **Metrics registry** ([`Registry`], [`Counter`], [`Histogram`]) —
//!   one typed home for the counter sheets and virtual-time latency
//!   histograms, with hierarchical [`Labels`] (host/gpu/tenant/channel)
//!   and a cheap snapshot. Aggregate sheets are *sum views* over leaf
//!   cells ([`Counter::sum`]), so per-tenant/per-GPU/per-host totals
//!   cannot drift from the aggregate: there is exactly one write path.
//! * **Exporters** ([`chrome_trace_json`], [`folded_stacks`]) — Chrome
//!   trace-event JSON (loads in Perfetto / `chrome://tracing`) and a
//!   flamegraph-ready folded-stack dump.
//!
//! ## Time transparency
//!
//! Tracing is compiled in but **off by default**, and it is structurally
//! incapable of perturbing the simulation: every span's start and end
//! are virtual timestamps *supplied by the caller* — this crate never
//! reads or advances any clock, takes no locks on the hot path (span
//! buffers are lock-free push lists), and when disabled every call is a
//! branch on an unset thread-local. The `trace_equiv` integration test
//! asserts bit-identical virtual finish times and counter sheets with
//! tracing on vs off.

mod counter;
mod export;
mod hist;
mod registry;
mod trace;

pub use counter::Counter;
pub use export::{chrome_trace_json, folded_stacks};
pub use hist::Histogram;
pub use registry::{HistogramHandle, Labels, Registry};
pub use trace::{
    adopt_remote, current, span, RootSpan, ScopeGuard, Span, SpanRecord, TraceCtx, Tracer,
};
