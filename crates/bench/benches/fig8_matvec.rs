//! Figure 8: matrix–vector product throughput for large matrices.
//!
//! Input sizes sweep from comfortably-cached to "exceeds GPU buffer
//! cache" to "exceeds host page cache" (disk bound). Three series, as in
//! the paper: GPUfs, CUDA naïve (4-chunk double buffering), and CUDA
//! optimized (fixed 70 MB chunks). The paper's observations to look for:
//!
//! * GPUfs at or above both CUDA versions throughout (5%–4x);
//! * no slowdown when the input exceeds the GPU buffer cache (FIFO
//!   replacement suits streaming);
//! * in the disk-bound regime (last point) GPUfs wins by ~4x because the
//!   pinned staging buffers of the CUDA versions crowd out the host page
//!   cache.

use gpufs::GpufsConfig;
use gpufs_bench::{banner, rig, secs, SCALE};
use simtime::Timings;
use workloads::corpus::gen_matvec_input;
use workloads::matvec::{matvec_cuda, matvec_gpufs};

/// Paper matrix sizes in MB: 280, 560, 2800, 5600, 11200 (scaled).
const SIZES_MB: &[u64] = &[280, 560, 2800, 5600, 11200];
/// Paper vector: 128K elements (scaled).
const COLS: u64 = (128 << 10) / SCALE;
/// Paper GPU buffer cache: 2 GB (scaled); pages stay at the paper's true
/// 2 MB — per-transfer setup costs are not scaled, so scaling the page
/// size would distort DMA amortization.
const GPU_CACHE: usize = (2 << 30) / SCALE as usize;
const PAGE: usize = 2 << 20;
/// Host memory: the largest input (700 MB scaled) barely fits, as the
/// paper's 11.2 GB input "barely fits into the CPU's RAM". The CUDA
/// versions' pinned staging buffers push *them* below the threshold.
const HOST_MEM: u64 = (118 << 30) / (10 * SCALE);

fn main() {
    banner(
        "Figure 8 — matrix-vector product throughput vs matrix size",
        &format!(
            "vector = {COLS} elements, GPU cache = {} MB / {} KB pages, host mem = {} MB\n\
             (all scaled 1/{SCALE} from the paper). paper reference: GPUfs ~3000 MB/s flat;\n\
             CUDA naive ~2000-2900; disk-bound last point: GPUfs ~4x both CUDA versions",
            GPU_CACHE >> 20,
            PAGE >> 10,
            HOST_MEM >> 20
        ),
    );
    println!(
        "{:>14} {:>14} {:>18} {:>20} {:>12}",
        "matrix (MB)", "GPUfs (MB/s)", "CUDA naive (MB/s)", "CUDA optim. (MB/s)", "GPUfs win"
    );
    for &mb in SIZES_MB {
        let matrix_bytes = (mb << 20) / SCALE;
        let rows = matrix_bytes / (COLS * 4);
        let t = Timings::default();

        // GPUfs run. The host cache is warmed by reading the input once
        // (as any pipeline producing the file would); inputs larger than
        // host memory only stay partially resident — the paper's
        // disk-bound regime.
        let r = rig(1, GPU_CACHE + (64 << 20), HOST_MEM, &t);
        gen_matvec_input(&r.fs, "/A", "/x", rows, COLS, 21);
        let _ = r.fs.read_whole("/A", 0).unwrap();
        r.fs.reset_device_time();
        let mount = r.host.mount(0, GpufsConfig::new(PAGE, GPU_CACHE)).unwrap();
        let g = matvec_gpufs(&mount, &r.gpus[0], "/A", "/x", "/y", rows, COLS).unwrap();
        drop(r);

        // CUDA naive (4 chunks).
        let r = rig(1, GPU_CACHE + (64 << 20), HOST_MEM, &t);
        gen_matvec_input(&r.fs, "/A", "/x", rows, COLS, 21);
        let _ = r.fs.read_whole("/A", 0).unwrap();
        r.fs.reset_device_time();
        let naive = matvec_cuda(&r.fs, &r.gpus[0], "/A", "/x", rows, COLS, None, 2).unwrap();
        drop(r);

        // CUDA optimized (fixed 70 MB chunks, scaled).
        let r = rig(1, GPU_CACHE + (64 << 20), HOST_MEM, &t);
        gen_matvec_input(&r.fs, "/A", "/x", rows, COLS, 21);
        let _ = r.fs.read_whole("/A", 0).unwrap();
        r.fs.reset_device_time();
        let opt = matvec_cuda(
            &r.fs,
            &r.gpus[0],
            "/A",
            "/x",
            rows,
            COLS,
            Some((70 << 20) / SCALE),
            16, // the paper's 16 independently processed chunks in flight
        )
        .unwrap();
        drop(r);

        let best_cuda = naive.throughput_mb_s.max(opt.throughput_mb_s);
        println!(
            "{:>14} {:>14.0} {:>18.0} {:>20.0} {:>11.2}x",
            mb,
            g.throughput_mb_s,
            naive.throughput_mb_s,
            opt.throughput_mb_s,
            g.throughput_mb_s / best_cuda,
        );
        let _ = secs(g.elapsed);
    }
}
