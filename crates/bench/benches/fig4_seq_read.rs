//! Figure 4: sequential read throughput as a function of page size.
//!
//! A 1.8 GB file (scaled) is read three ways with a warm host page cache:
//! (a) from the GPU kernel via GPUfs (`gmmap` of consecutive pages) — at
//! readahead window 1 (the paper's strictly on-demand paging) and
//! window 8 (batched multi-page RPC), (b) a hand-written CUDA pipeline
//! moving chunks the size of a GPUfs page through pinned staging buffers,
//! and (c) one whole-file read plus one (pageable-memory) transfer. The
//! red reference line is the maximum achievable PCIe bandwidth,
//! 5731 MB/s.

use std::sync::Arc;

use gpufs_bench::{banner, fig4_gpufs_phase, human_size, rig, secs, PAGE_SIZES, SCALE};
use gpusim::HostPinned;
use hostfs::OpenFlags;
use simtime::{bw_time_ns, throughput_mb_s, Clock, Timings};

/// Paper file: 1.8 GB.
const FILE_BYTES: u64 = (1800 << 20) / SCALE;
const FILE_PATH: &str = "/seq.bin";

fn cuda_pipeline_phase(page: usize) -> f64 {
    let t = Timings::default();
    let r = rig(1, 64 << 20, 8 << 30, &t);
    r.fs.create_synthetic(FILE_PATH, FILE_BYTES, 4).unwrap();
    let _ = r.fs.read_whole(FILE_PATH, 0).unwrap();
    r.fs.reset_device_time();

    let mut cpu = Clock::new();
    let (fd, topen) = r.fs.open(FILE_PATH, OpenFlags::read_only(), 0).unwrap();
    cpu.wait_until(topen);
    // Two pinned staging buffers: pread chunk, enqueue async DMA, move on.
    let mut staging = [
        HostPinned::new_accounted(page, Arc::clone(r.fs.mem())),
        HostPinned::new_accounted(page, Arc::clone(r.fs.mem())),
    ];
    let mut end = cpu.now();
    let mut off = 0u64;
    let mut i = 0usize;
    while off < FILE_BYTES {
        let n = (page as u64).min(FILE_BYTES - off) as usize;
        let (got, tr) =
            r.fs.pread(fd, off, &mut staging[i].as_mut()[..n], cpu.now())
                .unwrap();
        cpu.wait_until(tr);
        let xfer = r.gpus[0].dma().reserve_h2d(cpu.now(), got as u64);
        end = end.max(xfer.end);
        off += got as u64;
        i ^= 1;
    }
    r.fs.close(fd).unwrap();
    throughput_mb_s(FILE_BYTES, end)
}

fn whole_file_phase() -> f64 {
    let t = Timings::default();
    let r = rig(1, 64 << 20, 8 << 30, &t);
    r.fs.create_synthetic(FILE_PATH, FILE_BYTES, 4).unwrap();
    let _ = r.fs.read_whole(FILE_PATH, 0).unwrap();
    r.fs.reset_device_time();

    let mut cpu = Clock::new();
    let (_data, tr) = r.fs.read_whole(FILE_PATH, cpu.now()).unwrap();
    cpu.wait_until(tr);
    // One cudaMemcpy from pageable memory: no overlap with the read, and
    // the staging copy limits effective bandwidth.
    let end = cpu.now() + bw_time_ns(FILE_BYTES, t.pcie_pageable_mb_s);
    throughput_mb_s(FILE_BYTES, end)
}

fn main() {
    banner(
        "Figure 4 — sequential read throughput vs page size",
        &format!(
            "file = {} MB (paper: 1800 MB, scale 1/{SCALE}), warm host cache, 28 threadblocks\n\
             paper reference points: GPUfs ~500 MB/s @16K rising to ~5400 MB/s @16M;\n\
             whole-file transfer 2100 MB/s; max PCIe 5731 MB/s.\n\
             readahead axis: w=1 reproduces the paper's on-demand paging, w=8 batches\n\
             8 pages per RPC (one round-trip + one DMA setup per batch)",
            FILE_BYTES >> 20
        ),
    );
    let whole = whole_file_phase();
    println!(
        "{:>10} {:>16} {:>16} {:>16} {:>20}",
        "page", "GPUfs w=1 (MB/s)", "GPUfs w=8 (MB/s)", "pipeline (MB/s)", "whole-file (MB/s)"
    );
    for &page in PAGE_SIZES {
        let gpufs_w1 = fig4_gpufs_phase(FILE_BYTES, page, 1);
        let gpufs_w8 = fig4_gpufs_phase(FILE_BYTES, page, 8);
        let pipeline = cuda_pipeline_phase(page);
        println!(
            "{:>10} {:>16.0} {:>16.0} {:>16.0} {:>20.0}",
            human_size(page as u64),
            gpufs_w1,
            gpufs_w8,
            pipeline,
            whole
        );
    }
    println!(
        "\nmax PCIe bandwidth line: {:.0} MB/s",
        Timings::default().pcie_mb_s
    );
    let _ = secs(0);
}
