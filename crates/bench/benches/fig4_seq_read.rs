//! Figure 4: sequential read throughput as a function of page size.
//!
//! A 1.8 GB file (scaled) is read three ways with a warm host page cache:
//! (a) from the GPU kernel via GPUfs (`gmmap` of consecutive pages),
//! (b) a hand-written CUDA pipeline moving chunks the size of a GPUfs
//! page through pinned staging buffers, and (c) one whole-file read plus
//! one (pageable-memory) transfer. The red reference line is the maximum
//! achievable PCIe bandwidth, 5731 MB/s.

use std::sync::Arc;

use gpufs::{GOpenMode, GpufsConfig};
use gpufs_bench::{banner, human_size, rig, secs, PAGE_SIZES, SCALE};
use gpusim::{Grid, HostPinned};
use hostfs::OpenFlags;
use simtime::{bw_time_ns, throughput_mb_s, Clock, Timings};

/// Paper file: 1.8 GB.
const FILE_BYTES: u64 = (1800 << 20) / SCALE;
const FILE_PATH: &str = "/seq.bin";

fn gpufs_phase(page: usize) -> f64 {
    let t = Timings::default();
    let cache = (FILE_BYTES as usize + 16 * page).next_power_of_two();
    let r = rig(1, cache + (64 << 20), 8 << 30, &t);
    r.fs.create_synthetic(FILE_PATH, FILE_BYTES, 4).unwrap();
    // Warm host page cache, as the paper does; keep residency, reset time.
    let _ = r.fs.read_whole(FILE_PATH, 0).unwrap();
    r.fs.reset_device_time();

    let mount = r.host.mount(0, GpufsConfig::new(page, cache)).unwrap();
    let blocks = r.gpus[0].spec().concurrent_blocks(); // 28, as in the paper
    let per_block = FILE_BYTES / blocks as u64;
    let res = r.gpus[0].launch(Grid::new(blocks, 256), 0, |blk| {
        let fd = mount.open(blk, FILE_PATH, GOpenMode::ReadOnly).unwrap();
        let base = blk.block_id() as u64 * per_block;
        let mut off = 0u64;
        // Map one page at a time until the block's range is fetched; the
        // data itself is not touched (paper §5.1.1).
        while off < per_block {
            let map = mount.mmap(blk, &fd, base + off, page).unwrap();
            let got = map.len() as u64;
            mount.munmap(blk, map);
            off += got;
        }
        mount.close(blk, fd).unwrap();
    });
    throughput_mb_s(FILE_BYTES, res.elapsed())
}

fn cuda_pipeline_phase(page: usize) -> f64 {
    let t = Timings::default();
    let r = rig(1, 64 << 20, 8 << 30, &t);
    r.fs.create_synthetic(FILE_PATH, FILE_BYTES, 4).unwrap();
    let _ = r.fs.read_whole(FILE_PATH, 0).unwrap();
    r.fs.reset_device_time();

    let mut cpu = Clock::new();
    let (fd, topen) = r.fs.open(FILE_PATH, OpenFlags::read_only(), 0).unwrap();
    cpu.wait_until(topen);
    // Two pinned staging buffers: pread chunk, enqueue async DMA, move on.
    let mut staging = [
        HostPinned::new_accounted(page, Arc::clone(r.fs.mem())),
        HostPinned::new_accounted(page, Arc::clone(r.fs.mem())),
    ];
    let mut end = cpu.now();
    let mut off = 0u64;
    let mut i = 0usize;
    while off < FILE_BYTES {
        let n = (page as u64).min(FILE_BYTES - off) as usize;
        let (got, tr) =
            r.fs.pread(fd, off, &mut staging[i].as_mut()[..n], cpu.now())
                .unwrap();
        cpu.wait_until(tr);
        let xfer = r.gpus[0].dma().reserve_h2d(cpu.now(), got as u64);
        end = end.max(xfer.end);
        off += got as u64;
        i ^= 1;
    }
    r.fs.close(fd).unwrap();
    throughput_mb_s(FILE_BYTES, end)
}

fn whole_file_phase() -> f64 {
    let t = Timings::default();
    let r = rig(1, 64 << 20, 8 << 30, &t);
    r.fs.create_synthetic(FILE_PATH, FILE_BYTES, 4).unwrap();
    let _ = r.fs.read_whole(FILE_PATH, 0).unwrap();
    r.fs.reset_device_time();

    let mut cpu = Clock::new();
    let (_data, tr) = r.fs.read_whole(FILE_PATH, cpu.now()).unwrap();
    cpu.wait_until(tr);
    // One cudaMemcpy from pageable memory: no overlap with the read, and
    // the staging copy limits effective bandwidth.
    let end = cpu.now() + bw_time_ns(FILE_BYTES, t.pcie_pageable_mb_s);
    throughput_mb_s(FILE_BYTES, end)
}

fn main() {
    banner(
        "Figure 4 — sequential read throughput vs page size",
        &format!(
            "file = {} MB (paper: 1800 MB, scale 1/{SCALE}), warm host cache, 28 threadblocks\n\
             paper reference points: GPUfs ~500 MB/s @16K rising to ~5400 MB/s @16M;\n\
             whole-file transfer 2100 MB/s; max PCIe 5731 MB/s",
            FILE_BYTES >> 20
        ),
    );
    let whole = whole_file_phase();
    println!(
        "{:>10} {:>16} {:>16} {:>20}",
        "page", "GPUfs (MB/s)", "pipeline (MB/s)", "whole-file (MB/s)"
    );
    for &page in PAGE_SIZES {
        let gpufs = gpufs_phase(page);
        let pipeline = cuda_pipeline_phase(page);
        println!(
            "{:>10} {:>16.0} {:>16.0} {:>20.0}",
            human_size(page as u64),
            gpufs,
            pipeline,
            whole
        );
    }
    println!(
        "\nmax PCIe bandwidth line: {:.0} MB/s",
        Timings::default().pcie_mb_s
    );
    let _ = secs(0);
}
