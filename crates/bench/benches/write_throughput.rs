//! Write-back throughput sweep: batched `WritePages` vs per-page RPCs.
//!
//! The Figure 4 geometry inverted: 28 threadblocks `gwrite` disjoint
//! regions of one fresh `O_GWRONCE` output file, then `gfsync` it. The
//! sweep compares write-back batch 1 (the original one-RPC-per-dirty-page
//! path, symmetric with the paper prototype's on-demand reads) against
//! the default batched path, at each buffer-cache page size. The win is
//! the ratio of per-page fixed costs (RPC round-trip + DMA setup) to the
//! page's transfer time, so — like readahead on the read side — it is
//! largest at small pages and fades as the page grows.

use gpufs_bench::{banner, human_size, write_phase, PAGE_SIZES, SCALE};

const FILE_BYTES: u64 = (512 << 20) / SCALE;
const BATCH: usize = 32;
const CHANNELS: usize = 4;
const WORKERS: usize = 2;

fn main() {
    banner(
        "Write-back sweep — batched WritePages vs per-page write RPCs",
        &format!(
            "file = {} MB (scale 1/{SCALE}); 28 blocks gwrite disjoint regions, then gfsync;\n\
             daemon pool: {WORKERS} workers over {CHANNELS} channels; under the default\n\
             pipelined engine the b={BATCH} column is page-count-capped only (the 4 MB span\n\
             cap applies to the serialized engine, io_chunk_pages = 0, whose single\n\
             gather-then-pwrite sequence it works around)",
            FILE_BYTES >> 20
        ),
    );
    println!(
        "{:>10} {:>14} {:>14} {:>9} {:>12} {:>12} {:>10}",
        "page", "b=1 (MB/s)", "b=32 (MB/s)", "speedup", "rpcs b=1", "rpcs b=32", "rpc ratio"
    );
    for &page in PAGE_SIZES {
        if page as u64 > FILE_BYTES / 4 {
            break; // keep at least a few pages per block
        }
        let single = write_phase(FILE_BYTES, page, 1, CHANNELS, WORKERS);
        let batched = write_phase(FILE_BYTES, page, BATCH, CHANNELS, WORKERS);
        println!(
            "{:>10} {:>14.0} {:>14.0} {:>8.2}x {:>12} {:>12} {:>9.1}x",
            human_size(page as u64),
            single.mb_s,
            batched.mb_s,
            batched.mb_s / single.mb_s,
            single.write_rpcs,
            batched.write_rpcs,
            single.write_rpcs as f64 / batched.write_rpcs.max(1) as f64,
        );
    }
    println!(
        "\nper-page and batched write-back move identical bytes; only the\n\
         round-trip count and the DMA-setup amortization differ"
    );
}
