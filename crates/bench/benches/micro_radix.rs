//! Criterion microbenchmarks of the buffer-cache radix tree — real wall
//! time of the concurrent data structure underlying Figure 7.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpufs::cache::{PageState, RadixTree, Snapshot};

fn ready_tree(pages: u64) -> RadixTree {
    let tree = RadixTree::new();
    for idx in 0..pages {
        let fp = tree.get_or_insert(idx);
        fp.lock();
        fp.begin_update();
        fp.set_state(PageState::Initializing);
        fp.set_frame(Some(idx as u32));
        fp.set_state(PageState::Ready);
        fp.end_update();
        fp.unlock();
    }
    tree
}

fn bench_lookup(c: &mut Criterion) {
    let tree = ready_tree(1024);
    c.bench_function("radix_lookup_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 61) % 1024; // co-prime stride touches all slots
            black_box(tree.lookup(black_box(i)).is_some())
        })
    });
    c.bench_function("radix_lookup_miss", |b| {
        b.iter(|| black_box(tree.lookup(black_box(500_000)).is_none()))
    });
}

fn bench_pin(c: &mut Criterion) {
    let tree = ready_tree(1024);
    c.bench_function("pin_lockfree", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 61) % 1024;
            let fp = tree.lookup(i).expect("resident");
            match fp.try_pin_lockfree() {
                Ok(Snapshot::Pinned(f)) => {
                    fp.unpin();
                    black_box(f)
                }
                other => panic!("expected pinned, got {other:?}"),
            }
        })
    });
    c.bench_function("pin_locked", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 61) % 1024;
            let fp = tree.lookup(i).expect("resident");
            match fp.pin_locked() {
                Snapshot::Pinned(f) => {
                    fp.unpin();
                    black_box(f)
                }
                other => panic!("expected pinned, got {other:?}"),
            }
        })
    });
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("radix_get_or_insert_cold", |b| {
        b.iter_batched(
            RadixTree::new,
            |tree| {
                for idx in 0..256u64 {
                    black_box(tree.get_or_insert(idx * 64)); // one leaf each
                }
                tree
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_lookup, bench_pin, bench_insert);
criterion_main!(benches);
