//! Criterion microbenchmarks of host-side substrate hot paths: the page
//! cache's LRU bookkeeping and the byte-diff used for write-back.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gpufs::cache::{diff_extents, nonzero_extents};
use hostfs::PageCache;
use simtime::ByteLedger;

fn bench_pagecache(c: &mut Criterion) {
    c.bench_function("pagecache_hit", |b| {
        let ledger = Arc::new(ByteLedger::new(1 << 30));
        let mut cache = PageCache::new(4096, ledger);
        for p in 0..1024 {
            cache.touch_read(1, p);
        }
        let mut p = 0u64;
        b.iter(|| {
            p = (p + 61) % 1024;
            black_box(cache.touch_read(1, p).0)
        })
    });
    c.bench_function("pagecache_miss_evict", |b| {
        // Budget of 256 pages: every miss evicts.
        let ledger = Arc::new(ByteLedger::new(256 * 4096));
        let mut cache = PageCache::new(4096, ledger);
        let mut p = 0u64;
        b.iter(|| {
            p += 1;
            black_box(cache.touch_read(1, p).0)
        })
    });
}

fn bench_diff(c: &mut Criterion) {
    let page = 256 << 10;
    let pristine = vec![0u8; page];
    let mut sparse = pristine.clone();
    for i in (0..page).step_by(4096) {
        sparse[i] = 1;
    }
    let dense: Vec<u8> = (0..page).map(|i| (i % 251) as u8 + 1).collect();

    c.bench_function("diff_256k_sparse", |b| {
        b.iter(|| black_box(diff_extents(&sparse, &pristine, 64)).len())
    });
    c.bench_function("diff_256k_dense", |b| {
        b.iter(|| black_box(diff_extents(&dense, &pristine, 64)).len())
    });
    c.bench_function("nonzero_256k_dense", |b| {
        b.iter(|| black_box(nonzero_extents(&dense, 64)).len())
    });
}

criterion_group!(benches, bench_pagecache, bench_diff);
criterion_main!(benches);
