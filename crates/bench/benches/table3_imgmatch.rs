//! Table 3: approximate image matching — 8-core CPU vs 1–4 GPUs, for a
//! no-match input (regular) and an exact-match input (irregular), plus
//! the §5.2.1 early-exit experiment.
//!
//! Run with a warm host cache to highlight scaling, as the paper does.
//! Expected shape: GPU ≈ 2x CPUx8; near-linear scaling to 4 GPUs on the
//! no-match input, slightly sub-linear on the irregular exact-match
//! input; all 4 GPUs ≈ 9x one CPU execution. The degenerate input where
//! every query matches the first database page cuts runtime by orders of
//! magnitude (paper: 400x).

use gpufs::GpufsConfig;
use gpufs_bench::{banner, rig, secs, SCALE};
use simtime::Timings;
use workloads::corpus::{gen_image_dataset, ImageDataset, ImageDatasetConfig};
use workloads::imgmatch::{imgmatch_cpu, imgmatch_gpufs};

const DIM: usize = 1024;

fn db_images(mb: u64) -> usize {
    (((mb << 20) / SCALE) / (DIM as u64 * 4)) as usize
}

fn dataset(fs: &hostfs::HostFs, match_fraction: f64, early: bool) -> ImageDataset {
    gen_image_dataset(
        fs,
        &ImageDatasetConfig {
            dir: "/img".into(),
            db_sizes: vec![db_images(383), db_images(357), db_images(400)],
            // Query count stays at the paper's 2016 (scaling it and the
            // databases would shrink compute quadratically).
            n_queries: 2016,
            dim: DIM,
            match_fraction,
            plant_in_first_db_prefix: early,
            seed: 3,
        },
    )
}

fn warm(fs: &hostfs::HostFs, ds: &ImageDataset) {
    for p in &ds.db_paths {
        let _ = fs.read_whole(p, 0).unwrap();
    }
    let _ = fs.read_whole(&ds.query_path, 0).unwrap();
    fs.reset_device_time();
}

fn gpu_run(n_gpus: usize, match_fraction: f64, early: bool) -> (f64, usize) {
    let t = Timings::default();
    let cache = ((2u64 << 30) / SCALE) as usize;
    let r = rig(n_gpus, cache + (64 << 20), 8 << 30, &t);
    let ds = dataset(&r.fs, match_fraction, early);
    warm(&r.fs, &ds);
    let mounts: Vec<_> = (0..n_gpus)
        .map(|g| r.host.mount(g, GpufsConfig::new(64 << 10, cache)).unwrap())
        .collect();
    let res = imgmatch_gpufs(&mounts, &r.gpus, &ds, 0.5).unwrap();
    (secs(res.elapsed), res.queries_matched)
}

fn cpu_run(match_fraction: f64) -> f64 {
    let t = Timings::default();
    let r = rig(1, 64 << 20, 8 << 30, &t);
    let ds = dataset(&r.fs, match_fraction, false);
    warm(&r.fs, &ds);
    let res = imgmatch_cpu(&r.fs, 8, &ds, 0.5).unwrap();
    secs(res.elapsed)
}

fn main() {
    banner(
        "Table 3 — approximate image matching: CPUx8 vs 1-4 GPUs",
        &format!(
            "2016 query images, 3 databases (383/357/400 MB scaled 1/{SCALE}), warm host cache.\n\
             paper: no-match 119s CPU / 53s 1GPU / 13s 4GPU (4.1x); exact-match slightly\n\
             sub-linear; 4 GPUs ≈ 9x CPUx8"
        ),
    );
    println!(
        "{:>14} {:>10} {:>10} {:>14} {:>14} {:>14}",
        "input", "CPUx8 (s)", "1 GPU (s)", "2 GPUs (s)", "3 GPUs (s)", "4 GPUs (s)"
    );
    for (label, fraction) in [("No match", 0.0), ("Exact match", 1.0)] {
        let cpu = cpu_run(fraction);
        let (g1, _) = gpu_run(1, fraction, false);
        let (g2, _) = gpu_run(2, fraction, false);
        let (g3, _) = gpu_run(3, fraction, false);
        let (g4, _) = gpu_run(4, fraction, false);
        println!(
            "{:>14} {:>10.1} {:>10.1} {:>8.1} ({:>3.1}x) {:>8.1} ({:>3.1}x) {:>8.1} ({:>3.1}x)",
            label,
            cpu,
            g1,
            g2,
            g1 / g2,
            g3,
            g1 / g3,
            g4,
            g1 / g4
        );
    }

    // §5.2.1: the degenerate early-exit input.
    let (full, _) = gpu_run(1, 0.0, false);
    let (early, matched) = gpu_run(1, 1.0, true);
    println!(
        "\nearly-exit (all queries match the first database pages): {:.4}s vs {:.1}s full scan\n\
         -> {:.0}x faster ({} queries matched; paper reports 400x: 130 ms vs 53 s)",
        early,
        full,
        full / early,
        matched
    );
}
