//! Figure 6: random read performance as a function of page size.
//!
//! 112 threadblocks each `gread` 32 blocks of 32 KB from random offsets
//! of a 1 GB file (scaled) into on-die scratchpad memory. Small pages
//! fail to amortize transfer costs; large pages fetch data the
//! application never reads — effective bandwidth peaks in the middle
//! (the paper's best: 64 KB). The second series is unique pages touched.

use std::sync::atomic::{AtomicU64, Ordering};

use gpufs::{GOpenMode, GpufsConfig};
use gpufs_bench::{banner, human_size, rig, PAGE_SIZES, SCALE};
use gpusim::Grid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtime::{throughput_mb_s, Timings};

const FILE_BYTES: u64 = (1 << 30) / SCALE;
const FILE_PATH: &str = "/rand.bin";
// Paper: 32 reads per block on a 1 GB file; scaled with the file so the
// touched-fraction of the file (and hence page reuse) stays the same.
const READS_PER_BLOCK: usize = 2;
const READ_BYTES: usize = 32 << 10;
const BLOCKS: usize = 112;

fn run(page: usize, window: usize) -> (f64, u64) {
    let t = Timings::default();
    // Cache sized like the paper's: big enough for the touched pages.
    let cache = ((FILE_BYTES as usize).next_power_of_two() + 32 * page).next_power_of_two();
    let r = rig(1, cache + (64 << 20), 8 << 30, &t);
    r.fs.create_synthetic(FILE_PATH, FILE_BYTES, 6).unwrap();
    let _ = r.fs.read_whole(FILE_PATH, 0).unwrap();
    r.fs.reset_device_time();

    let mount = r
        .host
        .mount(0, GpufsConfig::new(page, cache).with_readahead(window))
        .unwrap();
    let bytes_read = AtomicU64::new(0);
    let res = r.gpus[0].launch(Grid::new(BLOCKS, 256), 0, |blk| {
        let fd = mount.open(blk, FILE_PATH, GOpenMode::ReadOnly).unwrap();
        let mut rng = StdRng::seed_from_u64(blk.block_id() as u64);
        for _ in 0..READS_PER_BLOCK {
            let off = rng.gen_range(0..FILE_BYTES - READ_BYTES as u64);
            let mut dst = vec![0u8; READ_BYTES];
            let n = mount.read(blk, &fd, off, &mut dst).unwrap();
            bytes_read.fetch_add(n as u64, Ordering::Relaxed);
        }
        mount.close(blk, fd).unwrap();
    });
    let unique_pages = mount.counters().misses.get();
    // Effective throughput over the bytes the application asked for.
    (
        throughput_mb_s(bytes_read.load(Ordering::Relaxed), res.elapsed()),
        unique_pages,
    )
}

fn main() {
    banner(
        "Figure 6 — random read: effective bandwidth and unique pages vs page size",
        &format!(
            "file = {} MB (scale 1/{SCALE}); {BLOCKS} blocks x {READS_PER_BLOCK} reads of 32 KB.\n\
             paper: best effective bandwidth at 64K; large pages waste transfer on unread\n\
             bytes (whole-file alternative: ~310 MB/s effective).\n\
             readahead axis: random access must not trigger the sequential window, so\n\
             w=8 may batch only the pages one read itself spans — never beyond it",
            FILE_BYTES >> 20
        ),
    );
    println!(
        "{:>10} {:>18} {:>18} {:>14} {:>14}",
        "page", "bw w=1 (MB/s)", "bw w=8 (MB/s)", "pages w=1", "pages w=8"
    );
    for &page in PAGE_SIZES {
        let (bw1, unique1) = run(page, 1);
        let (bw8, unique8) = run(page, 8);
        println!(
            "{:>10} {:>18.0} {:>18.0} {:>14} {:>14}",
            human_size(page as u64),
            bw1,
            bw8,
            unique1,
            unique8
        );
    }
}
