//! Table 2: impact of the GPU buffer-cache size on running time and
//! locking behaviour, for the image-search workload.
//!
//! The no-match query set forces a full scan of all three databases.
//! Shrinking the buffer cache (2 GB → 1 GB → 0.5 GB, scaled) makes the
//! paging path reclaim in-use pages; the lock-free/locked access ratio
//! drops as eviction contends with lookups, and running time grows.

use gpufs::GpufsConfig;
use gpufs_bench::{banner, rig, secs, SCALE};
use simtime::Timings;
use workloads::corpus::{gen_image_dataset, ImageDatasetConfig};
use workloads::imgmatch::imgmatch_gpufs;

/// Paper database sizes: 383/357/400 MB of ~16 KB images; scaled, with
/// 4 KB images (dim 1024) so counts stay in the thousands.
const DIM: usize = 1024;

fn db_images(mb: u64) -> usize {
    (((mb << 20) / SCALE) / (DIM as u64 * 4)) as usize
}

fn run(cache_bytes: usize) -> (f64, u64, u64, u64) {
    let t = Timings::default();
    let r = rig(1, cache_bytes + (64 << 20), 8 << 30, &t);
    let ds = gen_image_dataset(
        &r.fs,
        &ImageDatasetConfig {
            dir: "/img".into(),
            db_sizes: vec![db_images(383), db_images(357), db_images(400)],
            // Query count stays at the paper's 2016: scaling it *and* the
            // databases would shrink the compute quadratically.
            n_queries: 2016,
            dim: DIM,
            match_fraction: 0.0, // "no match": all databases fully read
            plant_in_first_db_prefix: false,
            seed: 3,
        },
    );
    // Warm host cache (Table 2 isolates GPU-side paging behaviour).
    for p in &ds.db_paths {
        let _ = r.fs.read_whole(p, 0).unwrap();
    }
    let _ = r.fs.read_whole(&ds.query_path, 0).unwrap();
    r.fs.reset_device_time();

    let mount = r
        .host
        .mount(0, GpufsConfig::new(64 << 10, cache_bytes))
        .unwrap();
    let res = imgmatch_gpufs(&[std::sync::Arc::clone(&mount)], &r.gpus, &ds, 0.5).unwrap();
    assert_eq!(res.queries_matched, 0, "no-match input must not match");
    (
        secs(res.elapsed),
        mount.counters().pages_reclaimed.get(),
        mount.counters().lockfree_accesses.get(),
        mount.counters().locked_accesses.get(),
    )
}

fn main() {
    banner(
        "Table 2 — buffer cache size vs time and locking (image search, no-match input)",
        &format!(
            "paper (at full scale): 2G: 53s, 0 reclaimed, 1.09M lock-free / 21.5K locked;\n\
             1G: 69s, 11.5K reclaimed; 0.5G: 99s, 38.3K reclaimed, locked >> lock-free.\n\
             all sizes below are scaled 1/{SCALE}"
        ),
    );
    println!(
        "{:>12} {:>10} {:>17} {:>20} {:>17}",
        "cache", "time (s)", "pages reclaimed", "lock-free accesses", "locked accesses"
    );
    for (label, cache) in [
        ("2G/16", (2u64 << 30) / SCALE),
        ("1G/16", (1u64 << 30) / SCALE),
        ("0.5G/16", (1u64 << 29) / SCALE),
    ] {
        let (time, reclaimed, lockfree, locked) = run(cache as usize);
        println!(
            "{:>12} {:>10.2} {:>17} {:>20} {:>17}",
            label, time, reclaimed, lockfree, locked
        );
    }
}
