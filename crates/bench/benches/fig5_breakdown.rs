//! Figure 5: contribution of different factors to file I/O performance as
//! a function of page size.
//!
//! The sequential-read workload of Figure 4 is re-run with timing
//! components surgically removed, exactly as the paper does: total time,
//! time with CPU→GPU DMA excluded, time with CPU file I/O excluded, and
//! time with both excluded (leaving RPC traffic plus GPUfs buffer-cache
//! code). Lower is better.
//!
//! The workload runs under the daemon's worker pool (2 workers over 4 RPC
//! channels, the paper's §4.3 multi-channel design); the `overlap` column
//! is `total / (−DMA + −file I/O)` — strictly below 1 when host file I/O
//! and DMA pipeline instead of adding up, which is the Figure 5 claim.
//!
//! A second table isolates the daemon's *in-RPC* pipeline: one
//! threadblock streams at readahead window 8, so every `ReadPages` is a
//! real multi-page batch and the chunked engine's pread/DMA overlap is
//! the dominant term (the 28-block run hides it behind the saturated
//! PCIe direction). Compare the pipelined default against the
//! serialized engine (`io_chunk_pages = 0`).

use gpufs_bench::{banner, fig5_phase, fig5_pipe_phase, human_size, millis, PAGE_SIZES, SCALE};
use simtime::Timings;

const FILE_BYTES: u64 = (1800 << 20) / SCALE;
const PIPE_BYTES: u64 = FILE_BYTES / 4;
const PIPE_WINDOW: usize = 8;

/// Pool shape for the breakdown (≥ 2 workers so one worker's pread can
/// overlap another's DMA in real time too).
const CHANNELS: usize = 4;
const WORKERS: usize = 2;

fn main() {
    banner(
        "Figure 5 — time breakdown of sequential read vs page size",
        &format!(
            "file = {} MB (scale 1/{SCALE}); daemon pool: {WORKERS} workers over {CHANNELS} channels\n\
             the paper's rightmost column (cache code only) falls from 792 ms at 16K to ~2 ms\n\
             at 16M, shrinking proportionally to page count",
            FILE_BYTES >> 20
        ),
    );
    let base = Timings::default();
    println!(
        "{:>10} {:>12} {:>14} {:>16} {:>22} {:>9}",
        "page", "total (ms)", "-DMA (ms)", "-file I/O (ms)", "-DMA & -file I/O (ms)", "overlap"
    );
    let mut cache_only_series = Vec::new();
    for &page in PAGE_SIZES {
        let total = fig5_phase(FILE_BYTES, page, &base, CHANNELS, WORKERS);
        let no_dma = fig5_phase(FILE_BYTES, page, &base.without_dma(), CHANNELS, WORKERS);
        let no_io = fig5_phase(FILE_BYTES, page, &base.without_host_io(), CHANNELS, WORKERS);
        let bare = fig5_phase(
            FILE_BYTES,
            page,
            &base.rpc_and_cache_only(),
            CHANNELS,
            WORKERS,
        );
        cache_only_series.push((page, bare));
        println!(
            "{:>10} {:>12.1} {:>14.1} {:>16.1} {:>22.2} {:>9.2}",
            human_size(page as u64),
            millis(total),
            millis(no_dma),
            millis(no_io),
            millis(bare),
            total as f64 / (no_dma + no_io) as f64,
        );
    }
    // The paper's headline observation: page-cache overhead shrinks
    // proportionally to the number of map requests.
    let (p0, t0) = cache_only_series[0];
    let (p_last, t_last) = *cache_only_series.last().unwrap();
    println!(
        "\ncache-code-only ratio {} : {} = {:.0}x (page-count ratio = {}x)",
        human_size(p0 as u64),
        human_size(p_last as u64),
        t0 as f64 / t_last.max(1) as f64,
        p_last / p0,
    );

    banner(
        "In-RPC pipeline — one stream at window 8, chunked vs serialized engine",
        &format!(
            "file = {} MB, 1 threadblock; `serialized` is io_chunk_pages = 0 (all preads,\n\
             then one DMA); overlap = time / (−DMA + −file I/O) — max(DMA, I/O)/sum is the\n\
             perfect-pipelining floor",
            PIPE_BYTES >> 20
        ),
    );
    println!(
        "{:>10} {:>13} {:>15} {:>9} {:>15} {:>9}",
        "page", "piped (ms)", "serialized (ms)", "speedup", "floor", "overlap"
    );
    for &page in PAGE_SIZES.iter().filter(|&&p| p as u64 <= PIPE_BYTES / 8) {
        let piped = fig5_pipe_phase(PIPE_BYTES, page, &base, PIPE_WINDOW, None);
        let serial = fig5_pipe_phase(PIPE_BYTES, page, &base, PIPE_WINDOW, Some(0));
        let no_dma = fig5_pipe_phase(PIPE_BYTES, page, &base.without_dma(), PIPE_WINDOW, None);
        let no_io = fig5_pipe_phase(PIPE_BYTES, page, &base.without_host_io(), PIPE_WINDOW, None);
        let sum = (no_dma + no_io) as f64;
        println!(
            "{:>10} {:>13.2} {:>15.2} {:>8.2}x {:>15.3} {:>9.3}",
            human_size(page as u64),
            millis(piped),
            millis(serial),
            serial as f64 / piped as f64,
            no_dma.max(no_io) as f64 / sum,
            piped as f64 / sum,
        );
    }
}
