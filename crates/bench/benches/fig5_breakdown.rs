//! Figure 5: contribution of different factors to file I/O performance as
//! a function of page size.
//!
//! The sequential-read workload of Figure 4 is re-run with timing
//! components surgically removed, exactly as the paper does: total time,
//! time with CPU→GPU DMA excluded, time with CPU file I/O excluded, and
//! time with both excluded (leaving RPC traffic plus GPUfs buffer-cache
//! code). Lower is better.

use gpufs::{GOpenMode, GpufsConfig};
use gpufs_bench::{banner, human_size, millis, rig, PAGE_SIZES, SCALE};
use gpusim::Grid;
use simtime::{Nanos, Timings};

const FILE_BYTES: u64 = (1800 << 20) / SCALE;
const FILE_PATH: &str = "/seq.bin";

fn run(page: usize, timings: &Timings) -> Nanos {
    let cache = (FILE_BYTES as usize + 16 * page).next_power_of_two();
    let r = rig(1, cache + (64 << 20), 8 << 30, timings);
    r.fs.create_synthetic(FILE_PATH, FILE_BYTES, 4).unwrap();
    let _ = r.fs.read_whole(FILE_PATH, 0).unwrap();
    r.fs.reset_device_time();

    let mount = r.host.mount(0, GpufsConfig::new(page, cache)).unwrap();
    let blocks = r.gpus[0].spec().concurrent_blocks();
    let per_block = FILE_BYTES / blocks as u64;
    let res = r.gpus[0].launch(Grid::new(blocks, 256), 0, |blk| {
        let fd = mount.open(blk, FILE_PATH, GOpenMode::ReadOnly).unwrap();
        let base = blk.block_id() as u64 * per_block;
        let mut off = 0u64;
        while off < per_block {
            let map = mount.mmap(blk, &fd, base + off, page).unwrap();
            let got = map.len() as u64;
            mount.munmap(blk, map);
            off += got;
        }
        mount.close(blk, fd).unwrap();
    });
    res.elapsed()
}

fn main() {
    banner(
        "Figure 5 — time breakdown of sequential read vs page size",
        &format!(
            "file = {} MB (scale 1/{SCALE}); the paper's rightmost column (cache code only)\n\
             falls from 792 ms at 16K to ~2 ms at 16M, shrinking proportionally to page count",
            FILE_BYTES >> 20
        ),
    );
    let base = Timings::default();
    println!(
        "{:>10} {:>12} {:>18} {:>20} {:>26}",
        "page", "total (ms)", "-DMA (ms)", "-file I/O (ms)", "-DMA & -file I/O (ms)"
    );
    let mut cache_only_series = Vec::new();
    for &page in PAGE_SIZES {
        let total = run(page, &base);
        let no_dma = run(page, &base.without_dma());
        let no_io = run(page, &base.without_host_io());
        let bare = run(page, &base.rpc_and_cache_only());
        cache_only_series.push((page, bare));
        println!(
            "{:>10} {:>12.1} {:>18.1} {:>20.1} {:>26.2}",
            human_size(page as u64),
            millis(total),
            millis(no_dma),
            millis(no_io),
            millis(bare),
        );
    }
    // The paper's headline observation: page-cache overhead shrinks
    // proportionally to the number of map requests.
    let (p0, t0) = cache_only_series[0];
    let (p_last, t_last) = *cache_only_series.last().unwrap();
    println!(
        "\ncache-code-only ratio {} : {} = {:.0}x (page-count ratio = {}x)",
        human_size(p0 as u64),
        human_size(p_last as u64),
        t0 as f64 / t_last.max(1) as f64,
        p_last / p0,
    );
}
