//! Ablations of two GPUfs design decisions the paper argues for:
//!
//! 1. **The closed-file table** (§4.1): the nondeterministic block
//!    scheduler routinely drives a file's reference count to zero while
//!    blocks that will reopen it are still queued; retaining the cache
//!    across the close avoids refetching everything over PCIe.
//! 2. **Decoupling close from sync** (§3.2): POSIX close-synchronizes
//!    semantics would trigger a write-back storm every time the count
//!    dips to zero.
//!
//! Each ablation runs the same kernel with the design on and off and
//! reports virtual time plus the traffic counters that explain it.

use gpufs::{GOpenMode, GpufsConfig};
use gpufs_bench::{banner, millis, rig};
use gpusim::Grid;
use simtime::Timings;

const FILE_BYTES: u64 = 8 << 20;

/// Four successive kernels each read the whole file: the refcount drops
/// to zero between kernels, exactly the cross-kernel data reuse the
/// closed-file table enables (paper §3.3: "multiple kernels launched by
/// the same process can share data via the buffer cache").
fn reopen_workload(disable_closed_table: bool) -> (f64, u64, u64) {
    let t = Timings::default();
    let r = rig(1, 64 << 20, 8 << 30, &t);
    r.fs.create_synthetic("/reopen.bin", FILE_BYTES, 8).unwrap();
    let _ = r.fs.read_whole("/reopen.bin", 0).unwrap();
    r.fs.reset_device_time();
    let cfg = GpufsConfig {
        disable_closed_table,
        ..GpufsConfig::new(64 << 10, 32 << 20)
    };
    let mount = r.host.mount(0, cfg).unwrap();
    let mut start = 0;
    for seed in 0..4u64 {
        let res = r.gpus[0].launch_seeded(Grid::new(28, 256), start, seed, |blk| {
            let fd = mount.open(blk, "/reopen.bin", GOpenMode::ReadOnly).unwrap();
            let span = FILE_BYTES / 28;
            let mut buf = vec![0u8; 64 << 10];
            let base = blk.block_id() as u64 * span;
            let mut off = 0;
            while off < span {
                let n = mount.read(blk, &fd, base + off, &mut buf).unwrap();
                off += n as u64;
            }
            mount.close(blk, fd).unwrap();
        });
        start = res.end;
    }
    (
        millis(start),
        r.host.stats().bytes_h2d.get() >> 20,
        r.host.stats().opens.get(),
    )
}

/// Blocks produce one output file in waves; each wave's last close dips
/// the refcount to zero.
fn close_sync_workload(sync_on_close: bool) -> (f64, u64) {
    let t = Timings::default();
    let r = rig(1, 64 << 20, 8 << 30, &t);
    let cfg = GpufsConfig {
        sync_on_close,
        ..GpufsConfig::new(64 << 10, 32 << 20)
    };
    let mount = r.host.mount(0, cfg).unwrap();
    let res = r.gpus[0].launch_seeded(Grid::new(112, 256), 0, 7, |blk| {
        let fd = mount
            .open(blk, "/produced.bin", GOpenMode::WriteOnce)
            .unwrap();
        let payload = vec![blk.block_id() as u8 + 1; 16 << 10];
        mount
            .write(blk, &fd, blk.block_id() as u64 * (16 << 10), &payload)
            .unwrap();
        mount.close(blk, fd).unwrap();
    });
    // One explicit sync at the end, as the paper's decoupled model intends.
    r.gpus[0].launch(Grid::new(1, 32), res.end, |blk| {
        let fd = mount
            .open(blk, "/produced.bin", GOpenMode::WriteOnce)
            .unwrap();
        mount.fsync(blk, &fd).unwrap();
        mount.close(blk, fd).unwrap();
    });
    (millis(res.elapsed()), mount.counters().writebacks.get())
}

fn main() {
    banner(
        "Ablation — closed-file table (paper §4.1)",
        "4 successive kernels each read one 8 MB file; without the table every kernel\n\
         refetches the file over PCIe",
    );
    let (t_on, h2d_on, opens_on) = reopen_workload(false);
    let (t_off, h2d_off, opens_off) = reopen_workload(true);
    println!(
        "{:>22} {:>12} {:>14} {:>12}",
        "", "time (ms)", "PCIe h2d (MB)", "host opens"
    );
    println!(
        "{:>22} {:>12.1} {:>14} {:>12}",
        "closed table ON", t_on, h2d_on, opens_on
    );
    println!(
        "{:>22} {:>12.1} {:>14} {:>12}",
        "closed table OFF", t_off, h2d_off, opens_off
    );
    println!(
        "-> {:.1}x less PCIe traffic with the table\n",
        h2d_off as f64 / h2d_on.max(1) as f64
    );

    banner(
        "Ablation — decoupled close vs POSIX sync-on-close (paper §3.2)",
        "112 blocks in 4 waves write one output file; POSIX semantics write back at\n\
         every zero-refcount dip, the GPUfs model syncs once at the end",
    );
    let (t_dec, wb_dec) = close_sync_workload(false);
    let (t_posix, wb_posix) = close_sync_workload(true);
    println!("{:>22} {:>12} {:>12}", "", "time (ms)", "writebacks");
    println!("{:>22} {:>12.1} {:>12}", "decoupled (GPUfs)", t_dec, wb_dec);
    println!("{:>22} {:>12.1} {:>12}", "sync-on-close", t_posix, wb_posix);
    println!(
        "-> sync-on-close pays {:.1}x the write-backs",
        wb_posix as f64 / wb_dec.max(1) as f64
    );
}
