//! Figure 7: buffer-cache access performance with and without lock-free
//! radix-tree traversal, normalized to raw memory access time.
//!
//! 112 threadblocks read a fully cached file in 16 KB chunks from
//! randomized offsets, contending on the per-file radix tree. The
//! baseline reads the same bytes straight from GPU memory with no GPUfs
//! involvement. Lock-free lookups cost only their local work; the locked
//! traversal additionally serializes on the per-tree lock, which convoys
//! the hundreds of concurrently running warps of real hardware — modeled
//! here as a virtual serial resource. The paper reports the lock-free
//! protocol at 85–88% of raw memory speed and ~3x the locked variant.

use gpufs::{GOpenMode, GpufsConfig};
use gpufs_bench::{banner, human_size, rig};
use gpusim::Grid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtime::Timings;
use std::sync::atomic::{AtomicU64, Ordering};

const FILE_BYTES: u64 = 16 << 20;
const FILE_PATH: &str = "/cached.bin";
const CHUNK: usize = 16 << 10;
const BLOCKS: usize = 112;
const READS_PER_BLOCK: usize = 2_000;

/// Page sizes from the paper's Figure 7 x-axis.
const PAGES: &[usize] = &[64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20];

fn gpufs_phase(page: usize, force_locked: bool) -> (f64, u64, u64) {
    let t = Timings::default();
    let cache = 64 << 20;
    let r = rig(1, cache + (32 << 20), 8 << 30, &t);
    r.fs.create_synthetic(FILE_PATH, FILE_BYTES, 9).unwrap();
    let cfg = GpufsConfig {
        force_locked,
        ..GpufsConfig::new(page, cache)
    };
    let mount = r.host.mount(0, cfg).unwrap();

    // Prefetch the file into the GPU buffer cache with a separate kernel,
    // excluding transfer time from the measurement (paper §5.1.3).
    let prefetch = r.gpus[0].launch(Grid::new(8, 256), 0, |blk| {
        let fd = mount.open(blk, FILE_PATH, GOpenMode::ReadOnly).unwrap();
        let per = FILE_BYTES / 8;
        let base = blk.block_id() as u64 * per;
        let mut buf = vec![0u8; 64 << 10];
        let mut off = 0;
        while off < per {
            let n = mount.read(blk, &fd, base + off, &mut buf).unwrap();
            off += n as u64;
        }
        mount.close(blk, fd).unwrap();
    });
    mount.counters().reset();

    // Continue the virtual timeline from the prefetch: cached pages'
    // ready times are then in this kernel's past.
    let sink = AtomicU64::new(0);
    let res = r.gpus[0].launch(Grid::new(BLOCKS, 256), prefetch.end, |blk| {
        let fd = mount.open(blk, FILE_PATH, GOpenMode::ReadOnly).unwrap();
        let mut rng = StdRng::seed_from_u64(blk.block_id() as u64 * 31 + 7);
        let mut dst = [0u8; CHUNK];
        let mut local = 0u64;
        for _ in 0..READS_PER_BLOCK {
            // Randomized chunk offsets cause non-trivial contention on
            // the buffer-cache structures (paper §5.1.3).
            let off = rng.gen_range(0..(FILE_BYTES / CHUNK as u64)) * CHUNK as u64;
            let n = mount.read(blk, &fd, off, &mut dst).unwrap();
            local = local.wrapping_add(u64::from(dst[0]) + n as u64);
        }
        sink.fetch_add(local, Ordering::Relaxed);
        mount.close(blk, fd).unwrap();
    });
    let elapsed = res.elapsed() as f64 / 1e9;
    (
        elapsed,
        mount.counters().lockfree_accesses.get(),
        mount.counters().locked_accesses.get(),
    )
}

fn raw_memory_phase() -> f64 {
    let t = Timings::default();
    let r = rig(1, 96 << 20, 8 << 30, &t);
    let buf = r.gpus[0].global().alloc(FILE_BYTES as usize).unwrap();
    let t = Timings::default();
    let sink = AtomicU64::new(0);
    let res = r.gpus[0].launch(Grid::new(BLOCKS, 256), 0, |blk| {
        let mut rng = StdRng::seed_from_u64(blk.block_id() as u64 * 31 + 7);
        let mut dst = [0u8; CHUNK];
        let mut local = 0u64;
        for _ in 0..READS_PER_BLOCK {
            let off = rng.gen_range(0..(FILE_BYTES / CHUNK as u64)) * CHUNK as u64;
            blk.gpu().global().read(buf + off as usize, &mut dst);
            // The raw baseline pays the same memory latency + bandwidth
            // as a GPUfs copy of the chunk, and nothing else.
            blk.advance(t.gpu_mem_latency_ns + simtime::bw_time_ns(CHUNK as u64, t.gpu_mem_mb_s));
            local = local.wrapping_add(u64::from(dst[0]));
        }
        sink.fetch_add(local, Ordering::Relaxed);
    });
    res.elapsed() as f64 / 1e9
}

fn main() {
    banner(
        "Figure 7 — warm buffer-cache access: lock-free vs locked, normalized to raw memory",
        "real wall-time measurement of the concurrent radix tree (112 blocks, 16 KB chunks,\n\
         randomized offsets, file fully resident). paper: lock-free reaches 85-88% of raw\n\
         memory bandwidth and ~3x the locked variant",
    );
    let raw = raw_memory_phase();
    println!("raw GPU memory baseline: {:.4}s virtual\n", raw);
    println!(
        "{:>10} {:>18} {:>16} {:>22} {:>22}",
        "page", "lock-free/raw", "locked/raw", "lock-free accesses", "locked accesses"
    );
    for &page in PAGES {
        let (t_free, free_cnt, locked_cnt_fast) = gpufs_phase(page, false);
        let (t_locked, _, locked_cnt) = gpufs_phase(page, true);
        println!(
            "{:>10} {:>17.0}% {:>15.0}% {:>22} {:>22}",
            human_size(page as u64),
            100.0 * raw / t_free,
            100.0 * raw / t_locked,
            free_cnt,
            locked_cnt + locked_cnt_fast,
        );
    }
}
