//! Table 4: GPU exact string match ("grep -w") performance.
//!
//! Two corpora, as in the paper: a source-tree-like corpus of many small
//! files (Linux 3.3.1: ~33k files, 524 MB) and one large file
//! (Shakespeare: 6 MB), searched for a 58k-word dictionary. Cold host
//! cache (the paper runs this with no warm-up). Three implementations:
//! CPUx8, GPU with GPUfs, and the vanilla prefetch-everything GPU
//! baseline. The paper also reports lines of code; we print semicolon
//! counts of our own implementations in the same spirit.

use gpufs::GpufsConfig;
use gpufs_bench::{banner, rig, secs, SCALE};
use simtime::Timings;
use workloads::corpus::{gen_text_corpus, TextCorpus, TextCorpusConfig};
use workloads::grep::{grep_cpu, grep_gpufs, grep_vanilla_gpu};

fn linux_like(fs: &hostfs::HostFs) -> TextCorpus {
    gen_text_corpus(
        fs,
        &TextCorpusConfig {
            dir: "/linux".into(),
            n_files: (33_000 / SCALE as usize).max(1),
            total_bytes: (524 << 20) / SCALE,
            vocab_size: 20_000,
            // Dictionary stays at the paper's 58k words: matching cost
            // scales as corpus x dictionary, and the corpus is already
            // scaled; scaling both would shrink compute quadratically
            // relative to the (unscalable) per-file seek costs.
            dict_words: 58_000,
            seed: 13,
        },
    )
}

fn shakespeare_like(fs: &hostfs::HostFs) -> TextCorpus {
    gen_text_corpus(
        fs,
        &TextCorpusConfig {
            dir: "/shakespeare".into(),
            n_files: 1,
            total_bytes: 6 << 20, // small enough to keep unscaled
            vocab_size: 20_000,
            dict_words: 58_000,
            seed: 14,
        },
    )
}

fn run_corpus(label: &str, gen: impl Fn(&hostfs::HostFs) -> TextCorpus) {
    let t = Timings::default();
    let cache = ((1u64 << 30) / SCALE) as usize;

    // CPU x8 (cold cache).
    let r = rig(1, cache + (64 << 20), 8 << 30, &t);
    let corpus = gen(&r.fs);
    r.fs.drop_caches();
    r.fs.reset_device_time();
    let cpu = grep_cpu(&r.fs, 8, &corpus.file_list_path, &corpus.dict_path).unwrap();
    drop(r);

    // GPU with GPUfs (cold cache).
    let r = rig(1, cache + (64 << 20), 8 << 30, &t);
    let corpus = gen(&r.fs);
    r.fs.drop_caches();
    r.fs.reset_device_time();
    let mount = r.host.mount(0, GpufsConfig::new(64 << 10, cache)).unwrap();
    let gpufs = grep_gpufs(
        &mount,
        &r.gpus[0],
        &corpus.file_list_path,
        &corpus.dict_path,
        "/out",
    )
    .unwrap();
    drop(r);

    // Vanilla GPU (cold cache).
    let r = rig(1, cache + (64 << 20), 8 << 30, &t);
    let corpus = gen(&r.fs);
    r.fs.drop_caches();
    r.fs.reset_device_time();
    let vanilla =
        grep_vanilla_gpu(&r.fs, &r.gpus[0], &corpus.file_list_path, &corpus.dict_path).unwrap();
    drop(r);

    assert_eq!(
        gpufs.word_totals, cpu.word_totals,
        "all versions must agree"
    );
    assert_eq!(gpufs.word_totals, vanilla.word_totals);
    println!(
        "{:>16} {:>12.1} {:>14.1} ({:>4.1}x) {:>14.1} ({:>4.1}x)   [{} matches, {} occurrences]",
        label,
        secs(cpu.elapsed),
        secs(gpufs.elapsed),
        secs(cpu.elapsed) / secs(gpufs.elapsed),
        secs(vanilla.elapsed),
        secs(cpu.elapsed) / secs(vanilla.elapsed),
        gpufs.match_records,
        gpufs.total_occurrences,
    );
}

/// Semicolon LOC of a source region, the paper's metric ("counting
/// semicolons", §5.2.1 footnote).
fn loc(src: &str, from: &str, to: Option<&str>) -> usize {
    let start = src.find(from).expect("marker present");
    let region = match to.and_then(|m| src[start..].find(m)) {
        Some(end) => &src[start..start + end],
        None => &src[start..],
    };
    region.matches(';').count()
}

fn main() {
    banner(
        "Table 4 — GPU exact string match (grep -w)",
        &format!(
            "dictionary = 58k words (32-byte aligned), corpus scaled 1/{SCALE}, cold host cache.\n\
             paper: Linux source 6.07h CPUx8 / 53m GPUfs (6.8x) / 50m vanilla (7.2x);\n\
             Shakespeare 292s / 40s (7.3x) / 40s; GPUfs code shorter than vanilla"
        ),
    );
    println!(
        "{:>16} {:>12} {:>22} {:>22}",
        "input", "CPUx8 (s)", "GPU-GPUfs (s)", "GPU-vanilla (s)"
    );
    run_corpus("Linux-like", linux_like);
    run_corpus("Shakespeare", shakespeare_like);

    let grep_src = include_str!("../../workloads/src/grep.rs");
    println!(
        "\nLOC (semicolons): CPU {} | GPUfs {} | vanilla {} (paper: 80 / 140 / 178)",
        loc(grep_src, "pub fn grep_cpu", None),
        loc(
            grep_src,
            "pub fn grep_gpufs",
            Some("pub fn grep_vanilla_gpu")
        ),
        loc(grep_src, "pub fn grep_vanilla_gpu", Some("pub fn grep_cpu")),
    );
}
