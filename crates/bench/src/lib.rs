//! Shared plumbing for the experiment harnesses (`benches/`).
//!
//! Each `harness = false` bench target regenerates one figure or table of
//! the paper, printing the same rows/series the paper reports, side by
//! side with the paper's published numbers where useful. Dataset sizes are
//! scaled down by [`SCALE`] (documented in EXPERIMENTS.md): all cache
//! budgets and inputs shrink together, so crossover points land at the
//! same relative positions while keeping bench wall time in seconds.

use std::sync::Arc;

use gpufs::cluster::{FleetBuilder, HostFleet, ShardStrategy};
use gpufs::{GOpenMode, GpufsConfig, GpufsHost};
use gpusim::{Gpu, GpuSpec, Grid};
use hostfs::{HostFs, HostFsConfig};
use simtime::{throughput_mb_s, Nanos, Timings};
use workloads::cluster::cluster_search;
use workloads::corpus::{gen_image_dataset, ImageDatasetConfig};

/// Dataset scale-down factor relative to the paper's testbed.
pub const SCALE: u64 = 16;

/// The page sizes swept in Figures 4–6 (16 KB – 16 MB).
pub const PAGE_SIZES: &[usize] = &[
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
    8 << 20,
    16 << 20,
];

/// A freshly assembled host + GPUs, ready to mount GPUfs on.
pub struct Rig {
    /// The host file system.
    pub fs: Arc<HostFs>,
    /// The GPUfs host daemon.
    pub host: GpufsHost,
    /// The GPUs.
    pub gpus: Vec<Arc<Gpu>>,
}

/// Build a rig with `n_gpus` GPUs of `gpu_mem_bytes` device memory each,
/// `host_mem_bytes` of host RAM (page cache + pinned pool), and `timings`.
#[must_use]
pub fn rig(n_gpus: usize, gpu_mem_bytes: usize, host_mem_bytes: u64, timings: &Timings) -> Rig {
    rig_pool(n_gpus, gpu_mem_bytes, host_mem_bytes, timings, 1, 1)
}

/// [`rig`] with the daemon concurrency knobs: `channels` independent RPC
/// channels served by `workers` daemon threads.
#[must_use]
pub fn rig_pool(
    n_gpus: usize,
    gpu_mem_bytes: usize,
    host_mem_bytes: u64,
    timings: &Timings,
    channels: usize,
    workers: usize,
) -> Rig {
    rig_cfg(
        n_gpus,
        gpu_mem_bytes,
        host_mem_bytes,
        timings,
        &GpufsConfig::default().with_concurrency(channels, workers),
    )
}

/// [`rig`] whose daemon takes *all* host-side knobs (channels, workers,
/// I/O-engine chunk size) from `config` — the config later passed to
/// `mount` must agree with it.
#[must_use]
pub fn rig_cfg(
    n_gpus: usize,
    gpu_mem_bytes: usize,
    host_mem_bytes: u64,
    timings: &Timings,
    config: &GpufsConfig,
) -> Rig {
    let fs = paper_host_fs(timings, host_mem_bytes);
    let spec = paper_gpu_spec(gpu_mem_bytes);
    let gpus: Vec<Arc<Gpu>> = (0..n_gpus)
        .map(|i| Arc::new(Gpu::with_timings(i, spec.clone(), timings)))
        .collect();
    let host = GpufsHost::with_config(Arc::clone(&fs), gpus.clone(), config);
    Rig { fs, host, gpus }
}

/// The paper-platform host file system every bench rig mounts over:
/// `host_mem_bytes` of RAM, 64 KB host-cache pages, host readahead 8.
/// One definition, so the fleet phases and the hand-assembled rigs can
/// never drift apart (the fleet-of-1 compat assertion depends on it).
fn paper_host_fs(timings: &Timings, host_mem_bytes: u64) -> Arc<HostFs> {
    Arc::new(HostFs::new(HostFsConfig {
        timings: timings.clone(),
        host_mem_bytes,
        cache_page_size: 64 << 10,
        readahead_pages: 8,
    }))
}

/// A TESLA C2075 with its memory budget pinned — the GPU every bench
/// rig and fleet simulates.
fn paper_gpu_spec(gpu_mem_bytes: usize) -> GpuSpec {
    GpuSpec {
        memory_bytes: gpu_mem_bytes,
        ..GpuSpec::tesla_c2075()
    }
}

/// The Figure 4 GPUfs phase: 28 threadblocks `gmmap` consecutive pages of
/// a 1.8 GB (scaled) file with a warm host page cache, at a given buffer
/// cache `page` size and readahead `window` (1 = the paper's strictly
/// on-demand paging). Returns the achieved throughput in MB/s.
///
/// Shared between the `fig4_seq_read` bench target and the `fig4_json`
/// perf-trajectory recorder so both measure the same thing.
///
/// # Panics
///
/// Panics if the rig cannot create or read the synthetic input file.
#[must_use]
pub fn fig4_gpufs_phase(file_bytes: u64, page: usize, window: usize) -> f64 {
    fig4_gpufs_phase_chunk(file_bytes, page, window, None)
}

/// [`fig4_gpufs_phase`] with the daemon's I/O-engine chunk size pinned:
/// `Some(0)` is the serialized engine (the PR-3 compat baseline), `None`
/// the config default.
///
/// # Panics
///
/// Panics if the rig cannot create or read the synthetic input file.
#[must_use]
pub fn fig4_gpufs_phase_chunk(
    file_bytes: u64,
    page: usize,
    window: usize,
    io_chunk: Option<usize>,
) -> f64 {
    let t = Timings::default();
    let cache = (file_bytes as usize + 16 * page).next_power_of_two();
    let mut cfg = GpufsConfig::new(page, cache).with_readahead(window);
    if let Some(chunk) = io_chunk {
        cfg = cfg.with_io_chunk(chunk);
    }
    let r = rig_cfg(1, cache + (64 << 20), 8 << 30, &t, &cfg);
    let mount = r.host.mount(0, cfg).unwrap();
    throughput_mb_s(
        file_bytes,
        fig4_drive(&r.fs, &r.gpus[0], &mount, file_bytes, page),
    )
}

/// The Figure-4 measurement proper, shared by every assembly of the rig
/// (hand-built single mount, daemon pool, fleet of one): create and
/// warm the synthetic input on `fs` (keep residency, reset time, as the
/// paper does), then run the paper's 28-threadblock sequential `gmmap`
/// walk on (`gpu`, `mount`). One body means the fleet-of-1 compat
/// assertion in `fig_scale_json` always compares identical workloads.
fn fig4_drive(
    fs: &Arc<HostFs>,
    gpu: &Arc<Gpu>,
    mount: &Arc<gpufs::GpuFsMount>,
    file_bytes: u64,
    page: usize,
) -> Nanos {
    fs.create_synthetic("/seq.bin", file_bytes, 4).unwrap();
    let _ = fs.read_whole("/seq.bin", 0).unwrap();
    fs.reset_device_time();
    let blocks = gpu.spec().concurrent_blocks(); // 28, as in the paper
    let per_block = file_bytes / blocks as u64;
    let res = gpu.launch(Grid::new(blocks, 256), 0, |blk| {
        let fd = mount.open(blk, "/seq.bin", GOpenMode::ReadOnly).unwrap();
        let base = blk.block_id() as u64 * per_block;
        let mut off = 0u64;
        // Map one page at a time until the block's range is fetched; the
        // data itself is not touched (paper §5.1.1).
        while off < per_block {
            let map = mount.mmap(blk, &fd, base + off, page).unwrap();
            let got = map.len() as u64;
            mount.munmap(blk, map);
            off += got;
        }
        mount.close(blk, fd).unwrap();
    });
    res.elapsed()
}

/// The Figure 5 workload: the Figure 4 sequential read re-run under a
/// daemon pool of `workers` threads over `channels` RPC channels, with
/// whatever timing components `timings` has surgically removed. Returns
/// the elapsed virtual time.
///
/// Shared between the `fig5_breakdown` bench target and the `fig5_json`
/// perf-trajectory recorder so both measure the same thing.
///
/// # Panics
///
/// Panics if the rig cannot create or read the synthetic input file.
#[must_use]
pub fn fig5_phase(
    file_bytes: u64,
    page: usize,
    timings: &Timings,
    channels: usize,
    workers: usize,
) -> Nanos {
    let cache = (file_bytes as usize + 16 * page).next_power_of_two();
    let r = rig_pool(1, cache + (64 << 20), 8 << 30, timings, channels, workers);
    let mount = r
        .host
        .mount(
            0,
            GpufsConfig::new(page, cache).with_concurrency(channels, workers),
        )
        .unwrap();
    // fig4_drive creates and warms the input itself.
    fig4_drive(&r.fs, &r.gpus[0], &mount, file_bytes, page)
}

/// The per-stream pipeline breakdown workload behind the fig5 JSONL
/// record's `pipe` sweep: **one** threadblock streams a file
/// sequentially at readahead `window`, so every `ReadPages` RPC is a
/// full batch and the measurement isolates what the daemon's I/O engine
/// does *inside* one RPC — with 28 saturating blocks the shared PCIe
/// direction hides it. `io_chunk` pins the engine (`Some(0)` =
/// serialized, `None` = default). Returns the elapsed virtual time; run
/// with component-excluded [`Timings`] copies for the breakdown.
///
/// # Panics
///
/// Panics if the rig cannot create or read the synthetic input file.
#[must_use]
pub fn fig5_pipe_phase(
    file_bytes: u64,
    page: usize,
    timings: &Timings,
    window: usize,
    io_chunk: Option<usize>,
) -> Nanos {
    let cache = (file_bytes as usize + 16 * page).next_power_of_two();
    let mut cfg = GpufsConfig::new(page, cache).with_readahead(window);
    if let Some(chunk) = io_chunk {
        cfg = cfg.with_io_chunk(chunk);
    }
    let r = rig_cfg(1, cache + (64 << 20), 8 << 30, timings, &cfg);
    r.fs.create_synthetic("/seq.bin", file_bytes, 4).unwrap();
    let _ = r.fs.read_whole("/seq.bin", 0).unwrap();
    r.fs.reset_device_time();

    let mount = r.host.mount(0, cfg).unwrap();
    let res = r.gpus[0].launch(Grid::new(1, 256), 0, |blk| {
        let fd = mount.open(blk, "/seq.bin", GOpenMode::ReadOnly).unwrap();
        let mut off = 0u64;
        while off < file_bytes {
            let map = mount.mmap(blk, &fd, off, page).unwrap();
            let got = map.len() as u64;
            mount.munmap(blk, map);
            off += got;
        }
        mount.close(blk, fd).unwrap();
    });
    res.elapsed()
}

/// [`fig5_pipe_phase`] with the daemon's read-staging depth also pinned
/// (`2` = double-buffering, the prior engine bit-for-bit; ≥ 3 = the
/// depth-k staging ring with early response and per-page ready times).
///
/// # Panics
///
/// Panics if the rig cannot create or read the synthetic input file.
#[must_use]
pub fn fig5_pipe_phase_depth(
    file_bytes: u64,
    page: usize,
    timings: &Timings,
    window: usize,
    io_chunk: Option<usize>,
    io_depth: usize,
) -> Nanos {
    let cache = (file_bytes as usize + 16 * page).next_power_of_two();
    let mut cfg = GpufsConfig::new(page, cache)
        .with_readahead(window)
        .with_io_depth(io_depth);
    if let Some(chunk) = io_chunk {
        cfg = cfg.with_io_chunk(chunk);
    }
    let r = rig_cfg(1, cache + (64 << 20), 8 << 30, timings, &cfg);
    r.fs.create_synthetic("/seq.bin", file_bytes, 4).unwrap();
    let _ = r.fs.read_whole("/seq.bin", 0).unwrap();
    r.fs.reset_device_time();

    let mount = r.host.mount(0, cfg).unwrap();
    let res = r.gpus[0].launch(Grid::new(1, 256), 0, |blk| {
        let fd = mount.open(blk, "/seq.bin", GOpenMode::ReadOnly).unwrap();
        let mut off = 0u64;
        while off < file_bytes {
            let map = mount.mmap(blk, &fd, off, page).unwrap();
            let got = map.len() as u64;
            mount.munmap(blk, map);
            off += got;
        }
        mount.close(blk, fd).unwrap();
    });
    res.elapsed()
}

/// Outcome of one [`fig7_phase`] run.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Outcome {
    /// Hit-path throughput: `blocks × file_bytes` / elapsed, MB/s.
    pub mb_s: f64,
    /// Accesses that completed purely lock-free (paper Table 2).
    pub lockfree: u64,
    /// Accesses that locked or retried (paper counts retries here too).
    pub locked: u64,
    /// Buffer-cache hits during the measured pass.
    pub hits: u64,
    /// Buffer-cache misses during the measured pass (0 once warm).
    pub misses: u64,
}

/// The Figure 7 / Table 2 workload: `blocks` threadblocks concurrently
/// re-walk one fully cached file (warmed by a prior pass whose counters
/// are discarded), so every access rides the buffer-cache hit path and
/// the lock-free vs. locked protocol is the only variable.
/// `force_locked` pins every lookup to the fpage lock — the paper's
/// "locked" ablation series, which pays the radix-lock convoy of all
/// concurrently resident blocks on each access.
///
/// # Panics
///
/// Panics if the rig cannot create or read the synthetic input file.
#[must_use]
pub fn fig7_phase(file_bytes: u64, page: usize, blocks: usize, force_locked: bool) -> Fig7Outcome {
    let t = Timings::default();
    let cache = (file_bytes as usize + 16 * page).next_power_of_two();
    let mut cfg = GpufsConfig::new(page, cache);
    cfg.force_locked = force_locked;
    let r = rig_cfg(1, cache + (64 << 20), 8 << 30, &t, &cfg);
    r.fs.create_synthetic("/hot.bin", file_bytes, 7).unwrap();
    let _ = r.fs.read_whole("/hot.bin", 0).unwrap();
    let mount = r.host.mount(0, cfg).unwrap();

    let walk = |blk: &mut gpusim::BlockCtx<'_>| {
        let fd = mount.open(blk, "/hot.bin", GOpenMode::ReadOnly).unwrap();
        let mut off = 0u64;
        while off < file_bytes {
            let map = mount.mmap(blk, &fd, off, page).unwrap();
            let got = map.len() as u64;
            mount.munmap(blk, map);
            off += got;
        }
        mount.close(blk, fd).unwrap();
    };
    // Warm pass: one block faults the whole file into the buffer cache.
    let warm = r.gpus[0].launch(Grid::new(1, 256), 0, |blk| walk(blk));
    mount.counters().reset();
    // Measured pass: `blocks` blocks hammer the same (Ready) pages. It
    // launches at the warm pass's virtual end so the pages' absolute
    // `ready_at` stamps are already in every block's past — measuring
    // the hit protocol, not an echo of the warm pass's miss schedule.
    let res = r.gpus[0].launch(Grid::new(blocks, 256), warm.end, |blk| walk(blk));
    let c = mount.counters();
    Fig7Outcome {
        mb_s: throughput_mb_s(blocks as u64 * file_bytes, res.elapsed()),
        lockfree: c.lockfree_accesses.get(),
        locked: c.locked_accesses.get(),
        hits: c.hits.get(),
        misses: c.misses.get(),
    }
}

/// Outcome of one [`write_phase`] run.
#[derive(Debug, Clone, Copy)]
pub struct WritePhase {
    /// Achieved write-back throughput in MB/s.
    pub mb_s: f64,
    /// `WritePages` round-trips the mount issued.
    pub write_rpcs: u64,
    /// Total pages those round-trips carried.
    pub pages_per_write_rpc: u64,
}

/// The write-throughput sweep workload: the Figure 4 geometry inverted —
/// 28 threadblocks `gwrite` disjoint regions of one fresh `O_GWRONCE`
/// output file, then `gfsync` it, at a given buffer-cache `page` size and
/// write-back batch cap (`write_batch = 1` is the original per-page
/// write-back RPC). Returns the achieved throughput and RPC counts.
///
/// # Panics
///
/// Panics if the rig cannot serve the workload.
#[must_use]
pub fn write_phase(
    file_bytes: u64,
    page: usize,
    write_batch: usize,
    channels: usize,
    workers: usize,
) -> WritePhase {
    write_phase_chunk(file_bytes, page, write_batch, channels, workers, None)
}

/// [`write_phase`] with the daemon's I/O-engine chunk size pinned
/// (`Some(0)` = the serialized engine, `None` = the config default).
///
/// # Panics
///
/// Panics if the rig cannot serve the workload.
#[must_use]
pub fn write_phase_chunk(
    file_bytes: u64,
    page: usize,
    write_batch: usize,
    channels: usize,
    workers: usize,
    io_chunk: Option<usize>,
) -> WritePhase {
    write_phase_cfg(
        file_bytes,
        page,
        write_batch,
        channels,
        workers,
        io_chunk,
        0,
        0,
    )
}

/// [`write_phase_chunk`] with asynchronous write-back enabled behind the
/// `dirty_high` / `dirty_low` watermark pair (`0, 0` = the synchronous
/// write-back of the plain phase): the mount's background flusher ships
/// dirty pages while the kernel keeps writing, so `gfsync` finds most of
/// the file already on the host.
///
/// # Panics
///
/// Panics if the rig cannot serve the workload.
#[must_use]
pub fn write_phase_async(
    file_bytes: u64,
    page: usize,
    write_batch: usize,
    channels: usize,
    workers: usize,
    dirty_high: usize,
    dirty_low: usize,
) -> WritePhase {
    write_phase_cfg(
        file_bytes,
        page,
        write_batch,
        channels,
        workers,
        None,
        dirty_high,
        dirty_low,
    )
}

#[allow(clippy::too_many_arguments)]
#[must_use]
fn write_phase_cfg(
    file_bytes: u64,
    page: usize,
    write_batch: usize,
    channels: usize,
    workers: usize,
    io_chunk: Option<usize>,
    dirty_high: usize,
    dirty_low: usize,
) -> WritePhase {
    let t = Timings::default();
    // Cache holds the whole file: this measures the write-back path, not
    // eviction.
    let cache = (file_bytes as usize + 16 * page).next_power_of_two();
    let mut cfg = GpufsConfig::new(page, cache)
        .with_concurrency(channels, workers)
        .with_write_batch(write_batch)
        .with_async_writeback(dirty_high, dirty_low);
    if let Some(chunk) = io_chunk {
        cfg = cfg.with_io_chunk(chunk);
    }
    let r = rig_cfg(1, cache + (64 << 20), 8 << 30, &t, &cfg);
    let mount = r.host.mount(0, cfg).unwrap();
    let blocks = r.gpus[0].spec().concurrent_blocks(); // 28, as in the paper
    let per_block = file_bytes / blocks as u64;
    let payload = vec![0xa5u8; page];
    let res = r.gpus[0].launch(Grid::new(blocks, 256), 0, |blk| {
        let fd = mount.open(blk, "/out.bin", GOpenMode::WriteOnce).unwrap();
        let base = blk.block_id() as u64 * per_block;
        let mut off = 0u64;
        while off < per_block {
            let n = (per_block - off).min(page as u64) as usize;
            mount.write(blk, &fd, base + off, &payload[..n]).unwrap();
            off += n as u64;
        }
        mount.fsync(blk, &fd).unwrap();
        mount.close(blk, fd).unwrap();
    });
    WritePhase {
        mb_s: throughput_mb_s(file_bytes, res.elapsed()),
        write_rpcs: mount.counters().write_rpcs.get(),
        pages_per_write_rpc: mount.counters().pages_per_write_rpc.get(),
    }
}

/// [`fig4_gpufs_phase`] run through a [`gpufs::cluster::GpuFleet`] of
/// **one** GPU instead of a hand-assembled rig: the cluster layer must
/// be a zero-cost composition — a fleet of size 1 is the recorded
/// single-mount configuration, so this must reproduce
/// `fig4_gpufs_phase`'s number to four digits (asserted by the
/// `fig_scale_json` recorder).
///
/// # Panics
///
/// Panics if the fleet cannot be built or the input file not created.
#[must_use]
pub fn fig4_fleet_phase(file_bytes: u64, page: usize, window: usize) -> f64 {
    let t = Timings::default();
    let cache = (file_bytes as usize + 16 * page).next_power_of_two();
    let cfg = GpufsConfig::new(page, cache).with_readahead(window);
    // The exact host FS and GPU the single-mount phase assembles.
    let fs = paper_host_fs(&t, 8 << 30);
    let fleet = FleetBuilder::new(1)
        .spec(paper_gpu_spec(cache + (64 << 20)))
        .timings(t)
        .config(cfg)
        .host_fs(Arc::clone(&fs))
        .build()
        .expect("fleet of one");
    throughput_mb_s(
        file_bytes,
        fig4_drive(&fs, fleet.gpu(0), fleet.mount(0), file_bytes, page),
    )
}

/// Outcome of one [`scale_phase`] fleet run.
#[derive(Debug, Clone)]
pub struct ScaleOutcome {
    /// Aggregate scan throughput, corpus bytes / fleet elapsed, MB/s.
    pub mb_s: f64,
    /// Fleet elapsed virtual time (slowest GPU).
    pub elapsed: Nanos,
    /// Work items migrated between shards.
    pub steals: u64,
    /// Database bytes scanned.
    pub bytes_scanned: u64,
}

/// Images per database file in the [`scale_phase`] corpora.
const SCALE_DB_IMAGES: usize = 384;
/// Vector elements per image (1 KB records).
const SCALE_DIM: usize = 256;
/// Queries matched against the corpus.
const SCALE_QUERIES: usize = 64;
/// Images per work-queue chunk.
const SCALE_CHUNK: usize = 16;

/// The multi-GPU image-search scaling workload behind `fig_scale_json`
/// (paper §6): `db_files` uniform databases (`weight[i]` scales file
/// `i`'s image count for skew experiments) are sharded across an
/// `n_gpus` fleet — 64 KB pages, 32 MB buffer cache per GPU, one shared
/// host FS with a warm page cache — and scanned exhaustively against
/// the query set under `strategy`.
///
/// # Panics
///
/// Panics if the fleet cannot be built or the search fails.
#[must_use]
pub fn scale_phase(
    n_gpus: usize,
    db_files: usize,
    weights: &[usize],
    strategy: ShardStrategy,
) -> ScaleOutcome {
    let t = Timings::default();
    let fs = paper_host_fs(&t, 8 << 30);
    let ds = gen_image_dataset(
        &fs,
        &ImageDatasetConfig {
            dir: "/scaledbs".into(),
            db_sizes: (0..db_files)
                .map(|f| SCALE_DB_IMAGES * weights.get(f).copied().unwrap_or(1))
                .collect(),
            n_queries: SCALE_QUERIES,
            dim: SCALE_DIM,
            match_fraction: 0.5,
            plant_in_first_db_prefix: false,
            seed: 1300,
        },
    );
    for path in ds.db_paths.iter().chain([&ds.query_path]) {
        let _ = fs.read_whole(path, 0).expect("warm host cache");
    }
    fs.reset_device_time();

    let fleet = FleetBuilder::new(n_gpus)
        .spec(paper_gpu_spec(256 << 20))
        .timings(t)
        .config(GpufsConfig::new(64 << 10, 32 << 20))
        .host_fs(Arc::clone(&fs))
        .build()
        .expect("scale fleet");
    let out = cluster_search(&fleet, &ds, 0.5, SCALE_CHUNK, strategy).expect("cluster search");
    assert_eq!(
        out.matches, ds.planted,
        "sharding must never change results"
    );
    ScaleOutcome {
        mb_s: throughput_mb_s(out.bytes_scanned, out.elapsed),
        elapsed: out.elapsed,
        steals: out.steals,
        bytes_scanned: out.bytes_scanned,
    }
}

/// Outcome of one [`dist_phase`] cross-host fleet run.
#[derive(Debug, Clone)]
pub struct DistOutcome {
    /// Aggregate scan throughput, corpus bytes / fleet elapsed, MB/s.
    pub mb_s: f64,
    /// Fleet elapsed virtual time (slowest GPU).
    pub elapsed: Nanos,
    /// Work items migrated between shards.
    pub steals: u64,
    /// Database bytes scanned.
    pub bytes_scanned: u64,
    /// Host-cache hits summed over every host proxy.
    pub host_hits: u64,
    /// Host-cache misses summed over every host proxy.
    pub host_misses: u64,
    /// `host_hits / (host_hits + host_misses)`, `0.0` when the caches
    /// saw no traffic (disabled, or a single host that never re-reads).
    pub hit_ratio: f64,
    /// Wire round-trips summed over every host proxy.
    pub wire_rpcs: u64,
}

/// The [`scale_phase`] image-search workload run across hosts: the same
/// corpus, queries, page/cache budgets, and work-stealing shard policy,
/// but the `hosts * gpus_per_host` GPUs sit behind per-host
/// [`gpufs::HostProxy`]s talking to one storage server over simulated
/// links (`net_rtt_ns` / `net_mb_s`; both zero = the time-transparent
/// link), each host fronted by a `cache_pages`-page host page cache
/// (0 = disabled).
///
/// With one host, zero network, and the cache off this must reproduce
/// [`scale_phase`] exactly — the recorder asserts that compat against
/// the recorded BENCH_scale strong-scaling numbers.
///
/// # Panics
///
/// Panics if the fleet cannot be built or the search fails.
#[must_use]
pub fn dist_phase(
    hosts: usize,
    gpus_per_host: usize,
    db_files: usize,
    net_rtt_ns: Nanos,
    net_mb_s: f64,
    cache_pages: usize,
) -> DistOutcome {
    let t = Timings {
        net_rtt_ns,
        net_mb_s,
        ..Timings::default()
    };
    let fs = paper_host_fs(&t, 8 << 30);
    let ds = gen_image_dataset(
        &fs,
        &ImageDatasetConfig {
            dir: "/scaledbs".into(),
            db_sizes: vec![SCALE_DB_IMAGES; db_files],
            n_queries: SCALE_QUERIES,
            dim: SCALE_DIM,
            match_fraction: 0.5,
            plant_in_first_db_prefix: false,
            seed: 1300,
        },
    );
    for path in ds.db_paths.iter().chain([&ds.query_path]) {
        let _ = fs.read_whole(path, 0).expect("warm host cache");
    }
    fs.reset_device_time();

    let fleet = HostFleet::builder(hosts, gpus_per_host)
        .spec(paper_gpu_spec(256 << 20))
        .timings(t)
        .config(GpufsConfig::new(64 << 10, 32 << 20))
        .storage_fs(Arc::clone(&fs))
        .host_cache_pages(cache_pages)
        .build()
        .expect("dist fleet");
    let out = cluster_search(&fleet, &ds, 0.5, SCALE_CHUNK, ShardStrategy::WorkStealing)
        .expect("cluster search");
    assert_eq!(
        out.matches, ds.planted,
        "the host split must never change results"
    );
    let (mut hits, mut misses, mut wire_rpcs) = (0u64, 0u64, 0u64);
    for h in 0..hosts {
        let proxy = fleet.proxy(h);
        hits += proxy.cache().stats().hits.get();
        misses += proxy.cache().stats().misses.get();
        wire_rpcs += proxy.wire().wire_rpcs.get();
    }
    let looked_up = hits + misses;
    DistOutcome {
        mb_s: throughput_mb_s(out.bytes_scanned, out.elapsed),
        elapsed: out.elapsed,
        steals: out.steals,
        bytes_scanned: out.bytes_scanned,
        host_hits: hits,
        host_misses: misses,
        hit_ratio: if looked_up == 0 {
            0.0
        } else {
            hits as f64 / looked_up as f64
        },
        wire_rpcs,
    }
}

/// Virtual nanoseconds → seconds.
#[must_use]
pub fn secs(ns: Nanos) -> f64 {
    ns as f64 / 1e9
}

/// Virtual nanoseconds → milliseconds.
#[must_use]
pub fn millis(ns: Nanos) -> f64 {
    ns as f64 / 1e6
}

/// Human-readable byte size (KB/MB with power-of-two units).
#[must_use]
pub fn human_size(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else {
        format!("{}K", bytes >> 10)
    }
}

/// Print a bench banner.
pub fn banner(title: &str, notes: &str) {
    println!("\n=== {title} ===");
    if !notes.is_empty() {
        println!("{notes}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_sizes_match_paper_axis() {
        assert_eq!(PAGE_SIZES.len(), 11);
        assert_eq!(PAGE_SIZES[0], 16 << 10);
        assert_eq!(*PAGE_SIZES.last().unwrap(), 16 << 20);
        assert!(PAGE_SIZES.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(16 << 10), "16K");
        assert_eq!(human_size(2 << 20), "2M");
    }

    #[test]
    fn rig_assembles() {
        let r = rig(2, 32 << 20, 1 << 30, &Timings::default());
        assert_eq!(r.gpus.len(), 2);
        assert!(r.fs.mem().capacity() == 1 << 30);
        assert_eq!(r.host.gpus().len(), 2);
    }
}
