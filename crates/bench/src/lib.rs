//! Shared plumbing for the experiment harnesses (`benches/`).
//!
//! Each `harness = false` bench target regenerates one figure or table of
//! the paper, printing the same rows/series the paper reports, side by
//! side with the paper's published numbers where useful. Dataset sizes are
//! scaled down by [`SCALE`] (documented in EXPERIMENTS.md): all cache
//! budgets and inputs shrink together, so crossover points land at the
//! same relative positions while keeping bench wall time in seconds.

use std::sync::Arc;

use gpufs::GpufsHost;
use gpusim::{Gpu, GpuSpec};
use hostfs::{HostFs, HostFsConfig};
use simtime::{Nanos, Timings};

/// Dataset scale-down factor relative to the paper's testbed.
pub const SCALE: u64 = 16;

/// The page sizes swept in Figures 4–6 (16 KB – 16 MB).
pub const PAGE_SIZES: &[usize] = &[
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
    8 << 20,
    16 << 20,
];

/// A freshly assembled host + GPUs, ready to mount GPUfs on.
pub struct Rig {
    /// The host file system.
    pub fs: Arc<HostFs>,
    /// The GPUfs host daemon.
    pub host: GpufsHost,
    /// The GPUs.
    pub gpus: Vec<Arc<Gpu>>,
}

/// Build a rig with `n_gpus` GPUs of `gpu_mem_bytes` device memory each,
/// `host_mem_bytes` of host RAM (page cache + pinned pool), and `timings`.
#[must_use]
pub fn rig(n_gpus: usize, gpu_mem_bytes: usize, host_mem_bytes: u64, timings: &Timings) -> Rig {
    let fs = Arc::new(HostFs::new(HostFsConfig {
        timings: timings.clone(),
        host_mem_bytes,
        cache_page_size: 64 << 10,
        readahead_pages: 8,
    }));
    let spec = GpuSpec {
        memory_bytes: gpu_mem_bytes,
        ..GpuSpec::tesla_c2075()
    };
    let gpus: Vec<Arc<Gpu>> = (0..n_gpus)
        .map(|i| Arc::new(Gpu::with_timings(i, spec.clone(), timings)))
        .collect();
    let host = GpufsHost::new(Arc::clone(&fs), gpus.clone());
    Rig { fs, host, gpus }
}

/// Virtual nanoseconds → seconds.
#[must_use]
pub fn secs(ns: Nanos) -> f64 {
    ns as f64 / 1e9
}

/// Virtual nanoseconds → milliseconds.
#[must_use]
pub fn millis(ns: Nanos) -> f64 {
    ns as f64 / 1e6
}

/// Human-readable byte size (KB/MB with power-of-two units).
#[must_use]
pub fn human_size(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else {
        format!("{}K", bytes >> 10)
    }
}

/// Print a bench banner.
pub fn banner(title: &str, notes: &str) {
    println!("\n=== {title} ===");
    if !notes.is_empty() {
        println!("{notes}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_sizes_match_paper_axis() {
        assert_eq!(PAGE_SIZES.len(), 11);
        assert_eq!(PAGE_SIZES[0], 16 << 10);
        assert_eq!(*PAGE_SIZES.last().unwrap(), 16 << 20);
        assert!(PAGE_SIZES.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(16 << 10), "16K");
        assert_eq!(human_size(2 << 20), "2M");
    }

    #[test]
    fn rig_assembles() {
        let r = rig(2, 32 << 20, 1 << 30, &Timings::default());
        assert_eq!(r.gpus.len(), 2);
        assert!(r.fs.mem().capacity() == 1 << 30);
        assert_eq!(r.host.gpus().len(), 2);
    }
}
