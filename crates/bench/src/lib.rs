//! Shared plumbing for the experiment harnesses (`benches/`).
//!
//! Each `harness = false` bench target regenerates one figure or table of
//! the paper, printing the same rows/series the paper reports, side by
//! side with the paper's published numbers where useful. Dataset sizes are
//! scaled down by [`SCALE`] (documented in EXPERIMENTS.md): all cache
//! budgets and inputs shrink together, so crossover points land at the
//! same relative positions while keeping bench wall time in seconds.

use std::sync::Arc;

use gpufs::{GOpenMode, GpufsConfig, GpufsHost};
use gpusim::{Gpu, GpuSpec, Grid};
use hostfs::{HostFs, HostFsConfig};
use simtime::{throughput_mb_s, Nanos, Timings};

/// Dataset scale-down factor relative to the paper's testbed.
pub const SCALE: u64 = 16;

/// The page sizes swept in Figures 4–6 (16 KB – 16 MB).
pub const PAGE_SIZES: &[usize] = &[
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    2 << 20,
    4 << 20,
    8 << 20,
    16 << 20,
];

/// A freshly assembled host + GPUs, ready to mount GPUfs on.
pub struct Rig {
    /// The host file system.
    pub fs: Arc<HostFs>,
    /// The GPUfs host daemon.
    pub host: GpufsHost,
    /// The GPUs.
    pub gpus: Vec<Arc<Gpu>>,
}

/// Build a rig with `n_gpus` GPUs of `gpu_mem_bytes` device memory each,
/// `host_mem_bytes` of host RAM (page cache + pinned pool), and `timings`.
#[must_use]
pub fn rig(n_gpus: usize, gpu_mem_bytes: usize, host_mem_bytes: u64, timings: &Timings) -> Rig {
    rig_pool(n_gpus, gpu_mem_bytes, host_mem_bytes, timings, 1, 1)
}

/// [`rig`] with the daemon concurrency knobs: `channels` independent RPC
/// channels served by `workers` daemon threads.
#[must_use]
pub fn rig_pool(
    n_gpus: usize,
    gpu_mem_bytes: usize,
    host_mem_bytes: u64,
    timings: &Timings,
    channels: usize,
    workers: usize,
) -> Rig {
    rig_cfg(
        n_gpus,
        gpu_mem_bytes,
        host_mem_bytes,
        timings,
        &GpufsConfig::default().with_concurrency(channels, workers),
    )
}

/// [`rig`] whose daemon takes *all* host-side knobs (channels, workers,
/// I/O-engine chunk size) from `config` — the config later passed to
/// `mount` must agree with it.
#[must_use]
pub fn rig_cfg(
    n_gpus: usize,
    gpu_mem_bytes: usize,
    host_mem_bytes: u64,
    timings: &Timings,
    config: &GpufsConfig,
) -> Rig {
    let fs = Arc::new(HostFs::new(HostFsConfig {
        timings: timings.clone(),
        host_mem_bytes,
        cache_page_size: 64 << 10,
        readahead_pages: 8,
    }));
    let spec = GpuSpec {
        memory_bytes: gpu_mem_bytes,
        ..GpuSpec::tesla_c2075()
    };
    let gpus: Vec<Arc<Gpu>> = (0..n_gpus)
        .map(|i| Arc::new(Gpu::with_timings(i, spec.clone(), timings)))
        .collect();
    let host = GpufsHost::with_config(Arc::clone(&fs), gpus.clone(), config);
    Rig { fs, host, gpus }
}

/// The Figure 4 GPUfs phase: 28 threadblocks `gmmap` consecutive pages of
/// a 1.8 GB (scaled) file with a warm host page cache, at a given buffer
/// cache `page` size and readahead `window` (1 = the paper's strictly
/// on-demand paging). Returns the achieved throughput in MB/s.
///
/// Shared between the `fig4_seq_read` bench target and the `fig4_json`
/// perf-trajectory recorder so both measure the same thing.
///
/// # Panics
///
/// Panics if the rig cannot create or read the synthetic input file.
#[must_use]
pub fn fig4_gpufs_phase(file_bytes: u64, page: usize, window: usize) -> f64 {
    fig4_gpufs_phase_chunk(file_bytes, page, window, None)
}

/// [`fig4_gpufs_phase`] with the daemon's I/O-engine chunk size pinned:
/// `Some(0)` is the serialized engine (the PR-3 compat baseline), `None`
/// the config default.
///
/// # Panics
///
/// Panics if the rig cannot create or read the synthetic input file.
#[must_use]
pub fn fig4_gpufs_phase_chunk(
    file_bytes: u64,
    page: usize,
    window: usize,
    io_chunk: Option<usize>,
) -> f64 {
    let t = Timings::default();
    let cache = (file_bytes as usize + 16 * page).next_power_of_two();
    let mut cfg = GpufsConfig::new(page, cache).with_readahead(window);
    if let Some(chunk) = io_chunk {
        cfg = cfg.with_io_chunk(chunk);
    }
    let r = rig_cfg(1, cache + (64 << 20), 8 << 30, &t, &cfg);
    r.fs.create_synthetic("/seq.bin", file_bytes, 4).unwrap();
    // Warm host page cache, as the paper does; keep residency, reset time.
    let _ = r.fs.read_whole("/seq.bin", 0).unwrap();
    r.fs.reset_device_time();

    let mount = r.host.mount(0, cfg).unwrap();
    let blocks = r.gpus[0].spec().concurrent_blocks(); // 28, as in the paper
    let per_block = file_bytes / blocks as u64;
    let res = r.gpus[0].launch(Grid::new(blocks, 256), 0, |blk| {
        let fd = mount.open(blk, "/seq.bin", GOpenMode::ReadOnly).unwrap();
        let base = blk.block_id() as u64 * per_block;
        let mut off = 0u64;
        // Map one page at a time until the block's range is fetched; the
        // data itself is not touched (paper §5.1.1).
        while off < per_block {
            let map = mount.mmap(blk, &fd, base + off, page).unwrap();
            let got = map.len() as u64;
            mount.munmap(blk, map);
            off += got;
        }
        mount.close(blk, fd).unwrap();
    });
    throughput_mb_s(file_bytes, res.elapsed())
}

/// The Figure 5 workload: the Figure 4 sequential read re-run under a
/// daemon pool of `workers` threads over `channels` RPC channels, with
/// whatever timing components `timings` has surgically removed. Returns
/// the elapsed virtual time.
///
/// Shared between the `fig5_breakdown` bench target and the `fig5_json`
/// perf-trajectory recorder so both measure the same thing.
///
/// # Panics
///
/// Panics if the rig cannot create or read the synthetic input file.
#[must_use]
pub fn fig5_phase(
    file_bytes: u64,
    page: usize,
    timings: &Timings,
    channels: usize,
    workers: usize,
) -> Nanos {
    let cache = (file_bytes as usize + 16 * page).next_power_of_two();
    let r = rig_pool(1, cache + (64 << 20), 8 << 30, timings, channels, workers);
    r.fs.create_synthetic("/seq.bin", file_bytes, 4).unwrap();
    let _ = r.fs.read_whole("/seq.bin", 0).unwrap();
    r.fs.reset_device_time();

    let mount = r
        .host
        .mount(
            0,
            GpufsConfig::new(page, cache).with_concurrency(channels, workers),
        )
        .unwrap();
    let blocks = r.gpus[0].spec().concurrent_blocks();
    let per_block = file_bytes / blocks as u64;
    let res = r.gpus[0].launch(Grid::new(blocks, 256), 0, |blk| {
        let fd = mount.open(blk, "/seq.bin", GOpenMode::ReadOnly).unwrap();
        let base = blk.block_id() as u64 * per_block;
        let mut off = 0u64;
        while off < per_block {
            let map = mount.mmap(blk, &fd, base + off, page).unwrap();
            let got = map.len() as u64;
            mount.munmap(blk, map);
            off += got;
        }
        mount.close(blk, fd).unwrap();
    });
    res.elapsed()
}

/// The per-stream pipeline breakdown workload behind the fig5 JSONL
/// record's `pipe` sweep: **one** threadblock streams a file
/// sequentially at readahead `window`, so every `ReadPages` RPC is a
/// full batch and the measurement isolates what the daemon's I/O engine
/// does *inside* one RPC — with 28 saturating blocks the shared PCIe
/// direction hides it. `io_chunk` pins the engine (`Some(0)` =
/// serialized, `None` = default). Returns the elapsed virtual time; run
/// with component-excluded [`Timings`] copies for the breakdown.
///
/// # Panics
///
/// Panics if the rig cannot create or read the synthetic input file.
#[must_use]
pub fn fig5_pipe_phase(
    file_bytes: u64,
    page: usize,
    timings: &Timings,
    window: usize,
    io_chunk: Option<usize>,
) -> Nanos {
    let cache = (file_bytes as usize + 16 * page).next_power_of_two();
    let mut cfg = GpufsConfig::new(page, cache).with_readahead(window);
    if let Some(chunk) = io_chunk {
        cfg = cfg.with_io_chunk(chunk);
    }
    let r = rig_cfg(1, cache + (64 << 20), 8 << 30, timings, &cfg);
    r.fs.create_synthetic("/seq.bin", file_bytes, 4).unwrap();
    let _ = r.fs.read_whole("/seq.bin", 0).unwrap();
    r.fs.reset_device_time();

    let mount = r.host.mount(0, cfg).unwrap();
    let res = r.gpus[0].launch(Grid::new(1, 256), 0, |blk| {
        let fd = mount.open(blk, "/seq.bin", GOpenMode::ReadOnly).unwrap();
        let mut off = 0u64;
        while off < file_bytes {
            let map = mount.mmap(blk, &fd, off, page).unwrap();
            let got = map.len() as u64;
            mount.munmap(blk, map);
            off += got;
        }
        mount.close(blk, fd).unwrap();
    });
    res.elapsed()
}

/// Outcome of one [`write_phase`] run.
#[derive(Debug, Clone, Copy)]
pub struct WritePhase {
    /// Achieved write-back throughput in MB/s.
    pub mb_s: f64,
    /// `WritePages` round-trips the mount issued.
    pub write_rpcs: u64,
    /// Total pages those round-trips carried.
    pub pages_per_write_rpc: u64,
}

/// The write-throughput sweep workload: the Figure 4 geometry inverted —
/// 28 threadblocks `gwrite` disjoint regions of one fresh `O_GWRONCE`
/// output file, then `gfsync` it, at a given buffer-cache `page` size and
/// write-back batch cap (`write_batch = 1` is the original per-page
/// write-back RPC). Returns the achieved throughput and RPC counts.
///
/// # Panics
///
/// Panics if the rig cannot serve the workload.
#[must_use]
pub fn write_phase(
    file_bytes: u64,
    page: usize,
    write_batch: usize,
    channels: usize,
    workers: usize,
) -> WritePhase {
    write_phase_chunk(file_bytes, page, write_batch, channels, workers, None)
}

/// [`write_phase`] with the daemon's I/O-engine chunk size pinned
/// (`Some(0)` = the serialized engine, `None` = the config default).
///
/// # Panics
///
/// Panics if the rig cannot serve the workload.
#[must_use]
pub fn write_phase_chunk(
    file_bytes: u64,
    page: usize,
    write_batch: usize,
    channels: usize,
    workers: usize,
    io_chunk: Option<usize>,
) -> WritePhase {
    let t = Timings::default();
    // Cache holds the whole file: this measures the write-back path, not
    // eviction.
    let cache = (file_bytes as usize + 16 * page).next_power_of_two();
    let mut cfg = GpufsConfig::new(page, cache)
        .with_concurrency(channels, workers)
        .with_write_batch(write_batch);
    if let Some(chunk) = io_chunk {
        cfg = cfg.with_io_chunk(chunk);
    }
    let r = rig_cfg(1, cache + (64 << 20), 8 << 30, &t, &cfg);
    let mount = r.host.mount(0, cfg).unwrap();
    let blocks = r.gpus[0].spec().concurrent_blocks(); // 28, as in the paper
    let per_block = file_bytes / blocks as u64;
    let payload = vec![0xa5u8; page];
    let res = r.gpus[0].launch(Grid::new(blocks, 256), 0, |blk| {
        let fd = mount.open(blk, "/out.bin", GOpenMode::WriteOnce).unwrap();
        let base = blk.block_id() as u64 * per_block;
        let mut off = 0u64;
        while off < per_block {
            let n = (per_block - off).min(page as u64) as usize;
            mount.write(blk, &fd, base + off, &payload[..n]).unwrap();
            off += n as u64;
        }
        mount.fsync(blk, &fd).unwrap();
        mount.close(blk, fd).unwrap();
    });
    WritePhase {
        mb_s: throughput_mb_s(file_bytes, res.elapsed()),
        write_rpcs: mount.counters().write_rpcs.get(),
        pages_per_write_rpc: mount.counters().pages_per_write_rpc.get(),
    }
}

/// Virtual nanoseconds → seconds.
#[must_use]
pub fn secs(ns: Nanos) -> f64 {
    ns as f64 / 1e9
}

/// Virtual nanoseconds → milliseconds.
#[must_use]
pub fn millis(ns: Nanos) -> f64 {
    ns as f64 / 1e6
}

/// Human-readable byte size (KB/MB with power-of-two units).
#[must_use]
pub fn human_size(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{}M", bytes >> 20)
    } else {
        format!("{}K", bytes >> 10)
    }
}

/// Print a bench banner.
pub fn banner(title: &str, notes: &str) {
    println!("\n=== {title} ===");
    if !notes.is_empty() {
        println!("{notes}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_sizes_match_paper_axis() {
        assert_eq!(PAGE_SIZES.len(), 11);
        assert_eq!(PAGE_SIZES[0], 16 << 10);
        assert_eq!(*PAGE_SIZES.last().unwrap(), 16 << 20);
        assert!(PAGE_SIZES.windows(2).all(|w| w[1] == w[0] * 2));
    }

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(16 << 10), "16K");
        assert_eq!(human_size(2 << 20), "2M");
    }

    #[test]
    fn rig_assembles() {
        let r = rig(2, 32 << 20, 1 << 30, &Timings::default());
        assert_eq!(r.gpus.len(), 2);
        assert!(r.fs.mem().capacity() == 1 << 30);
        assert_eq!(r.host.gpus().len(), 2);
    }
}
