//! Append one Figure-5 measurement record to `BENCH_fig5.json` (JSONL:
//! one JSON object per line, the same convention as `BENCH_fig4.json`),
//! so the repo carries its own breakdown + write-back perf trajectory
//! across commits.
//!
//! Run from the repository root (or anywhere — the output path can be
//! overridden):
//!
//! ```text
//! cargo run --release -p gpufs_bench --bin fig5_json [OUT_PATH]
//! ```
//!
//! Each record holds three sweeps:
//!
//! * `sweep` — the Figure-5 breakdown (total, −DMA, −file I/O, −both,
//!   in ms) of the 28-block window-1 workload under a 2-worker /
//!   4-channel pool: the PR-3 baseline, bit-for-bit insensitive to the
//!   I/O engine (window-1 batches are single-page), so every record
//!   doubles as the compat-reproduction proof. Its 64 KB overlap is
//!   recorded as `compat_overlap_64k` (recorded baseline: 0.973).
//! * `pipe` — the per-RPC pipeline breakdown: **one** threadblock
//!   streams at readahead window 8, where a batch is a real multi-page
//!   RPC and the daemon engine's internal serialization is the dominant
//!   term (28 saturating blocks hide it behind the shared PCIe
//!   direction). Per page size: the deep-staged total (`io_depth` =
//!   [`PIPE_DEPTH`]), the double-buffered total (`io_depth = 2`, the
//!   prior engine bit-for-bit — recorded as `overlap_64k_depth2` and
//!   asserted against its 0.598 baseline), the serialized total
//!   (`io_chunk_pages = 0`), and the component-excluded times. Every
//!   `overlap` in this sweep uses the **same yardstick**: the
//!   depth-2-engine `−DMA + −file I/O` denominator, so deepening the
//!   staging ring can only move the numerator — the headline
//!   `overlap_64k` is the deep engine measured against the
//!   double-buffered ideal, and the tentpole claim is that it closes
//!   from 0.598 toward the max(DMA, I/O)/sum floor.
//! * `write` — the 64 KB write-back sweep (batched cap 32 vs per-page
//!   RPCs) under the default engine, the serialized-engine batched
//!   number for the pipeline's before/after, and the asynchronous
//!   write-back number (`mb_s_async`): the same workload with the
//!   background flusher on, which must never fall below the recorded
//!   synchronous baseline.
//!
//! Set `GPUFS_BENCH_SMOKE=1` for a tiny-scale CI smoke run (write the
//! record to a scratch path, never the repo's BENCH file).

use std::io::Write;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use gpufs::GpufsConfig;
use gpufs_bench::{
    fig5_phase, fig5_pipe_phase_depth, millis, write_phase, write_phase_async, write_phase_chunk,
    PAGE_SIZES, SCALE,
};
use simtime::Timings;

/// Paper file: 1.8 GB, scaled like the bench target.
const FILE_BYTES: u64 = (1800 << 20) / SCALE;
/// Write sweep file: 512 MB scaled, as in the `write_throughput` bench.
const WRITE_BYTES: u64 = (512 << 20) / SCALE;
/// Pipe sweep file: a quarter of the Figure-5 file — one block streams
/// it alone, so the sweep stays in seconds of wall time.
const PIPE_BYTES: u64 = FILE_BYTES / 4;
/// Readahead window of the pipe sweep (the fig4 w8 batching geometry).
const PIPE_WINDOW: usize = 8;
const CHANNELS: usize = 4;
const WORKERS: usize = 2;
const WRITE_BATCH: usize = 32;
/// Staging depth of the deep-engine pipe sweep (the headline series);
/// `2` is the double-buffered compat engine every denominator uses.
const PIPE_DEPTH: usize = 4;
/// Async write-back watermarks of the `mb_s_async` probe: the flusher
/// engages above 32 dirty pages; the high mark sits beyond the sweep
/// file's page count, so the probe measures background draining without
/// the throttle serializing the 28 writer blocks behind the one flusher
/// lane (the throttle's own semantics are covered by the stress suite).
const DIRTY_HIGH: usize = 1024;
const DIRTY_LOW: usize = 32;
/// Recorded depth-2 baselines (scale 16): the double-buffered engine's
/// 64 KB pipe overlap and the 28-block breakdown's compat overlap. A
/// non-smoke run asserts both still reproduce to these four digits.
const BASELINE_OVERLAP_64K_DEPTH2: &str = "0.598";
const BASELINE_COMPAT_OVERLAP_64K: &str = "0.973";

fn git_head() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Whether the working tree differs from HEAD — recorded so a
/// measurement of uncommitted code is never mistaken for the revision
/// it happens to sit on.
fn git_dirty() -> bool {
    Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_none_or(|o| !o.stdout.is_empty())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fig5.json".to_owned());
    let smoke = std::env::var("GPUFS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let (file_bytes, write_bytes, pipe_bytes) = if smoke {
        (FILE_BYTES / 16, WRITE_BYTES / 16, PIPE_BYTES / 16)
    } else {
        (FILE_BYTES, WRITE_BYTES, PIPE_BYTES)
    };
    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let io_chunk_default = GpufsConfig::default().io_chunk_pages;

    // ---- Baseline breakdown (PR-3 compat): 28 blocks, window 1. -------
    let base = Timings::default();
    let mut rows = Vec::new();
    let mut compat_overlap_64k = 0.0f64;
    for &page in PAGE_SIZES
        .iter()
        .filter(|&&p| !smoke || p as u64 <= file_bytes / 8)
    {
        let total = fig5_phase(file_bytes, page, &base, CHANNELS, WORKERS);
        let no_dma = fig5_phase(file_bytes, page, &base.without_dma(), CHANNELS, WORKERS);
        let no_io = fig5_phase(file_bytes, page, &base.without_host_io(), CHANNELS, WORKERS);
        let bare = fig5_phase(
            file_bytes,
            page,
            &base.rpc_and_cache_only(),
            CHANNELS,
            WORKERS,
        );
        let overlap = total as f64 / (no_dma + no_io) as f64;
        if page == 64 << 10 {
            compat_overlap_64k = overlap;
        }
        eprintln!(
            "base page {page:>9}: total {:>8.1} ms, -dma {:>8.1}, -io {:>8.1}, bare {:>7.2}, overlap {overlap:.2}",
            millis(total),
            millis(no_dma),
            millis(no_io),
            millis(bare),
        );
        rows.push(format!(
            "{{\"page\":{page},\"total_ms\":{:.2},\"no_dma_ms\":{:.2},\"no_io_ms\":{:.2},\"bare_ms\":{:.2}}}",
            millis(total),
            millis(no_dma),
            millis(no_io),
            millis(bare),
        ));
    }

    // ---- Pipeline breakdown: 1 block, window 8, deep vs double-buffered
    // vs serialized. Every overlap shares the depth-2 denominator so the
    // series are comparable across engines (see the module docs).
    let mut pipe_rows = Vec::new();
    let mut overlap_64k = 0.0f64;
    let mut overlap_64k_depth2 = 0.0f64;
    let mut overlap_64k_serialized = 0.0f64;
    let mut pipe_speedup_64k = 0.0f64;
    for &page in PAGE_SIZES.iter().filter(|&&p| p as u64 <= pipe_bytes / 8) {
        let deep = fig5_pipe_phase_depth(pipe_bytes, page, &base, PIPE_WINDOW, None, PIPE_DEPTH);
        let piped = fig5_pipe_phase_depth(pipe_bytes, page, &base, PIPE_WINDOW, None, 2);
        let serial = fig5_pipe_phase_depth(pipe_bytes, page, &base, PIPE_WINDOW, Some(0), 2);
        let no_dma =
            fig5_pipe_phase_depth(pipe_bytes, page, &base.without_dma(), PIPE_WINDOW, None, 2);
        let no_io = fig5_pipe_phase_depth(
            pipe_bytes,
            page,
            &base.without_host_io(),
            PIPE_WINDOW,
            None,
            2,
        );
        let sum = (no_dma + no_io) as f64;
        let (o_deep, o_piped, o_serial) =
            (deep as f64 / sum, piped as f64 / sum, serial as f64 / sum);
        if page == 64 << 10 {
            overlap_64k = o_deep;
            overlap_64k_depth2 = o_piped;
            overlap_64k_serialized = o_serial;
            pipe_speedup_64k = serial as f64 / deep as f64;
        }
        eprintln!(
            "pipe page {page:>9}: depth-{PIPE_DEPTH} {:>7.2} ms (overlap {o_deep:.3}), depth-2 {:>7.2} ms ({o_piped:.3}), serialized {:>7.2} ms ({o_serial:.3})",
            millis(deep),
            millis(piped),
            millis(serial),
        );
        pipe_rows.push(format!(
            "{{\"page\":{page},\"deep_ms\":{:.2},\"piped_ms\":{:.2},\"serial_ms\":{:.2},\"no_dma_ms\":{:.2},\"no_io_ms\":{:.2},\
             \"overlap\":{o_deep:.3},\"overlap_depth2\":{o_piped:.3},\"overlap_serial\":{o_serial:.3}}}",
            millis(deep),
            millis(piped),
            millis(serial),
            millis(no_dma),
            millis(no_io),
        ));
    }

    // ---- Write-back sweep at 64 KB. -----------------------------------
    let wpage = 64 << 10;
    let w1 = write_phase(write_bytes, wpage, 1, CHANNELS, WORKERS);
    let wb = write_phase(write_bytes, wpage, WRITE_BATCH, CHANNELS, WORKERS);
    let wb_serial = write_phase_chunk(write_bytes, wpage, WRITE_BATCH, CHANNELS, WORKERS, Some(0));
    let wb_async = write_phase_async(
        write_bytes,
        wpage,
        WRITE_BATCH,
        CHANNELS,
        WORKERS,
        DIRTY_HIGH,
        DIRTY_LOW,
    );
    eprintln!(
        "write 64K: b=1 {:.0} MB/s / {} rpcs, b={WRITE_BATCH} {:.0} MB/s / {} rpcs (serialized engine: {:.0} MB/s, async flusher: {:.0} MB/s)",
        w1.mb_s, w1.write_rpcs, wb.mb_s, wb.write_rpcs, wb_serial.mb_s, wb_async.mb_s
    );

    if !smoke {
        // Equivalence guards, re-proved on every record: the compat
        // settings (double-buffered engine, synchronous write-back) must
        // keep reproducing the recorded baselines to four digits, and
        // the async flusher must never cost write throughput.
        assert_eq!(
            format!("{overlap_64k_depth2:.3}"),
            BASELINE_OVERLAP_64K_DEPTH2,
            "depth-2 pipe overlap @64K drifted from its recorded baseline"
        );
        assert_eq!(
            format!("{compat_overlap_64k:.3}"),
            BASELINE_COMPAT_OVERLAP_64K,
            "28-block compat overlap @64K drifted from its recorded baseline"
        );
        assert!(
            overlap_64k < overlap_64k_depth2,
            "the deep staging ring must close the overlap gap \
             ({overlap_64k:.3} vs depth-2 {overlap_64k_depth2:.3})"
        );
        // The write phase's 28 writer blocks race over 2 real daemon
        // workers, so both series jitter a few percent run to run; the
        // guard is relative. The repo's recorded non-smoke records hold
        // the absolute bar (mb_s_async >= the 5055 MB/s sync baseline).
        assert!(
            wb_async.mb_s >= wb.mb_s * 0.97,
            "async write-back fell below the synchronous path \
             ({:.1} vs {:.1} MB/s)",
            wb_async.mb_s,
            wb.mb_s
        );
    }

    let record = format!(
        "{{\"bench\":\"fig5_breakdown\",\"unix_time\":{unix_time},\"git\":\"{}\",\
         \"dirty\":{},\"scale\":{SCALE},\"file_bytes\":{file_bytes},\"smoke\":{smoke},\
         \"channels\":{CHANNELS},\"workers\":{WORKERS},\"io_chunk\":{io_chunk_default},\
         \"io_depth\":{PIPE_DEPTH},\"compat_overlap_64k\":{compat_overlap_64k:.3},\
         \"overlap_64k\":{overlap_64k:.3},\"overlap_64k_depth2\":{overlap_64k_depth2:.3},\
         \"overlap_64k_serialized\":{overlap_64k_serialized:.3},\
         \"pipe_speedup_64k\":{pipe_speedup_64k:.3},\
         \"write\":{{\"page\":{wpage},\"file_bytes\":{write_bytes},\
         \"mb_s_b1\":{:.1},\"rpcs_b1\":{},\"mb_s_b{WRITE_BATCH}\":{:.1},\"rpcs_b{WRITE_BATCH}\":{},\
         \"mb_s_b{WRITE_BATCH}_serialized\":{:.1},\
         \"mb_s_async\":{:.1},\"dirty_high\":{DIRTY_HIGH},\"dirty_low\":{DIRTY_LOW},\
         \"write_speedup_64k\":{:.3},\"write_rpc_ratio_64k\":{:.1}}},\
         \"pipe\":{{\"file_bytes\":{pipe_bytes},\"window\":{PIPE_WINDOW},\"blocks\":1,\
         \"io_depth\":{PIPE_DEPTH},\"sweep\":[{}]}},\
         \"sweep\":[{}]}}",
        git_head(),
        git_dirty(),
        w1.mb_s,
        w1.write_rpcs,
        wb.mb_s,
        wb.write_rpcs,
        wb_serial.mb_s,
        wb_async.mb_s,
        wb.mb_s / w1.mb_s,
        w1.write_rpcs as f64 / wb.write_rpcs.max(1) as f64,
        pipe_rows.join(","),
        rows.join(",")
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .unwrap_or_else(|e| panic!("cannot open {out_path}: {e}"));
    writeln!(f, "{record}").expect("write record");
    println!("{record}");
    eprintln!("appended to {out_path}");
}
