//! Append one Figure-5 measurement record to `BENCH_fig5.json` (JSONL:
//! one JSON object per line, the same convention as `BENCH_fig4.json`),
//! so the repo carries its own breakdown + write-back perf trajectory
//! across commits.
//!
//! Run from the repository root (or anywhere — the output path can be
//! overridden):
//!
//! ```text
//! cargo run --release -p gpufs_bench --bin fig5_json [OUT_PATH]
//! ```
//!
//! Each record holds two sweeps under a 2-worker/4-channel daemon pool:
//!
//! * the Figure-5 breakdown over page sizes (total, −DMA, −file I/O,
//!   −both, in ms), with the headline `overlap_64k` = `total / (−DMA +
//!   −file I/O)` at 64 KB pages — strictly below 1 when host file I/O
//!   and DMA pipeline instead of adding up;
//! * the write-back sweep at 64 KB pages — batched `WritePages` (cap 32
//!   pages / 4 MB of span; at 64 KB the page count binds) vs per-page
//!   write RPCs — with `write_speedup_64k` (MB/s ratio, ~2.7) and
//!   `write_rpc_ratio_64k` (round-trip ratio; ≥ 2 is the acceptance bar,
//!   ~18x measured).

use std::io::Write;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use gpufs_bench::{fig5_phase, millis, write_phase, PAGE_SIZES, SCALE};
use simtime::Timings;

/// Paper file: 1.8 GB, scaled like the bench target.
const FILE_BYTES: u64 = (1800 << 20) / SCALE;
/// Write sweep file: 512 MB scaled, as in the `write_throughput` bench.
const WRITE_BYTES: u64 = (512 << 20) / SCALE;
const CHANNELS: usize = 4;
const WORKERS: usize = 2;
const WRITE_BATCH: usize = 32;

fn git_head() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Whether the working tree differs from HEAD — recorded so a
/// measurement of uncommitted code is never mistaken for the revision
/// it happens to sit on.
fn git_dirty() -> bool {
    Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_none_or(|o| !o.stdout.is_empty())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fig5.json".to_owned());
    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let base = Timings::default();
    let mut rows = Vec::new();
    let mut overlap_64k = 0.0f64;
    for &page in PAGE_SIZES {
        let total = fig5_phase(FILE_BYTES, page, &base, CHANNELS, WORKERS);
        let no_dma = fig5_phase(FILE_BYTES, page, &base.without_dma(), CHANNELS, WORKERS);
        let no_io = fig5_phase(FILE_BYTES, page, &base.without_host_io(), CHANNELS, WORKERS);
        let bare = fig5_phase(
            FILE_BYTES,
            page,
            &base.rpc_and_cache_only(),
            CHANNELS,
            WORKERS,
        );
        let overlap = total as f64 / (no_dma + no_io) as f64;
        if page == 64 << 10 {
            overlap_64k = overlap;
        }
        eprintln!(
            "page {page:>9}: total {:>8.1} ms, -dma {:>8.1}, -io {:>8.1}, bare {:>7.2}, overlap {overlap:.2}",
            millis(total),
            millis(no_dma),
            millis(no_io),
            millis(bare),
        );
        rows.push(format!(
            "{{\"page\":{page},\"total_ms\":{:.2},\"no_dma_ms\":{:.2},\"no_io_ms\":{:.2},\"bare_ms\":{:.2}}}",
            millis(total),
            millis(no_dma),
            millis(no_io),
            millis(bare),
        ));
    }

    let wpage = 64 << 10;
    let w1 = write_phase(WRITE_BYTES, wpage, 1, CHANNELS, WORKERS);
    let wb = write_phase(WRITE_BYTES, wpage, WRITE_BATCH, CHANNELS, WORKERS);
    eprintln!(
        "write 64K: b=1 {:.0} MB/s / {} rpcs, b={WRITE_BATCH} {:.0} MB/s / {} rpcs",
        w1.mb_s, w1.write_rpcs, wb.mb_s, wb.write_rpcs
    );

    let record = format!(
        "{{\"bench\":\"fig5_breakdown\",\"unix_time\":{unix_time},\"git\":\"{}\",\
         \"dirty\":{},\"scale\":{SCALE},\"file_bytes\":{FILE_BYTES},\
         \"channels\":{CHANNELS},\"workers\":{WORKERS},\
         \"overlap_64k\":{overlap_64k:.3},\
         \"write\":{{\"page\":{wpage},\"file_bytes\":{WRITE_BYTES},\
         \"mb_s_b1\":{:.1},\"rpcs_b1\":{},\"mb_s_b{WRITE_BATCH}\":{:.1},\"rpcs_b{WRITE_BATCH}\":{},\
         \"write_speedup_64k\":{:.3},\"write_rpc_ratio_64k\":{:.1}}},\
         \"sweep\":[{}]}}",
        git_head(),
        git_dirty(),
        w1.mb_s,
        w1.write_rpcs,
        wb.mb_s,
        wb.write_rpcs,
        wb.mb_s / w1.mb_s,
        w1.write_rpcs as f64 / wb.write_rpcs.max(1) as f64,
        rows.join(",")
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .unwrap_or_else(|e| panic!("cannot open {out_path}: {e}"));
    writeln!(f, "{record}").expect("write record");
    println!("{record}");
    eprintln!("appended to {out_path}");
}
