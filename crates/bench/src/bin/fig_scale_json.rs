//! Append one multi-GPU scaling record to `BENCH_scale.json` (JSONL:
//! one JSON object per line), so the repo carries the cluster layer's
//! perf trajectory across commits (paper §6: the image search sharded
//! across up to 8 GPUs).
//!
//! Run from the repository root (or anywhere — the output path can be
//! overridden):
//!
//! ```text
//! cargo run --release -p gpufs_bench --bin fig_scale_json [OUT_PATH]
//! ```
//!
//! Each record holds:
//!
//! * the **strong-scaling** sweep — one fixed uniform corpus, 1→8 GPUs
//!   under work stealing, aggregate scan throughput per GPU count, and
//!   the headline `speedup_max` (must exceed 3x at 8 GPUs);
//! * the **weak-scaling** sweep — corpus grows with the fleet (2 files
//!   per GPU), reporting elapsed time and `weak_efficiency` =
//!   `t(1) / t(max)`;
//! * the **skew** experiment — a corpus whose first files are several
//!   times the rest, static sharding vs work stealing (stealing must
//!   win, with a nonzero steal count);
//! * the **fleet-of-1 compat** block — the Figure-4 sequential-read
//!   phase (w1/w8 at 64 KB pages) measured through a `GpuFleet` of one
//!   GPU next to the hand-assembled single-mount rig. The cluster layer
//!   is pure composition, so the two must agree to four digits, and at
//!   full scale they must keep reproducing the recorded single-mount
//!   baseline (w1@64K 1798.2 MB/s, w8@64K 4378.2 MB/s at scale 16).
//!
//! Set `GPUFS_BENCH_SMOKE=1` for a tiny-scale run (2 GPUs, small
//! corpus, scaled-down fig4 file) — used by CI to keep this recorder
//! from rotting; smoke records go to a scratch path, never to the
//! repo's BENCH file. Every invariant above except the absolute
//! recorded-baseline check (which only holds at full scale) is asserted
//! in-process, so a regression fails the run instead of recording bad
//! numbers.

use std::io::Write;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use gpufs::cluster::ShardStrategy;
use gpufs_bench::{fig4_fleet_phase, fig4_gpufs_phase, scale_phase, SCALE};

/// Paper file for the fig4 compat probe: 1.8 GB, scaled.
const FILE_BYTES: u64 = (1800 << 20) / SCALE;
/// Recorded single-mount fig4 baseline at 64 KB pages (BENCH_fig4.json).
const BASELINE_W1_64K: f64 = 1798.2;
const BASELINE_W8_64K: f64 = 4378.2;

fn git_head() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn git_dirty() -> bool {
    Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_none_or(|o| !o.stdout.is_empty())
}

/// Four-significant-digit agreement, the repo's compat bar.
fn agree_4_digits(a: f64, b: f64) -> bool {
    (a - b).abs() <= b.abs() * 5e-4
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scale.json".to_owned());
    let smoke = std::env::var("GPUFS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let gpu_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let strong_files = if smoke { 4 } else { 16 };

    // Strong scaling: one fixed corpus, more GPUs.
    let mut strong_rows = Vec::new();
    let mut strong_mb_s = Vec::new();
    for &n in gpu_counts {
        let out = scale_phase(n, strong_files, &[], ShardStrategy::WorkStealing);
        eprintln!(
            "strong {n} gpu(s): {:>8.0} MB/s ({:.2} ms, {} steals)",
            out.mb_s,
            out.elapsed as f64 / 1e6,
            out.steals
        );
        strong_rows.push(format!(
            "{{\"gpus\":{n},\"mb_s\":{:.1},\"ms\":{:.3},\"steals\":{}}}",
            out.mb_s,
            out.elapsed as f64 / 1e6,
            out.steals
        ));
        strong_mb_s.push(out.mb_s);
    }
    let speedup_max = strong_mb_s.last().unwrap() / strong_mb_s[0];
    eprintln!(
        "strong speedup at {} GPUs: {speedup_max:.2}x",
        gpu_counts.last().unwrap()
    );
    if smoke {
        assert!(
            speedup_max > 1.2,
            "2-GPU smoke fleet must beat one GPU, got {speedup_max:.2}x"
        );
    } else {
        assert!(
            speedup_max > 3.0,
            "8-GPU fleet must exceed 3x aggregate throughput, got {speedup_max:.2}x"
        );
    }

    // Weak scaling: corpus grows with the fleet (2 files per GPU).
    let mut weak_rows = Vec::new();
    let mut weak_ms = Vec::new();
    for &n in gpu_counts {
        let out = scale_phase(n, 2 * n, &[], ShardStrategy::WorkStealing);
        let ms = out.elapsed as f64 / 1e6;
        eprintln!(
            "weak   {n} gpu(s): {ms:>8.2} ms ({:.0} MB/s aggregate)",
            out.mb_s
        );
        weak_rows.push(format!(
            "{{\"gpus\":{n},\"ms\":{ms:.3},\"mb_s\":{:.1}}}",
            out.mb_s
        ));
        weak_ms.push(ms);
    }
    let weak_efficiency = weak_ms[0] / weak_ms.last().unwrap();

    // Skew: the first quarter of the files carry several times the
    // images, so the contiguous file deal overloads the first shard(s).
    let skew_gpus = if smoke { 2 } else { 4 };
    let skew_files = 2 * skew_gpus;
    let weights: Vec<usize> = (0..skew_files).map(|f| if f < 2 { 6 } else { 1 }).collect();
    let skew_static = scale_phase(skew_gpus, skew_files, &weights, ShardStrategy::Static);
    let skew_steal = scale_phase(skew_gpus, skew_files, &weights, ShardStrategy::WorkStealing);
    let skew_speedup = skew_static.elapsed as f64 / skew_steal.elapsed as f64;
    eprintln!(
        "skew ({skew_gpus} gpus): static {:.2} ms vs stealing {:.2} ms = {skew_speedup:.2}x ({} steals)",
        skew_static.elapsed as f64 / 1e6,
        skew_steal.elapsed as f64 / 1e6,
        skew_steal.steals
    );
    assert_eq!(skew_static.steals, 0, "static sharding must never steal");
    assert!(
        skew_steal.steals > 0,
        "the skewed corpus must provoke steals"
    );
    assert!(
        skew_steal.elapsed < skew_static.elapsed,
        "work stealing must beat static sharding on a skewed corpus \
         ({} vs {} ns)",
        skew_steal.elapsed,
        skew_static.elapsed
    );

    // Fleet-of-1 fig4 compat: the cluster layer must be free.
    let file_bytes = if smoke { FILE_BYTES / 16 } else { FILE_BYTES };
    let w1_single = fig4_gpufs_phase(file_bytes, 64 << 10, 1);
    let w1_fleet = fig4_fleet_phase(file_bytes, 64 << 10, 1);
    let w8_single = fig4_gpufs_phase(file_bytes, 64 << 10, 8);
    let w8_fleet = fig4_fleet_phase(file_bytes, 64 << 10, 8);
    eprintln!(
        "fleet-of-1 fig4 compat @64K: w1 {w1_fleet:.1} (single {w1_single:.1}), \
         w8 {w8_fleet:.1} (single {w8_single:.1}) MB/s"
    );
    if smoke {
        // The fig4 phases are only run-to-run deterministic at full
        // scale (the 7 MB smoke file has too few pages for the 28-block
        // scheduling noise to average out — measured ±5% between two
        // identical in-process runs), so smoke holds the fleet to a
        // coarse band around the single-mount number.
        assert!(
            (w1_fleet - w1_single).abs() <= w1_single * 0.10
                && (w8_fleet - w8_single).abs() <= w8_single * 0.10,
            "fleet-of-1 ({w1_fleet:.1}/{w8_fleet:.1}) strays from the \
             single-mount rig ({w1_single:.1}/{w8_single:.1})"
        );
    } else {
        // Window 1 is the strict gate: measured run-to-run stable to
        // ~5e-5 relative, so four digits is a real invariant. Window 8's
        // readahead makes the phase scheduling-sensitive (racy stream-
        // slot claiming; even the two recorded BENCH_fig4.json entries
        // differ, 4378.2 vs 4377.0, and under machine load the spread
        // reaches ~0.3%), so it gets a band that catches a real
        // regression without flaking on jitter the single-mount rig
        // exhibits by itself.
        let w8_band = |a: f64, b: f64| (a - b).abs() <= b.abs() * 5e-3;
        assert!(
            agree_4_digits(w1_fleet, w1_single) && w8_band(w8_fleet, w8_single),
            "a fleet of one must reproduce the single-mount rig \
             ({w1_fleet:.1}/{w8_fleet:.1} vs {w1_single:.1}/{w8_single:.1})"
        );
        assert!(
            agree_4_digits(w1_fleet, BASELINE_W1_64K) && w8_band(w8_fleet, BASELINE_W8_64K),
            "fleet-of-1 must reproduce the recorded fig4 baseline \
             ({BASELINE_W1_64K}/{BASELINE_W8_64K}), got {w1_fleet:.1}/{w8_fleet:.1}"
        );
    }

    let record = format!(
        "{{\"bench\":\"scale_image_search\",\"unix_time\":{unix_time},\"git\":\"{}\",\
         \"dirty\":{},\"smoke\":{smoke},\"scale\":{SCALE},\
         \"speedup_max\":{speedup_max:.3},\"strong\":[{}],\
         \"weak_efficiency\":{weak_efficiency:.3},\"weak\":[{}],\
         \"skew\":{{\"gpus\":{skew_gpus},\"static_ms\":{:.3},\"steal_ms\":{:.3},\
         \"steal_speedup\":{skew_speedup:.3},\"steals\":{}}},\
         \"fleet1_fig4_compat\":{{\"page\":65536,\"file_bytes\":{file_bytes},\
         \"mb_s_w1_fleet\":{w1_fleet:.1},\"mb_s_w1_single\":{w1_single:.1},\
         \"mb_s_w8_fleet\":{w8_fleet:.1},\"mb_s_w8_single\":{w8_single:.1}}}}}",
        git_head(),
        git_dirty(),
        strong_rows.join(","),
        weak_rows.join(","),
        skew_static.elapsed as f64 / 1e6,
        skew_steal.elapsed as f64 / 1e6,
        skew_steal.steals,
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .unwrap_or_else(|e| panic!("cannot open {out_path}: {e}"));
    writeln!(f, "{record}").expect("write record");
    println!("{record}");
    eprintln!("appended to {out_path}");
}
