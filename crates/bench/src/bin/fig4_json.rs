//! Append one Figure-4 measurement record to `BENCH_fig4.json` (JSONL:
//! one JSON object per line), so the repo carries its own sequential-read
//! perf trajectory across commits.
//!
//! Run from the repository root (or anywhere — the output path can be
//! overridden):
//!
//! ```text
//! cargo run --release -p gpufs_bench --bin fig4_json [OUT_PATH]
//! ```
//!
//! Each record holds the GPUfs throughput sweep over page sizes at
//! readahead windows 1 and 8 under the default (pipelined) daemon I/O
//! engine, the headline `speedup_64k` = `w8 / w1` at the 64 KB page
//! size, and a `compat` block re-measured with the serialized engine
//! (`io_chunk_pages = 0`) — the PR-3 configuration — so every record
//! proves the compat setting still reproduces the recorded baseline
//! (w1@64K 1798.2 MB/s, w8@64K 4378.2 MB/s at scale 16).
//!
//! Set `GPUFS_BENCH_SMOKE=1` to run a tiny-scale smoke sweep (small
//! file, truncated page axis) — used by CI to keep this bin from
//! rotting; smoke records should be written to a scratch path, never to
//! the repo's BENCH file.

use std::io::Write;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use gpufs_bench::{fig4_gpufs_phase, fig4_gpufs_phase_chunk, PAGE_SIZES, SCALE};

/// Paper file: 1.8 GB, scaled like the bench target.
const FILE_BYTES: u64 = (1800 << 20) / SCALE;

fn git_head() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Whether the working tree differs from HEAD — recorded so a
/// measurement of uncommitted code is never mistaken for the revision
/// it happens to sit on.
fn git_dirty() -> bool {
    Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_none_or(|o| !o.stdout.is_empty())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fig4.json".to_owned());
    let smoke = std::env::var("GPUFS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let file_bytes = if smoke { FILE_BYTES / 16 } else { FILE_BYTES };
    let pages: Vec<usize> = PAGE_SIZES
        .iter()
        .copied()
        .filter(|&p| !smoke || p as u64 <= file_bytes / 8)
        .collect();
    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let mut rows = Vec::new();
    let mut speedup_64k = 0.0f64;
    for &page in &pages {
        let w1 = fig4_gpufs_phase(file_bytes, page, 1);
        let w8 = fig4_gpufs_phase(file_bytes, page, 8);
        if page == 64 << 10 {
            speedup_64k = w8 / w1;
        }
        eprintln!(
            "page {page:>9}: w1 {w1:>7.0} MB/s, w8 {w8:>7.0} MB/s ({:.2}x)",
            w8 / w1
        );
        rows.push(format!(
            "{{\"page\":{page},\"mb_s_w1\":{w1:.1},\"mb_s_w8\":{w8:.1}}}"
        ));
    }

    // Serialized-engine compat probe at the 64 KB reference point: these
    // two numbers must keep matching the recorded pre-pipeline baseline.
    let compat_w1 = fig4_gpufs_phase_chunk(file_bytes, 64 << 10, 1, Some(0));
    let compat_w8 = fig4_gpufs_phase_chunk(file_bytes, 64 << 10, 8, Some(0));
    eprintln!("compat (io_chunk=0) 64K: w1 {compat_w1:.1} MB/s, w8 {compat_w8:.1} MB/s");
    if !smoke {
        // Equivalence guard, re-proved on every record: the serialized
        // compat setting must keep reproducing the recorded pre-pipeline
        // baseline to four digits.
        assert_eq!(
            format!("{compat_w1:.1}"),
            "1798.2",
            "compat w1@64K drifted from its recorded baseline"
        );
        assert_eq!(
            format!("{compat_w8:.1}"),
            "4378.2",
            "compat w8@64K drifted from its recorded baseline"
        );
        assert_eq!(
            format!("{:.3}", compat_w8 / compat_w1),
            "2.435",
            "compat 64K speedup drifted from its recorded baseline"
        );
    }

    let record = format!(
        "{{\"bench\":\"fig4_seq_read\",\"unix_time\":{unix_time},\"git\":\"{}\",\
         \"dirty\":{},\"scale\":{SCALE},\"file_bytes\":{file_bytes},\"smoke\":{smoke},\
         \"speedup_64k\":{speedup_64k:.3},\
         \"compat\":{{\"io_chunk\":0,\"mb_s_w1_64k\":{compat_w1:.1},\"mb_s_w8_64k\":{compat_w8:.1}}},\
         \"sweep\":[{}]}}",
        git_head(),
        git_dirty(),
        rows.join(",")
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .unwrap_or_else(|e| panic!("cannot open {out_path}: {e}"));
    writeln!(f, "{record}").expect("write record");
    println!("{record}");
    eprintln!("appended to {out_path}");
}
