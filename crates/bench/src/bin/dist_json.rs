//! Append one cross-host scaling record to `BENCH_dist.json` (JSONL:
//! one JSON object per line) — the storage-tier split's perf
//! trajectory: M hosts × N GPUs behind per-host proxies and host page
//! caches, one storage server, simulated network links.
//!
//! Run from the repository root (or anywhere — the output path can be
//! overridden):
//!
//! ```text
//! cargo run --release -p gpufs_bench --bin dist_json [OUT_PATH]
//! ```
//!
//! Each record holds:
//!
//! * the **compat** block — 1 host × {1,2,4,8} GPUs with a zero-latency,
//!   zero-bandwidth-cost link and the host cache off. The proxied tier
//!   is virtually time-transparent in that configuration, so these runs
//!   must reproduce the recorded BENCH_scale strong-scaling numbers
//!   (501.6 → 3262.9 MB/s, 6.5x at 8 GPUs) to four digits — asserted
//!   in-process, a regression fails the run instead of recording bad
//!   numbers;
//! * the **M×N sweep** — {1×8, 2×4, 4×2, 4×8} topologies under two link
//!   profiles (`lan`: 30 µs RTT / 11.6 GB/s, `slow`: 500 µs RTT /
//!   1.2 GB/s), each with a 4096-page host cache, reporting aggregate
//!   MB/s, the host-cache hit ratio, and wire round-trips. More hosts
//!   over the same corpus must not *increase* total wire traffic per
//!   byte scanned beyond the single-host baseline's cold faults — the
//!   host caches absorb re-reads, which is the point of the tier.
//!
//! Set `GPUFS_BENCH_SMOKE=1` for a tiny-scale run (≤ 2×2, small corpus)
//! — used by CI to keep this recorder from rotting; smoke records go to
//! a scratch path, never to the repo's BENCH file. The smoke compat
//! check holds the proxied fleet to a coarse band (the small corpus is
//! scheduling-noisy, like the fig_scale smoke gate); full scale asserts
//! four digits.

use std::io::Write;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use gpufs::cluster::ShardStrategy;
use gpufs_bench::{dist_phase, scale_phase, SCALE};

/// Recorded BENCH_scale strong-scaling baseline (MB/s per GPU count).
const BASELINE_STRONG: &[(usize, f64)] = &[(1, 501.6), (2, 984.8), (4, 1734.8), (8, 3262.9)];

/// The M×N topologies the sweep measures.
const SWEEP_TOPOLOGIES: &[(usize, usize)] = &[(1, 8), (2, 4), (4, 2), (4, 8)];

/// Link profiles: (name, RTT ns, MB/s).
const LINKS: &[(&str, u64, f64)] = &[("lan", 30_000, 11_600.0), ("slow", 500_000, 1_200.0)];

/// Host-cache pages per proxy in the sweep (4096 × 64 KB = 256 MB).
const SWEEP_CACHE_PAGES: usize = 4096;

fn git_head() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn git_dirty() -> bool {
    Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_none_or(|o| !o.stdout.is_empty())
}

/// Four-significant-digit agreement, the repo's compat bar.
fn agree_4_digits(a: f64, b: f64) -> bool {
    (a - b).abs() <= b.abs() * 5e-4
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_dist.json".to_owned());
    let smoke = std::env::var("GPUFS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let files = if smoke { 4 } else { 16 };

    // Compat: 1 host, zero-net link, cache off — the proxied tier must
    // be invisible next to the local fleet.
    let compat_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let mut compat_rows = Vec::new();
    for &n in compat_counts {
        let dist = dist_phase(1, n, files, 0, 0.0, 0);
        let local = scale_phase(n, files, &[], ShardStrategy::WorkStealing);
        eprintln!(
            "compat 1x{n}: proxied {:>8.1} MB/s, local {:>8.1} MB/s ({} wire rpcs)",
            dist.mb_s, local.mb_s, dist.wire_rpcs
        );
        if smoke {
            assert!(
                (dist.mb_s - local.mb_s).abs() <= local.mb_s * 0.10,
                "zero-net proxied fleet ({:.1}) strays from the local fleet ({:.1})",
                dist.mb_s,
                local.mb_s
            );
        } else {
            assert!(
                agree_4_digits(dist.mb_s, local.mb_s),
                "zero-net proxied fleet must reproduce the local fleet to four \
                 digits ({:.1} vs {:.1} at {n} GPUs)",
                dist.mb_s,
                local.mb_s
            );
            let baseline = BASELINE_STRONG
                .iter()
                .find(|&&(g, _)| g == n)
                .map(|&(_, mb)| mb)
                .expect("baseline row");
            assert!(
                agree_4_digits(dist.mb_s, baseline),
                "zero-net proxied fleet must reproduce the recorded BENCH_scale \
                 baseline {baseline} MB/s at {n} GPUs, got {:.1}",
                dist.mb_s
            );
        }
        assert_eq!(
            dist.host_hits + dist.host_misses,
            0,
            "a disabled host cache must see no traffic"
        );
        compat_rows.push(format!(
            "{{\"gpus\":{n},\"mb_s\":{:.1},\"mb_s_local\":{:.1},\"wire_rpcs\":{}}}",
            dist.mb_s, local.mb_s, dist.wire_rpcs
        ));
    }
    if !smoke {
        let first: f64 = compat_rows
            .first()
            .and_then(|_| BASELINE_STRONG.first().map(|&(_, mb)| mb))
            .unwrap_or(1.0);
        let last = BASELINE_STRONG.last().map(|&(_, mb)| mb).unwrap_or(1.0);
        eprintln!("compat strong speedup: {:.2}x", last / first);
    }

    // The M×N sweep against net latency and bandwidth, host caches on.
    let sweep_topologies: &[(usize, usize)] = if smoke {
        &[(1, 2), (2, 2)]
    } else {
        SWEEP_TOPOLOGIES
    };
    let cache_pages = if smoke { 512 } else { SWEEP_CACHE_PAGES };
    let mut sweep_rows = Vec::new();
    for &(link, rtt_ns, mb_s) in LINKS {
        for &(m, n) in sweep_topologies {
            let out = dist_phase(m, n, files, rtt_ns, mb_s, cache_pages);
            eprintln!(
                "{link:>4} {m}x{n}: {:>8.1} MB/s, hit ratio {:.3} ({} hits / {} misses), \
                 {} wire rpcs, {} steals",
                out.mb_s, out.hit_ratio, out.host_hits, out.host_misses, out.wire_rpcs, out.steals
            );
            assert!(
                out.wire_rpcs > 0,
                "a proxied fleet cannot scan without crossing the wire"
            );
            assert!(
                (0.0..=1.0).contains(&out.hit_ratio),
                "hit ratio out of range: {}",
                out.hit_ratio
            );
            sweep_rows.push(format!(
                "{{\"link\":\"{link}\",\"rtt_ns\":{rtt_ns},\"net_mb_s\":{mb_s},\
                 \"hosts\":{m},\"gpus_per_host\":{n},\"mb_s\":{:.1},\
                 \"hit_ratio\":{:.4},\"host_hits\":{},\"host_misses\":{},\
                 \"wire_rpcs\":{},\"ms\":{:.3}}}",
                out.mb_s,
                out.hit_ratio,
                out.host_hits,
                out.host_misses,
                out.wire_rpcs,
                out.elapsed as f64 / 1e6,
            ));
        }
    }

    let record = format!(
        "{{\"bench\":\"dist_image_search\",\"unix_time\":{unix_time},\"git\":\"{}\",\
         \"dirty\":{},\"smoke\":{smoke},\"scale\":{SCALE},\"db_files\":{files},\
         \"cache_pages\":{cache_pages},\"compat\":[{}],\"sweep\":[{}]}}",
        git_head(),
        git_dirty(),
        compat_rows.join(","),
        sweep_rows.join(","),
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .unwrap_or_else(|e| panic!("cannot open {out_path}: {e}"));
    writeln!(f, "{record}").expect("write record");
    println!("{record}");
    eprintln!("appended to {out_path}");
}
