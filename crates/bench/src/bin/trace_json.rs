//! Append one fault-path latency-breakdown record to `BENCH_trace.json`
//! (JSONL: one JSON object per line), measured from the span tracer
//! rather than from counters — the record is the causal tree of the
//! Figure-4 sequential read, collapsed into per-stage virtual time.
//!
//! Run from the repository root (or anywhere — the output path can be
//! overridden; an optional second argument also dumps the raw Chrome
//! trace-event JSON for loading into Perfetto):
//!
//! ```text
//! cargo run --release -p gpufs_bench --bin trace_json [OUT_PATH] [CHROME_OUT]
//! ```
//!
//! The workload is the Figure-4 geometry at the 64 KB reference point
//! (28 threadblocks, sequential `gmmap` walk, readahead 8) with tracing
//! enabled. Every span of every trace is partitioned into elementary
//! intervals attributed to the *deepest* covering span, so the stage
//! sums reconcile with the end-to-end root time exactly — asserted here
//! to within 1%, per-record. The exported Chrome trace JSON is also
//! validated (well-formed, > 0 events, per-trace monotone timestamps),
//! which is what the `trace-smoke` CI job leans on.
//!
//! Set `GPUFS_BENCH_SMOKE=1` for a tiny-scale smoke run — used by CI to
//! keep this bin from rotting; smoke records should be written to a
//! scratch path, never to the repo's BENCH file.

use std::collections::HashMap;
use std::io::Write;
use std::process::Command;
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use gpufs::{GOpenMode, GpufsConfig};
use gpufs_bench::{rig_cfg, SCALE};
use gpusim::Grid;
use obs::SpanRecord;
use simtime::Timings;

/// Paper file: 1.8 GB, scaled like the bench target.
const FILE_BYTES: u64 = (1800 << 20) / SCALE;
/// The Figure-4 reference page size.
const PAGE: usize = 64 << 10;
/// Readahead window: the paper's batched configuration, so the trace
/// shows batched `ReadPages` RPCs with pipelined pread/DMA chunks.
const WINDOW: usize = 8;

fn git_head() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Whether the working tree differs from HEAD — recorded so a
/// measurement of uncommitted code is never mistaken for the revision
/// it happens to sit on.
fn git_dirty() -> bool {
    Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_none_or(|o| !o.stdout.is_empty())
}

/// Run the Figure-4 walk with tracing on; return the drained spans.
fn traced_fig4_run(file_bytes: u64) -> Vec<SpanRecord> {
    let t = Timings::default();
    let cache = (file_bytes as usize + 16 * PAGE).next_power_of_two();
    let cfg = GpufsConfig::new(PAGE, cache).with_readahead(WINDOW);
    let r = rig_cfg(1, cache + (64 << 20), 8 << 30, &t, &cfg);
    r.fs.create_synthetic("/seq.bin", file_bytes, 4).unwrap();
    let _ = r.fs.read_whole("/seq.bin", 0).unwrap();
    r.fs.reset_device_time();
    let mount = r.host.mount(0, cfg).unwrap();
    r.host.set_tracing(true);
    let blocks = r.gpus[0].spec().concurrent_blocks(); // 28, as in the paper
    let per_block = file_bytes / blocks as u64;
    let mnt = Arc::clone(&mount);
    r.gpus[0].launch(Grid::new(blocks, 256), 0, move |blk| {
        let fd = mnt.open(blk, "/seq.bin", GOpenMode::ReadOnly).unwrap();
        let base = blk.block_id() as u64 * per_block;
        let mut off = 0u64;
        while off < per_block {
            let map = mnt.mmap(blk, &fd, base + off, PAGE).unwrap();
            let got = map.len() as u64;
            mnt.munmap(blk, map);
            off += got;
        }
        mnt.close(blk, fd).unwrap();
    });
    r.host.tracer().snapshot()
}

/// Collapse one trace's spans into per-stage time: the root's interval
/// is cut at every span boundary, and each elementary slice is charged
/// to the *deepest* covering span (ties: the later-starting, then the
/// higher-id span). Slices no child covers are charged to `"other"` —
/// by construction the stage sums equal the root's duration exactly.
fn charge_trace(spans: &[SpanRecord], stage_ns: &mut HashMap<&'static str, u64>) -> u64 {
    let Some(root) = spans.iter().find(|s| s.parent == 0) else {
        return 0;
    };
    // Depth of each span (root = 0) via its parent chain.
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span, s)).collect();
    let depth = |s: &SpanRecord| {
        let (mut d, mut p) = (0u32, s.parent);
        while p != 0 {
            d += 1;
            p = by_id.get(&p).map_or(0, |up| up.parent);
        }
        d
    };
    let mut cuts: Vec<u64> = spans
        .iter()
        .flat_map(|s| [s.start, s.end])
        .map(|t| t.clamp(root.start, root.end))
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        // The deepest span covering this whole slice.
        let deepest = spans
            .iter()
            .filter(|s| s.start <= a && s.end >= b)
            .max_by_key(|s| (depth(s), s.start, s.span))
            .expect("the root covers every slice");
        let stage = if deepest.span == root.span {
            "other"
        } else {
            deepest.name
        };
        *stage_ns.entry(stage).or_default() += b - a;
    }
    root.end - root.start
}

/// Validate the Chrome trace-event export the way the `trace-smoke` CI
/// job needs it: well-formed envelope, > 0 complete events, and `ts`
/// monotone non-decreasing within each `tid` (one tid per trace).
fn validate_chrome_json(json: &str, expect_events: usize) {
    assert!(
        json.starts_with("{\"traceEvents\":[") && json.ends_with("]}"),
        "chrome trace envelope malformed"
    );
    let events: Vec<&str> = json.matches("\"ph\":\"X\"").collect();
    assert!(!events.is_empty(), "chrome trace exported zero events");
    assert_eq!(events.len(), expect_events, "one event per span");
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    for ev in json[len_of_envelope()..].split("},{") {
        let field = |key: &str| -> &str {
            let at = ev.find(key).map(|i| i + key.len()).unwrap_or_else(|| {
                panic!("event missing {key}: {ev}");
            });
            ev[at..].split([',', '}']).next().unwrap()
        };
        let ts: f64 = field("\"ts\":").parse().expect("numeric ts");
        let tid: u64 = field("\"tid\":").parse().expect("numeric tid");
        if let Some(prev) = last_ts.insert(tid, ts) {
            assert!(prev <= ts, "ts regressed within tid {tid}: {prev} > {ts}");
        }
    }
}

/// Byte offset of the first event object in the export envelope.
const fn len_of_envelope() -> usize {
    "{\"traceEvents\":[".len()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trace.json".to_owned());
    let chrome_out = std::env::args().nth(2);
    let smoke = std::env::var("GPUFS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let file_bytes = if smoke { FILE_BYTES / 16 } else { FILE_BYTES };
    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let spans = traced_fig4_run(file_bytes);
    assert!(!spans.is_empty(), "tracing produced no spans");

    // Group by trace, then collapse each causal tree into stage time.
    let mut traces: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
    for s in &spans {
        traces.entry(s.trace).or_default().push(s.clone());
    }
    let mut stage_ns: HashMap<&'static str, u64> = HashMap::new();
    let mut end_to_end_ns = 0u64;
    for tree in traces.values() {
        end_to_end_ns += charge_trace(tree, &mut stage_ns);
    }
    let stage_sum: u64 = stage_ns.values().sum();
    let recon_err_pct = if end_to_end_ns == 0 {
        0.0
    } else {
        (stage_sum as f64 - end_to_end_ns as f64).abs() / end_to_end_ns as f64 * 100.0
    };
    assert!(
        recon_err_pct <= 1.0,
        "stage sum {stage_sum} ns vs end-to-end {end_to_end_ns} ns: {recon_err_pct:.3}% off"
    );

    // Validate the Perfetto-loadable export (and optionally dump it).
    let chrome = obs::chrome_trace_json(&spans);
    validate_chrome_json(&chrome, spans.len());
    if let Some(path) = chrome_out {
        std::fs::write(&path, &chrome).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("chrome trace written to {path}");
    }

    let mut stages: Vec<(&str, u64)> = stage_ns.into_iter().collect();
    stages.sort_by_key(|&(name, ns)| (std::cmp::Reverse(ns), name));
    for &(name, ns) in &stages {
        eprintln!(
            "{name:>16}: {:>10.3} ms ({:>5.1}%)",
            ns as f64 / 1e6,
            ns as f64 / end_to_end_ns as f64 * 100.0
        );
    }
    let breakdown: Vec<String> = stages
        .iter()
        .map(|&(name, ns)| format!("{{\"stage\":\"{name}\",\"ns\":{ns}}}"))
        .collect();
    let record = format!(
        "{{\"bench\":\"trace_fault_path\",\"unix_time\":{unix_time},\"git\":\"{}\",\
         \"dirty\":{},\"scale\":{SCALE},\"file_bytes\":{file_bytes},\"smoke\":{smoke},\
         \"page\":{PAGE},\"window\":{WINDOW},\"traces\":{},\"spans\":{},\
         \"end_to_end_ns\":{end_to_end_ns},\"stage_sum_ns\":{stage_sum},\
         \"recon_err_pct\":{recon_err_pct:.4},\"breakdown\":[{}]}}",
        git_head(),
        git_dirty(),
        traces.len(),
        spans.len(),
        breakdown.join(",")
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .unwrap_or_else(|e| panic!("cannot open {out_path}: {e}"));
    writeln!(f, "{record}").expect("write record");
    println!("{record}");
    eprintln!("appended to {out_path}");
}
