//! Append one multi-tenant tail-latency record to `BENCH_tail.json`
//! (JSONL: one JSON object per line), so the repo carries the tenant
//! layer's perf trajectory across commits.
//!
//! Run from the repository root (or anywhere — the output path can be
//! overridden):
//!
//! ```text
//! cargo run --release -p gpufs_bench --bin tail_json [OUT_PATH]
//! ```
//!
//! The experiment is a skewed two-tenant trace on a one-GPU fleet:
//! tenant 0 (the **victim**) issues modest point-lookup traffic over the
//! Zipf-popular corpus files; tenant 1 (the **hog**) floods the same
//! mount with an order of magnitude more sequential-scan traffic, whose
//! streaming misses both saturate the disk head and — unpartitioned —
//! evict the victim's hot pages. The trace is replayed twice:
//!
//! * `fifo` — stock single-tenant defaults: the fair FIFO hub and an
//!   unpartitioned frame arena, i.e. exactly yesterday's GPUfs.
//! * `weighted` — the tenant knobs on: victim-favoring weighted deficit
//!   round-robin dispatch (`tenant_weights`), an in-flight admission
//!   cap on the hog (`tenant_admission`), and soft per-tenant frame
//!   quotas (`tenant_frame_quotas`) so the hog's scans evict the hog's
//!   own pages first.
//!
//! The headline assertions, checked in-process so a regression fails
//! the run instead of recording bad numbers:
//!
//! * the victim's p99 fault latency improves by at least **2x** under
//!   `weighted` (`victim_p99_speedup`);
//! * aggregate data throughput gives up at most **10%**
//!   (`throughput_ratio >= 0.9`);
//! * the **compat leg**: the same binary re-measures the recorded
//!   single-tenant baselines through default (tenant-free) configs —
//!   fig4 w1@64K must reproduce 1798.2 MB/s to four digits, w8@64K must
//!   stay within the recorded jitter band of 4378.2 MB/s, and the fig5
//!   breakdown's 64 KB overlap must reproduce 0.973 — proving the
//!   tenant layer costs nothing when unused.
//!
//! Set `GPUFS_BENCH_SMOKE=1` for a tiny-scale CI smoke run (smaller
//! trace, scaled-down compat files, coarse bands; the record goes to a
//! scratch path, never the repo's BENCH file).

use std::io::Write;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use gpufs::cluster::FleetBuilder;
use gpufs::GpufsConfig;
use gpufs_bench::{fig4_gpufs_phase, fig5_phase, SCALE};
use simtime::Timings;
use workloads::traffic::{run_traffic, TenantClass, TenantLoad, TrafficConfig, TrafficOutcome};

/// Paper file for the fig4 compat probe: 1.8 GB, scaled.
const FILE_BYTES: u64 = (1800 << 20) / SCALE;
/// Recorded single-mount fig4 baselines at 64 KB pages (BENCH_fig4.json).
const BASELINE_W1_64K: f64 = 1798.2;
const BASELINE_W8_64K: f64 = 4378.2;
/// Recorded fig5 28-block 64 KB overlap (BENCH_fig5.json).
const BASELINE_COMPAT_OVERLAP_64K: f64 = 0.973;
/// Fig5 compat pool geometry (the recorded baseline's).
const CHANNELS: usize = 4;
const WORKERS: usize = 2;

/// Buffer-cache page size of the tail experiment.
const PAGE: usize = 4 << 10;
/// Buffer cache: 64 frames — the victim's 48-page hot index plus
/// change, far below the hog's ~1000-page streaming footprint, so
/// unpartitioned scans cycle the whole arena between two victim
/// touches of the same page.
const CACHE: usize = 64 * PAGE;
/// Victim : hog dispatch weights under `weighted`.
const WEIGHTS: [u32; 2] = [8, 1];
/// Hog in-flight RPC cap under `weighted` (victim uncapped).
const ADMISSION: [usize; 2] = [0, 4];
/// Soft frame quotas under `weighted`: the victim keeps its hot set
/// resident; the hog is held to a stripe and steals only idle frames,
/// so its reclaims eat its own pages first.
const QUOTAS: [usize; 2] = [56, 8];

fn git_head() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Whether the working tree differs from HEAD — recorded so a
/// measurement of uncommitted code is never mistaken for the revision
/// it happens to sit on.
fn git_dirty() -> bool {
    Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_none_or(|o| !o.stdout.is_empty())
}

/// Four-significant-digit agreement, the repo's compat bar.
fn agree_4_digits(a: f64, b: f64) -> bool {
    (a - b).abs() <= b.abs() * 5e-4
}

/// The skewed two-tenant trace both legs replay: tenant 0 is the
/// point-lookup victim, tenant 1 the 10x scan hog.
/// The skewed two-tenant trace both legs replay (virtual-time cost is
/// milliseconds, so smoke runs the full trace and only scales the
/// compat files). The victim's point lookups hammer a 3-file hot index
/// (48 pages) whose re-reads a partition can keep resident; its session
/// count is sized so the unavoidable 48 cold faults stay under 1% of
/// its samples — the p99 then reports steady-state behavior, not
/// warmup. The hog streams the whole mildly-skewed corpus with 10x the
/// data volume.
fn trace_cfg() -> TrafficConfig {
    TrafficConfig {
        seed: 42,
        dir: "/tail".into(),
        n_files: 64,
        file_bytes: 64 << 10,
        zipf_s: 0.3,
        op_bytes: PAGE,
        // Let blocks run ~one burst apart: virtually-concurrent requests
        // then queue together at the hub, so dispatch order is a real
        // choice (strict lock-step would hand the daemon one request at
        // a time and make every policy look identical).
        pace_lag_ns: 200_000,
        tenants: vec![
            TenantLoad {
                class: TenantClass::PointLookup,
                blocks: 2,
                sessions: 800,
                arrival_gap_ns: 20_000,
                burst_sessions: 8,
                off_gap_ns: 100_000,
                ops_per_session: 8,
                hot_files: 3,
            },
            TenantLoad {
                class: TenantClass::Scan,
                blocks: 8,
                sessions: 96,
                arrival_gap_ns: 5_000,
                burst_sessions: 16,
                off_gap_ns: 50_000,
                ops_per_session: 16,
                hot_files: 0,
            },
        ],
    }
}

/// One leg's outcome plus the per-tenant cache miss counts (read off
/// the mount's tenant counter sheets before shutdown).
struct Leg {
    out: TrafficOutcome,
    misses: [u64; 2],
}

/// Replay the trace on a fresh one-GPU fleet mounted with `config`.
fn leg(config: GpufsConfig, cfg: &TrafficConfig) -> Leg {
    let mut fleet = FleetBuilder::new(1)
        .config(config)
        .timings(Timings::default())
        .build()
        .expect("fleet build");
    let out = run_traffic(&fleet, cfg).expect("traffic replay");
    let m = fleet.mount(0);
    let misses = [
        m.tenant_counters(0).misses.get(),
        m.tenant_counters(1).misses.get(),
    ];
    fleet.shutdown();
    Leg { out, misses }
}

fn tenant_json(l: &Leg, t: usize) -> String {
    let d = &l.out.per_tenant[t];
    // In the FIFO leg the mount has a single (aggregate) counter sheet,
    // so both tenants report the combined miss count there.
    format!(
        "{{\"ops\":{},\"bytes\":{},\"p50\":{},\"p99\":{},\"p999\":{},\
         \"mean\":{:.0},\"max\":{},\"cache_misses\":{}}}",
        d.ops, d.bytes, d.p50, d.p99, d.p999, d.mean, d.max, l.misses[t]
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_tail.json".to_owned());
    let smoke = std::env::var("GPUFS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let cfg = trace_cfg();

    // ---- FIFO leg: stock defaults, the tenant layer dormant. ----------
    let fifo = leg(GpufsConfig::new(PAGE, CACHE), &cfg);
    // ---- Weighted leg: dispatch weights + admission cap + quotas. -----
    let weighted = leg(
        GpufsConfig::new(PAGE, CACHE)
            .with_tenant_weights(WEIGHTS.to_vec())
            .with_tenant_admission(ADMISSION.to_vec())
            .with_tenant_quotas(QUOTAS.to_vec()),
        &cfg,
    );
    for (name, l) in [("fifo", &fifo), ("weighted", &weighted)] {
        let o = &l.out;
        eprintln!(
            "{name:>8}: victim p50 {:>7} p99 {:>8} p999 {:>8} ns | hog p99 {:>9} ns | \
             victim misses {:>5} | {:>5.1} MB/s aggregate, fairness {:.3}",
            o.per_tenant[0].p50,
            o.per_tenant[0].p99,
            o.per_tenant[0].p999,
            o.per_tenant[1].p99,
            l.misses[0],
            o.throughput_mb_s,
            o.fairness,
        );
    }
    let victim_p99_speedup =
        fifo.out.per_tenant[0].p99 as f64 / weighted.out.per_tenant[0].p99 as f64;
    let throughput_ratio = weighted.out.throughput_mb_s / fifo.out.throughput_mb_s;
    eprintln!(
        "victim p99 speedup {victim_p99_speedup:.2}x, throughput ratio {throughput_ratio:.3}"
    );
    assert!(
        victim_p99_speedup >= 2.0,
        "weighted dispatch + quotas must cut the victim's p99 at least 2x \
         ({} -> {} ns is only {victim_p99_speedup:.2}x)",
        fifo.out.per_tenant[0].p99,
        weighted.out.per_tenant[0].p99
    );
    assert!(
        throughput_ratio >= 0.9,
        "isolation must cost at most 10% aggregate throughput \
         ({:.1} -> {:.1} MB/s is {throughput_ratio:.3})",
        fifo.out.throughput_mb_s,
        weighted.out.throughput_mb_s
    );

    // ---- Compat leg: default configs must still be yesterday's GPUfs. -
    let file_bytes = if smoke { FILE_BYTES / 16 } else { FILE_BYTES };
    let w1 = fig4_gpufs_phase(file_bytes, 64 << 10, 1);
    let w8 = fig4_gpufs_phase(file_bytes, 64 << 10, 8);
    let base = Timings::default();
    let total = fig5_phase(file_bytes, 64 << 10, &base, CHANNELS, WORKERS);
    let no_dma = fig5_phase(file_bytes, 64 << 10, &base.without_dma(), CHANNELS, WORKERS);
    let no_io = fig5_phase(
        file_bytes,
        64 << 10,
        &base.without_host_io(),
        CHANNELS,
        WORKERS,
    );
    let overlap = total as f64 / (no_dma + no_io) as f64;
    eprintln!("compat @64K: w1 {w1:.1} MB/s, w8 {w8:.1} MB/s, fig5 overlap {overlap:.3}");
    if !smoke {
        // Window 1 and the 28-block overlap are run-to-run stable to four
        // digits; window 8's readahead carries the recorded ~0.3% jitter
        // band (see fig_scale_json for the measurement notes).
        let w8_band = |a: f64, b: f64| (a - b).abs() <= b.abs() * 5e-3;
        assert!(
            agree_4_digits(w1, BASELINE_W1_64K) && w8_band(w8, BASELINE_W8_64K),
            "single-tenant defaults must reproduce the recorded fig4 baseline \
             ({BASELINE_W1_64K}/{BASELINE_W8_64K}), got {w1:.1}/{w8:.1}"
        );
        assert!(
            agree_4_digits(overlap, BASELINE_COMPAT_OVERLAP_64K),
            "single-tenant defaults must reproduce the recorded fig5 overlap \
             ({BASELINE_COMPAT_OVERLAP_64K}), got {overlap:.4}"
        );
    }

    let record = format!(
        "{{\"bench\":\"tail_multi_tenant\",\"unix_time\":{unix_time},\"git\":\"{}\",\
         \"dirty\":{},\"smoke\":{smoke},\"scale\":{SCALE},\
         \"page\":{PAGE},\"cache\":{CACHE},\
         \"weights\":[{},{}],\"admission\":[{},{}],\"quotas\":[{},{}],\
         \"victim_p99_speedup\":{victim_p99_speedup:.3},\
         \"throughput_ratio\":{throughput_ratio:.3},\
         \"fifo\":{{\"victim\":{},\"hog\":{},\"fairness\":{:.3},\"mb_s\":{:.1},\"elapsed_ns\":{}}},\
         \"weighted\":{{\"victim\":{},\"hog\":{},\"fairness\":{:.3},\"mb_s\":{:.1},\"elapsed_ns\":{}}},\
         \"compat\":{{\"page\":65536,\"file_bytes\":{file_bytes},\"mb_s_w1\":{w1:.1},\
         \"mb_s_w8\":{w8:.1},\"fig5_overlap\":{overlap:.3}}}}}",
        git_head(),
        git_dirty(),
        WEIGHTS[0],
        WEIGHTS[1],
        ADMISSION[0],
        ADMISSION[1],
        QUOTAS[0],
        QUOTAS[1],
        tenant_json(&fifo, 0),
        tenant_json(&fifo, 1),
        fifo.out.fairness,
        fifo.out.throughput_mb_s,
        fifo.out.elapsed,
        tenant_json(&weighted, 0),
        tenant_json(&weighted, 1),
        weighted.out.fairness,
        weighted.out.throughput_mb_s,
        weighted.out.elapsed,
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .unwrap_or_else(|e| panic!("cannot open {out_path}: {e}"));
    writeln!(f, "{record}").expect("write record");
    println!("{record}");
    eprintln!("appended to {out_path}");
}
