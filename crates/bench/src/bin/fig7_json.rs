//! Append one Figure-7 / Table-2 measurement record to `BENCH_fig7.json`
//! (JSONL: one JSON object per line, the same convention as
//! `BENCH_fig4.json`), so the repo carries its own lock-free-scaling
//! perf trajectory across commits.
//!
//! Run from the repository root (or anywhere — the output path can be
//! overridden):
//!
//! ```text
//! cargo run --release -p gpufs_bench --bin fig7_json [OUT_PATH]
//! ```
//!
//! Each record sweeps the threadblock count over a fully cached file:
//! every access rides the buffer-cache *hit* path, so the lock-free
//! pin protocol (paper §4.2, Figure 7) is the only variable. Per block
//! count the sweep holds the default (lock-free-first) throughput and
//! its lock-free vs. locked access split against the `force_locked`
//! ablation — the paper's "locked" series, which pays the radix-lock
//! convoy of every concurrently resident block on each access. The
//! headline `lockfree_speedup_28` is default / locked throughput at the
//! paper's 28-block saturation point, where the record asserts that the
//! lock-free protocol both dominates the access counts and wins the
//! throughput race.
//!
//! Set `GPUFS_BENCH_SMOKE=1` to run a tiny-scale smoke sweep (small
//! file, truncated block axis) — used by CI to keep this bin from
//! rotting; smoke records should be written to a scratch path, never to
//! the repo's BENCH file.

use std::io::Write;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use gpufs_bench::{fig7_phase, SCALE};

/// Hot file: 512 MB scaled — fits any sweep's cache with room to spare.
const FILE_BYTES: u64 = (512 << 20) / SCALE;
/// Buffer-cache page size of the sweep (the fig4/fig5 reference point).
const PAGE: usize = 64 << 10;
/// The block-count axis; 28 is the TESLA C2075's concurrent residency.
const BLOCKS: &[usize] = &[1, 2, 4, 8, 16, 28];

fn git_head() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Whether the working tree differs from HEAD — recorded so a
/// measurement of uncommitted code is never mistaken for the revision
/// it happens to sit on.
fn git_dirty() -> bool {
    Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .is_none_or(|o| !o.stdout.is_empty())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fig7.json".to_owned());
    let smoke = std::env::var("GPUFS_BENCH_SMOKE").is_ok_and(|v| v == "1");
    let file_bytes = if smoke { FILE_BYTES / 16 } else { FILE_BYTES };
    let blocks: Vec<usize> = BLOCKS
        .iter()
        .copied()
        .filter(|&b| !smoke || b <= 4)
        .collect();
    let unix_time = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);

    let mut rows = Vec::new();
    let mut speedup_28 = 0.0f64;
    for &b in &blocks {
        let free = fig7_phase(file_bytes, PAGE, b, false);
        let locked = fig7_phase(file_bytes, PAGE, b, true);
        assert_eq!(
            free.misses, 0,
            "the measured pass must stay on the hit path"
        );
        assert_eq!(
            free.hits,
            free.lockfree + free.locked,
            "every hit is accounted lock-free or locked"
        );
        assert_eq!(
            locked.lockfree, 0,
            "force_locked must leave no lock-free accesses"
        );
        if b == 28 {
            speedup_28 = free.mb_s / locked.mb_s;
        }
        eprintln!(
            "blocks {b:>2}: lockfree-first {:>9.0} MB/s ({} free / {} locked), \
             forced-locked {:>9.0} MB/s",
            free.mb_s, free.lockfree, free.locked, locked.mb_s
        );
        rows.push(format!(
            "{{\"blocks\":{b},\"mb_s\":{:.1},\"lockfree\":{},\"locked\":{},\
             \"mb_s_forced_locked\":{:.1}}}",
            free.mb_s, free.lockfree, free.locked, locked.mb_s
        ));
    }

    if !smoke {
        // The paper's claim at saturation, asserted on every record: the
        // lock-free protocol dominates the access split and wins the
        // throughput race against the all-locked ablation.
        let at28 = fig7_phase(file_bytes, PAGE, 28, false);
        assert!(
            at28.lockfree > at28.locked,
            "lock-free must dominate the hit path at 28 blocks \
             ({} free vs {} locked)",
            at28.lockfree,
            at28.locked
        );
        assert!(
            speedup_28 > 1.0,
            "lock-free-first must out-run forced locking at 28 blocks \
             (speedup {speedup_28:.3})"
        );
    }

    let record = format!(
        "{{\"bench\":\"fig7_lockfree\",\"unix_time\":{unix_time},\"git\":\"{}\",\
         \"dirty\":{},\"scale\":{SCALE},\"file_bytes\":{file_bytes},\"smoke\":{smoke},\
         \"page\":{PAGE},\"lockfree_speedup_28\":{speedup_28:.3},\
         \"sweep\":[{}]}}",
        git_head(),
        git_dirty(),
        rows.join(",")
    );
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&out_path)
        .unwrap_or_else(|e| panic!("cannot open {out_path}: {e}"));
    writeln!(f, "{record}").expect("write record");
    println!("{record}");
    eprintln!("appended to {out_path}");
}
