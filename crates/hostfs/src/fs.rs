//! The host file system: namespace, descriptors, and timed I/O.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use simtime::{bw_time_ns, ByteLedger, Nanos, Timings};

use crate::consistency::Consistency;
use crate::disk::DiskModel;
use crate::error::FsError;
use crate::inode::{FileBody, FileKind, Ino, Inode};
use crate::pagecache::{CacheStats, PageCache};
use crate::FsResult;

/// A host file descriptor.
pub type HostFd = u64;

/// POSIX-style open flags, reduced to what the substrate needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFlags {
    /// Allow reads through the descriptor.
    pub read: bool,
    /// Allow writes through the descriptor.
    pub write: bool,
    /// Create the file if missing.
    pub create: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
}

impl OpenFlags {
    /// `O_RDONLY`.
    #[must_use]
    pub fn read_only() -> Self {
        Self {
            read: true,
            write: false,
            create: false,
            truncate: false,
        }
    }

    /// `O_WRONLY`.
    #[must_use]
    pub fn write_only() -> Self {
        Self {
            read: false,
            write: true,
            create: false,
            truncate: false,
        }
    }

    /// `O_RDWR`.
    #[must_use]
    pub fn read_write() -> Self {
        Self {
            read: true,
            write: true,
            create: false,
            truncate: false,
        }
    }

    /// `O_WRONLY | O_CREAT | O_TRUNC` — the usual "produce an output file".
    #[must_use]
    pub fn create_truncate() -> Self {
        Self {
            read: false,
            write: true,
            create: true,
            truncate: true,
        }
    }

    /// `O_RDWR | O_CREAT`.
    #[must_use]
    pub fn read_write_create() -> Self {
        Self {
            read: true,
            write: true,
            create: true,
            truncate: false,
        }
    }
}

/// File metadata returned by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metadata {
    /// Inode number.
    pub ino: Ino,
    /// File or directory.
    pub kind: FileKind,
    /// Size in bytes (files only; 0 for directories).
    pub size: u64,
    /// Whether the file may be opened for writing.
    pub writable: bool,
}

/// Configuration of the host substrate.
#[derive(Debug, Clone)]
pub struct HostFsConfig {
    /// Device timing calibration.
    pub timings: Timings,
    /// Host physical memory available to the page cache *and* pinned GPU
    /// buffers together (the contended pool of Figure 8).
    pub host_mem_bytes: u64,
    /// Page-cache page size.
    pub cache_page_size: u64,
    /// Cache pages prefetched past each demand-miss run, as Linux
    /// readahead does. This is what lets many concurrent readers with
    /// interleaved sequential streams avoid paying a seek per request.
    pub readahead_pages: u64,
}

impl Default for HostFsConfig {
    fn default() -> Self {
        Self {
            timings: Timings::default(),
            host_mem_bytes: 12 << 30, // the paper's testbed page-cache head-room
            cache_page_size: 64 << 10,
            readahead_pages: 8,
        }
    }
}

#[derive(Debug)]
struct OpenFile {
    ino: Ino,
    flags: OpenFlags,
    path: String,
}

#[derive(Debug, Default)]
struct Inner {
    inodes: HashMap<Ino, Inode>,
    fds: HashMap<HostFd, OpenFile>,
    open_counts: HashMap<Ino, u32>,
    next_ino: Ino,
    next_fd: HostFd,
}

/// The host OS file system (see the crate-level docs).
pub struct HostFs {
    timings: Timings,
    readahead_pages: u64,
    mem: Arc<ByteLedger>,
    disk: DiskModel,
    cache: Mutex<PageCache>,
    consistency: Consistency,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for HostFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("HostFs")
            .field("inodes", &inner.inodes.len())
            .field("open_fds", &inner.fds.len())
            .field("cache", &*self.cache.lock())
            .finish()
    }
}

const ROOT_INO: Ino = 1;

fn split_path(path: &str) -> FsResult<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(FsError::InvalidPath(path.to_owned()));
    }
    if path == "/" {
        return Ok(Vec::new());
    }
    let comps: Vec<&str> = path[1..].split('/').collect();
    if comps
        .iter()
        .any(|c| c.is_empty() || *c == "." || *c == "..")
    {
        return Err(FsError::InvalidPath(path.to_owned()));
    }
    Ok(comps)
}

impl Inner {
    fn resolve(&self, path: &str) -> FsResult<Ino> {
        let comps = split_path(path)?;
        let mut cur = ROOT_INO;
        for (i, comp) in comps.iter().enumerate() {
            let node = self.inodes.get(&cur).expect("dangling ino");
            if node.kind != FileKind::Dir {
                return Err(FsError::NotADirectory(comps[..i].join("/")));
            }
            cur = *node
                .entries
                .get(*comp)
                .ok_or_else(|| FsError::NotFound(path.to_owned()))?;
        }
        Ok(cur)
    }

    /// Resolve the parent directory of `path`; returns `(dir_ino, name)`.
    fn resolve_parent<'p>(&self, path: &'p str) -> FsResult<(Ino, &'p str)> {
        let comps = split_path(path)?;
        let Some((name, dirs)) = comps.split_last() else {
            return Err(FsError::InvalidPath(path.to_owned()));
        };
        let mut cur = ROOT_INO;
        for comp in dirs {
            let node = self.inodes.get(&cur).expect("dangling ino");
            if node.kind != FileKind::Dir {
                return Err(FsError::NotADirectory(path.to_owned()));
            }
            cur = *node
                .entries
                .get(*comp)
                .ok_or_else(|| FsError::NotFound(path.to_owned()))?;
        }
        if self.inodes[&cur].kind != FileKind::Dir {
            return Err(FsError::NotADirectory(path.to_owned()));
        }
        Ok((cur, name))
    }

    fn alloc_ino(&mut self) -> Ino {
        let ino = self.next_ino;
        self.next_ino += 1;
        ino
    }

    /// Drop the inode if it has no links and no open descriptors.
    fn maybe_reap(&mut self, ino: Ino) -> bool {
        let open = self.open_counts.get(&ino).copied().unwrap_or(0);
        let nlink = self.inodes.get(&ino).map_or(1, |n| n.nlink);
        if open == 0 && nlink == 0 {
            self.inodes.remove(&ino);
            true
        } else {
            false
        }
    }
}

impl HostFs {
    /// Create an empty file system with `config`.
    #[must_use]
    pub fn new(config: HostFsConfig) -> Self {
        let mem = Arc::new(ByteLedger::new(config.host_mem_bytes));
        let mut inner = Inner {
            next_ino: ROOT_INO + 1,
            next_fd: 3,
            ..Inner::default()
        };
        inner.inodes.insert(ROOT_INO, Inode::new_dir(ROOT_INO));
        Self {
            disk: DiskModel::from_timings(&config.timings),
            cache: Mutex::new(PageCache::new(config.cache_page_size, Arc::clone(&mem))),
            consistency: Consistency::new(),
            timings: config.timings,
            readahead_pages: config.readahead_pages,
            mem,
            inner: Mutex::new(Inner { ..inner }),
        }
    }

    /// The timing calibration in use.
    #[must_use]
    pub fn timings(&self) -> &Timings {
        &self.timings
    }

    /// The shared host-memory ledger (page cache + pinned buffers).
    #[must_use]
    pub fn mem(&self) -> &Arc<ByteLedger> {
        &self.mem
    }

    /// The WRAPFS-like consistency registry.
    #[must_use]
    pub fn consistency(&self) -> &Consistency {
        &self.consistency
    }

    /// Page-cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().stats()
    }

    // ------------------------------------------------------------------
    // Untimed setup helpers (dataset generation, not part of experiments).
    // ------------------------------------------------------------------

    /// Create all missing directories along `path`.
    ///
    /// # Errors
    ///
    /// Fails if a path component exists and is a file.
    pub fn mkdir_p(&self, path: &str) -> FsResult<()> {
        let comps = split_path(path)?;
        let mut inner = self.inner.lock();
        let mut cur = ROOT_INO;
        for comp in comps {
            let node = &inner.inodes[&cur];
            if node.kind != FileKind::Dir {
                return Err(FsError::NotADirectory(path.to_owned()));
            }
            if let Some(&next) = node.entries.get(comp) {
                cur = next;
            } else {
                let ino = inner.alloc_ino();
                inner.inodes.insert(ino, Inode::new_dir(ino));
                inner
                    .inodes
                    .get_mut(&cur)
                    .unwrap()
                    .entries
                    .insert(comp.to_owned(), ino);
                cur = ino;
            }
        }
        Ok(())
    }

    /// Create `path` with the given durable content (setup helper, no
    /// virtual time charged; the file starts non-resident so the first
    /// timed read is a cold read from "disk").
    ///
    /// # Errors
    ///
    /// Fails if the file exists or the parent directory is missing.
    pub fn create(&self, path: &str, content: &[u8]) -> FsResult<Ino> {
        self.create_body(
            path,
            FileBody::Bytes {
                cached: content.to_vec(),
                durable: content.to_vec(),
            },
            true,
        )
    }

    /// Create an immutable synthetic file of `len` deterministic bytes.
    ///
    /// # Errors
    ///
    /// Fails if the file exists or the parent directory is missing.
    pub fn create_synthetic(&self, path: &str, len: u64, seed: u64) -> FsResult<Ino> {
        self.create_body(path, FileBody::Synthetic { len, seed }, false)
    }

    fn create_body(&self, path: &str, body: FileBody, writable: bool) -> FsResult<Ino> {
        let mut inner = self.inner.lock();
        let (dir, name) = inner.resolve_parent(path)?;
        if inner.inodes[&dir].entries.contains_key(name) {
            return Err(FsError::AlreadyExists(path.to_owned()));
        }
        let ino = inner.alloc_ino();
        inner
            .inodes
            .insert(ino, Inode::new_file(ino, body, writable));
        inner
            .inodes
            .get_mut(&dir)
            .unwrap()
            .entries
            .insert(name.to_owned(), ino);
        Ok(ino)
    }

    /// Whether `path` exists.
    #[must_use]
    pub fn exists(&self, path: &str) -> bool {
        self.inner.lock().resolve(path).is_ok()
    }

    /// Names in directory `path`, sorted.
    ///
    /// # Errors
    ///
    /// Fails if the path is missing or not a directory.
    pub fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        let inner = self.inner.lock();
        let ino = inner.resolve(path)?;
        let node = &inner.inodes[&ino];
        if node.kind != FileKind::Dir {
            return Err(FsError::NotADirectory(path.to_owned()));
        }
        Ok(node.entries.keys().cloned().collect())
    }

    /// All regular-file paths under `path`, depth-first, sorted.
    ///
    /// # Errors
    ///
    /// Fails if `path` is missing or not a directory.
    pub fn walk(&self, path: &str) -> FsResult<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![if path == "/" {
            String::new()
        } else {
            path.to_owned()
        }];
        while let Some(dir) = stack.pop() {
            let full = if dir.is_empty() {
                "/".to_owned()
            } else {
                dir.clone()
            };
            for name in self.readdir(&full)? {
                let child = format!("{dir}/{name}");
                let inner = self.inner.lock();
                let ino = inner.resolve(&child)?;
                let kind = inner.inodes[&ino].kind;
                drop(inner);
                match kind {
                    FileKind::Dir => stack.push(child),
                    FileKind::File => out.push(child),
                }
            }
        }
        out.sort();
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Timed operations.
    // ------------------------------------------------------------------

    /// Open `path`. Returns the descriptor and the completion time.
    ///
    /// Opening with write access bumps the file's consistency generation,
    /// which lazily invalidates stale GPU caches (paper §4.4).
    ///
    /// # Errors
    ///
    /// Fails on missing files (without `create`), directories, permission
    /// violations, or invalid paths.
    pub fn open(&self, path: &str, flags: OpenFlags, now: Nanos) -> FsResult<(HostFd, Nanos)> {
        let t = now + self.timings.host_syscall_ns;
        let mut inner = self.inner.lock();
        let ino = match inner.resolve(path) {
            Ok(ino) => ino,
            Err(FsError::NotFound(_)) if flags.create => {
                let (dir, name) = inner.resolve_parent(path)?;
                let ino = inner.alloc_ino();
                inner
                    .inodes
                    .insert(ino, Inode::new_file(ino, FileBody::empty(), true));
                inner
                    .inodes
                    .get_mut(&dir)
                    .unwrap()
                    .entries
                    .insert(name.to_owned(), ino);
                ino
            }
            Err(e) => return Err(e),
        };
        let node = inner.inodes.get_mut(&ino).unwrap();
        if node.kind == FileKind::Dir {
            return Err(FsError::IsADirectory(path.to_owned()));
        }
        if flags.write && !node.writable {
            return Err(FsError::PermissionDenied(path.to_owned()));
        }
        if flags.truncate {
            if !node.body.truncate(0) {
                return Err(FsError::ImmutableFile(path.to_owned()));
            }
            self.cache.lock().invalidate(ino);
        }
        let fd = inner.next_fd;
        inner.next_fd += 1;
        inner.fds.insert(
            fd,
            OpenFile {
                ino,
                flags,
                path: path.to_owned(),
            },
        );
        *inner.open_counts.entry(ino).or_insert(0) += 1;
        drop(inner);
        if flags.write {
            self.consistency.bump(ino);
        }
        Ok((fd, t))
    }

    /// Close a descriptor. Unlinked files are reaped on last close.
    ///
    /// # Errors
    ///
    /// Fails on an unknown descriptor.
    pub fn close(&self, fd: HostFd) -> FsResult<()> {
        let mut inner = self.inner.lock();
        let of = inner.fds.remove(&fd).ok_or(FsError::BadDescriptor(fd))?;
        let cnt = inner.open_counts.get_mut(&of.ino).expect("open count");
        *cnt -= 1;
        if *cnt == 0 {
            inner.open_counts.remove(&of.ino);
        }
        if inner.maybe_reap(of.ino) {
            self.cache.lock().invalidate(of.ino);
            self.consistency.forget(of.ino);
        }
        Ok(())
    }

    fn fd_ino(&self, fd: HostFd, need_read: bool, need_write: bool) -> FsResult<Ino> {
        let inner = self.inner.lock();
        let of = inner.fds.get(&fd).ok_or(FsError::BadDescriptor(fd))?;
        if need_read && !of.flags.read {
            return Err(FsError::PermissionDenied(of.path.clone()));
        }
        if need_write && !of.flags.write {
            return Err(FsError::PermissionDenied(of.path.clone()));
        }
        Ok(of.ino)
    }

    /// Charge the timing of touching `[offset, offset+len)` of `ino` for
    /// reading: page-cache hits stream at cached bandwidth, misses go to
    /// disk (contiguous miss runs pay one seek), and any dirty pages the
    /// cache evicts to stay within budget are written back.
    fn charge_read(&self, ino: Ino, offset: u64, len: u64, start: Nanos) -> Nanos {
        let mut cache = self.cache.lock();
        let psize = cache.page_size();
        let first = offset / psize;
        let last = (offset + len).div_ceil(psize).max(first + 1);
        let mut end = start;
        let mut hit_bytes = 0u64;
        let mut miss_run: Option<(u64, u64)> = None; // (first_page, pages)
        let mut writebacks = 0u64;
        let finish_run = |cache: &mut PageCache, p0: u64, n: u64, end: &mut Nanos| {
            let r = self.disk.access(ino, p0 * psize, n * psize, start);
            *end = (*end).max(r.end);
            // Linux-style readahead: the disk keeps streaming past the
            // demand window; followers find those pages resident. The
            // demand reader does not wait for the prefetched tail.
            if self.readahead_pages > 0 {
                let ra0 = p0 + n;
                for page in ra0..ra0 + self.readahead_pages {
                    let _ = cache.insert_readahead(ino, page);
                }
                let _ = self
                    .disk
                    .access(ino, ra0 * psize, self.readahead_pages * psize, r.end);
            }
        };
        for page in first..last {
            let (hit, wb) = cache.touch_read(ino, page);
            writebacks += wb.len() as u64;
            if hit {
                hit_bytes += psize;
                if let Some((p0, n)) = miss_run.take() {
                    finish_run(&mut cache, p0, n, &mut end);
                }
            } else {
                miss_run = Some(match miss_run {
                    Some((p0, n)) => (p0, n + 1),
                    None => (page, 1),
                });
            }
        }
        if let Some((p0, n)) = miss_run {
            finish_run(&mut cache, p0, n, &mut end);
        }
        drop(cache);
        if hit_bytes > 0 {
            // Page-cache copies charge pure bandwidth to the caller: a
            // DRAM pipe does not serialize independent readers the way a
            // disk head does.
            end = end.max(start + bw_time_ns(hit_bytes.min(len), self.timings.host_cached_mb_s));
        }
        if writebacks > 0 {
            let r = self
                .disk
                .access(ino, u64::MAX / 2, writebacks * psize, start);
            end = end.max(r.end);
        }
        end
    }

    /// `pread(2)`: read up to `dst.len()` bytes at `offset`.
    /// Returns bytes read and the completion time.
    ///
    /// # Errors
    ///
    /// Fails on a bad descriptor or a read-forbidden open mode.
    pub fn pread(
        &self,
        fd: HostFd,
        offset: u64,
        dst: &mut [u8],
        now: Nanos,
    ) -> FsResult<(usize, Nanos)> {
        let ino = self.fd_ino(fd, true, false)?;
        let start = now + self.timings.host_syscall_ns;
        let inner = self.inner.lock();
        let n = inner.inodes[&ino].body.read_at(offset, dst);
        drop(inner);
        if n == 0 {
            return Ok((0, start));
        }
        let end = self.charge_read(ino, offset, n as u64, start);
        Ok((n, end))
    }

    /// `pwrite(2)`: write `src` at `offset`, extending the file as needed.
    /// Returns bytes written and the completion time. The data lands in
    /// the page cache (dirty) — durability requires [`HostFs::fsync`].
    ///
    /// # Errors
    ///
    /// Fails on a bad descriptor, a write-forbidden open mode, or an
    /// immutable synthetic file.
    pub fn pwrite(
        &self,
        fd: HostFd,
        offset: u64,
        src: &[u8],
        now: Nanos,
    ) -> FsResult<(usize, Nanos)> {
        let ino = self.fd_ino(fd, false, true)?;
        let start = now + self.timings.host_syscall_ns;
        let mut inner = self.inner.lock();
        let node = inner.inodes.get_mut(&ino).unwrap();
        if !node.body.write_at(offset, src) {
            let path = inner.fds[&fd].path.clone();
            return Err(FsError::ImmutableFile(path));
        }
        drop(inner);
        self.consistency.bump(ino);
        let mut end = start + bw_time_ns(src.len() as u64, self.timings.host_cached_mb_s);
        let mut cache = self.cache.lock();
        let psize = cache.page_size();
        let first = offset / psize;
        let last = (offset + src.len() as u64).div_ceil(psize).max(first + 1);
        let mut writebacks = 0u64;
        for page in first..last {
            writebacks += cache.touch_write(ino, page).len() as u64;
        }
        drop(cache);
        if writebacks > 0 {
            let r = self
                .disk
                .access(ino, u64::MAX / 2, writebacks * psize, start);
            end = end.max(r.end);
        }
        Ok((src.len(), end))
    }

    /// `fsync(2)`: write back all dirty pages of the file and persist its
    /// content. Returns the completion time.
    ///
    /// # Errors
    ///
    /// Fails on a bad descriptor.
    pub fn fsync(&self, fd: HostFd, now: Nanos) -> FsResult<Nanos> {
        let ino = self.fd_ino(fd, false, false)?;
        let start = now + self.timings.host_syscall_ns;
        let dirty_pages = self.cache.lock().clean(ino);
        let mut inner = self.inner.lock();
        inner.inodes.get_mut(&ino).unwrap().body.sync();
        drop(inner);
        if dirty_pages == 0 {
            return Ok(start);
        }
        let psize = self.cache.lock().page_size();
        let r = self.disk.access(ino, 0, dirty_pages * psize, start);
        Ok(r.end)
    }

    /// `stat(2)` by path.
    ///
    /// # Errors
    ///
    /// Fails if the path does not resolve.
    pub fn stat(&self, path: &str) -> FsResult<Metadata> {
        let inner = self.inner.lock();
        let ino = inner.resolve(path)?;
        let node = &inner.inodes[&ino];
        debug_assert_eq!(node.ino, ino, "inode table key matches inode number");
        Ok(Metadata {
            ino,
            kind: node.kind,
            size: if node.kind == FileKind::File {
                node.body.len()
            } else {
                0
            },
            writable: node.writable,
        })
    }

    /// `fstat(2)` by descriptor.
    ///
    /// # Errors
    ///
    /// Fails on a bad descriptor.
    pub fn fstat(&self, fd: HostFd) -> FsResult<Metadata> {
        let inner = self.inner.lock();
        let of = inner.fds.get(&fd).ok_or(FsError::BadDescriptor(fd))?;
        let node = &inner.inodes[&of.ino];
        Ok(Metadata {
            ino: of.ino,
            kind: node.kind,
            size: node.body.len(),
            writable: node.writable,
        })
    }

    /// `unlink(2)`: remove the directory entry. The inode survives until
    /// the last descriptor closes. Returns the completion time.
    ///
    /// # Errors
    ///
    /// Fails if the path is missing or a directory.
    pub fn unlink(&self, path: &str, now: Nanos) -> FsResult<Nanos> {
        let t = now + self.timings.host_syscall_ns;
        let mut inner = self.inner.lock();
        let (dir, name) = inner.resolve_parent(path)?;
        let Some(&ino) = inner.inodes[&dir].entries.get(name) else {
            return Err(FsError::NotFound(path.to_owned()));
        };
        if inner.inodes[&ino].kind == FileKind::Dir {
            return Err(FsError::IsADirectory(path.to_owned()));
        }
        inner.inodes.get_mut(&dir).unwrap().entries.remove(name);
        inner.inodes.get_mut(&ino).unwrap().nlink -= 1;
        let reaped = inner.maybe_reap(ino);
        drop(inner);
        self.consistency.bump(ino);
        self.cache.lock().invalidate(ino);
        if reaped {
            self.consistency.forget(ino);
        }
        Ok(t)
    }

    /// `ftruncate(2)`: set the file length to `size`. Returns the
    /// completion time.
    ///
    /// # Errors
    ///
    /// Fails on a bad descriptor, missing write permission, or an
    /// immutable synthetic file.
    pub fn ftruncate(&self, fd: HostFd, size: u64, now: Nanos) -> FsResult<Nanos> {
        let ino = self.fd_ino(fd, false, true)?;
        let t = now + self.timings.host_syscall_ns;
        let mut inner = self.inner.lock();
        let node = inner.inodes.get_mut(&ino).unwrap();
        if !node.body.truncate(size) {
            let path = inner.fds[&fd].path.clone();
            return Err(FsError::ImmutableFile(path));
        }
        drop(inner);
        self.consistency.bump(ino);
        let psize = self.cache.lock().page_size();
        self.cache.lock().invalidate_from(ino, size.div_ceil(psize));
        Ok(t)
    }

    /// Read a whole file through a fresh descriptor (baseline helper).
    /// Returns the content and the completion time.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be opened for reading.
    pub fn read_whole(&self, path: &str, now: Nanos) -> FsResult<(Vec<u8>, Nanos)> {
        let (fd, t) = self.open(path, OpenFlags::read_only(), now)?;
        let size = self.fstat(fd)?.size;
        let mut buf = vec![0u8; size as usize];
        let (n, end) = self.pread(fd, 0, &mut buf, t)?;
        buf.truncate(n);
        self.close(fd)?;
        Ok((buf, end))
    }

    // ------------------------------------------------------------------
    // Failure and cache-control hooks.
    // ------------------------------------------------------------------

    /// Simulate a host crash: every non-fsynced write is lost and the page
    /// cache is gone (paper §3.3 failure semantics).
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        for node in inner.inodes.values_mut() {
            node.body.roll_back();
        }
        drop(inner);
        self.cache.lock().drop_caches();
    }

    /// Drop all clean page-cache contents, as the paper does before
    /// cold-cache experiments (`hdparm`-style flush). Dirty state is
    /// persisted first.
    pub fn drop_caches(&self) {
        let mut inner = self.inner.lock();
        for node in inner.inodes.values_mut() {
            node.body.sync();
        }
        drop(inner);
        let mut cache = self.cache.lock();
        cache.drop_caches();
    }

    /// Reset all device queues and counters between benchmark phases,
    /// keeping namespace and cache contents.
    pub fn reset_device_time(&self) {
        self.disk.reset();
        self.cache.lock().reset_stats();
    }

    /// Resolve a path to its inode number (consistency-layer queries).
    ///
    /// # Errors
    ///
    /// Fails if the path does not resolve.
    pub fn ino_of(&self, path: &str) -> FsResult<Ino> {
        self.inner.lock().resolve(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> HostFs {
        HostFs::new(HostFsConfig::default())
    }

    #[test]
    fn create_open_read() {
        let f = fs();
        f.mkdir_p("/data").unwrap();
        f.create("/data/a.bin", &[1, 2, 3, 4, 5]).unwrap();
        let (fd, t) = f.open("/data/a.bin", OpenFlags::read_only(), 0).unwrap();
        assert!(t > 0);
        let mut buf = [0u8; 3];
        let (n, t2) = f.pread(fd, 1, &mut buf, t).unwrap();
        assert_eq!((n, buf), (3, [2, 3, 4]));
        assert!(t2 > t);
        f.close(fd).unwrap();
    }

    #[test]
    fn second_read_is_cached_and_faster() {
        let f = fs();
        f.create_synthetic("/big", 8 << 20, 7).unwrap();
        let (fd, t0) = f.open("/big", OpenFlags::read_only(), 0).unwrap();
        let mut buf = vec![0u8; 4 << 20];
        let (_, t1) = f.pread(fd, 0, &mut buf, t0).unwrap();
        let cold = t1 - t0;
        let (_, t2) = f.pread(fd, 0, &mut buf, t1).unwrap();
        let warm = t2 - t1;
        assert!(cold > warm * 10, "cold {cold} should dwarf warm {warm}");
        let stats = f.cache_stats();
        assert!(stats.misses > 0 && stats.hits > 0);
    }

    #[test]
    fn write_read_roundtrip_and_extension() {
        let f = fs();
        let (fd, t) = f.open("/out", OpenFlags::create_truncate(), 0).unwrap();
        let (n, t) = f.pwrite(fd, 4, b"abcd", t).unwrap();
        assert_eq!(n, 4);
        assert_eq!(f.fstat(fd).unwrap().size, 8);
        // Reading through a write-only fd is denied.
        let mut buf = [0u8; 8];
        assert!(matches!(
            f.pread(fd, 0, &mut buf, t),
            Err(FsError::PermissionDenied(_))
        ));
        f.close(fd).unwrap();
        let (data, _) = f.read_whole("/out", t).unwrap();
        assert_eq!(data, [0, 0, 0, 0, b'a', b'b', b'c', b'd']);
    }

    #[test]
    fn crash_loses_unsynced_writes() {
        let f = fs();
        f.create("/f", b"old").unwrap();
        let (fd, t) = f.open("/f", OpenFlags::read_write(), 0).unwrap();
        f.pwrite(fd, 0, b"new", t).unwrap();
        f.crash();
        let (data, _) = f.read_whole("/f", 0).unwrap();
        assert_eq!(data, b"old");
    }

    #[test]
    fn fsync_survives_crash() {
        let f = fs();
        f.create("/f", b"old").unwrap();
        let (fd, t) = f.open("/f", OpenFlags::read_write(), 0).unwrap();
        let (_, t) = f.pwrite(fd, 0, b"new", t).unwrap();
        let t = f.fsync(fd, t).unwrap();
        f.crash();
        let (data, _) = f.read_whole("/f", t).unwrap();
        assert_eq!(data, b"new");
    }

    #[test]
    fn unlink_keeps_inode_until_close() {
        let f = fs();
        f.create("/f", b"payload").unwrap();
        let (fd, t) = f.open("/f", OpenFlags::read_only(), 0).unwrap();
        f.unlink("/f", t).unwrap();
        assert!(!f.exists("/f"));
        let mut buf = [0u8; 7];
        let (n, _) = f.pread(fd, 0, &mut buf, t).unwrap();
        assert_eq!(n, 7);
        f.close(fd).unwrap();
        assert!(matches!(
            f.open("/f", OpenFlags::read_only(), 0),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn truncate_shrinks_and_invalidates() {
        let f = fs();
        f.create("/f", &[9u8; 1000]).unwrap();
        let (fd, t) = f.open("/f", OpenFlags::read_write(), 0).unwrap();
        f.ftruncate(fd, 10, t).unwrap();
        assert_eq!(f.fstat(fd).unwrap().size, 10);
    }

    #[test]
    fn open_write_bumps_generation() {
        let f = fs();
        let ino = f.create("/f", b"x").unwrap();
        let g0 = f.consistency().generation(ino);
        let (fd, _) = f.open("/f", OpenFlags::read_write(), 0).unwrap();
        assert!(f.consistency().generation(ino) > g0);
        f.close(fd).unwrap();
    }

    #[test]
    fn synthetic_files_cannot_be_written() {
        let f = fs();
        f.create_synthetic("/s", 1024, 3).unwrap();
        assert!(matches!(
            f.open("/s", OpenFlags::read_write(), 0),
            Err(FsError::PermissionDenied(_))
        ));
    }

    #[test]
    fn walk_lists_files_recursively() {
        let f = fs();
        f.mkdir_p("/a/b").unwrap();
        f.create("/a/x", b"").unwrap();
        f.create("/a/b/y", b"").unwrap();
        f.create("/top", b"").unwrap();
        assert_eq!(f.walk("/").unwrap(), vec!["/a/b/y", "/a/x", "/top"]);
        assert_eq!(f.walk("/a").unwrap(), vec!["/a/b/y", "/a/x"]);
    }

    #[test]
    fn invalid_paths_are_rejected() {
        let f = fs();
        assert!(matches!(
            f.create("relative", b""),
            Err(FsError::InvalidPath(_))
        ));
        assert!(matches!(
            f.create("/a//b", b""),
            Err(FsError::InvalidPath(_))
        ));
        assert!(matches!(
            f.create("/a/../b", b""),
            Err(FsError::InvalidPath(_))
        ));
    }

    #[test]
    fn missing_parent_is_not_found() {
        let f = fs();
        assert!(matches!(
            f.create("/no/dir/file", b""),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn readdir_sorted() {
        let f = fs();
        f.create("/b", b"").unwrap();
        f.create("/a", b"").unwrap();
        assert_eq!(f.readdir("/").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn bad_descriptor_errors() {
        let f = fs();
        let mut buf = [0u8; 1];
        assert!(matches!(
            f.pread(99, 0, &mut buf, 0),
            Err(FsError::BadDescriptor(99))
        ));
        assert!(matches!(f.close(99), Err(FsError::BadDescriptor(99))));
    }

    #[test]
    fn readahead_makes_following_pages_resident() {
        let f = HostFs::new(HostFsConfig {
            readahead_pages: 4,
            ..HostFsConfig::default()
        });
        f.create_synthetic("/ra", 2 << 20, 3).unwrap();
        let (fd, t) = f.open("/ra", OpenFlags::read_only(), 0).unwrap();
        let mut buf = vec![0u8; 1000];
        let (_, t) = f.pread(fd, 0, &mut buf, t).unwrap();
        // The demand read touched page 0; readahead staged pages 1..=4,
        // so the next sequential read hits without new misses.
        let misses = f.cache_stats().misses;
        let (_, _t) = f.pread(fd, 64 << 10, &mut buf, t).unwrap();
        assert_eq!(
            f.cache_stats().misses,
            misses,
            "page 1 was readahead-resident"
        );
        assert!(f.cache_stats().hits > 0);
        f.close(fd).unwrap();
    }

    #[test]
    fn drop_caches_forces_cold_reads() {
        let f = fs();
        f.create_synthetic("/big", 4 << 20, 1).unwrap();
        let (fd, t) = f.open("/big", OpenFlags::read_only(), 0).unwrap();
        let mut buf = vec![0u8; 1 << 20];
        let (_, t) = f.pread(fd, 0, &mut buf, t).unwrap();
        f.drop_caches();
        f.reset_device_time();
        let (_, t2) = f.pread(fd, 0, &mut buf, t).unwrap();
        assert!(
            f.cache_stats().misses > 0,
            "re-read after drop_caches must miss"
        );
        assert!(t2 > t);
    }
}
