//! Host operating-system file-system substrate for the GPUfs reproduction.
//!
//! The GPUfs paper runs its host side on Linux: the VFS, an ext-family file
//! system on a 7200 RPM disk, the kernel page cache, and a modified WRAPFS
//! stackable module that interposes on file operations to drive GPU cache
//! invalidation (§4.4). This crate rebuilds those pieces:
//!
//! * [`HostFs`] — a POSIX-like in-memory file system: inodes, directories,
//!   open-file descriptors with access modes, `pread`/`pwrite`/`fsync`/
//!   `truncate`/`unlink`/`stat`, plus crash semantics (non-synced writes are
//!   lost on [`HostFs::crash`], matching the paper's failure model in §3.3).
//! * A **page cache** with LRU replacement whose capacity is computed
//!   dynamically against a [`simtime::ByteLedger`] shared with pinned GPU
//!   buffers — so `cudaHostMalloc`-style allocations crowd the cache out,
//!   the mechanism behind the disk-bound regime of Figure 8.
//! * A **disk model** (seek + streaming bandwidth as a serial device)
//!   charging virtual time for cache misses and write-back.
//! * [`Consistency`] — the WRAPFS-like interposition layer: per-file
//!   generation numbers that the GPUfs host daemon consults on `gopen` to
//!   decide whether a GPU's cached copy of a closed file is stale.
//!
//! All timed operations take the caller's current virtual time and return
//! the completion time alongside the result.
//!
//! # Example
//!
//! ```
//! use hostfs::{HostFs, OpenFlags};
//!
//! let fs = HostFs::new(Default::default());
//! fs.create("/data.bin", &[1, 2, 3, 4]).unwrap();
//! let (fd, _t) = fs.open("/data.bin", OpenFlags::read_only(), 0).unwrap();
//! let mut buf = [0u8; 4];
//! let (n, _t) = fs.pread(fd, 0, &mut buf, 0).unwrap();
//! assert_eq!((n, buf), (4, [1, 2, 3, 4]));
//! ```

mod consistency;
mod disk;
mod error;
mod fs;
mod inode;
mod pagecache;

pub use consistency::{Consistency, FileGeneration, FileSnapshot};
pub use disk::DiskModel;
pub use error::FsError;
pub use fs::{HostFd, HostFs, HostFsConfig, Metadata, OpenFlags};
pub use inode::{FileBody, FileKind, Ino};
pub use pagecache::{CacheStats, PageCache};

/// Result alias for host file-system operations.
pub type FsResult<T> = Result<T, FsError>;
