//! Disk timing model: one head, seeks, and streaming bandwidth.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use simtime::{bw_time_ns, Nanos, Reservation, Timings};

use crate::Ino;

/// The timing model of the backing disk (paper testbed: 500 GB WDC WD5003,
/// 7200 RPM, 132 MB/s streaming reads).
///
/// The disk is a serial device: requests from any number of callers are
/// served one at a time. A request whose start offset does not continue the
/// previous request on the same file pays a seek; switching files always
/// pays a seek. This is what makes many-small-file workloads (the Linux
/// source tree of Table 4) disk-seek-bound when cold.
///
/// Capacity is enforced with a *work-conserving* cumulative-busy model
/// rather than a strict FIFO on request arrival: a request completes at
/// `max(its issue time, total work already accepted) + its service time`.
/// At low utilization requests start when issued; under saturation the
/// accumulated work term dominates and the device serializes at full
/// capacity. Crucially, the model is insensitive to the *real-time* order
/// in which simulated actors (whose virtual clocks legitimately diverge)
/// happen to call in.
#[derive(Debug)]
pub struct DiskModel {
    /// Cumulative service time accepted since the last reset.
    busy: AtomicU64,
    state: Mutex<HeadState>,
    stream_mb_s: f64,
    seek_ns: Nanos,
}

#[derive(Debug, Default)]
struct HeadState {
    last_ino: Option<Ino>,
    last_end: u64,
}

impl DiskModel {
    /// Build from the calibration table.
    #[must_use]
    pub fn from_timings(t: &Timings) -> Self {
        Self {
            busy: AtomicU64::new(0),
            state: Mutex::new(HeadState::default()),
            stream_mb_s: t.disk_mb_s,
            seek_ns: t.disk_seek_ns,
        }
    }

    /// Serve a read/write of `bytes` at `offset` of file `ino`, not before
    /// `earliest`. Returns the reservation window on the disk head.
    pub fn access(&self, ino: Ino, offset: u64, bytes: u64, earliest: Nanos) -> Reservation {
        let seek = {
            let mut st = self.state.lock();
            let contiguous = st.last_ino == Some(ino) && st.last_end == offset;
            st.last_ino = Some(ino);
            st.last_end = offset + bytes;
            !contiguous
        };
        let mut dur = bw_time_ns(bytes, self.stream_mb_s);
        if seek {
            dur = dur.saturating_add(self.seek_ns);
        }
        let prior_work = self.busy.fetch_add(dur, Ordering::AcqRel);
        let start = earliest.max(prior_work);
        Reservation {
            start,
            end: start.saturating_add(dur),
        }
    }

    /// Streaming bandwidth in MB/s.
    #[must_use]
    pub fn bandwidth_mb_s(&self) -> f64 {
        self.stream_mb_s
    }

    /// Forget head position and queued work (between benchmark phases).
    pub fn reset(&self) {
        self.busy.store(0, Ordering::Release);
        *self.state.lock() = HeadState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> DiskModel {
        DiskModel::from_timings(&Timings::default())
    }

    #[test]
    fn sequential_reads_pay_one_seek() {
        let d = disk();
        let a = d.access(1, 0, 1_000_000, 0);
        let b = d.access(1, 1_000_000, 1_000_000, a.end);
        // First access seeks; second continues.
        assert!(a.busy() > b.busy());
        assert_eq!(a.busy() - b.busy(), Timings::default().disk_seek_ns);
    }

    #[test]
    fn switching_files_seeks_again() {
        let d = disk();
        let a = d.access(1, 0, 1_000, 0);
        let b = d.access(2, 1_000, 1_000, a.end);
        assert_eq!(b.busy(), a.busy(), "file switch must seek");
    }

    #[test]
    fn head_serializes_concurrent_requests() {
        let d = disk();
        let a = d.access(1, 0, 1_000_000, 0);
        let b = d.access(1, 0, 1_000_000, 0);
        assert!(b.start >= a.end || a.start >= b.end);
    }

    #[test]
    fn zero_disk_bandwidth_means_free_access() {
        let d = DiskModel::from_timings(&Timings::default().without_host_io());
        let a = d.access(1, 0, 1 << 30, 0);
        assert_eq!(a.busy(), 0);
    }
}
