//! The host page cache: residency and dirtiness tracking with lazy LRU.
//!
//! This models the Linux page cache's *behaviour* (hit/miss/eviction and
//! write-back volume) rather than storing data — file bytes live in the
//! inode bodies. Capacity is evaluated dynamically against a shared
//! [`ByteLedger`], so pinned GPU staging buffers shrink the cache exactly
//! as `cudaHostMalloc` does on the paper's testbed.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use simtime::ByteLedger;

use crate::Ino;

/// A page-cache key: file and page index.
type Key = (Ino, u64);

#[derive(Debug, Clone, Copy)]
struct Entry {
    dirty: bool,
    tick: u64,
}

/// Snapshot of page-cache activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Page lookups that found the page resident.
    pub hits: u64,
    /// Page lookups that missed (required disk I/O).
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back during eviction.
    pub writebacks: u64,
}

/// LRU page cache with a dynamically computed byte budget.
pub struct PageCache {
    page_size: u64,
    entries: HashMap<Key, Entry>,
    // Lazy LRU queue: stale (tick-mismatched) fronts are skipped on pop.
    lru: VecDeque<(u64, Key)>,
    next_tick: u64,
    ledger: Arc<ByteLedger>,
    stats: CacheStats,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("page_size", &self.page_size)
            .field("resident_pages", &self.entries.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PageCache {
    /// A cache of `page_size`-byte pages budgeted against `ledger`.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn new(page_size: u64, ledger: Arc<ByteLedger>) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            entries: HashMap::new(),
            lru: VecDeque::new(),
            next_tick: 0,
            ledger,
            stats: CacheStats::default(),
        }
    }

    /// Cache page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Bytes currently resident.
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.entries.len() as u64 * self.page_size
    }

    /// Activity counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn bump(&mut self, key: Key, dirty_or: bool) {
        let tick = self.next_tick;
        self.next_tick += 1;
        let e = self
            .entries
            .entry(key)
            .or_insert(Entry { dirty: false, tick });
        e.tick = tick;
        e.dirty |= dirty_or;
        self.lru.push_back((tick, key));
    }

    /// Budget available to the cache right now: what the ledger has left
    /// plus what the cache itself already holds (the cache can always keep
    /// what it has unless someone else charged the ledger past capacity).
    fn budget(&self) -> u64 {
        self.ledger.capacity().saturating_sub(self.ledger.used())
    }

    /// Evict LRU pages until resident bytes fit the budget. Returns the
    /// keys of dirty pages that were written back.
    fn enforce_budget(&mut self) -> Vec<Key> {
        let mut writebacks = Vec::new();
        while self.resident_bytes() > self.budget() {
            let Some((tick, key)) = self.lru.pop_front() else {
                break;
            };
            match self.entries.get(&key) {
                Some(e) if e.tick == tick => {
                    if e.dirty {
                        self.stats.writebacks += 1;
                        writebacks.push(key);
                    }
                    self.entries.remove(&key);
                    self.stats.evictions += 1;
                }
                _ => {} // stale queue entry
            }
        }
        writebacks
    }

    /// Record a read of `page` of `ino`. Returns `(was_hit, dirty pages
    /// written back by any eviction this access triggered)`.
    pub fn touch_read(&mut self, ino: Ino, page: u64) -> (bool, Vec<Key>) {
        let hit = self.entries.contains_key(&(ino, page));
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        self.bump((ino, page), false);
        (hit, self.enforce_budget())
    }

    /// Record a write of `page` of `ino` (marks it dirty and resident).
    /// Returns dirty pages written back by any eviction this triggered.
    pub fn touch_write(&mut self, ino: Ino, page: u64) -> Vec<Key> {
        self.bump((ino, page), true);
        self.enforce_budget()
    }

    /// Whether `page` of `ino` is resident.
    #[must_use]
    pub fn is_resident(&self, ino: Ino, page: u64) -> bool {
        self.entries.contains_key(&(ino, page))
    }

    /// Insert `page` clean without touching hit/miss statistics — used by
    /// readahead, which is asynchronous prefetch rather than demand I/O.
    /// Returns dirty pages written back by any eviction this triggered.
    pub fn insert_readahead(&mut self, ino: Ino, page: u64) -> Vec<Key> {
        if self.entries.contains_key(&(ino, page)) {
            return Vec::new();
        }
        self.bump((ino, page), false);
        self.enforce_budget()
    }

    /// Clean all dirty pages of `ino` (fsync). Returns how many were dirty.
    pub fn clean(&mut self, ino: Ino) -> u64 {
        let mut cleaned = 0;
        for (key, e) in self.entries.iter_mut() {
            if key.0 == ino && e.dirty {
                e.dirty = false;
                cleaned += 1;
            }
        }
        cleaned
    }

    /// Drop all pages of `ino` (unlink/truncate), dirty or not.
    pub fn invalidate(&mut self, ino: Ino) {
        self.entries.retain(|key, _| key.0 != ino);
    }

    /// Drop pages of `ino` at page index >= `first_page` (truncate).
    pub fn invalidate_from(&mut self, ino: Ino, first_page: u64) {
        self.entries
            .retain(|key, _| key.0 != ino || key.1 < first_page);
    }

    /// Drop every clean page and forget dirtiness (models
    /// `echo 3 > /proc/sys/vm/drop_caches` before a cold-cache experiment;
    /// callers are expected to have synced beforehand).
    pub fn drop_caches(&mut self) {
        self.entries.clear();
        self.lru.clear();
    }

    /// Reset counters (between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(pages: u64) -> PageCache {
        let ledger = Arc::new(ByteLedger::new(pages * 4096));
        PageCache::new(4096, ledger)
    }

    #[test]
    fn hit_after_miss() {
        let mut c = cache(16);
        let (hit, _) = c.touch_read(1, 0);
        assert!(!hit);
        let (hit, _) = c.touch_read(1, 0);
        assert!(hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = cache(2);
        c.touch_read(1, 0);
        c.touch_read(1, 1);
        c.touch_read(1, 0); // refresh page 0
        c.touch_read(1, 2); // evicts page 1 (LRU)
        assert!(c.is_resident(1, 0));
        assert!(!c.is_resident(1, 1));
        assert!(c.is_resident(1, 2));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn eviction_reports_dirty_writebacks() {
        let mut c = cache(1);
        let wb = c.touch_write(1, 0);
        assert!(wb.is_empty());
        let (_, wb) = c.touch_read(1, 1); // evicts dirty page 0
        assert_eq!(wb, vec![(1, 0)]);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn shrinking_ledger_squeezes_cache() {
        let ledger = Arc::new(ByteLedger::new(8 * 4096));
        let mut c = PageCache::new(4096, Arc::clone(&ledger));
        for p in 0..8 {
            c.touch_read(1, p);
        }
        assert_eq!(c.resident_bytes(), 8 * 4096);
        // A pinned allocation takes half of host memory...
        ledger.charge(4 * 4096);
        // ...and the next access forces the cache down to the new budget.
        c.touch_read(1, 100);
        assert!(c.resident_bytes() <= 4 * 4096);
    }

    #[test]
    fn clean_and_invalidate() {
        let mut c = cache(16);
        c.touch_write(1, 0);
        c.touch_write(1, 1);
        c.touch_write(2, 0);
        assert_eq!(c.clean(1), 2);
        assert_eq!(c.clean(1), 0, "already clean");
        c.invalidate(1);
        assert!(!c.is_resident(1, 0));
        assert!(c.is_resident(2, 0), "other files unaffected");
    }

    #[test]
    fn invalidate_from_keeps_prefix() {
        let mut c = cache(16);
        for p in 0..6 {
            c.touch_read(3, p);
        }
        c.invalidate_from(3, 4);
        assert!(c.is_resident(3, 3));
        assert!(!c.is_resident(3, 4));
        assert!(!c.is_resident(3, 5));
    }

    #[test]
    fn drop_caches_empties_everything() {
        let mut c = cache(16);
        c.touch_read(1, 0);
        c.touch_write(1, 1);
        c.drop_caches();
        assert_eq!(c.resident_bytes(), 0);
        assert!(!c.is_resident(1, 0));
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn zero_page_size_panics() {
        let _ = PageCache::new(0, Arc::new(ByteLedger::new(1)));
    }
}
