//! WRAPFS-like consistency interposition layer.
//!
//! The paper implements its file consistency protocol with a modified
//! WRAPFS kernel module stacked over the host file system (§4.4): a thin
//! layer that observes opens, writes, truncates and unlinks, and lets the
//! GPUfs host daemon query file state — never file content — through a
//! character device. Invalidation is *lazy*: closing a file on one GPU
//! does not push anything; a GPU discovers staleness when it reopens the
//! file.
//!
//! We reproduce that as [`Consistency`]: a per-inode generation counter
//! bumped by every content-changing host operation or foreign
//! open-for-write, plus a registry of which GPUs hold cached pages of the
//! file. The GPUfs core maintains the registry live — `gopen` registers
//! the generation a GPU's cache reflects, every successful write-back
//! re-registers the generation it propagated, and dropping a file's
//! cache unregisters — so [`Consistency::is_stale`] answers the lazy
//! reopen-time staleness probe and [`Consistency::cachers`] lets tests
//! and tools audit exactly which GPUs hold a file.

use std::collections::{HashMap, HashSet};

use parking_lot::Mutex;

use crate::Ino;

/// Monotonic version of one file's content as seen by the host.
pub type FileGeneration = u64;

#[derive(Debug, Default)]
struct EntryState {
    generation: FileGeneration,
    /// GPUs that registered a cached copy, with the generation they cached.
    gpu_caches: HashMap<usize, FileGeneration>,
}

/// The registry's view of one file, as reported by
/// [`Consistency::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSnapshot {
    /// The file's inode.
    pub ino: Ino,
    /// Current host generation.
    pub generation: FileGeneration,
    /// Registered GPU caches as `(gpu, cached_generation)`, sorted by GPU.
    pub cachers: Vec<(usize, FileGeneration)>,
}

impl FileSnapshot {
    /// GPUs whose registered cache lags the current generation — the set
    /// lazy invalidation will catch up with, one reopen at a time.
    #[must_use]
    pub fn stale_cachers(&self) -> Vec<usize> {
        self.cachers
            .iter()
            .filter(|&&(_, gen)| gen < self.generation)
            .map(|&(g, _)| g)
            .collect()
    }
}

/// The consistency registry (stands in for the modified WRAPFS module).
#[derive(Debug, Default)]
pub struct Consistency {
    files: Mutex<HashMap<Ino, EntryState>>,
}

impl Consistency {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current generation of `ino` (0 if never touched).
    #[must_use]
    pub fn generation(&self, ino: Ino) -> FileGeneration {
        self.files.lock().get(&ino).map_or(0, |e| e.generation)
    }

    /// Record a content-changing event (host write, truncate, unlink,
    /// foreign open-for-write). Returns the new generation.
    pub fn bump(&self, ino: Ino) -> FileGeneration {
        let mut files = self.files.lock();
        let e = files.entry(ino).or_default();
        e.generation += 1;
        e.generation
    }

    /// A GPU registers that it now caches `ino` at generation `gen`.
    ///
    /// Registration is *monotonic* per `(ino, gpu)`: generations only
    /// ever grow on the host, so a registration racing a concurrent
    /// write-back batch (which re-registers the generation it observed)
    /// keeps the newest value — a lagging worker can never make a cache
    /// look staler than it is.
    pub fn register_gpu_cache(&self, ino: Ino, gpu: usize, gen: FileGeneration) {
        let mut files = self.files.lock();
        let slot = files
            .entry(ino)
            .or_default()
            .gpu_caches
            .entry(gpu)
            .or_insert(gen);
        *slot = (*slot).max(gen);
    }

    /// A GPU dropped its cached copy of `ino`.
    pub fn unregister_gpu_cache(&self, ino: Ino, gpu: usize) {
        if let Some(e) = self.files.lock().get_mut(&ino) {
            e.gpu_caches.remove(&gpu);
        }
    }

    /// Whether the copy GPU `gpu` cached is stale (lazy invalidation check
    /// performed on reopen).
    #[must_use]
    pub fn is_stale(&self, ino: Ino, gpu: usize) -> bool {
        let files = self.files.lock();
        match files.get(&ino) {
            Some(e) => match e.gpu_caches.get(&gpu) {
                Some(&cached_gen) => cached_gen < e.generation,
                None => false, // nothing cached, nothing stale
            },
            None => false,
        }
    }

    /// GPUs currently registered as caching `ino` (any generation).
    #[must_use]
    pub fn cachers(&self, ino: Ino) -> HashSet<usize> {
        self.files
            .lock()
            .get(&ino)
            .map(|e| e.gpu_caches.keys().copied().collect())
            .unwrap_or_default()
    }

    /// The generation GPU `gpu` is registered as caching `ino` at, or
    /// `None` if it holds no registration (never cached, or its cache was
    /// discarded/reclaimed). This is the registry's answer — the WRAPFS
    /// character-device query of §4.4 — as opposed to whatever the GPU's
    /// own parked file state believes, so reopen probes can refuse to
    /// revive a cache the registry no longer vouches for.
    #[must_use]
    pub fn registered_generation(&self, ino: Ino, gpu: usize) -> Option<FileGeneration> {
        self.files
            .lock()
            .get(&ino)
            .and_then(|e| e.gpu_caches.get(&gpu).copied())
    }

    /// Snapshot of every file the registry tracks: its current generation
    /// and each registered GPU cache with the generation it reflects.
    /// Fleet-level tooling iterates this to report cross-GPU coherence
    /// state (who caches what, who is lazily stale) without poking the
    /// per-file accessors one inode at a time.
    #[must_use]
    pub fn snapshot(&self) -> Vec<FileSnapshot> {
        let files = self.files.lock();
        let mut out: Vec<FileSnapshot> = files
            .iter()
            .map(|(&ino, e)| Self::snap_entry(ino, e))
            .collect();
        out.sort_unstable_by_key(|s| s.ino);
        out
    }

    /// [`Consistency::snapshot`] for one file: its registry view, or
    /// `None` if the registry does not track `ino`. One lock, one entry
    /// — the per-file audit path, so auditing one file never pays for
    /// the whole registry.
    #[must_use]
    pub fn file_snapshot(&self, ino: Ino) -> Option<FileSnapshot> {
        self.files
            .lock()
            .get(&ino)
            .map(|e| Self::snap_entry(ino, e))
    }

    fn snap_entry(ino: Ino, e: &EntryState) -> FileSnapshot {
        let mut cachers: Vec<(usize, FileGeneration)> =
            e.gpu_caches.iter().map(|(&g, &gen)| (g, gen)).collect();
        cachers.sort_unstable();
        FileSnapshot {
            ino,
            generation: e.generation,
            cachers,
        }
    }

    /// Forget all state for `ino` (file fully gone).
    pub fn forget(&self, ino: Ino) {
        self.files.lock().remove(&ino);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_start_at_zero_and_bump() {
        let c = Consistency::new();
        assert_eq!(c.generation(9), 0);
        assert_eq!(c.bump(9), 1);
        assert_eq!(c.bump(9), 2);
        assert_eq!(c.generation(9), 2);
    }

    #[test]
    fn staleness_is_lazy_and_per_gpu() {
        let c = Consistency::new();
        let g = c.bump(1);
        c.register_gpu_cache(1, 0, g);
        c.register_gpu_cache(1, 1, g);
        assert!(!c.is_stale(1, 0));
        // A host write invalidates both GPUs' copies...
        c.bump(1);
        assert!(c.is_stale(1, 0));
        assert!(c.is_stale(1, 1));
        // ...but only lazily: GPU 0 re-registers after refetching.
        c.register_gpu_cache(1, 0, c.generation(1));
        assert!(!c.is_stale(1, 0));
        assert!(c.is_stale(1, 1));
    }

    #[test]
    fn unregistered_gpu_is_never_stale() {
        let c = Consistency::new();
        c.bump(1);
        assert!(!c.is_stale(1, 3));
        c.register_gpu_cache(1, 3, c.generation(1));
        c.unregister_gpu_cache(1, 3);
        c.bump(1);
        assert!(!c.is_stale(1, 3));
    }

    #[test]
    fn registration_is_monotonic_per_gpu() {
        let c = Consistency::new();
        c.bump(4);
        c.bump(4);
        c.register_gpu_cache(4, 0, 2);
        // A lagging writer re-registering an older generation loses.
        c.register_gpu_cache(4, 0, 1);
        assert!(!c.is_stale(4, 0), "newest registration wins");
        // A fresh registration after unregister starts over.
        c.unregister_gpu_cache(4, 0);
        c.register_gpu_cache(4, 0, 1);
        assert!(c.is_stale(4, 0));
    }

    #[test]
    fn registered_generation_reports_the_registry_not_the_gpu() {
        let c = Consistency::new();
        assert_eq!(c.registered_generation(8, 0), None, "never registered");
        c.bump(8);
        c.register_gpu_cache(8, 0, 1);
        assert_eq!(c.registered_generation(8, 0), Some(1));
        c.bump(8);
        assert_eq!(
            c.registered_generation(8, 0),
            Some(1),
            "a host write moves the generation, not the registration"
        );
        c.unregister_gpu_cache(8, 0);
        assert_eq!(
            c.registered_generation(8, 0),
            None,
            "a discarded cache loses its registration entirely"
        );
    }

    #[test]
    fn snapshot_reports_every_file_and_its_stale_cachers() {
        let c = Consistency::new();
        c.bump(3);
        c.register_gpu_cache(3, 1, 1);
        c.register_gpu_cache(3, 0, 1);
        c.bump(3); // both now lazily stale
        c.register_gpu_cache(3, 0, 2); // GPU 0 refetched
        c.bump(5);
        c.register_gpu_cache(5, 2, 1);
        let snap = c.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].ino, 3);
        assert_eq!(snap[0].generation, 2);
        assert_eq!(snap[0].cachers, vec![(0, 2), (1, 1)]);
        assert_eq!(snap[0].stale_cachers(), vec![1]);
        assert_eq!(snap[1].ino, 5);
        assert_eq!(snap[1].stale_cachers(), Vec::<usize>::new());
    }

    #[test]
    fn cachers_and_forget() {
        let c = Consistency::new();
        c.register_gpu_cache(5, 0, 0);
        c.register_gpu_cache(5, 2, 0);
        assert_eq!(c.cachers(5), [0, 2].into_iter().collect());
        c.forget(5);
        assert!(c.cachers(5).is_empty());
        assert_eq!(c.generation(5), 0);
    }
}
