//! Error type for host file-system operations.

use std::fmt;

/// Errors returned by [`crate::HostFs`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists (exclusive create).
    AlreadyExists(String),
    /// Expected a file, found a directory.
    IsADirectory(String),
    /// Expected a directory along the path, found a file.
    NotADirectory(String),
    /// Directory still has entries.
    DirectoryNotEmpty(String),
    /// The open mode forbids the attempted access (e.g. writing through a
    /// read-only descriptor — the host OS "denies writes of dirty blocks
    /// back to the host file system if the GPUfs application has opened the
    /// file read-only", paper §4.5).
    PermissionDenied(String),
    /// Unknown or already-closed file descriptor.
    BadDescriptor(u64),
    /// Path is not absolute or contains empty components.
    InvalidPath(String),
    /// Write attempted on a synthetic (generated-content) file that was
    /// created immutable.
    ImmutableFile(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            FsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            FsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            FsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            FsError::PermissionDenied(p) => write!(f, "permission denied: {p}"),
            FsError::BadDescriptor(fd) => write!(f, "bad file descriptor: {fd}"),
            FsError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            FsError::ImmutableFile(p) => write!(f, "immutable synthetic file: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = FsError::NotFound("/a/b".into());
        assert_eq!(e.to_string(), "no such file or directory: /a/b");
        let e = FsError::BadDescriptor(42);
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FsError::BadDescriptor(1), FsError::BadDescriptor(1));
        assert_ne!(FsError::BadDescriptor(1), FsError::BadDescriptor(2));
    }
}
