//! Inodes: files, directories, and file bodies.

use std::collections::BTreeMap;

/// Inode number.
pub type Ino = u64;

/// What an inode is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

/// The bytes of a regular file.
///
/// Real datasets (image databases, source trees) are stored as
/// [`FileBody::Bytes`]. Very large streaming inputs — the paper reads
/// files up to 11.2 GB — use [`FileBody::Synthetic`], whose content is
/// generated deterministically per 8-byte word so that multi-gigabyte
/// files occupy no host RAM while still producing stable bytes on every
/// read. Synthetic files are immutable; the generators are only used for
/// read-mostly inputs (the matrix file of Figure 8, the 1.8 GB sequential-
/// read file of Figure 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileBody {
    /// Materialized content. `durable` holds the on-disk copy; `cached`
    /// additionally reflects writes that have not been fsynced yet.
    Bytes {
        /// Content as visible through the page cache (latest writes).
        cached: Vec<u8>,
        /// Content as persisted on disk (what survives a crash).
        durable: Vec<u8>,
    },
    /// Deterministically generated content of a fixed length.
    Synthetic {
        /// File length in bytes.
        len: u64,
        /// Generator seed.
        seed: u64,
    },
}

impl FileBody {
    /// An empty mutable file.
    #[must_use]
    pub fn empty() -> Self {
        FileBody::Bytes {
            cached: Vec::new(),
            durable: Vec::new(),
        }
    }

    /// Current (page-cache-visible) length.
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            FileBody::Bytes { cached, .. } => cached.len() as u64,
            FileBody::Synthetic { len, .. } => *len,
        }
    }

    /// Whether the file is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read up to `dst.len()` bytes at `offset`; returns bytes read.
    pub fn read_at(&self, offset: u64, dst: &mut [u8]) -> usize {
        let len = self.len();
        if offset >= len {
            return 0;
        }
        let n = dst.len().min((len - offset) as usize);
        match self {
            FileBody::Bytes { cached, .. } => {
                dst[..n].copy_from_slice(&cached[offset as usize..offset as usize + n]);
            }
            FileBody::Synthetic { seed, .. } => {
                synth_fill(*seed, offset, &mut dst[..n]);
            }
        }
        n
    }

    /// Write `src` at `offset` into the cached copy, extending the file
    /// (zero-filling any gap). Returns `false` for synthetic files, which
    /// are immutable.
    #[must_use]
    pub fn write_at(&mut self, offset: u64, src: &[u8]) -> bool {
        match self {
            FileBody::Bytes { cached, .. } => {
                let end = offset as usize + src.len();
                if cached.len() < end {
                    cached.resize(end, 0);
                }
                cached[offset as usize..end].copy_from_slice(src);
                true
            }
            FileBody::Synthetic { .. } => false,
        }
    }

    /// Persist the cached copy (fsync). Returns the number of bytes that
    /// differed, as a proxy for the write-back volume. For synthetic files
    /// this is always 0.
    pub fn sync(&mut self) -> u64 {
        match self {
            FileBody::Bytes { cached, durable } => {
                if cached == durable {
                    0
                } else {
                    let delta = cached.len().max(durable.len()) as u64;
                    *durable = cached.clone();
                    delta
                }
            }
            FileBody::Synthetic { .. } => 0,
        }
    }

    /// Discard non-persisted writes (crash). Returns bytes rolled back.
    pub fn roll_back(&mut self) -> u64 {
        match self {
            FileBody::Bytes { cached, durable } => {
                if cached == durable {
                    0
                } else {
                    let delta = cached.len().max(durable.len()) as u64;
                    *cached = durable.clone();
                    delta
                }
            }
            FileBody::Synthetic { .. } => 0,
        }
    }

    /// Truncate (or extend with zeros) the cached copy to `size`.
    /// Returns `false` for synthetic files.
    #[must_use]
    pub fn truncate(&mut self, size: u64) -> bool {
        match self {
            FileBody::Bytes { cached, .. } => {
                cached.resize(size as usize, 0);
                true
            }
            FileBody::Synthetic { .. } => false,
        }
    }
}

/// Fill `dst` with the deterministic synthetic content of the file with
/// `seed` starting at byte `offset`.
///
/// Content is defined per 8-byte word: word `i` is `splitmix64(seed ^ i)`,
/// so any byte range reads the same regardless of access pattern.
pub(crate) fn synth_fill(seed: u64, offset: u64, dst: &mut [u8]) {
    let mut pos = 0usize;
    while pos < dst.len() {
        let byte_off = offset + pos as u64;
        let word_idx = byte_off / 8;
        let in_word = (byte_off % 8) as usize;
        let word = splitmix64(seed ^ word_idx).to_le_bytes();
        let n = (8 - in_word).min(dst.len() - pos);
        dst[pos..pos + n].copy_from_slice(&word[in_word..in_word + n]);
        pos += n;
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One inode: kind, body, and link metadata.
#[derive(Debug, Clone)]
pub struct Inode {
    /// Inode number.
    pub ino: Ino,
    /// File or directory.
    pub kind: FileKind,
    /// File content (unused for directories).
    pub body: FileBody,
    /// Directory entries (unused for files).
    pub entries: BTreeMap<String, Ino>,
    /// Number of directory entries referring to this inode. An unlinked
    /// file with open descriptors survives until the last close.
    pub nlink: u32,
    /// Whether the file may be written at all (host-level protection).
    pub writable: bool,
}

impl Inode {
    /// A new regular file inode.
    #[must_use]
    pub fn new_file(ino: Ino, body: FileBody, writable: bool) -> Self {
        Self {
            ino,
            kind: FileKind::File,
            body,
            entries: BTreeMap::new(),
            nlink: 1,
            writable,
        }
    }

    /// A new directory inode.
    #[must_use]
    pub fn new_dir(ino: Ino) -> Self {
        Self {
            ino,
            kind: FileKind::Dir,
            body: FileBody::empty(),
            entries: BTreeMap::new(),
            nlink: 1,
            writable: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_body_read_write_roundtrip() {
        let mut b = FileBody::empty();
        assert!(b.write_at(4, &[1, 2, 3]));
        assert_eq!(b.len(), 7);
        let mut out = [9u8; 7];
        assert_eq!(b.read_at(0, &mut out), 7);
        assert_eq!(out, [0, 0, 0, 0, 1, 2, 3]);
    }

    #[test]
    fn read_past_eof_is_short() {
        let b = FileBody::Bytes {
            cached: vec![1, 2, 3],
            durable: vec![1, 2, 3],
        };
        let mut out = [0u8; 8];
        assert_eq!(b.read_at(2, &mut out), 1);
        assert_eq!(b.read_at(3, &mut out), 0);
        assert_eq!(b.read_at(100, &mut out), 0);
    }

    #[test]
    fn synthetic_reads_are_offset_stable() {
        let b = FileBody::Synthetic {
            len: 1 << 20,
            seed: 7,
        };
        let mut a = vec![0u8; 64];
        let mut c = vec![0u8; 16];
        assert_eq!(b.read_at(100, &mut a), 64);
        assert_eq!(b.read_at(116, &mut c), 16);
        assert_eq!(&a[16..32], &c[..]);
    }

    #[test]
    fn synthetic_is_immutable() {
        let mut b = FileBody::Synthetic { len: 100, seed: 1 };
        assert!(!b.write_at(0, &[1]));
        assert!(!b.truncate(10));
        assert_eq!(b.len(), 100);
    }

    #[test]
    fn sync_and_rollback() {
        let mut b = FileBody::empty();
        assert!(b.write_at(0, b"hello"));
        assert!(b.sync() > 0);
        assert!(b.write_at(0, b"HELLO"));
        assert!(b.roll_back() > 0);
        let mut out = [0u8; 5];
        b.read_at(0, &mut out);
        assert_eq!(&out, b"hello");
        // Nothing dirty: both are no-ops now.
        assert_eq!(b.sync(), 0);
        assert_eq!(b.roll_back(), 0);
    }

    #[test]
    fn truncate_extends_with_zeros() {
        let mut b = FileBody::empty();
        assert!(b.write_at(0, &[9, 9]));
        assert!(b.truncate(4));
        let mut out = [7u8; 4];
        b.read_at(0, &mut out);
        assert_eq!(out, [9, 9, 0, 0]);
        assert!(b.truncate(1));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn synth_fill_word_boundaries() {
        let mut whole = vec![0u8; 32];
        synth_fill(42, 0, &mut whole);
        for split in 1..31 {
            let mut a = vec![0u8; split];
            let mut b = vec![0u8; 32 - split];
            synth_fill(42, 0, &mut a);
            synth_fill(42, split as u64, &mut b);
            let mut joined = a;
            joined.extend_from_slice(&b);
            assert_eq!(joined, whole, "split at {split}");
        }
    }
}
