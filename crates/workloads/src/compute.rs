//! Calibrated compute-throughput model.
//!
//! The simulator executes workload logic for real (results are checked
//! against CPU reference implementations) but charges *virtual* time for
//! the data-parallel arithmetic, using rates calibrated from the paper's
//! own measurements so speedup ratios come out as published:
//!
//! * Image match: the paper reports 18 GFLOP/s on one GPU, "twice as fast
//!   as an 8-core CPU run using OpenMP" (§5.2.1), and distance computation
//!   is 2 FLOP per vector element.
//! * grep: one GPU beats the 8-core CPU by 6.8× on the Linux source and
//!   7.3× on Shakespeare (Table 4). Matching cost scales with
//!   `text bytes × dictionary words` per the paper's one-word-per-thread
//!   parallelization.
//! * Matrix–vector product is PCIe-bound; GPU arithmetic only has to be
//!   fast enough to hide behind the transfers (the C2075 peaks above
//!   1 TFLOP/s single precision).

use simtime::Nanos;

/// Floating-point throughput for the image-distance kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlopsModel {
    /// Sustained GPU throughput, FLOP/s.
    pub gpu_flops: f64,
    /// Sustained per-CPU-core throughput, FLOP/s.
    pub cpu_core_flops: f64,
}

impl FlopsModel {
    /// Calibration for the image-matching workload (see module docs).
    #[must_use]
    pub fn imgmatch() -> Self {
        Self {
            gpu_flops: 18.0e9,
            cpu_core_flops: 1.125e9,
        }
    }

    /// Calibration for the matrix–vector product: arithmetic hides behind
    /// PCIe transfers.
    #[must_use]
    pub fn matvec() -> Self {
        Self {
            gpu_flops: 515.0e9,
            cpu_core_flops: 4.0e9,
        }
    }

    /// Virtual time for `flops` floating-point operations using the whole
    /// GPU (e.g. a kernel processing one chunk).
    #[must_use]
    pub fn gpu_time(&self, flops: u64) -> Nanos {
        ((flops as f64) / self.gpu_flops * 1e9).round() as Nanos
    }

    /// Virtual time for `flops` executed by *one* of `concurrent_blocks`
    /// threadblocks sharing the GPU: the sustained rate divides among the
    /// resident blocks.
    #[must_use]
    pub fn gpu_block_time(&self, flops: u64, concurrent_blocks: usize) -> Nanos {
        ((flops as f64) * concurrent_blocks.max(1) as f64 / self.gpu_flops * 1e9).round() as Nanos
    }

    /// Virtual time for `flops` on one CPU core.
    #[must_use]
    pub fn cpu_core_time(&self, flops: u64) -> Nanos {
        ((flops as f64) / self.cpu_core_flops * 1e9).round() as Nanos
    }
}

/// Throughput for dictionary string matching, in byte·word units per
/// second: matching `b` bytes of text against `w` dictionary words costs
/// `b*w` units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchModel {
    /// GPU units per second.
    pub gpu_rate: f64,
    /// Per-CPU-core units per second.
    pub cpu_core_rate: f64,
}

impl MatchModel {
    /// Calibration from Table 4: 524 MB × 58k words in 53 min on one GPU
    /// and 6.07 h on 8 cores.
    #[must_use]
    pub fn grep() -> Self {
        Self {
            gpu_rate: 9.56e9,
            cpu_core_rate: 1.74e8,
        }
    }

    /// Virtual time for the whole GPU to match `text_bytes` against
    /// `dict_words`.
    #[must_use]
    pub fn gpu_time(&self, text_bytes: u64, dict_words: u64) -> Nanos {
        ((text_bytes as f64) * (dict_words as f64) / self.gpu_rate * 1e9).round() as Nanos
    }

    /// Virtual time for one of `concurrent_blocks` resident threadblocks
    /// to match `text_bytes` against `dict_words`.
    #[must_use]
    pub fn gpu_block_time(
        &self,
        text_bytes: u64,
        dict_words: u64,
        concurrent_blocks: usize,
    ) -> Nanos {
        ((text_bytes as f64) * (dict_words as f64) * concurrent_blocks.max(1) as f64
            / self.gpu_rate
            * 1e9)
            .round() as Nanos
    }

    /// Virtual single-core time to match `text_bytes` against `dict_words`.
    #[must_use]
    pub fn cpu_core_time(&self, text_bytes: u64, dict_words: u64) -> Nanos {
        ((text_bytes as f64) * (dict_words as f64) / self.cpu_core_rate * 1e9).round() as Nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imgmatch_calibration_reproduces_table3_ratio() {
        // 2016 queries × ~75k db images × 4096 elements × 2 flops.
        let flops = 2016u64 * 75_000 * 4096 * 2;
        let m = FlopsModel::imgmatch();
        let gpu_s = m.gpu_time(flops) as f64 / 1e9;
        let cpu8_s = m.cpu_core_time(flops) as f64 / 8.0 / 1e9;
        assert!((50.0..80.0).contains(&gpu_s), "gpu {gpu_s}s");
        let ratio = cpu8_s / gpu_s;
        assert!(
            (1.8..2.5).contains(&ratio),
            "paper: GPU ≈ 2× CPU×8, got {ratio}"
        );
    }

    #[test]
    fn grep_calibration_reproduces_table4() {
        let m = MatchModel::grep();
        let linux_bytes = 524u64 << 20;
        let words = 58_000u64;
        let gpu_min = m.gpu_time(linux_bytes, words) as f64 / 1e9 / 60.0;
        let cpu8_h = m.cpu_core_time(linux_bytes, words) as f64 / 8.0 / 1e9 / 3600.0;
        assert!(
            (45.0..62.0).contains(&gpu_min),
            "paper: 53m, got {gpu_min}m"
        );
        assert!((5.0..7.0).contains(&cpu8_h), "paper: 6.07h, got {cpu8_h}h");
        let shak_s = m.gpu_time(6 << 20, words) as f64 / 1e9;
        assert!((30.0..48.0).contains(&shak_s), "paper: 40s, got {shak_s}s");
    }

    #[test]
    fn matvec_compute_hides_behind_pcie() {
        // Processing 1 MB of matrix (2 flops per 4-byte element) must be
        // much faster than moving it over PCIe (~183 us/MB).
        let m = FlopsModel::matvec();
        let t = m.gpu_time((1 << 20) / 4 * 2);
        assert!(
            t < 50_000,
            "compute {t}ns per MB should hide behind ~183us PCIe"
        );
    }
}
