//! Distributed image search across any [`FleetView`] (paper §6).
//!
//! The paper's headline multi-GPU experiment shards one shared set of
//! image-database files across up to 8 GPUs, every GPU running its own
//! buffer cache over the common host file system. This driver is that
//! experiment over the cluster layer: database files are file-grained
//! jobs dealt to per-GPU shards (every chunk of one file starts on that
//! file's shard), threadblocks pull chunks from the fleet's
//! [`WorkQueue`], and — under [`ShardStrategy::WorkStealing`] — a GPU
//! whose shard runs dry steals chunks from the slowest shard instead of
//! idling, which is what balances skewed match costs.
//!
//! Unlike the single-GPU [`crate::imgmatch`] (which scans databases in
//! priority order per *query* and exits early), the distributed search
//! is **exhaustive over its shard**: every database image is compared
//! against every query, and a query's reported match is the
//! highest-priority `(db, slot)` found anywhere in the fleet — so the
//! result is independent of how work was distributed, which the tests
//! exploit: static sharding and work stealing must produce identical
//! matches, differing only in time and steal counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpufs::cluster::{FleetView, ShardStrategy, WorkQueue};
use gpufs::{GOpenMode, GpufsResult};
use gpusim::Grid;
use simtime::Nanos;

use crate::compute::FlopsModel;
use crate::corpus::ImageDataset;

/// Packed "no match" sentinel in the results array.
const NO_MATCH: u64 = u64::MAX;

fn pack(db: usize, slot: usize) -> u64 {
    ((db as u64) << 32) | slot as u64
}

fn unpack(v: u64) -> Option<(usize, usize)> {
    if v == NO_MATCH {
        None
    } else {
        Some(((v >> 32) as usize, (v & 0xffff_ffff) as usize))
    }
}

fn f32_slice(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

fn matches_query(img: &[f32], query: &[f32], threshold_sq: f32) -> bool {
    let d0 = img[0] - query[0];
    if d0 * d0 > threshold_sq {
        return false;
    }
    let mut acc = 0.0f32;
    for (a, b) in img.iter().zip(query) {
        let d = a - b;
        acc += d * d;
        if acc > threshold_sq {
            return false;
        }
    }
    true
}

/// One work item: a chunk of one database file.
#[derive(Debug, Clone, Copy)]
struct Chunk {
    db: usize,
    img0: usize,
    n_imgs: usize,
}

/// Outcome of one [`cluster_search`] run.
#[derive(Debug, Clone)]
pub struct ClusterSearchOutcome {
    /// Virtual elapsed time of the whole fleet (slowest GPU).
    pub elapsed: Nanos,
    /// Per-GPU virtual end times.
    pub per_gpu_elapsed: Vec<Nanos>,
    /// Per query: the highest-priority `(db, slot)` holding an exact
    /// copy, fleet-wide.
    pub matches: Vec<Option<(usize, usize)>>,
    /// Work items each GPU processed (its shard plus anything stolen).
    pub items_per_gpu: Vec<usize>,
    /// Items that migrated between shards (0 under static sharding).
    pub steals: u64,
    /// Total database bytes scanned (the whole corpus, exactly once).
    pub bytes_scanned: u64,
}

/// Run the distributed image search: shard `ds`'s database files across
/// the fleet in chunks of `chunk_imgs` images, distribute them under
/// `strategy`, and compare every database image against every query.
///
/// Generic over [`FleetView`], so the same driver runs a single-host
/// [`gpufs::GpuFleet`] or a cross-host [`gpufs::HostFleet`] — GPUs are
/// named by the view's global index either way.
///
/// # Errors
///
/// Propagates GPUfs errors raised inside any kernel.
///
/// # Panics
///
/// Panics if the fleet is empty or `chunk_imgs` is zero.
pub fn cluster_search(
    fleet: &impl FleetView,
    ds: &ImageDataset,
    threshold: f32,
    chunk_imgs: usize,
    strategy: ShardStrategy,
) -> GpufsResult<ClusterSearchOutcome> {
    assert!(!fleet.is_empty(), "need at least one GPU");
    assert!(chunk_imgs > 0, "chunks must hold at least one image");
    let n_gpus = fleet.len();
    let n_dbs = ds.db_paths.len();

    // File-grained sharding, chunk-grained items: every chunk of file
    // `db` starts on the shard the *file* is dealt to, so a static run
    // keeps whole files on one GPU while stealing migrates single chunks.
    let mut chunks: Vec<Chunk> = Vec::new();
    let mut assignments: Vec<usize> = Vec::new();
    for (db, &size) in ds.db_sizes.iter().enumerate() {
        let shard = db * n_gpus / n_dbs.max(1);
        let mut img0 = 0;
        while img0 < size {
            let n_imgs = chunk_imgs.min(size - img0);
            chunks.push(Chunk { db, img0, n_imgs });
            assignments.push(shard);
            img0 += n_imgs;
        }
    }
    let queue = WorkQueue::with_assignments(&assignments, n_gpus, strategy);

    let ib = ds.image_bytes();
    let threshold_sq = threshold * threshold;
    let model = FlopsModel::imgmatch();
    let results: Vec<AtomicU64> = (0..ds.n_queries)
        .map(|_| AtomicU64::new(NO_MATCH))
        .collect();
    let items_done: Vec<AtomicU64> = (0..n_gpus).map(|_| AtomicU64::new(0)).collect();
    let failure: parking_lot::Mutex<Option<gpufs::GpufsError>> = parking_lot::Mutex::new(None);
    // The fleet's claim order must follow *virtual* time, not the real
    // OS-thread race: blocks are real threads whose real speed runs far
    // ahead of the virtual cost they accrue (and kernels launch one GPU
    // after another), so un-paced greedy claiming lets whoever is
    // scheduled first drain — and over-steal — the queue in microseconds
    // of real time, a schedule corresponding to no virtual timeline. The
    // clock board fixes the order conservatively: every block publishes
    // its virtual clock here at each claim, and may claim only when no
    // live block in the whole fleet is virtually behind it — i.e. items
    // go to the virtually-least-loaded block, exactly the greedy
    // work-conserving schedule a real fleet exhibits. Exited blocks park
    // at `u64::MAX` so they never hold the line (stored on every exit
    // path, including errors).
    let block_base: Vec<usize> = (0..n_gpus)
        .scan(0usize, |acc, g| {
            let base = *acc;
            *acc += fleet.gpu(g).spec().concurrent_blocks();
            Some(base)
        })
        .collect();
    let total_blocks: usize = (0..n_gpus)
        .map(|g| fleet.gpu(g).spec().concurrent_blocks())
        .sum();
    let clock_board: Vec<AtomicU64> = (0..total_blocks).map(|_| AtomicU64::new(0)).collect();

    let per_gpu_elapsed: Vec<Nanos> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_gpus)
            .map(|g| {
                let mount = Arc::clone(fleet.mount(g));
                let gpu = Arc::clone(fleet.gpu(g));
                let (queue, chunks) = (&queue, &chunks);
                let (results, items_done, failure) = (&results, &items_done, &failure);
                let (clock_board, block_base) = (&clock_board, &block_base);
                s.spawn(move || {
                    let blocks = gpu.spec().concurrent_blocks();
                    let res = gpu.launch(Grid::new(blocks, 512), 0, |blk| {
                        let my_slot = block_base[g] + blk.block_id();
                        let mut work = || -> GpufsResult<()> {
                            // Every block matches the full query set.
                            let fd_q = mount.open(blk, &ds.query_path, GOpenMode::ReadOnly)?;
                            let mut qbytes = vec![0u8; ds.n_queries * ib];
                            mount.read(blk, &fd_q, 0, &mut qbytes)?;
                            mount.close(blk, fd_q)?;
                            let queries: Vec<Vec<f32>> =
                                qbytes.chunks_exact(ib).map(f32_slice).collect();
                            let nb = blk.grid().blocks;
                            loop {
                                // Publish my clock; claim once nobody
                                // live is virtually behind me.
                                loop {
                                    let now = blk.now();
                                    clock_board[my_slot].store(now, Ordering::Release);
                                    let behind = clock_board.iter().enumerate().any(|(s, c)| {
                                        s != my_slot && c.load(Ordering::Acquire) < now
                                    });
                                    if !behind {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                                let Some(item) = queue.next(g) else { break };
                                let c = chunks[item.index];
                                let fd =
                                    mount.open(blk, &ds.db_paths[c.db], GOpenMode::ReadOnly)?;
                                let mut buf = vec![0u8; c.n_imgs * ib];
                                let got = mount.read(blk, &fd, (c.img0 * ib) as u64, &mut buf)?;
                                debug_assert_eq!(got, c.n_imgs * ib);
                                mount.close(blk, fd)?;
                                let flops =
                                    (c.n_imgs as u64) * (ds.n_queries as u64) * (ds.dim as u64) * 2;
                                blk.advance(model.gpu_block_time(flops, nb));
                                for i in 0..c.n_imgs {
                                    let image = f32_slice(&buf[i * ib..(i + 1) * ib]);
                                    for (q, query) in queries.iter().enumerate() {
                                        if matches_query(&image, query, threshold_sq) {
                                            // Highest-priority match wins,
                                            // whichever GPU finds it first.
                                            results[q].fetch_min(
                                                pack(c.db, c.img0 + i),
                                                Ordering::Relaxed,
                                            );
                                        }
                                    }
                                }
                                items_done[g].fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(())
                        };
                        let outcome = work();
                        // Whatever happened, leave the clock board: a
                        // parked block must never hold up the fleet.
                        clock_board[my_slot].store(u64::MAX, Ordering::Release);
                        if let Err(e) = outcome {
                            failure.lock().get_or_insert(e);
                        }
                    });
                    res.end
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gpu thread"))
            .collect()
    });
    if let Some(e) = failure.into_inner() {
        return Err(e);
    }

    let matches: Vec<Option<(usize, usize)>> = results
        .iter()
        .map(|r| unpack(r.load(Ordering::Relaxed)))
        .collect();
    Ok(ClusterSearchOutcome {
        elapsed: per_gpu_elapsed.iter().copied().max().unwrap_or(0),
        per_gpu_elapsed,
        matches,
        items_per_gpu: items_done
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as usize)
            .collect(),
        steals: queue.steals(),
        bytes_scanned: ds.db_sizes.iter().map(|&s| (s * ib) as u64).sum(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{gen_image_dataset, ImageDatasetConfig};
    use gpufs::cluster::FleetBuilder;
    use gpufs::GpufsConfig;
    use gpusim::GpuSpec;
    use hostfs::HostFs;

    fn fleet(n: usize, fs: &Arc<HostFs>) -> gpufs::cluster::GpuFleet {
        FleetBuilder::new(n)
            .spec(GpuSpec::small_test())
            .config(GpufsConfig::new(8 << 10, 2 << 20))
            .host_fs(Arc::clone(fs))
            .build()
            .unwrap()
    }

    fn dataset(fs: &HostFs, db_sizes: Vec<usize>) -> ImageDataset {
        let ds = gen_image_dataset(
            fs,
            &ImageDatasetConfig {
                dir: "/cimg".into(),
                db_sizes,
                n_queries: 16,
                dim: 64,
                match_fraction: 0.5,
                plant_in_first_db_prefix: false,
                seed: 23,
            },
        );
        // Warm the shared host page cache so time comparisons between
        // runs measure distribution policy, not first-touch disk cost.
        for path in ds.db_paths.iter().chain([&ds.query_path]) {
            let _ = fs.read_whole(path, 0).expect("warm cache");
        }
        fs.reset_device_time();
        ds
    }

    #[test]
    fn cluster_search_finds_exactly_the_planted_copies() {
        let fs = Arc::new(HostFs::new(hostfs::HostFsConfig::default()));
        let ds = dataset(&fs, vec![40, 30, 50, 20]);
        let fleet = fleet(2, &fs);
        let out = cluster_search(&fleet, &ds, 0.5, 8, ShardStrategy::WorkStealing).unwrap();
        assert_eq!(out.matches, ds.planted, "exhaustive search = planting");
        assert_eq!(
            out.items_per_gpu.iter().sum::<usize>(),
            ds.db_sizes.iter().map(|s| s.div_ceil(8)).sum::<usize>(),
            "every chunk processed exactly once"
        );
        assert_eq!(out.bytes_scanned, 140 * 64 * 4);
        assert!(out.elapsed > 0);
    }

    #[test]
    fn static_and_stealing_agree_on_matches() {
        let fs = Arc::new(HostFs::new(hostfs::HostFsConfig::default()));
        let ds = dataset(&fs, vec![120, 10, 10, 10]);
        // Fresh fleets so buffer caches start cold in both runs.
        let st = cluster_search(&fleet(2, &fs), &ds, 0.5, 4, ShardStrategy::Static).unwrap();
        let ws = cluster_search(&fleet(2, &fs), &ds, 0.5, 4, ShardStrategy::WorkStealing).unwrap();
        assert_eq!(st.matches, ws.matches, "distribution never changes results");
        assert_eq!(st.steals, 0, "static never steals");
        assert_eq!(st.matches, ds.planted);
    }

    #[test]
    fn stealing_rebalances_a_skewed_corpus() {
        // Files 0..2 (dealt to GPU 0) hold ~14x the images of files 2..4
        // (GPU 1): a static shard leaves GPU 1 idle while GPU 0 grinds.
        let fs = Arc::new(HostFs::new(hostfs::HostFsConfig::default()));
        let ds = dataset(&fs, vec![140, 140, 10, 10]);
        let st = cluster_search(&fleet(2, &fs), &ds, 0.5, 4, ShardStrategy::Static).unwrap();
        let ws = cluster_search(&fleet(2, &fs), &ds, 0.5, 4, ShardStrategy::WorkStealing).unwrap();
        assert!(ws.steals > 0, "the idle GPU must steal");
        assert!(
            ws.elapsed < st.elapsed,
            "stealing ({}) must beat static sharding ({}) on skew",
            ws.elapsed,
            st.elapsed
        );
        // Static: GPU 1 processed only its own 6 chunks; stealing: more.
        assert_eq!(st.items_per_gpu[1], 6);
        assert!(ws.items_per_gpu[1] > 6);
    }
}
