//! Deterministic synthetic datasets standing in for the paper's inputs.
//!
//! The paper evaluates on the Linux 3.3.1 source tree (~33k files,
//! 524 MB), the complete works of Shakespeare (one 6 MB file), a 58k-word
//! modern-English dictionary reformatted to 32-byte-aligned records, and
//! randomly generated image databases with query images injected at random
//! locations (§5.2). None of those bytes matter — what the experiments
//! exercise is the file-count/size distribution and the match statistics —
//! so we generate seeded equivalents (see DESIGN.md, substitution table).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hostfs::HostFs;

/// Byte width of one dictionary record: "we reformat the dictionary to
/// align every word on a 32 byte boundary; none of the words in the
/// dictionary exceed that length" (§5.2.2).
pub const DICT_RECORD: usize = 32;

/// A generated text corpus plus its dictionary.
#[derive(Debug, Clone)]
pub struct TextCorpus {
    /// Directory holding the files.
    pub dir: String,
    /// Path of the file that lists the input files, one per line ("the
    /// list of input files is itself specified in a file", §5.2.2).
    pub file_list_path: String,
    /// The corpus files.
    pub files: Vec<String>,
    /// Total corpus bytes.
    pub total_bytes: u64,
    /// Path of the 32-byte-aligned dictionary file.
    pub dict_path: String,
    /// The dictionary words (sorted).
    pub dict_words: Vec<String>,
}

/// Configuration for [`gen_text_corpus`].
#[derive(Debug, Clone)]
pub struct TextCorpusConfig {
    /// Directory to create the corpus under.
    pub dir: String,
    /// Number of files ("Linux kernel source": many small files;
    /// "Shakespeare": one big file).
    pub n_files: usize,
    /// Total corpus size in bytes, split across files with a skewed
    /// distribution like a source tree's.
    pub total_bytes: u64,
    /// Vocabulary size the text draws from.
    pub vocab_size: usize,
    /// Number of dictionary words; half are drawn from the vocabulary
    /// (and therefore occur) and half are synthetic non-occurring words.
    pub dict_words: usize,
    /// RNG seed.
    pub seed: u64,
}

fn vocab_word(i: usize) -> String {
    // Pronounceable-ish, length 3..=14, deterministic.
    const SYL: [&str; 16] = [
        "ka", "lo", "mi", "tur", "ve", "sha", "dr", "en", "pos", "ix", "ul", "gra", "net", "om",
        "zy", "fu",
    ];
    let mut w = String::new();
    let mut v = i + 1;
    while v > 0 {
        w.push_str(SYL[v % SYL.len()]);
        v /= SYL.len();
    }
    w.truncate(14);
    w
}

/// Generate a corpus under `cfg.dir` (directories are created), returning
/// its description.
///
/// # Panics
///
/// Panics on invalid configuration (zero files) or host-FS setup errors.
#[must_use]
pub fn gen_text_corpus(fs: &HostFs, cfg: &TextCorpusConfig) -> TextCorpus {
    assert!(cfg.n_files > 0, "corpus needs at least one file");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    fs.mkdir_p(&cfg.dir).expect("create corpus dir");

    // Skewed file sizes: most files small, a few large, like a source
    // tree. Weights follow a power-ish law.
    let weights: Vec<f64> = (0..cfg.n_files)
        .map(|_| {
            let u: f64 = rng.gen_range(0.05..1.0f64);
            1.0 / u // heavy tail
        })
        .collect();
    let wsum: f64 = weights.iter().sum();

    let mut files = Vec::with_capacity(cfg.n_files);
    let mut total = 0u64;
    // Spread files over subdirectories, 64 per dir, like kernel sources.
    for (i, w) in weights.iter().enumerate() {
        let sub = format!("{}/d{:03}", cfg.dir, i / 64);
        if i % 64 == 0 {
            fs.mkdir_p(&sub).expect("create subdir");
        }
        let target = ((w / wsum) * cfg.total_bytes as f64).max(64.0) as usize;
        let mut text = String::with_capacity(target + 16);
        while text.len() < target {
            let word = vocab_word(rng.gen_range(0..cfg.vocab_size));
            text.push_str(&word);
            text.push(if rng.gen_bool(0.12) { '\n' } else { ' ' });
        }
        let path = format!("{sub}/f{i:05}.txt");
        total += text.len() as u64;
        fs.create(&path, text.as_bytes())
            .expect("create corpus file");
        files.push(path);
    }

    // Dictionary: half occurring vocabulary words, half absent words.
    let mut dict_words: Vec<String> = (0..cfg.dict_words)
        .map(|i| {
            if i % 2 == 0 {
                vocab_word(rng.gen_range(0..cfg.vocab_size))
            } else {
                format!("xq{i}absent")
            }
        })
        .collect();
    dict_words.sort();
    dict_words.dedup();
    let mut dict_bytes = Vec::with_capacity(dict_words.len() * DICT_RECORD);
    for w in &dict_words {
        let mut rec = [0u8; DICT_RECORD];
        rec[..w.len().min(DICT_RECORD - 1)]
            .copy_from_slice(&w.as_bytes()[..w.len().min(DICT_RECORD - 1)]);
        dict_bytes.extend_from_slice(&rec);
    }
    let dict_path = format!("{}/dictionary.bin", cfg.dir);
    fs.create(&dict_path, &dict_bytes)
        .expect("create dictionary");

    let file_list_path = format!("{}/file_list.txt", cfg.dir);
    let list = files.join("\n") + "\n";
    fs.create(&file_list_path, list.as_bytes())
        .expect("create file list");

    TextCorpus {
        dir: cfg.dir.clone(),
        file_list_path,
        files,
        total_bytes: total,
        dict_path,
        dict_words,
    }
}

/// Parse a 32-byte-aligned dictionary file back into words.
#[must_use]
pub fn parse_dictionary(bytes: &[u8]) -> Vec<Vec<u8>> {
    bytes
        .chunks_exact(DICT_RECORD)
        .map(|rec| {
            let n = rec.iter().position(|&b| b == 0).unwrap_or(DICT_RECORD);
            rec[..n].to_vec()
        })
        .collect()
}

/// A generated image-matching dataset.
#[derive(Debug, Clone)]
pub struct ImageDataset {
    /// Database files, in priority order.
    pub db_paths: Vec<String>,
    /// Images per database.
    pub db_sizes: Vec<usize>,
    /// The query-set file.
    pub query_path: String,
    /// Number of query images.
    pub n_queries: usize,
    /// Elements per image vector (the paper uses 4096).
    pub dim: usize,
    /// For each query, the `(db, index)` where its exact copy was
    /// planted, or `None` for no-match queries. When a query is planted
    /// in several databases, this records the highest-priority one.
    pub planted: Vec<Option<(usize, usize)>>,
}

impl ImageDataset {
    /// Bytes per image record.
    #[must_use]
    pub fn image_bytes(&self) -> usize {
        self.dim * 4
    }
}

/// Configuration for [`gen_image_dataset`].
#[derive(Debug, Clone)]
pub struct ImageDatasetConfig {
    /// Directory for the files.
    pub dir: String,
    /// Images per database, in priority order (the paper: ~25k images in
    /// each of 3 databases of 383/357/400 MB).
    pub db_sizes: Vec<usize>,
    /// Number of query images (paper: 2016).
    pub n_queries: usize,
    /// Elements per image (paper: 4096 → 16 KB/image).
    pub dim: usize,
    /// Fraction of queries that get an exact copy planted somewhere.
    pub match_fraction: f64,
    /// When true, every planted query lands at the very start of the
    /// first database — the paper's degenerate early-exit case where
    /// runtime falls 400×, "leaving only the costs of initialization,
    /// invocation, and matching the query list with the first database
    /// page" (§5.2.1).
    pub plant_in_first_db_prefix: bool,
    /// RNG seed.
    pub seed: u64,
}

fn push_f32s(out: &mut Vec<u8>, v: &[f32]) {
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Generate query and database files; exact copies of matching queries
/// are injected at random locations (§5.2.1).
///
/// # Panics
///
/// Panics on host-FS setup errors.
#[must_use]
pub fn gen_image_dataset(fs: &HostFs, cfg: &ImageDatasetConfig) -> ImageDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    fs.mkdir_p(&cfg.dir).expect("create image dir");

    let queries: Vec<Vec<f32>> = if cfg.plant_in_first_db_prefix {
        // The paper's degenerate early-exit case: "images always match
        // the first entry in the first database" (§5.2.1) — every query
        // is the same image, planted at slot 0 of database 0.
        let one: Vec<f32> = (0..cfg.dim).map(|_| rng.gen_range(0.0..1.0f32)).collect();
        vec![one; cfg.n_queries]
    } else {
        (0..cfg.n_queries)
            .map(|_| (0..cfg.dim).map(|_| rng.gen_range(0.0..1.0f32)).collect())
            .collect()
    };

    // Decide planting: (query, db, slot).
    let mut planted: Vec<Option<(usize, usize)>> = vec![None; cfg.n_queries];
    let mut plants: Vec<Vec<(usize, usize)>> = vec![Vec::new(); cfg.db_sizes.len()]; // per-db (slot, query)
    if cfg.plant_in_first_db_prefix {
        plants[0].push((0, 0));
        for p in planted.iter_mut() {
            *p = Some((0, 0));
        }
    } else {
        for (q, plant) in planted.iter_mut().enumerate() {
            if rng.gen_bool(cfg.match_fraction) {
                let db = rng.gen_range(0..cfg.db_sizes.len());
                let slot = rng.gen_range(0..cfg.db_sizes[db]);
                if plants[db].iter().any(|&(s, _)| s == slot) {
                    continue; // slot already used; leave this query unmatched
                }
                plants[db].push((slot, q));
                *plant = Some((db, slot));
            }
        }
    }

    let mut db_paths = Vec::new();
    for (d, &size) in cfg.db_sizes.iter().enumerate() {
        let mut bytes = Vec::with_capacity(size * cfg.dim * 4);
        let planted_here: std::collections::HashMap<usize, usize> =
            plants[d].iter().copied().collect();
        for slot in 0..size {
            if let Some(&q) = planted_here.get(&slot) {
                push_f32s(&mut bytes, &queries[q]);
            } else {
                // Random image, offset by +2.0 so it can never match a
                // query within any reasonable threshold.
                let img: Vec<f32> = (0..cfg.dim).map(|_| rng.gen_range(2.0..3.0f32)).collect();
                push_f32s(&mut bytes, &img);
            }
        }
        let path = format!("{}/db{d}.img", cfg.dir);
        fs.create(&path, &bytes).expect("create image db");
        db_paths.push(path);
    }

    let mut qbytes = Vec::with_capacity(cfg.n_queries * cfg.dim * 4);
    for q in &queries {
        push_f32s(&mut qbytes, q);
    }
    let query_path = format!("{}/queries.img", cfg.dir);
    fs.create(&query_path, &qbytes).expect("create query set");

    ImageDataset {
        db_paths,
        db_sizes: cfg.db_sizes.clone(),
        query_path,
        n_queries: cfg.n_queries,
        dim: cfg.dim,
        planted,
    }
}

/// Create the matrix and vector files for the matrix–vector product.
/// The matrix is synthetic (no host RAM cost, any size); the vector is a
/// real file of seeded f32 values.
///
/// # Panics
///
/// Panics on host-FS setup errors.
pub fn gen_matvec_input(
    fs: &HostFs,
    matrix_path: &str,
    vector_path: &str,
    rows: u64,
    cols: u64,
    seed: u64,
) {
    fs.create_synthetic(matrix_path, rows * cols * 4, seed)
        .expect("create matrix");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5ec);
    let mut bytes = Vec::with_capacity(cols as usize * 4);
    for _ in 0..cols {
        bytes.extend_from_slice(&rng.gen_range(-1.0..1.0f32).to_le_bytes());
    }
    fs.create(vector_path, &bytes).expect("create vector");
}

#[cfg(test)]
mod tests {
    use super::*;
    use hostfs::HostFsConfig;

    fn fs() -> HostFs {
        HostFs::new(HostFsConfig::default())
    }

    fn small_corpus_cfg() -> TextCorpusConfig {
        TextCorpusConfig {
            dir: "/corpus".into(),
            n_files: 20,
            total_bytes: 64 << 10,
            vocab_size: 500,
            dict_words: 100,
            seed: 42,
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let f1 = fs();
        let f2 = fs();
        let c1 = gen_text_corpus(&f1, &small_corpus_cfg());
        let c2 = gen_text_corpus(&f2, &small_corpus_cfg());
        assert_eq!(c1.files, c2.files);
        assert_eq!(c1.total_bytes, c2.total_bytes);
        assert_eq!(c1.dict_words, c2.dict_words);
        let (a, _) = f1.read_whole(&c1.files[3], 0).unwrap();
        let (b, _) = f2.read_whole(&c2.files[3], 0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_file_list_matches_files() {
        let f = fs();
        let c = gen_text_corpus(&f, &small_corpus_cfg());
        let (list, _) = f.read_whole(&c.file_list_path, 0).unwrap();
        let listed: Vec<&str> = std::str::from_utf8(&list).unwrap().lines().collect();
        assert_eq!(listed, c.files);
        for path in &c.files {
            assert!(f.exists(path));
        }
    }

    #[test]
    fn dictionary_records_are_aligned_and_parse_back() {
        let f = fs();
        let c = gen_text_corpus(&f, &small_corpus_cfg());
        let (bytes, _) = f.read_whole(&c.dict_path, 0).unwrap();
        assert_eq!(bytes.len() % DICT_RECORD, 0);
        let parsed = parse_dictionary(&bytes);
        let words: Vec<String> = parsed
            .iter()
            .map(|w| String::from_utf8(w.clone()).unwrap())
            .collect();
        assert_eq!(words, c.dict_words);
    }

    #[test]
    fn some_dictionary_words_occur_and_some_do_not() {
        let f = fs();
        let c = gen_text_corpus(&f, &small_corpus_cfg());
        let mut all_text = Vec::new();
        for path in &c.files {
            let (bytes, _) = f.read_whole(path, 0).unwrap();
            all_text.extend_from_slice(&bytes);
        }
        let text = String::from_utf8(all_text).unwrap();
        let occur = c
            .dict_words
            .iter()
            .filter(|w| text.contains(w.as_str()))
            .count();
        assert!(occur > 0, "some dictionary words must occur");
        assert!(occur < c.dict_words.len(), "absent words must exist");
    }

    #[test]
    fn image_dataset_plants_exact_matches() {
        let f = fs();
        let ds = gen_image_dataset(
            &f,
            &ImageDatasetConfig {
                dir: "/img".into(),
                db_sizes: vec![10, 15],
                n_queries: 8,
                dim: 16,
                match_fraction: 0.5,
                plant_in_first_db_prefix: false,
                seed: 7,
            },
        );
        let (qbytes, _) = f.read_whole(&ds.query_path, 0).unwrap();
        let some_planted = ds.planted.iter().flatten().count();
        assert!(some_planted > 0, "seed 7 should plant at least one");
        for (q, plant) in ds.planted.iter().enumerate() {
            if let Some((db, slot)) = plant {
                let (dbytes, _) = f.read_whole(&ds.db_paths[*db], 0).unwrap();
                let ib = ds.image_bytes();
                assert_eq!(
                    &dbytes[slot * ib..(slot + 1) * ib],
                    &qbytes[q * ib..(q + 1) * ib],
                    "query {q} must be byte-identical at its planted slot"
                );
            }
        }
    }

    #[test]
    fn matvec_inputs_have_right_sizes() {
        let f = fs();
        gen_matvec_input(&f, "/A", "/x", 100, 64, 3);
        assert_eq!(f.stat("/A").unwrap().size, 100 * 64 * 4);
        assert_eq!(f.stat("/x").unwrap().size, 64 * 4);
    }
}
