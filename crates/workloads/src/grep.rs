//! Exact string matching in text files — a constrained `grep -w`
//! (paper §5.2.2, Table 4).
//!
//! Given a 32-byte-aligned dictionary and a list of text files, count how
//! many times and in which files each dictionary word appears. Three
//! implementations:
//!
//! * [`grep_gpufs`] — threadblocks pull files from a shared work list,
//!   `gopen`/`gread`/`gclose` each one (the many-small-files case puts
//!   "extremely high pressure" on GPUfs), match, and flush formatted
//!   results from a per-block buffer into a shared `O_GWRONCE` output
//!   file, coordinating offsets with an explicit shared seek pointer as
//!   the paper describes.
//! * [`grep_vanilla_gpu`] — the non-GPUfs baseline: the CPU prefetches
//!   every input into one big buffer, ships it across PCIe once, and the
//!   kernel writes matches to a pre-allocated GPU output buffer that the
//!   CPU post-processes. Conservatively assumes everything fits in GPU
//!   memory, as the paper notes.
//! * [`grep_cpu`] — the 8-core OpenMP-style baseline.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpufs::{GOpenMode, GpuFsMount, GpufsResult};
use gpusim::{Gpu, Grid};
use hostfs::HostFs;
use parking_lot::Mutex;
use simtime::Nanos;

use crate::compute::MatchModel;
use crate::corpus::parse_dictionary;
use crate::cpu::CpuExecutor;
use crate::gpustr::{format_match_line, WordTokenizer};

/// Per-threadblock output buffer size; flushed to the output file when a
/// formatted line no longer fits.
const BLOCK_OUT_BUF: usize = 16 << 10;

/// Outcome of one grep run.
#[derive(Debug, Clone)]
pub struct GrepResult {
    /// Virtual elapsed time.
    pub elapsed: Nanos,
    /// Total `(word, file)` matches found.
    pub match_records: u64,
    /// Total occurrences across all words and files.
    pub total_occurrences: u64,
    /// Occurrences per dictionary word, summed over files (used to check
    /// implementations against each other).
    pub word_totals: HashMap<Vec<u8>, u64>,
    /// Bytes of formatted output produced (GPUfs version only).
    pub output_bytes: u64,
}

/// Count the occurrences of each dictionary word in `text`.
/// `dict` must be sorted for binary search.
fn count_matches(text: &[u8], dict: &[Vec<u8>]) -> HashMap<usize, u64> {
    let mut counts: HashMap<usize, u64> = HashMap::new();
    for word in WordTokenizer::new(text) {
        if let Ok(i) = dict.binary_search_by(|d| d.as_slice().cmp(word)) {
            *counts.entry(i).or_insert(0) += 1;
        }
    }
    counts
}

fn merge_result(
    word_totals: &Mutex<HashMap<Vec<u8>, u64>>,
    dict: &[Vec<u8>],
    counts: &HashMap<usize, u64>,
) {
    let mut totals = word_totals.lock();
    for (&w, &c) in counts {
        *totals.entry(dict[w].clone()).or_insert(0) += c;
    }
}

/// The GPUfs implementation (see module docs).
///
/// # Errors
///
/// Propagates GPUfs errors raised inside the kernel.
pub fn grep_gpufs(
    mount: &Arc<GpuFsMount>,
    gpu: &Arc<Gpu>,
    file_list_path: &str,
    dict_path: &str,
    out_path: &str,
) -> GpufsResult<GrepResult> {
    let model = MatchModel::grep();
    // "Application threads can maintain their own explicit seek pointers
    // if required, as we demonstrate in our experiments" (§3.2): blocks
    // reserve output ranges from a shared atomic offset.
    let out_cursor = AtomicU64::new(0);
    let match_records = AtomicU64::new(0);
    let total_occurrences = AtomicU64::new(0);
    let word_totals: Mutex<HashMap<Vec<u8>, u64>> = Mutex::new(HashMap::new());
    let failure: Mutex<Option<gpufs::GpufsError>> = Mutex::new(None);

    let blocks = gpu.spec().concurrent_blocks();
    let result = gpu.launch(Grid::new(blocks, 512), 0, |blk| {
        let mut work = || -> GpufsResult<()> {
            // Read the file list and the dictionary through GPUfs; both
            // are cached after the first block pulls them.
            let fd_list = mount.open(blk, file_list_path, GOpenMode::ReadOnly)?;
            let list_size = mount.fstat(blk, &fd_list).size as usize;
            let mut list_bytes = vec![0u8; list_size];
            mount.read(blk, &fd_list, 0, &mut list_bytes)?;
            mount.close(blk, fd_list)?;
            let files: Vec<&str> = std::str::from_utf8(&list_bytes)
                .expect("file list is utf-8")
                .lines()
                .collect();

            let fd_dict = mount.open(blk, dict_path, GOpenMode::ReadOnly)?;
            let dict_size = mount.fstat(blk, &fd_dict).size as usize;
            let mut dict_bytes = vec![0u8; dict_size];
            mount.read(blk, &fd_dict, 0, &mut dict_bytes)?;
            mount.close(blk, fd_dict)?;
            let dict = parse_dictionary(&dict_bytes);
            debug_assert!(dict.windows(2).all(|w| w[0] <= w[1]), "dictionary sorted");

            let fd_out = mount.open(blk, out_path, GOpenMode::WriteOnce)?;
            let mut out_buf = vec![0u8; BLOCK_OUT_BUF];
            let mut out_len = 0usize;

            // Work split: with many files, blocks stride over the file
            // list, each matching the whole dictionary. With fewer files
            // than blocks (the Shakespeare case), every block scans every
            // file but only its shard of the dictionary — the paper's
            // one-word-per-thread parallelization.
            let nb = blk.grid().blocks;
            let (my_files, my_dict): (Vec<usize>, &[Vec<u8>]) = if files.len() >= nb {
                (
                    (blk.block_id()..files.len()).step_by(nb).collect(),
                    &dict[..],
                )
            } else {
                let span = dict.len().div_ceil(nb);
                let d0 = (blk.block_id() * span).min(dict.len());
                let d1 = (d0 + span).min(dict.len());
                ((0..files.len()).collect(), &dict[d0..d1])
            };
            for i in my_files {
                let fd = mount.open(blk, files[i], GOpenMode::ReadOnly)?;
                let size = mount.fstat(blk, &fd).size as usize;
                let mut text = vec![0u8; size];
                let n = mount.read(blk, &fd, 0, &mut text)?;
                debug_assert_eq!(n, size);
                // Matching cost: text bytes x this block's dictionary
                // words, at the block's share of the GPU rate.
                blk.advance(model.gpu_block_time(
                    size as u64,
                    my_dict.len() as u64,
                    nb.min(blk.gpu().spec().concurrent_blocks()),
                ));
                let counts = count_matches(&text, my_dict);
                for (&w, &c) in &counts {
                    match_records.fetch_add(1, Ordering::Relaxed);
                    total_occurrences.fetch_add(c, Ordering::Relaxed);
                    loop {
                        if let Some(len) = format_match_line(
                            &mut out_buf[out_len..],
                            &my_dict[w],
                            files[i].as_bytes(),
                            c,
                        ) {
                            out_len += len;
                            break;
                        }
                        // Buffer full: flush to a freshly reserved range.
                        let off = out_cursor.fetch_add(out_len as u64, Ordering::Relaxed);
                        mount.write(blk, &fd_out, off, &out_buf[..out_len])?;
                        out_len = 0;
                    }
                }
                merge_result(&word_totals, my_dict, &counts);
                mount.close(blk, fd)?;
            }
            if out_len > 0 {
                let off = out_cursor.fetch_add(out_len as u64, Ordering::Relaxed);
                mount.write(blk, &fd_out, off, &out_buf[..out_len])?;
            }
            mount.fsync(blk, &fd_out)?;
            mount.close(blk, fd_out)?;
            Ok(())
        };
        if let Err(e) = work() {
            failure.lock().get_or_insert(e);
        }
    });
    if let Some(e) = failure.into_inner() {
        return Err(e);
    }
    Ok(GrepResult {
        elapsed: result.elapsed(),
        match_records: match_records.load(Ordering::Relaxed),
        total_occurrences: total_occurrences.load(Ordering::Relaxed),
        word_totals: word_totals.into_inner(),
        output_bytes: out_cursor.load(Ordering::Relaxed),
    })
}

/// The non-GPUfs GPU baseline: prefetch everything, one transfer, one
/// kernel, post-process on the CPU.
///
/// # Errors
///
/// Propagates host file-system errors.
pub fn grep_vanilla_gpu(
    fs: &HostFs,
    gpu: &Arc<Gpu>,
    file_list_path: &str,
    dict_path: &str,
) -> Result<GrepResult, hostfs::FsError> {
    let model = MatchModel::grep();
    let mut cpu = simtime::Clock::new();

    // Phase 1 (CPU): prefetch all inputs into one big buffer.
    let (list_bytes, t) = fs.read_whole(file_list_path, cpu.now())?;
    cpu.wait_until(t);
    let files: Vec<String> = std::str::from_utf8(&list_bytes)
        .expect("file list is utf-8")
        .lines()
        .map(str::to_owned)
        .collect();
    let (dict_bytes, t) = fs.read_whole(dict_path, cpu.now())?;
    cpu.wait_until(t);
    let dict = parse_dictionary(&dict_bytes);

    let mut texts: Vec<Vec<u8>> = Vec::with_capacity(files.len());
    let mut total_bytes = 0u64;
    for f in &files {
        let (bytes, t) = fs.read_whole(f, cpu.now())?;
        cpu.wait_until(t);
        total_bytes += bytes.len() as u64;
        texts.push(bytes);
    }

    // Phase 2: one bulk PCIe transfer of inputs + dictionary.
    let xfer = gpu
        .dma()
        .reserve_h2d(cpu.now(), total_bytes + dict_bytes.len() as u64);

    // Phase 3 (GPU kernel): blocks split files (or, with few files, the
    // dictionary); kernel time is the slowest block's matching work at
    // the per-block share of the GPU rate.
    let blocks = gpu.spec().concurrent_blocks();
    let kernel_time = if texts.len() >= blocks {
        let mut block_bytes = vec![0u64; blocks];
        for (i, t) in texts.iter().enumerate() {
            block_bytes[i % blocks] += t.len() as u64;
        }
        block_bytes
            .iter()
            .map(|&b| model.gpu_block_time(b, dict.len() as u64, blocks))
            .max()
            .unwrap_or(0)
    } else {
        let span = dict.len().div_ceil(blocks) as u64;
        model.gpu_block_time(total_bytes, span, blocks)
    };
    let kernel_end = xfer.end + gpu.timings().kernel_launch_ns + kernel_time;

    // Real matching for result correctness.
    let mut match_records = 0u64;
    let mut total_occurrences = 0u64;
    let mut word_totals: HashMap<Vec<u8>, u64> = HashMap::new();
    let mut out_volume = 0u64;
    for text in &texts {
        let counts = count_matches(text, &dict);
        for (&w, &c) in &counts {
            match_records += 1;
            total_occurrences += c;
            out_volume += dict[w].len() as u64 + 24;
            *word_totals.entry(dict[w].clone()).or_insert(0) += c;
        }
    }

    // Phase 4: results come back and the CPU formats them
    // (post-processing, outside the kernel in the vanilla version).
    let back = gpu.dma().reserve_d2h(kernel_end, out_volume.max(1));
    let end = back.end;

    Ok(GrepResult {
        elapsed: end,
        match_records,
        total_occurrences,
        word_totals,
        output_bytes: out_volume,
    })
}

/// The multicore CPU baseline: cores pull files from a shared cursor,
/// prefetch and match.
///
/// # Errors
///
/// Propagates host file-system errors.
pub fn grep_cpu(
    fs: &HostFs,
    cores: usize,
    file_list_path: &str,
    dict_path: &str,
) -> Result<GrepResult, hostfs::FsError> {
    let model = MatchModel::grep();
    let (list_bytes, _) = fs.read_whole(file_list_path, 0)?;
    let files: Vec<String> = std::str::from_utf8(&list_bytes)
        .expect("file list is utf-8")
        .lines()
        .map(str::to_owned)
        .collect();
    let (dict_bytes, _) = fs.read_whole(dict_path, 0)?;
    let dict = parse_dictionary(&dict_bytes);

    let cpu = CpuExecutor::new(cores);
    let match_records = AtomicU64::new(0);
    let total_occurrences = AtomicU64::new(0);
    let word_totals: Mutex<HashMap<Vec<u8>, u64>> = Mutex::new(HashMap::new());
    let err: Mutex<Option<hostfs::FsError>> = Mutex::new(None);

    let end = cpu.parallel(0, |core| {
        let mut work = || -> Result<(), hostfs::FsError> {
            // Same split as the GPU version: stride files across cores,
            // or shard the dictionary when files are scarce.
            let (my_files, my_dict): (Vec<usize>, &[Vec<u8>]) = if files.len() >= cores {
                (
                    (core.core_id()..files.len()).step_by(cores).collect(),
                    &dict[..],
                )
            } else {
                let span = dict.len().div_ceil(cores);
                let d0 = (core.core_id() * span).min(dict.len());
                let d1 = (d0 + span).min(dict.len());
                ((0..files.len()).collect(), &dict[d0..d1])
            };
            for i in my_files {
                let (text, t) = fs.read_whole(&files[i], core.now())?;
                core.wait_until(t);
                core.advance(model.cpu_core_time(text.len() as u64, my_dict.len() as u64));
                let counts = count_matches(&text, my_dict);
                for &c in counts.values() {
                    match_records.fetch_add(1, Ordering::Relaxed);
                    total_occurrences.fetch_add(c, Ordering::Relaxed);
                }
                merge_result(&word_totals, my_dict, &counts);
            }
            Ok(())
        };
        if let Err(e) = work() {
            err.lock().get_or_insert(e);
        }
    });
    if let Some(e) = err.into_inner() {
        return Err(e);
    }
    Ok(GrepResult {
        elapsed: end,
        match_records: match_records.load(Ordering::Relaxed),
        total_occurrences: total_occurrences.load(Ordering::Relaxed),
        word_totals: word_totals.into_inner(),
        output_bytes: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{gen_text_corpus, TextCorpusConfig};
    use gpufs::{GpufsConfig, GpufsHost};
    use gpusim::GpuSpec;
    use hostfs::HostFsConfig;

    fn rig() -> (Arc<HostFs>, GpufsHost, Arc<Gpu>, crate::corpus::TextCorpus) {
        let fs = Arc::new(HostFs::new(HostFsConfig::default()));
        let corpus = gen_text_corpus(
            &fs,
            &TextCorpusConfig {
                dir: "/corpus".into(),
                n_files: 30,
                total_bytes: 48 << 10,
                vocab_size: 300,
                dict_words: 80,
                seed: 5,
            },
        );
        let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
        let host = GpufsHost::new(Arc::clone(&fs), vec![Arc::clone(&gpu)]);
        (fs, host, gpu, corpus)
    }

    #[test]
    fn gpufs_and_cpu_find_identical_counts() {
        let (fs, host, gpu, corpus) = rig();
        let mount = host.mount(0, GpufsConfig::new(4 << 10, 2 << 20)).unwrap();
        let g = grep_gpufs(
            &mount,
            &gpu,
            &corpus.file_list_path,
            &corpus.dict_path,
            "/out",
        )
        .unwrap();
        let c = grep_cpu(&fs, 8, &corpus.file_list_path, &corpus.dict_path).unwrap();
        assert_eq!(g.word_totals, c.word_totals);
        assert_eq!(g.total_occurrences, c.total_occurrences);
        assert!(
            g.total_occurrences > 0,
            "corpus must contain dictionary words"
        );
    }

    #[test]
    fn vanilla_gpu_agrees_too() {
        let (fs, host, gpu, corpus) = rig();
        let mount = host.mount(0, GpufsConfig::new(4 << 10, 2 << 20)).unwrap();
        let g = grep_gpufs(
            &mount,
            &gpu,
            &corpus.file_list_path,
            &corpus.dict_path,
            "/out",
        )
        .unwrap();
        let v = grep_vanilla_gpu(&fs, &gpu, &corpus.file_list_path, &corpus.dict_path).unwrap();
        assert_eq!(g.word_totals, v.word_totals);
    }

    #[test]
    fn output_file_contains_formatted_lines() {
        let (fs, host, gpu, corpus) = rig();
        let mount = host.mount(0, GpufsConfig::new(4 << 10, 2 << 20)).unwrap();
        let g = grep_gpufs(
            &mount,
            &gpu,
            &corpus.file_list_path,
            &corpus.dict_path,
            "/out",
        )
        .unwrap();
        assert!(g.output_bytes > 0);
        let (out, _) = fs.read_whole("/out", 0).unwrap();
        assert_eq!(out.len() as u64, g.output_bytes);
        let text = String::from_utf8(out).unwrap();
        let mut lines = 0u64;
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split(' ').collect();
            assert_eq!(parts.len(), 3, "line format 'word file count': {line}");
            assert!(parts[1].starts_with('/'));
            assert!(parts[2].parse::<u64>().is_ok());
            lines += 1;
        }
        assert_eq!(lines, g.match_records);
    }

    #[test]
    fn absent_words_never_match() {
        let (fs, _host, _gpu, corpus) = rig();
        let c = grep_cpu(&fs, 4, &corpus.file_list_path, &corpus.dict_path).unwrap();
        for w in c.word_totals.keys() {
            assert!(
                !String::from_utf8_lossy(w).contains("absent"),
                "planted-absent word matched: {:?}",
                String::from_utf8_lossy(w)
            );
        }
    }
}
