//! Limited GPU string routines.
//!
//! "Various text parsing and formatted output tasks required us to
//! implement limited GPU versions of the `sprintf`, `strtok`, `strlen`,
//! `strcat` functions not normally available to GPU code" (paper §5.2.2).
//! These operate on byte slices without allocation, as GPU code would.

/// Length of a NUL-terminated byte string, capped at the buffer length
/// (`strlen`).
#[must_use]
pub fn gstrlen(buf: &[u8]) -> usize {
    buf.iter().position(|&b| b == 0).unwrap_or(buf.len())
}

/// Append `src` to the NUL-terminated string in `dst`, returning the new
/// length, or `None` if it does not fit including the terminator
/// (`strcat` with bounds checking).
pub fn gstrcat(dst: &mut [u8], src: &[u8]) -> Option<usize> {
    let end = gstrlen(dst);
    let n = gstrlen(src);
    if end + n + 1 > dst.len() {
        return None;
    }
    dst[end..end + n].copy_from_slice(&src[..n]);
    dst[end + n] = 0;
    Some(end + n)
}

/// Whether `b` separates words (whitespace and punctuation, matching the
/// `grep -w` notion of a word boundary).
#[must_use]
pub fn is_word_boundary(b: u8) -> bool {
    !(b.is_ascii_alphanumeric() || b == b'_' || b == b'\'')
}

/// An iterator over the words of a byte text (`strtok` over word
/// boundaries). Words are maximal runs of non-boundary bytes.
#[derive(Debug, Clone)]
pub struct WordTokenizer<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> WordTokenizer<'a> {
    /// Tokenize `text`.
    #[must_use]
    pub fn new(text: &'a [u8]) -> Self {
        Self { text, pos: 0 }
    }
}

impl<'a> Iterator for WordTokenizer<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        while self.pos < self.text.len() && is_word_boundary(self.text[self.pos]) {
            self.pos += 1;
        }
        if self.pos >= self.text.len() {
            return None;
        }
        let start = self.pos;
        while self.pos < self.text.len() && !is_word_boundary(self.text[self.pos]) {
            self.pos += 1;
        }
        Some(&self.text[start..self.pos])
    }
}

/// Write decimal `value` into `dst`, returning the byte length used, or
/// `None` if it does not fit (the integer arm of the paper's limited
/// `sprintf`).
pub fn format_u64(dst: &mut [u8], value: u64) -> Option<usize> {
    let mut tmp = [0u8; 20];
    let mut v = value;
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    let n = tmp.len() - i;
    if n > dst.len() {
        return None;
    }
    dst[..n].copy_from_slice(&tmp[i..]);
    Some(n)
}

/// Format one grep match line — `word file count\n` — into `dst`,
/// returning the length used, or `None` if it does not fit (the paper's
/// per-threadblock output buffering flushes when this fails).
pub fn format_match_line(dst: &mut [u8], word: &[u8], file: &[u8], count: u64) -> Option<usize> {
    let mut pos = 0usize;
    for part in [word, b" ".as_slice(), file, b" ".as_slice()] {
        if pos + part.len() > dst.len() {
            return None;
        }
        dst[pos..pos + part.len()].copy_from_slice(part);
        pos += part.len();
    }
    pos += format_u64(&mut dst[pos..], count)?;
    if pos + 1 > dst.len() {
        return None;
    }
    dst[pos] = b'\n';
    Some(pos + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gstrlen_stops_at_nul_or_end() {
        assert_eq!(gstrlen(b"abc\0def"), 3);
        assert_eq!(gstrlen(b"abc"), 3);
        assert_eq!(gstrlen(b""), 0);
        assert_eq!(gstrlen(b"\0"), 0);
    }

    #[test]
    fn gstrcat_appends_with_bounds() {
        let mut buf = [0u8; 8];
        buf[..3].copy_from_slice(b"ab\0");
        assert_eq!(gstrcat(&mut buf, b"cd\0"), Some(4));
        assert_eq!(&buf[..5], b"abcd\0");
        // Does not fit: 4 + 4 + 1 > 8.
        assert_eq!(gstrcat(&mut buf, b"efgh"), None);
    }

    #[test]
    fn tokenizer_splits_on_punctuation_and_whitespace() {
        let words: Vec<&[u8]> = WordTokenizer::new(b"the quick-brown_fox, isn't (it)?").collect();
        assert_eq!(
            words,
            vec![b"the".as_slice(), b"quick", b"brown_fox", b"isn't", b"it"]
        );
    }

    #[test]
    fn tokenizer_handles_edges() {
        assert_eq!(WordTokenizer::new(b"").count(), 0);
        assert_eq!(WordTokenizer::new(b"  ,.;  ").count(), 0);
        let one: Vec<&[u8]> = WordTokenizer::new(b"word").collect();
        assert_eq!(one, vec![b"word".as_slice()]);
    }

    #[test]
    fn format_u64_digits() {
        let mut buf = [0u8; 20];
        assert_eq!(format_u64(&mut buf, 0), Some(1));
        assert_eq!(&buf[..1], b"0");
        assert_eq!(format_u64(&mut buf, 987_654), Some(6));
        assert_eq!(&buf[..6], b"987654");
        let mut tiny = [0u8; 2];
        assert_eq!(format_u64(&mut tiny, 123), None);
    }

    #[test]
    fn format_match_line_layout() {
        let mut buf = [0u8; 64];
        let n = format_match_line(&mut buf, b"kernel", b"/src/main.c", 42).unwrap();
        assert_eq!(&buf[..n], b"kernel /src/main.c 42\n");
        let mut tiny = [0u8; 8];
        assert_eq!(
            format_match_line(&mut tiny, b"kernel", b"/src/main.c", 42),
            None
        );
    }
}
