//! Approximate image matching against prioritized databases
//! (paper §5.2.1, Tables 2 and 3).
//!
//! Query images are matched against several databases that must be
//! scanned in a fixed priority order; only the first match counts. Which
//! database pages are needed depends on earlier results, which is exactly
//! the dynamic, data-dependent working set that is painful without GPUfs:
//! the GPUfs kernel simply `gread`s database images into scratchpad
//! memory and stops as soon as its queries are satisfied.
//!
//! The match metric is Euclidean distance under a threshold; the
//! generator plants byte-exact copies (distance 0), and non-planted
//! images are offset so they can never match (see [`crate::corpus`]).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use gpufs::{GOpenMode, GpuFsMount, GpufsResult};
use gpusim::{Gpu, Grid};
use hostfs::HostFs;
use simtime::Nanos;

use crate::compute::FlopsModel;
use crate::corpus::ImageDataset;
use crate::cpu::CpuExecutor;

/// Packed "no match" sentinel in the results array.
const NO_MATCH: u64 = u64::MAX;

/// Outcome of one image-matching run.
#[derive(Debug, Clone)]
pub struct ImgMatchResult {
    /// Virtual elapsed time (slowest GPU / core).
    pub elapsed: Nanos,
    /// Per query: `(db, slot)` of the first match, in priority order.
    pub matches: Vec<Option<(usize, usize)>>,
    /// Number of queries that found a match.
    pub queries_matched: usize,
}

fn unpack(v: u64) -> Option<(usize, usize)> {
    if v == NO_MATCH {
        None
    } else {
        Some(((v >> 32) as usize, (v & 0xffff_ffff) as usize))
    }
}

fn pack(db: usize, slot: usize) -> u64 {
    ((db as u64) << 32) | slot as u64
}

/// Squared Euclidean distance with a cheap first-element reject: the
/// generator separates non-matching images by ≥1.0 in every element, so
/// one subtraction usually suffices. The *time model* still charges the
/// full scan — real hardware computes all elements in parallel lanes.
fn matches_query(img: &[f32], query: &[f32], threshold_sq: f32) -> bool {
    let d0 = img[0] - query[0];
    if d0 * d0 > threshold_sq {
        return false;
    }
    let mut acc = 0.0f32;
    for (a, b) in img.iter().zip(query) {
        let d = a - b;
        acc += d * d;
        if acc > threshold_sq {
            return false;
        }
    }
    true
}

fn f32_slice(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

/// The GPUfs implementation across one or more GPUs (Table 3 splits the
/// query list equally among up to 4 GPUs).
///
/// # Errors
///
/// Propagates GPUfs errors raised inside any kernel.
///
/// # Panics
///
/// Panics if `mounts` and `gpus` lengths differ or are empty.
pub fn imgmatch_gpufs(
    mounts: &[Arc<GpuFsMount>],
    gpus: &[Arc<Gpu>],
    ds: &ImageDataset,
    threshold: f32,
) -> GpufsResult<ImgMatchResult> {
    assert_eq!(mounts.len(), gpus.len(), "one mount per GPU");
    assert!(!gpus.is_empty(), "need at least one GPU");
    let n_gpus = gpus.len();
    let per_gpu = ds.n_queries.div_ceil(n_gpus);
    let results: Vec<AtomicU64> = (0..ds.n_queries)
        .map(|_| AtomicU64::new(NO_MATCH))
        .collect();
    let failure: parking_lot::Mutex<Option<gpufs::GpufsError>> = parking_lot::Mutex::new(None);

    let ends: Vec<Nanos> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_gpus)
            .map(|g| {
                let mount = Arc::clone(&mounts[g]);
                let gpu = Arc::clone(&gpus[g]);
                let results = &results;
                let failure = &failure;
                s.spawn(move || {
                    let q0 = g * per_gpu;
                    let q1 = ds.n_queries.min(q0 + per_gpu);
                    if q0 >= q1 {
                        return 0;
                    }
                    let blocks = gpu.spec().concurrent_blocks();
                    let res = gpu.launch(Grid::new(blocks, 512), 0, |blk| {
                        let r = run_block(&mount, blk, ds, threshold, q0, q1, results);
                        if let Err(e) = r {
                            failure.lock().get_or_insert(e);
                        }
                    });
                    res.end
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gpu thread"))
            .collect()
    });
    if let Some(e) = failure.into_inner() {
        return Err(e);
    }
    let matches: Vec<Option<(usize, usize)>> = results
        .iter()
        .map(|r| unpack(r.load(Ordering::Relaxed)))
        .collect();
    let queries_matched = matches.iter().flatten().count();
    Ok(ImgMatchResult {
        elapsed: ends.into_iter().max().unwrap_or(0),
        matches,
        queries_matched,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_block(
    mount: &Arc<GpuFsMount>,
    blk: &mut gpusim::BlockCtx<'_>,
    ds: &ImageDataset,
    threshold: f32,
    q0: usize,
    q1: usize,
    results: &[AtomicU64],
) -> GpufsResult<()> {
    let model = FlopsModel::imgmatch();
    let dim = ds.dim;
    let ib = ds.image_bytes();
    let threshold_sq = threshold * threshold;

    // Static split of this GPU's queries across threadblocks.
    let nb = blk.grid().blocks;
    let span = (q1 - q0).div_ceil(nb);
    let my_q0 = q0 + blk.block_id() * span;
    let my_q1 = q1.min(my_q0 + span);
    if my_q0 >= my_q1 {
        return Ok(());
    }

    // Load this block's queries.
    let fd_q = mount.open(blk, &ds.query_path, GOpenMode::ReadOnly)?;
    let mut qbytes = vec![0u8; (my_q1 - my_q0) * ib];
    mount.read(blk, &fd_q, (my_q0 * ib) as u64, &mut qbytes)?;
    mount.close(blk, fd_q)?;
    let queries: Vec<Vec<f32>> = qbytes.chunks_exact(ib).map(f32_slice).collect();
    let mut unmatched: Vec<usize> = (0..queries.len()).collect();

    // Scan databases in priority order; stop as soon as this block's
    // queries are all matched (the data-dependent early exit).
    // gread 32 KB at a time into on-die scratchpad, as in §5.1.2.
    let chunk_imgs = (32 << 10) / ib.max(1);
    for (db_idx, db_path) in ds.db_paths.iter().enumerate() {
        if unmatched.is_empty() {
            break;
        }
        let fd = mount.open(blk, db_path, GOpenMode::ReadOnly)?;
        let db_images = ds.db_sizes[db_idx];
        let mut img = 0usize;
        while img < db_images && !unmatched.is_empty() {
            let n = chunk_imgs.max(1).min(db_images - img);
            let need = n * ib;
            let off = (img * ib) as u64;
            {
                let scratch = blk.scratch();
                debug_assert!(need <= scratch.len(), "chunk fits scratchpad");
            }
            let mut chunk = vec![0u8; need];
            let got = mount.read(blk, &fd, off, &mut chunk)?;
            debug_assert_eq!(got, need);
            // Charge the full comparison cost for this chunk at the
            // per-block share of the GPU's sustained rate.
            let flops = (n as u64) * (unmatched.len() as u64) * (dim as u64) * 2;
            blk.advance(model.gpu_block_time(flops, nb));
            for i in 0..n {
                let image = f32_slice(&chunk[i * ib..(i + 1) * ib]);
                unmatched.retain(|&q| {
                    if matches_query(&image, &queries[q], threshold_sq) {
                        results[my_q0 + q].store(pack(db_idx, img + i), Ordering::Relaxed);
                        false
                    } else {
                        true
                    }
                });
            }
            img += n;
        }
        mount.close(blk, fd)?;
    }
    Ok(())
}

/// The OpenMP-style CPU baseline: `cores` threads split the queries
/// statically and scan the databases through the host file system.
///
/// # Errors
///
/// Propagates host file-system errors.
pub fn imgmatch_cpu(
    fs: &HostFs,
    cores: usize,
    ds: &ImageDataset,
    threshold: f32,
) -> Result<ImgMatchResult, hostfs::FsError> {
    let model = FlopsModel::imgmatch();
    let cpu = CpuExecutor::new(cores);
    let ib = ds.image_bytes();
    let threshold_sq = threshold * threshold;
    let results: Vec<AtomicU64> = (0..ds.n_queries)
        .map(|_| AtomicU64::new(NO_MATCH))
        .collect();
    let err: parking_lot::Mutex<Option<hostfs::FsError>> = parking_lot::Mutex::new(None);
    let next_chunk = AtomicUsize::new(0);
    let _ = next_chunk; // cores use static split, matching the paper

    let end = cpu.parallel(0, |core| {
        let span = ds.n_queries.div_ceil(cores);
        let my_q0 = core.core_id() * span;
        let my_q1 = ds.n_queries.min(my_q0 + span);
        if my_q0 >= my_q1 {
            return;
        }
        let mut work = || -> Result<(), hostfs::FsError> {
            let (qbytes, t) = fs.read_whole(&ds.query_path, core.now())?;
            core.wait_until(t);
            let queries: Vec<Vec<f32>> = qbytes[my_q0 * ib..my_q1 * ib]
                .chunks_exact(ib)
                .map(f32_slice)
                .collect();
            let mut unmatched: Vec<usize> = (0..queries.len()).collect();
            for (db_idx, db_path) in ds.db_paths.iter().enumerate() {
                if unmatched.is_empty() {
                    break;
                }
                let (fd, t) = fs.open(db_path, hostfs::OpenFlags::read_only(), core.now())?;
                core.wait_until(t);
                let db_images = ds.db_sizes[db_idx];
                let chunk_imgs = ((256 << 10) / ib).max(1);
                let mut img = 0usize;
                let mut chunk = vec![0u8; chunk_imgs * ib];
                while img < db_images && !unmatched.is_empty() {
                    let n = chunk_imgs.min(db_images - img);
                    let (got, t) =
                        fs.pread(fd, (img * ib) as u64, &mut chunk[..n * ib], core.now())?;
                    core.wait_until(t);
                    debug_assert_eq!(got, n * ib);
                    let flops = (n as u64) * (unmatched.len() as u64) * (ds.dim as u64) * 2;
                    core.advance(model.cpu_core_time(flops));
                    for i in 0..n {
                        let image = f32_slice(&chunk[i * ib..(i + 1) * ib]);
                        unmatched.retain(|&q| {
                            if matches_query(&image, &queries[q], threshold_sq) {
                                results[my_q0 + q].store(pack(db_idx, img + i), Ordering::Relaxed);
                                false
                            } else {
                                true
                            }
                        });
                    }
                    img += n;
                }
                fs.close(fd)?;
            }
            Ok(())
        };
        if let Err(e) = work() {
            err.lock().get_or_insert(e);
        }
    });
    if let Some(e) = err.into_inner() {
        return Err(e);
    }
    let matches: Vec<Option<(usize, usize)>> = results
        .iter()
        .map(|r| unpack(r.load(Ordering::Relaxed)))
        .collect();
    let queries_matched = matches.iter().flatten().count();
    Ok(ImgMatchResult {
        elapsed: end,
        matches,
        queries_matched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{gen_image_dataset, ImageDatasetConfig};
    use gpufs::{GpufsConfig, GpufsHost};
    use gpusim::GpuSpec;
    use hostfs::HostFsConfig;

    fn dataset(fs: &HostFs, match_fraction: f64, early: bool) -> ImageDataset {
        gen_image_dataset(
            fs,
            &ImageDatasetConfig {
                dir: "/img".into(),
                db_sizes: vec![40, 30, 50],
                n_queries: 24,
                dim: 64,
                match_fraction,
                plant_in_first_db_prefix: early,
                seed: 11,
            },
        )
    }

    fn rig(n_gpus: usize) -> (Arc<HostFs>, GpufsHost, Vec<Arc<Gpu>>) {
        let fs = Arc::new(HostFs::new(HostFsConfig::default()));
        let gpus: Vec<Arc<Gpu>> = (0..n_gpus)
            .map(|i| Arc::new(Gpu::new(i, GpuSpec::small_test())))
            .collect();
        let host = GpufsHost::new(Arc::clone(&fs), gpus.clone());
        (fs, host, gpus)
    }

    #[test]
    fn gpu_results_match_planting_exactly() {
        let (fs, host, gpus) = rig(1);
        let ds = dataset(&fs, 0.6, false);
        let mount = host.mount(0, GpufsConfig::new(4 << 10, 1 << 20)).unwrap();
        let res = imgmatch_gpufs(&[mount], &gpus, &ds, 0.5).unwrap();
        assert_eq!(
            res.matches, ds.planted,
            "every planted query found, nothing else"
        );
        assert_eq!(res.queries_matched, ds.planted.iter().flatten().count());
        assert!(res.elapsed > 0);
    }

    #[test]
    fn cpu_and_gpu_agree() {
        let (fs, host, gpus) = rig(1);
        let ds = dataset(&fs, 0.4, false);
        let mount = host.mount(0, GpufsConfig::new(4 << 10, 1 << 20)).unwrap();
        let gpu_res = imgmatch_gpufs(&[mount], &gpus, &ds, 0.5).unwrap();
        let cpu_res = imgmatch_cpu(&fs, 8, &ds, 0.5).unwrap();
        assert_eq!(gpu_res.matches, cpu_res.matches);
    }

    #[test]
    fn multi_gpu_covers_all_queries() {
        let (fs, host, gpus) = rig(4);
        let ds = dataset(&fs, 0.5, false);
        let mounts: Vec<_> = (0..4)
            .map(|g| host.mount(g, GpufsConfig::new(4 << 10, 1 << 20)).unwrap())
            .collect();
        let res = imgmatch_gpufs(&mounts, &gpus, &ds, 0.5).unwrap();
        assert_eq!(res.matches, ds.planted);
    }

    #[test]
    fn no_match_scan_is_slower_than_early_exit() {
        let (fs, host, gpus) = rig(1);
        let none = dataset(&fs, 0.0, false);
        let mount = host.mount(0, GpufsConfig::new(8 << 10, 2 << 20)).unwrap();
        let slow = imgmatch_gpufs(&[Arc::clone(&mount)], &gpus, &none, 0.5).unwrap();
        assert_eq!(slow.queries_matched, 0);

        let (fs2, host2, gpus2) = rig(1);
        let early = gen_image_dataset(
            &fs2,
            &ImageDatasetConfig {
                dir: "/img".into(),
                db_sizes: vec![40, 30, 50],
                n_queries: 24,
                dim: 64,
                match_fraction: 1.0,
                plant_in_first_db_prefix: true,
                seed: 11,
            },
        );
        let mount2 = host2.mount(0, GpufsConfig::new(8 << 10, 2 << 20)).unwrap();
        let fast = imgmatch_gpufs(&[mount2], &gpus2, &early, 0.5).unwrap();
        assert_eq!(fast.queries_matched, 24);
        assert!(
            fast.elapsed < slow.elapsed,
            "early exit {} must beat full scan {}",
            fast.elapsed,
            slow.elapsed
        );
    }
}
