//! Evaluation applications from the GPUfs paper (§5), with baselines.
//!
//! Three I/O-intensive applications, each in the variants the paper
//! compares:
//!
//! * [`matvec`] — large matrix–vector product (Figure 8): a GPUfs version
//!   that is oblivious to whether the matrix fits in GPU memory, versus
//!   the hand-written CUDA double-buffering pipelines ("naïve" 4-chunk and
//!   "optimized" 70 MB × 16-chunk).
//! * [`imgmatch`] — approximate image matching against prioritized
//!   databases (Tables 2 and 3): dynamically chooses which database pages
//!   to load based on earlier results, scaling across up to 4 GPUs, with
//!   an OpenMP-style multicore CPU baseline.
//! * [`grep`] — exact dictionary word matching, a constrained `grep -w`
//!   (Table 4): per-threadblock file loop over a source-tree-like corpus,
//!   with a "vanilla" prefetch-everything GPU baseline and a CPU baseline.
//!
//! [`cluster`] scales the image search out: the §6 distributed search
//! over a `gpufs::cluster::GpuFleet`, sharding the database files across
//! N GPUs through the fleet's work-distribution queue (static or
//! work-stealing).
//!
//! [`traffic`] drives a fleet with synthesized production traffic —
//! Zipf-popular files, bursty arrivals, mixed tenant classes — and
//! measures per-tenant tail latency (p50/p99/p999, Jain fairness), the
//! harness behind the multi-tenant dispatch/quota knobs in `gpufs`.
//!
//! Supporting modules: [`corpus`] generates the deterministic synthetic
//! datasets standing in for the paper's inputs (Linux source tree,
//! Shakespeare, image databases); [`compute`] holds the calibrated
//! compute-throughput model shared by GPU and CPU variants; [`cpu`] is the
//! modeled multicore executor; [`gpustr`] reimplements the limited GPU
//! versions of `strlen`/`strtok`/`sprintf`-style helpers the paper had to
//! write for GPU code (§5.2.2).

pub mod cluster;
pub mod compute;
pub mod corpus;
pub mod cpu;
pub mod gpustr;
pub mod grep;
pub mod imgmatch;
pub mod matvec;
pub mod traffic;
