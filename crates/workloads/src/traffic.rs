//! Trace-driven multi-tenant traffic: synthesizer + replayer (ROADMAP
//! item 2, the tail-latency axis).
//!
//! Every recorded GPUfs number so far is a single-workload throughput
//! sweep; this module measures what the paper's machinery — N RPC
//! channels, a daemon worker pool, a shared buffer cache (§4.2–§4.3) —
//! does to *tail* latency when many uncoordinated sessions contend:
//!
//! * [`synthesize_trace`] builds a deterministic, seedable trace: a
//!   generated file corpus with **Zipfian popularity**, **bursty on/off
//!   session arrivals** placed on the virtual clock, and mixed tenant
//!   classes ([`TenantClass::Scan`], [`TenantClass::PointLookup`],
//!   [`TenantClass::Logger`]). The same seed reproduces the same trace
//!   byte for byte.
//! * [`replay`] drives a [`GpuFleet`] with the trace — every threadblock
//!   replays its assigned sessions at their arrival times, paced by the
//!   same virtual clock board as [`crate::cluster`] so contention is
//!   arbitrated in virtual order, not by the OS thread race — and
//!   records per-request fault latency into per-tenant [`Histogram`]s
//!   (p50/p99/p999) plus a Jain fairness index.
//!
//! The per-tenant knobs under test live in `gpufs`:
//! `GpufsConfig::tenant_weights` (weighted RPC dispatch),
//! `tenant_admission` (in-flight caps), and `tenant_frame_quotas`
//! (cache partitioning). The replayer tags each block's slot with its
//! tenant via `GpuFsMount::set_tenant`, so those mechanisms see exactly
//! the traffic the trace describes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gpufs::cluster::GpuFleet;
use gpufs::{GOpenMode, GpufsResult};
use gpusim::Grid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simtime::Nanos;

/// Service class of one tenant's sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantClass {
    /// Read-heavy scan: each session streams a popular file sequentially
    /// in `op_bytes` chunks.
    Scan,
    /// Random-read point lookup: each session issues `ops_per_session`
    /// single-chunk reads at random offsets of a popular file.
    PointLookup,
    /// Write-heavy logger: each session appends `ops_per_session` chunks
    /// to its own fresh log file and fsyncs before closing.
    Logger,
}

/// Offered load of one tenant class.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// What the tenant's sessions do.
    pub class: TenantClass,
    /// Threadblocks dedicated to this tenant, dealt round-robin across
    /// the fleet's GPUs.
    pub blocks: usize,
    /// Sessions to synthesize for this tenant.
    pub sessions: usize,
    /// Mean virtual gap between session arrivals inside a burst.
    pub arrival_gap_ns: Nanos,
    /// Sessions per on-burst before the tenant goes quiet.
    pub burst_sessions: usize,
    /// Virtual quiet gap between bursts (0 = open-loop Poisson-ish).
    pub off_gap_ns: Nanos,
    /// Data operations per session.
    pub ops_per_session: usize,
    /// Restrict this tenant's file draws to the `hot_files` most popular
    /// ranks (`0` = the whole corpus). A point-lookup tenant serving a
    /// small hot index sets this to a handful, which gives it a resident
    /// working set a cache partition can actually protect.
    pub hot_files: usize,
}

impl TenantLoad {
    /// A small default load of `class`: useful as a starting point that
    /// callers override field by field.
    #[must_use]
    pub fn of(class: TenantClass) -> Self {
        Self {
            class,
            blocks: 2,
            sessions: 32,
            arrival_gap_ns: 50_000,
            burst_sessions: 8,
            off_gap_ns: 400_000,
            ops_per_session: 8,
            hot_files: 0,
        }
    }
}

/// Shape of a synthesized trace.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Seed of every random choice (popularity, offsets, jitter).
    pub seed: u64,
    /// Directory the corpus and log files live under.
    pub dir: String,
    /// Files in the read corpus.
    pub n_files: usize,
    /// Bytes per corpus file.
    pub file_bytes: u64,
    /// Zipf skew exponent of file popularity (0 = uniform; 1 ≈ classic
    /// web skew: rank-r file drawn with weight `1/r^s`).
    pub zipf_s: f64,
    /// Bytes per data operation (read or write chunk).
    pub op_bytes: usize,
    /// Pacing slack: how far (virtual ns) a block may run ahead of the
    /// slowest live block before waiting at the clock board. `0` is
    /// strict lock-step — fully deterministic, but requests reach the
    /// daemon one at a time in virtual order, so dispatch policy never
    /// gets a choice. A burst-sized window lets virtually-concurrent
    /// requests queue together at the hub (bounded skew, as on real
    /// hardware), which is what scheduling experiments need.
    pub pace_lag_ns: Nanos,
    /// The tenant mix.
    pub tenants: Vec<TenantLoad>,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            dir: "/traffic".into(),
            n_files: 64,
            file_bytes: 64 << 10,
            zipf_s: 1.0,
            op_bytes: 8 << 10,
            pace_lag_ns: 0,
            tenants: vec![
                TenantLoad::of(TenantClass::Scan),
                TenantLoad::of(TenantClass::PointLookup),
            ],
        }
    }
}

/// One data operation of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read `len` bytes at `offset`.
    Read {
        /// File offset of the read.
        offset: u64,
        /// Bytes to read.
        len: usize,
    },
    /// Write `len` bytes at `offset`.
    Write {
        /// File offset of the write.
        offset: u64,
        /// Bytes to write.
        len: usize,
    },
}

/// One open→operate→close session of the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Tenant that issued the session.
    pub tenant: usize,
    /// Virtual arrival time: the replayer waits until this instant
    /// before opening (a late block just runs it back to back —
    /// backlog, as in a real replay).
    pub arrival: Nanos,
    /// Path of the file the session touches.
    pub path: String,
    /// Open mode ([`GOpenMode::ReadOnly`] for readers,
    /// [`GOpenMode::WriteOnce`] for logger sessions).
    pub mode: GOpenMode,
    /// Whether to `gfsync` before closing (logger sessions).
    pub fsync: bool,
    /// The session's data operations, in order.
    pub ops: Vec<Op>,
}

/// A synthesized trace: corpus + per-block session scripts.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The config the trace was synthesized from.
    pub config: TrafficConfig,
    /// Corpus file paths (rank order: `files[0]` is the most popular).
    pub files: Vec<String>,
    /// `blocks[gpu][slot]` = the session list block `slot` of GPU `gpu`
    /// replays, sorted by arrival.
    pub blocks: Vec<Vec<Vec<Session>>>,
    /// `tenant_of[gpu][slot]` = tenant the block is dedicated to.
    pub tenant_of: Vec<Vec<usize>>,
}

impl Trace {
    /// Total sessions across all blocks.
    #[must_use]
    pub fn num_sessions(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|g| g.iter().map(Vec::len))
            .sum()
    }
}

/// Synthesize the deterministic trace `cfg` describes for an `n_gpus`
/// fleet: Zipf-popular corpus, bursty per-tenant arrivals, per-class op
/// scripts, sessions dealt round-robin over each tenant's blocks.
///
/// # Panics
///
/// Panics on an empty tenant mix, zero blocks/files, or `op_bytes = 0`.
#[must_use]
pub fn synthesize_trace(cfg: &TrafficConfig, n_gpus: usize) -> Trace {
    assert!(n_gpus > 0, "need at least one GPU");
    assert!(!cfg.tenants.is_empty(), "need at least one tenant");
    assert!(cfg.n_files > 0 && cfg.op_bytes > 0, "degenerate corpus");
    let files: Vec<String> = (0..cfg.n_files)
        .map(|i| format!("{}/f{i:04}", cfg.dir))
        .collect();
    // Zipf inverse-CDF table over popularity ranks.
    let mut cum: Vec<f64> = Vec::with_capacity(cfg.n_files);
    let mut acc = 0.0f64;
    for rank in 1..=cfg.n_files {
        acc += 1.0 / (rank as f64).powf(cfg.zipf_s);
        cum.push(acc);
    }

    // Dedicate each tenant's blocks round-robin across GPUs first, so
    // block slots are stable no matter the tenant mix order.
    let mut tenant_of: Vec<Vec<usize>> = vec![Vec::new(); n_gpus];
    let mut home: Vec<Vec<(usize, usize)>> = Vec::new(); // per tenant: (gpu, slot)
    for (t, load) in cfg.tenants.iter().enumerate() {
        assert!(load.blocks > 0, "tenant {t} has no blocks");
        let mut slots = Vec::with_capacity(load.blocks);
        for b in 0..load.blocks {
            let gpu = b % n_gpus;
            slots.push((gpu, tenant_of[gpu].len()));
            tenant_of[gpu].push(t);
        }
        home.push(slots);
    }
    let mut blocks: Vec<Vec<Vec<Session>>> = tenant_of
        .iter()
        .map(|g| vec![Vec::new(); g.len()])
        .collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Zipf draw, optionally truncated to a tenant's `hot_files` top
    // ranks (the truncated cumulative table renormalizes itself).
    let zipf = |rng: &mut StdRng, hot: usize| -> usize {
        let k = if hot == 0 {
            cfg.n_files
        } else {
            hot.min(cfg.n_files)
        };
        let u: f64 = rng.gen_range(0.0..cum[k - 1]);
        cum[..k].partition_point(|&c| c < u).min(k - 1)
    };
    let pages = |bytes: u64, op: usize| (bytes / op.max(1) as u64).max(1);

    for (t, load) in cfg.tenants.iter().enumerate() {
        let mut clock: Nanos = 0;
        let mut in_burst = 0usize;
        for s in 0..load.sessions {
            if load.burst_sessions > 0 && in_burst == load.burst_sessions {
                // Off period: the tenant goes quiet, with ±50% jitter so
                // bursts of different tenants don't phase-lock.
                let jitter = rng.gen_range(0.5..1.5);
                clock += (load.off_gap_ns as f64 * jitter) as Nanos;
                in_burst = 0;
            }
            let jitter = rng.gen_range(0.5..1.5);
            clock += (load.arrival_gap_ns as f64 * jitter) as Nanos;
            in_burst += 1;

            let (path, mode, fsync, ops) = match load.class {
                TenantClass::Scan => {
                    let file = zipf(&mut rng, load.hot_files);
                    let n = load
                        .ops_per_session
                        .min(pages(cfg.file_bytes, cfg.op_bytes) as usize)
                        .max(1);
                    let ops = (0..n)
                        .map(|k| Op::Read {
                            offset: (k * cfg.op_bytes) as u64,
                            len: cfg.op_bytes,
                        })
                        .collect();
                    (files[file].clone(), GOpenMode::ReadOnly, false, ops)
                }
                TenantClass::PointLookup => {
                    let file = zipf(&mut rng, load.hot_files);
                    let span = pages(cfg.file_bytes, cfg.op_bytes);
                    let ops = (0..load.ops_per_session.max(1))
                        .map(|_| Op::Read {
                            offset: rng.gen_range(0..span) * cfg.op_bytes as u64,
                            len: cfg.op_bytes,
                        })
                        .collect();
                    (files[file].clone(), GOpenMode::ReadOnly, false, ops)
                }
                TenantClass::Logger => {
                    let ops = (0..load.ops_per_session.max(1))
                        .map(|k| Op::Write {
                            offset: (k * cfg.op_bytes) as u64,
                            len: cfg.op_bytes,
                        })
                        .collect();
                    let path = format!("{}/log_t{t}_s{s:05}", cfg.dir);
                    (path, GOpenMode::WriteOnce, true, ops)
                }
            };
            let (gpu, slot) = home[t][s % home[t].len()];
            blocks[gpu][slot].push(Session {
                tenant: t,
                arrival: clock,
                path,
                mode,
                fsync,
                ops,
            });
        }
    }
    for g in &mut blocks {
        for b in g.iter_mut() {
            b.sort_by_key(|s| s.arrival);
        }
    }
    Trace {
        config: cfg.clone(),
        files,
        blocks,
        tenant_of,
    }
}

// The latency digest moved to the observability crate so the traffic
// harness, the metrics registry, and the trace exporters all bin with
// the same buckets; re-exported here so existing callers keep working.
pub use obs::Histogram;

/// Tail-latency digest of one tenant after a replay.
#[derive(Debug, Clone)]
pub struct TenantTail {
    /// Requests completed (opens + data ops + closes).
    pub ops: u64,
    /// Bytes moved by the tenant's data ops.
    pub bytes: u64,
    /// Median request latency (virtual ns).
    pub p50: u64,
    /// 99th-percentile request latency (virtual ns).
    pub p99: u64,
    /// 99.9th-percentile request latency (virtual ns).
    pub p999: u64,
    /// Mean request latency (virtual ns).
    pub mean: f64,
    /// Worst request latency (virtual ns).
    pub max: u64,
}

/// Outcome of [`replay`].
#[derive(Debug, Clone)]
pub struct TrafficOutcome {
    /// Virtual end time of the slowest GPU.
    pub elapsed: Nanos,
    /// Per-tenant tail digests, indexed by tenant id.
    pub per_tenant: Vec<TenantTail>,
    /// Jain fairness index over per-tenant mean *service rates*
    /// (completed requests per virtual second): 1 = perfectly even,
    /// `1/n` = one tenant served exclusively.
    pub fairness: f64,
    /// Total requests completed.
    pub total_ops: u64,
    /// Total bytes moved by data ops.
    pub total_bytes: u64,
    /// Aggregate data throughput in MB/s of virtual time.
    pub throughput_mb_s: f64,
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` (1 for an empty or uniform
/// population).
#[must_use]
pub fn jain_index(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().sum();
    let s2: f64 = xs.iter().map(|x| x * x).sum();
    if s2 == 0.0 {
        1.0
    } else {
        s * s / (xs.len() as f64 * s2)
    }
}

/// Create the read corpus `trace` expects on `fleet`'s host file system
/// (deterministic synthetic content, seeded per file).
///
/// # Errors
///
/// Propagates host-FS errors (out of memory, duplicate create).
pub fn materialize_corpus(fleet: &GpuFleet, trace: &Trace) -> GpufsResult<()> {
    fleet
        .fs()
        .mkdir_p(&trace.config.dir)
        .map_err(gpufs::GpufsError::Host)?;
    for (i, path) in trace.files.iter().enumerate() {
        fleet
            .fs()
            .create_synthetic(path, trace.config.file_bytes, trace.config.seed ^ i as u64)
            .map_err(gpufs::GpufsError::Host)?;
    }
    Ok(())
}

/// Replay `trace` against `fleet`, one OS thread per GPU, one launched
/// threadblock per trace block, paced on the shared virtual clock board
/// (see [`crate::cluster`] for why un-paced replay measures the OS
/// scheduler instead of the virtual timeline). Each block tags its slot
/// with its tenant, waits for each session's arrival, executes the
/// session, and records one latency sample per request (open, data op,
/// close) into its tenant's histogram.
///
/// # Errors
///
/// Propagates the first GPUfs error any session hits.
///
/// # Panics
///
/// Panics if `trace` names more GPUs than `fleet` has.
pub fn replay(fleet: &GpuFleet, trace: &Trace) -> GpufsResult<TrafficOutcome> {
    assert!(
        trace.blocks.len() <= fleet.len(),
        "trace spans {} GPUs, fleet has {}",
        trace.blocks.len(),
        fleet.len()
    );
    let n_gpus = trace.blocks.len();
    let n_tenants = trace.config.tenants.len();

    let block_base: Vec<usize> = (0..n_gpus)
        .scan(0usize, |acc, g| {
            let base = *acc;
            *acc += trace.blocks[g].len();
            Some(base)
        })
        .collect();
    let total_blocks: usize = trace.blocks.iter().map(Vec::len).sum();
    let clock_board: Vec<AtomicU64> = (0..total_blocks).map(|_| AtomicU64::new(0)).collect();
    let failure: parking_lot::Mutex<Option<gpufs::GpufsError>> = parking_lot::Mutex::new(None);
    // Per-block histogram + byte counter, merged per tenant after the
    // join: blocks never share a sample sink, so recording needs no lock.
    let sinks: parking_lot::Mutex<Vec<(usize, Histogram, u64)>> =
        parking_lot::Mutex::new(Vec::new());

    let per_gpu_elapsed: Vec<Nanos> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_gpus)
            .map(|g| {
                let mount = Arc::clone(fleet.mount(g));
                let gpu = Arc::clone(fleet.gpu(g));
                let (clock_board, block_base) = (&clock_board, &block_base);
                let (failure, sinks) = (&failure, &sinks);
                s.spawn(move || {
                    let blocks = trace.blocks[g].len();
                    if blocks == 0 {
                        return 0;
                    }
                    for (slot, &t) in trace.tenant_of[g].iter().enumerate() {
                        mount.set_tenant(slot, t);
                    }
                    let res = gpu.launch(Grid::new(blocks, 128), 0, |blk| {
                        let my_slot = block_base[g] + blk.block_id();
                        let sessions = &trace.blocks[g][blk.block_id()];
                        let tenant = trace.tenant_of[g][blk.block_id()];
                        let mut hist = Histogram::new();
                        let mut bytes = 0u64;
                        let lag = trace.config.pace_lag_ns;
                        let pace = |blk: &mut gpusim::BlockCtx<'_>| loop {
                            let now = blk.now();
                            clock_board[my_slot].store(now, Ordering::Release);
                            let behind = clock_board.iter().enumerate().any(|(s, c)| {
                                s != my_slot && c.load(Ordering::Acquire).saturating_add(lag) < now
                            });
                            if !behind {
                                break;
                            }
                            std::thread::yield_now();
                        };
                        let mut work = |blk: &mut gpusim::BlockCtx<'_>| -> GpufsResult<()> {
                            let mut buf = vec![0u8; trace.config.op_bytes];
                            for sess in sessions {
                                blk.wait_until(sess.arrival);
                                pace(blk);
                                let t0 = blk.now();
                                let fd = mount.open(blk, &sess.path, sess.mode)?;
                                hist.record(blk.now() - t0);
                                for op in &sess.ops {
                                    pace(blk);
                                    let t0 = blk.now();
                                    match *op {
                                        Op::Read { offset, len } => {
                                            let n =
                                                mount.read(blk, &fd, offset, &mut buf[..len])?;
                                            bytes += n as u64;
                                        }
                                        Op::Write { offset, len } => {
                                            mount.write(blk, &fd, offset, &buf[..len])?;
                                            bytes += len as u64;
                                        }
                                    }
                                    hist.record(blk.now() - t0);
                                }
                                if sess.fsync {
                                    mount.fsync(blk, &fd)?;
                                }
                                pace(blk);
                                let t0 = blk.now();
                                mount.close(blk, fd)?;
                                hist.record(blk.now() - t0);
                            }
                            Ok(())
                        };
                        let outcome = work(blk);
                        // Park the clock so a finished (or failed) block
                        // never holds the fleet's pacing line.
                        clock_board[my_slot].store(u64::MAX, Ordering::Release);
                        if let Err(e) = outcome {
                            failure.lock().get_or_insert(e);
                        }
                        sinks.lock().push((tenant, hist, bytes));
                    });
                    res.end
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gpu thread"))
            .collect()
    });
    if let Some(e) = failure.into_inner() {
        return Err(e);
    }

    let mut hists: Vec<Histogram> = (0..n_tenants).map(|_| Histogram::new()).collect();
    let mut bytes: Vec<u64> = vec![0; n_tenants];
    for (t, h, b) in sinks.into_inner() {
        hists[t].merge(&h);
        bytes[t] += b;
    }
    let elapsed = per_gpu_elapsed.iter().copied().max().unwrap_or(0).max(1);
    let per_tenant: Vec<TenantTail> = hists
        .iter()
        .zip(&bytes)
        .map(|(h, &b)| TenantTail {
            ops: h.count(),
            bytes: b,
            p50: h.quantile(0.50),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            mean: h.mean(),
            max: h.max(),
        })
        .collect();
    let rates: Vec<f64> = per_tenant
        .iter()
        .map(|t| t.ops as f64 / elapsed as f64)
        .collect();
    let total_ops = per_tenant.iter().map(|t| t.ops).sum();
    let total_bytes = bytes.iter().sum();
    Ok(TrafficOutcome {
        elapsed,
        fairness: jain_index(&rates),
        per_tenant,
        total_ops,
        total_bytes,
        throughput_mb_s: total_bytes as f64 / (1 << 20) as f64 / (elapsed as f64 / 1e9),
    })
}

/// Synthesize, materialize, and replay in one call.
///
/// # Errors
///
/// Propagates corpus-creation and replay errors.
pub fn run_traffic(fleet: &GpuFleet, cfg: &TrafficConfig) -> GpufsResult<TrafficOutcome> {
    let trace = synthesize_trace(cfg, fleet.len());
    materialize_corpus(fleet, &trace)?;
    replay(fleet, &trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufs::cluster::FleetBuilder;
    use gpufs::GpufsConfig;
    use gpusim::GpuSpec;

    fn small_cfg() -> TrafficConfig {
        TrafficConfig {
            seed: 7,
            n_files: 8,
            file_bytes: 32 << 10,
            op_bytes: 4 << 10,
            tenants: vec![
                TenantLoad {
                    blocks: 2,
                    sessions: 6,
                    ops_per_session: 4,
                    ..TenantLoad::of(TenantClass::Scan)
                },
                TenantLoad {
                    blocks: 2,
                    sessions: 6,
                    ops_per_session: 4,
                    ..TenantLoad::of(TenantClass::PointLookup)
                },
                TenantLoad {
                    blocks: 1,
                    sessions: 3,
                    ops_per_session: 4,
                    ..TenantLoad::of(TenantClass::Logger)
                },
            ],
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn traces_are_deterministic_and_complete() {
        let cfg = small_cfg();
        let a = synthesize_trace(&cfg, 2);
        let b = synthesize_trace(&cfg, 2);
        assert_eq!(a.blocks, b.blocks, "same seed, same trace");
        assert_eq!(a.num_sessions(), 15, "every session dealt to a block");
        // Arrivals are sorted per block and sessions carry their tenant.
        for (g, gpu) in a.blocks.iter().enumerate() {
            for (s, block) in gpu.iter().enumerate() {
                assert!(block.windows(2).all(|w| w[0].arrival <= w[1].arrival));
                assert!(block.iter().all(|x| x.tenant == a.tenant_of[g][s]));
            }
        }
        let c = synthesize_trace(
            &TrafficConfig {
                seed: 8,
                ..cfg.clone()
            },
            2,
        );
        assert_ne!(a.blocks, c.blocks, "different seed, different trace");
    }

    #[test]
    fn zipf_skews_popularity_toward_low_ranks() {
        let cfg = TrafficConfig {
            n_files: 32,
            zipf_s: 1.2,
            tenants: vec![TenantLoad {
                sessions: 400,
                ..TenantLoad::of(TenantClass::PointLookup)
            }],
            ..TrafficConfig::default()
        };
        let trace = synthesize_trace(&cfg, 1);
        let top: Vec<&str> = trace.files[..4].iter().map(String::as_str).collect();
        let hits = trace.blocks[0]
            .iter()
            .flatten()
            .filter(|s| top.contains(&s.path.as_str()))
            .count();
        assert!(
            hits > 160,
            "top 4 of 32 files must draw well over uniform share (got {hits}/400)"
        );
    }

    // The histogram's own quantile/merge tests live with the type in
    // `obs::hist`; here it is only re-exported.

    #[test]
    fn jain_index_ranges() {
        assert!((jain_index(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn replay_serves_every_session_and_attributes_tenants() {
        let fleet = FleetBuilder::new(2)
            .spec(GpuSpec::small_test())
            .config(GpufsConfig::new(4 << 10, 1 << 20))
            .build()
            .unwrap();
        let cfg = small_cfg();
        let out = run_traffic(&fleet, &cfg).unwrap();
        // Every session contributes open + ops + close samples.
        let expected: u64 = synthesize_trace(&cfg, 2)
            .blocks
            .iter()
            .flatten()
            .flatten()
            .map(|s| 2 + s.ops.len() as u64)
            .sum();
        assert_eq!(out.total_ops, expected);
        assert_eq!(out.per_tenant.len(), 3);
        assert!(out.per_tenant.iter().all(|t| t.ops > 0));
        assert!(out.per_tenant.iter().all(|t| t.p50 <= t.p99));
        assert!(out.per_tenant.iter().all(|t| t.p99 <= t.p999));
        assert!(out.fairness > 0.0 && out.fairness <= 1.0);
        assert!(out.elapsed > 0 && out.throughput_mb_s > 0.0);
        // The logger tenant moved write bytes.
        assert_eq!(out.per_tenant[2].bytes, 3 * 4 * (4 << 10));
    }
}
