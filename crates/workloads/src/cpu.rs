//! A modeled multicore CPU executor for the paper's OpenMP baselines.
//!
//! Real OS threads execute the baseline logic (so results can be checked
//! against the GPU versions byte-for-byte) while each core carries a
//! virtual [`Clock`]; the run's elapsed virtual time is the slowest
//! core's, exactly how the kernel-completion time is computed on the GPU
//! side. File I/O goes through [`hostfs`] and is charged there.

use simtime::{Clock, Nanos};

/// A CPU with `cores` hardware threads (the paper's baseline uses 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuExecutor {
    /// Number of cores used by the parallel region.
    pub cores: usize,
}

/// Per-core context handed to the parallel body.
#[derive(Debug)]
pub struct CoreCtx {
    core_id: usize,
    clock: Clock,
}

impl CoreCtx {
    /// This core's index in `[0, cores)`.
    #[must_use]
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Charge `dur` nanoseconds of core-local work.
    pub fn advance(&mut self, dur: Nanos) {
        self.clock.advance(dur);
    }

    /// Wait (virtually) until `t` — e.g. an I/O completion time returned
    /// by `hostfs`.
    pub fn wait_until(&mut self, t: Nanos) {
        self.clock.wait_until(t);
    }
}

impl CpuExecutor {
    /// An executor over `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        Self { cores }
    }

    /// Run `body` once per core in parallel (an `omp parallel` region),
    /// starting each core's clock at `start`. Returns the virtual time at
    /// which the slowest core finished.
    pub fn parallel<F>(&self, start: Nanos, body: F) -> Nanos
    where
        F: Fn(&mut CoreCtx) + Sync,
    {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.cores)
                .map(|core_id| {
                    let body = &body;
                    s.spawn(move || {
                        let mut ctx = CoreCtx {
                            core_id,
                            clock: Clock::starting_at(start),
                        };
                        body(&mut ctx);
                        ctx.clock.now()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("cpu worker panicked"))
                .max()
                .unwrap_or(start)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn all_cores_run_and_slowest_wins() {
        let cpu = CpuExecutor::new(8);
        let ran = AtomicUsize::new(0);
        let end = cpu.parallel(100, |core| {
            ran.fetch_add(1, Ordering::Relaxed);
            core.advance(10 * (core.core_id() as u64 + 1));
        });
        assert_eq!(ran.load(Ordering::Relaxed), 8);
        assert_eq!(end, 100 + 80);
    }

    #[test]
    fn wait_until_only_moves_forward() {
        let cpu = CpuExecutor::new(1);
        let end = cpu.parallel(0, |core| {
            core.advance(50);
            core.wait_until(20); // already past
            assert_eq!(core.now(), 50);
            core.wait_until(200);
        });
        assert_eq!(end, 200);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = CpuExecutor::new(0);
    }
}
