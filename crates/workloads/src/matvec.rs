//! Matrix–vector product on files (paper §5.1.4, Figure 8).
//!
//! Three implementations, as compared in the paper:
//!
//! * [`matvec_gpufs`] — a self-contained GPU kernel using `gmmap` for the
//!   matrix, `gread` for the vector, `gwrite` + `gfsync` for the output.
//!   It needs no special treatment when the matrix exceeds GPU memory or
//!   even host memory.
//! * [`matvec_cuda`] — the CPU-driven double-buffering pipeline: `pread`
//!   into pinned staging buffers, async DMA, kernel per chunk, with file
//!   read / transfer / compute overlapped across chunks. The "naïve"
//!   variant splits the input into 4 chunks; the "optimized" variant uses
//!   fixed ~70 MB chunks × 16 in flight (§5.1.4). Pinned buffers are
//!   charged against host memory, which is what starves the CPU page
//!   cache on the largest inputs and produces the paper's 4× win for
//!   GPUfs in the disk-bound regime.
//! * [`matvec_cpu_reference`] — an untimed host-side reference used to
//!   validate results.

use std::sync::Arc;

use gpufs::{GOpenMode, GpuFsMount, GpufsResult};
use gpusim::{Gpu, Grid, HostPinned};
use hostfs::{HostFs, OpenFlags};
use simtime::{throughput_mb_s, Clock, Nanos};

use crate::compute::FlopsModel;

/// Outcome of one matrix–vector run.
#[derive(Debug, Clone, Copy)]
pub struct MatvecResult {
    /// Virtual elapsed time.
    pub elapsed: Nanos,
    /// Matrix bytes processed.
    pub matrix_bytes: u64,
    /// Effective throughput in MB/s (the paper's y-axis).
    pub throughput_mb_s: f64,
}

fn f32_at(bytes: &[u8], i: usize) -> f32 {
    f32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("aligned f32"))
}

/// The GPUfs implementation: entirely in-kernel, no CPU application code.
///
/// `blocks` threadblocks each process a contiguous band of rows, mapping
/// matrix pages with `gmmap` and writing results with `gwrite` into an
/// `O_GWRONCE` output file, then `gfsync`ing their band.
///
/// # Errors
///
/// Propagates any GPUfs error raised inside the kernel.
pub fn matvec_gpufs(
    mount: &Arc<GpuFsMount>,
    gpu: &Arc<Gpu>,
    matrix_path: &str,
    vector_path: &str,
    out_path: &str,
    rows: u64,
    cols: u64,
) -> GpufsResult<MatvecResult> {
    let blocks = gpu.spec().concurrent_blocks();
    let model = FlopsModel::matvec();
    let row_bytes = cols * 4;
    let failure: parking_lot::Mutex<Option<gpufs::GpufsError>> = parking_lot::Mutex::new(None);

    let result = gpu.launch(Grid::new(blocks, 256), 0, |blk| {
        let mut work = || -> GpufsResult<()> {
            let fd_m = mount.open(blk, matrix_path, GOpenMode::ReadOnly)?;
            let fd_v = mount.open(blk, vector_path, GOpenMode::ReadOnly)?;
            let fd_o = mount.open(blk, out_path, GOpenMode::WriteOnce)?;

            // Load the vector (cached in the GPU buffer cache after the
            // first block fetches it).
            let mut vbytes = vec![0u8; (cols * 4) as usize];
            mount.read(blk, &fd_v, 0, &mut vbytes)?;
            let vector: Vec<f32> = (0..cols as usize).map(|i| f32_at(&vbytes, i)).collect();

            // This block's band of rows.
            let nb = blk.grid().blocks as u64;
            let band = rows.div_ceil(nb);
            let r0 = blk.block_id() as u64 * band;
            let r1 = rows.min(r0 + band);
            let mut results: Vec<u8> = Vec::with_capacity(((r1 - r0) * 4) as usize);

            let mut row = r0;
            while row < r1 {
                // Map as much of the matrix as gmmap will give us from
                // this row onward (at most one buffer-cache page).
                let offset = row * row_bytes;
                let map = mount.mmap(blk, &fd_m, offset, ((r1 - row) * row_bytes) as usize)?;
                let whole_rows = (map.len() as u64 / row_bytes).max(1).min(r1 - row);
                let usable = (whole_rows * row_bytes) as usize;
                if usable > map.len() {
                    // Page boundary split a row: fall back to gread for it.
                    drop(map);
                    let mut rbytes = vec![0u8; row_bytes as usize];
                    mount.read(blk, &fd_m, offset, &mut rbytes)?;
                    let mut acc = 0.0f32;
                    for (c, &v) in vector.iter().enumerate().take(cols as usize) {
                        acc += f32_at(&rbytes, c) * v;
                    }
                    results.extend_from_slice(&acc.to_le_bytes());
                    blk.advance(model.gpu_block_time(2 * cols, blk.grid().blocks));
                    row += 1;
                    continue;
                }
                let data = map.bytes();
                for r in 0..whole_rows as usize {
                    let base = r * row_bytes as usize;
                    let mut acc = 0.0f32;
                    for (c, &v) in vector.iter().enumerate().take(cols as usize) {
                        acc += f32_at(&data[base..], c) * v;
                    }
                    results.extend_from_slice(&acc.to_le_bytes());
                }
                blk.advance(model.gpu_block_time(2 * cols * whole_rows, blk.grid().blocks));
                mount.munmap(blk, map);
                row += whole_rows;
            }

            mount.write(blk, &fd_o, r0 * 4, &results)?;
            mount.fsync(blk, &fd_o)?;
            mount.close(blk, fd_o)?;
            mount.close(blk, fd_v)?;
            mount.close(blk, fd_m)?;
            Ok(())
        };
        if let Err(e) = work() {
            failure.lock().get_or_insert(e);
        }
    });
    if let Some(e) = failure.into_inner() {
        return Err(e);
    }
    let matrix_bytes = rows * row_bytes;
    Ok(MatvecResult {
        elapsed: result.elapsed(),
        matrix_bytes,
        throughput_mb_s: throughput_mb_s(matrix_bytes, result.elapsed()),
    })
}

/// The CPU-driven CUDA pipeline. `chunk_bytes = None` gives the paper's
/// "naïve" version (matrix split into 4 chunks, 2 pinned staging buffers
/// for double buffering); `Some(bytes)` gives the "optimized" fixed-chunk
/// version — the paper keeps 16 independently processed chunks in flight,
/// so callers pass `pinned_buffers = 16` for it. Pinned buffers stay
/// wired for the whole run and are charged against host memory.
///
/// # Errors
///
/// Propagates host file-system errors.
// The argument list mirrors the CUDA launch parameters the paper's baseline
// takes; bundling them into a struct would just rename the problem.
#[allow(clippy::too_many_arguments)]
pub fn matvec_cuda(
    fs: &HostFs,
    gpu: &Arc<Gpu>,
    matrix_path: &str,
    vector_path: &str,
    rows: u64,
    cols: u64,
    chunk_bytes: Option<u64>,
    pinned_buffers: usize,
) -> Result<MatvecResult, hostfs::FsError> {
    let model = FlopsModel::matvec();
    let row_bytes = cols * 4;
    let matrix_bytes = rows * row_bytes;
    let chunk = match chunk_bytes {
        Some(b) => b / row_bytes * row_bytes, // whole rows per chunk
        None => (matrix_bytes / 4).max(row_bytes) / row_bytes * row_bytes,
    }
    .max(row_bytes);

    let mut cpu = Clock::new();
    let (fd_m, t) = fs.open(matrix_path, OpenFlags::read_only(), cpu.now())?;
    cpu.wait_until(t);
    let (_vec, t) = fs.read_whole(vector_path, cpu.now())?;
    cpu.wait_until(t);

    // Pinned staging buffers of one chunk each, wired for the whole run
    // (this is the host-memory pressure of Figure 8's last data point).
    let ledger = Arc::clone(fs.mem());
    let mut staging: Vec<HostPinned> = (0..pinned_buffers.max(1))
        .map(|_| HostPinned::new_accounted(chunk as usize, Arc::clone(&ledger)))
        .collect();

    let mut kernel_free: Nanos = 0;
    let mut end: Nanos = cpu.now();
    let mut off = 0u64;
    let mut buf_i = 0usize;
    while off < matrix_bytes {
        let n = chunk.min(matrix_bytes - off);
        let buf = staging[buf_i].as_mut();
        // Synchronous pread into pinned memory on the CPU thread.
        let (got, t_read) = fs.pread(fd_m, off, &mut buf[..n as usize], cpu.now())?;
        cpu.wait_until(t_read);
        // Async DMA: enqueue and continue to the next pread; the PCIe
        // engine serializes transfers, creating the pipeline overlap.
        let xfer = gpu.dma().reserve_h2d(cpu.now(), got as u64);
        // Kernel for this chunk runs when its data is resident and the
        // previous chunk's kernel has finished.
        let rows_here = got as u64 / row_bytes;
        let kstart = xfer.end.max(kernel_free);
        let kend = kstart + model.gpu_time(2 * cols * rows_here);
        kernel_free = kend;
        end = end.max(kend);
        off += got as u64;
        buf_i = (buf_i + 1) % staging.len();
    }
    // Result vector comes back over PCIe (tiny).
    let back = gpu.dma().reserve_d2h(end, rows * 4);
    end = end.max(back.end);
    fs.close(fd_m)?;
    drop(staging);

    Ok(MatvecResult {
        elapsed: end,
        matrix_bytes,
        throughput_mb_s: throughput_mb_s(matrix_bytes, end),
    })
}

/// Untimed host-side reference: computes `A·x` straight from the files.
///
/// # Errors
///
/// Propagates host file-system errors.
pub fn matvec_cpu_reference(
    fs: &HostFs,
    matrix_path: &str,
    vector_path: &str,
    rows: u64,
    cols: u64,
) -> Result<Vec<f32>, hostfs::FsError> {
    let (mbytes, _) = fs.read_whole(matrix_path, 0)?;
    let (vbytes, _) = fs.read_whole(vector_path, 0)?;
    let vector: Vec<f32> = (0..cols as usize).map(|i| f32_at(&vbytes, i)).collect();
    let mut out = Vec::with_capacity(rows as usize);
    for r in 0..rows as usize {
        let base = r * cols as usize * 4;
        let mut acc = 0.0f32;
        for (c, &v) in vector.iter().enumerate().take(cols as usize) {
            acc += f32_at(&mbytes[base..], c) * v;
        }
        out.push(acc);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpufs::{GpufsConfig, GpufsHost};
    use gpusim::GpuSpec;
    use hostfs::HostFsConfig;

    fn setup(rows: u64, cols: u64) -> (Arc<HostFs>, GpufsHost, Arc<Gpu>) {
        let fs = Arc::new(HostFs::new(HostFsConfig::default()));
        // Real (non-synthetic) matrix so results are checkable.
        let mut rng_state = 0x12345u64;
        let mut next = move || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let mut mbytes = Vec::new();
        for _ in 0..rows * cols {
            mbytes.extend_from_slice(&next().to_le_bytes());
        }
        fs.create("/A", &mbytes).unwrap();
        let mut vbytes = Vec::new();
        for _ in 0..cols {
            vbytes.extend_from_slice(&next().to_le_bytes());
        }
        fs.create("/x", &vbytes).unwrap();
        let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
        let host = GpufsHost::new(Arc::clone(&fs), vec![Arc::clone(&gpu)]);
        (fs, host, gpu)
    }

    #[test]
    fn gpufs_matvec_matches_reference() {
        let (fs, host, gpu) = setup(64, 32);
        let mount = host.mount(0, GpufsConfig::new(4 << 10, 512 << 10)).unwrap();
        let res = matvec_gpufs(&mount, &gpu, "/A", "/x", "/y", 64, 32).unwrap();
        assert!(res.elapsed > 0);
        assert_eq!(res.matrix_bytes, 64 * 32 * 4);
        let expected = matvec_cpu_reference(&fs, "/A", "/x", 64, 32).unwrap();
        let (ybytes, _) = fs.read_whole("/y", 0).unwrap();
        assert_eq!(ybytes.len(), 64 * 4);
        for (r, &want) in expected.iter().enumerate() {
            let got = f32_at(&ybytes, r);
            assert!(
                (got - want).abs() <= want.abs() * 1e-5 + 1e-6,
                "row {r}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn gpufs_matvec_works_beyond_cache_size() {
        // Matrix (1 MB) far exceeds the 64 KB buffer cache.
        let (fs, host, gpu) = setup(256, 1024);
        let mount = host.mount(0, GpufsConfig::new(8 << 10, 64 << 10)).unwrap();
        let res = matvec_gpufs(&mount, &gpu, "/A", "/x", "/y2", 256, 1024).unwrap();
        assert!(mount.counters().pages_reclaimed.get() > 0, "must page");
        let expected = matvec_cpu_reference(&fs, "/A", "/x", 256, 1024).unwrap();
        let (ybytes, _) = fs.read_whole("/y2", 0).unwrap();
        for (r, &want) in expected.iter().enumerate() {
            let got = f32_at(&ybytes, r);
            assert!((got - want).abs() <= want.abs() * 1e-4 + 1e-5, "row {r}");
        }
        assert!(res.throughput_mb_s > 0.0);
    }

    #[test]
    fn cuda_pipeline_overlaps_chunks() {
        let (fs, _host, gpu) = setup(64, 32);
        let naive = matvec_cuda(&fs, &gpu, "/A", "/x", 64, 32, None, 2).unwrap();
        assert!(naive.elapsed > 0);
        // Serial (no-overlap) time would be the sum of pread + DMA +
        // compute for all chunks; the pipeline must beat blowing the
        // whole file through each stage sequentially.
        let opt = matvec_cuda(&fs, &gpu, "/A", "/x", 64, 32, Some(16 * 32 * 4), 16).unwrap();
        assert!(opt.elapsed > 0);
    }

    #[test]
    fn pinned_staging_is_released_after_run() {
        let (fs, _host, gpu) = setup(16, 16);
        let before = fs.mem().used();
        matvec_cuda(&fs, &gpu, "/A", "/x", 16, 16, None, 2).unwrap();
        assert_eq!(fs.mem().used(), before, "pinned buffers must be freed");
    }
}
