//! Per-actor virtual clocks and the experiment-wide horizon.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::Nanos;

/// The local virtual clock of one simulated executor.
///
/// A `Clock` is plain data owned by one actor (one GPU threadblock slot, the
/// RPC daemon, a CPU worker). It only ever moves forward. Cross-actor
/// synchronization happens by exchanging timestamps and calling
/// [`Clock::wait_until`] with the producer's completion time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clock {
    now: Nanos,
}

impl Clock {
    /// A clock starting at virtual time zero.
    #[must_use]
    pub fn new() -> Self {
        Self { now: 0 }
    }

    /// A clock starting at `start`, used when an actor is spawned mid-run
    /// (e.g. a threadblock dispatched after the kernel launch timestamp).
    #[must_use]
    pub fn starting_at(start: Nanos) -> Self {
        Self { now: start }
    }

    /// Current local virtual time.
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Spend `dur` nanoseconds of local work.
    pub fn advance(&mut self, dur: Nanos) {
        self.now = self.now.saturating_add(dur);
    }

    /// Block (virtually) until `t`; no-op if `t` is already in the past.
    pub fn wait_until(&mut self, t: Nanos) {
        self.now = self.now.max(t);
    }
}

/// Experiment-wide high-water mark of virtual time.
///
/// Actors publish their final (or intermediate) clocks with
/// [`Horizon::observe`]; the experiment's elapsed virtual time is
/// [`Horizon::now`] minus its starting point. This mirrors how a kernel's
/// completion time is the max over its threadblocks.
#[derive(Debug, Default)]
pub struct Horizon {
    max: AtomicU64,
}

impl Horizon {
    /// A horizon at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            max: AtomicU64::new(0),
        }
    }

    /// Record that some actor reached virtual time `t`.
    pub fn observe(&self, t: Nanos) {
        self.max.fetch_max(t, Ordering::AcqRel);
    }

    /// Latest virtual time observed so far.
    #[must_use]
    pub fn now(&self) -> Nanos {
        self.max.load(Ordering::Acquire)
    }

    /// Reset the horizon to `t` (used between benchmark phases).
    pub fn reset_to(&self, t: Nanos) {
        self.max.store(t, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        c.advance(10);
        c.wait_until(5); // in the past: no-op
        assert_eq!(c.now(), 10);
        c.wait_until(25);
        assert_eq!(c.now(), 25);
    }

    #[test]
    fn clock_starting_at() {
        let c = Clock::starting_at(42);
        assert_eq!(c.now(), 42);
    }

    #[test]
    fn clock_saturates_instead_of_overflowing() {
        let mut c = Clock::starting_at(u64::MAX - 1);
        c.advance(100);
        assert_eq!(c.now(), u64::MAX);
    }

    #[test]
    fn horizon_tracks_max_across_threads() {
        let h = Horizon::new();
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let h = &h;
                s.spawn(move || h.observe(i * 100));
            }
        });
        assert_eq!(h.now(), 700);
    }

    #[test]
    fn horizon_reset() {
        let h = Horizon::new();
        h.observe(500);
        h.reset_to(100);
        assert_eq!(h.now(), 100);
        h.observe(50);
        assert_eq!(h.now(), 100);
    }
}
