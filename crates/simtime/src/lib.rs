//! Virtual-time engine for the GPUfs reproduction.
//!
//! The original GPUfs evaluation runs on real hardware (PCIe 2.0 bus, GDDR5
//! GPU memory, a 7200 RPM disk). This crate replaces the *timing* of those
//! devices with a calibrated analytic model while the surrounding code still
//! moves real bytes through real data structures on real threads.
//!
//! The model is a conservative parallel discrete-event approximation:
//!
//! * every simulated executor (a GPU threadblock slot, the CPU RPC daemon, a
//!   DMA engine) owns an [`Clock`] holding its local virtual time;
//! * shared devices are either a [`BandwidthResource`] (PCIe direction, disk
//!   streaming, DRAM) or a [`SerialResource`] (the single-threaded RPC
//!   daemon, the disk head) that arbitrate concurrent reservations with an
//!   atomic compare-and-swap on the device's next-free time;
//! * cross-actor waits take the maximum of the waiter's clock and the
//!   producer's completion time.
//!
//! Because reservations never block real threads, experiments that model
//! minutes of device time execute in milliseconds of wall time.
//!
//! # Example
//!
//! ```
//! use simtime::{bw_time_ns, BandwidthResource, Clock};
//!
//! // A PCIe-like link: 5731 MB/s with a 10 us per-transfer setup cost.
//! let pcie = BandwidthResource::new(5731.0, 10_000);
//! let mut block = Clock::new();
//! let xfer = pcie.transfer(block.now(), 1 << 20); // move 1 MiB
//! block.wait_until(xfer.end);
//! assert!(block.now() >= bw_time_ns(1 << 20, 5731.0));
//! ```

mod clock;
mod resource;
mod stats;
mod timings;

pub use clock::{Clock, Horizon};
pub use resource::{BandwidthResource, Reservation, SerialResource};
pub use stats::{ByteLedger, Counter};
pub use timings::Timings;

/// Virtual nanoseconds. All virtual timestamps and durations use this unit.
pub type Nanos = u64;

/// Time to move `bytes` at `mb_per_s` megabytes per second, in nanoseconds.
///
/// A "megabyte" here is 10^6 bytes, matching how the paper reports device
/// bandwidths (e.g. 5731 MB/s effective PCIe 2.0 bandwidth).
///
/// ```
/// // 1 MB at 1000 MB/s takes exactly 1 ms.
/// assert_eq!(simtime::bw_time_ns(1_000_000, 1000.0), 1_000_000);
/// ```
#[must_use]
pub fn bw_time_ns(bytes: u64, mb_per_s: f64) -> Nanos {
    if mb_per_s <= 0.0 {
        return 0;
    }
    // bytes / (mb_per_s * 1e6 B/s) seconds  ==  bytes * 1000 / mb_per_s ns
    ((bytes as f64) * 1000.0 / mb_per_s).round() as Nanos
}

/// Throughput in MB/s achieved moving `bytes` over `elapsed` nanoseconds.
///
/// Returns 0.0 when `elapsed` is zero.
#[must_use]
pub fn throughput_mb_s(bytes: u64, elapsed: Nanos) -> f64 {
    if elapsed == 0 {
        return 0.0;
    }
    (bytes as f64) * 1000.0 / (elapsed as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bw_time_roundtrip() {
        let ns = bw_time_ns(10_000_000, 2500.0);
        assert_eq!(ns, 4_000_000);
        let mbs = throughput_mb_s(10_000_000, ns);
        assert!((mbs - 2500.0).abs() < 1e-6);
    }

    #[test]
    fn bw_time_zero_bandwidth_is_free() {
        assert_eq!(bw_time_ns(123, 0.0), 0);
        assert_eq!(bw_time_ns(123, -1.0), 0);
    }

    #[test]
    fn throughput_of_zero_elapsed() {
        assert_eq!(throughput_mb_s(100, 0), 0.0);
    }
}
