//! Shared simulated devices arbitrated in virtual time.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::{bw_time_ns, Nanos};

/// Outcome of reserving a device: when the device actually started serving
/// this request and when it finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Virtual time at which the device began serving the request.
    pub start: Nanos,
    /// Virtual time at which the request completes.
    pub end: Nanos,
}

impl Reservation {
    /// Duration the request occupied the device.
    #[must_use]
    pub fn busy(&self) -> Nanos {
        self.end - self.start
    }
}

fn reserve(next_free: &AtomicU64, earliest_start: Nanos, dur: Nanos) -> Reservation {
    let mut cur = next_free.load(Ordering::Acquire);
    loop {
        let start = cur.max(earliest_start);
        let end = start.saturating_add(dur);
        match next_free.compare_exchange_weak(cur, end, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return Reservation { start, end },
            Err(actual) => cur = actual,
        }
    }
}

/// A device with a fixed streaming bandwidth and a fixed per-operation setup
/// cost. A transfer of `b` bytes occupies the device for
/// `setup + b / bandwidth`.
///
/// Models a PCIe DMA direction, a disk's streaming path, or a DRAM copy
/// engine. Capacity is enforced with a *work-conserving* cumulative-busy
/// model: a transfer completes at `max(its issue time, total work already
/// accepted) + its service time`. At low utilization transfers start when
/// issued; under saturation the accumulated-work term dominates and the
/// device serializes at full bandwidth. The model is deliberately
/// insensitive to the *real-time* order in which simulated actors (whose
/// virtual clocks legitimately diverge) happen to call in — a strict FIFO
/// on arrival order would let a request issued late in real time but
/// early in virtual time queue behind far-future reservations.
#[derive(Debug)]
pub struct BandwidthResource {
    /// Cumulative service time accepted since the last reset.
    busy: AtomicU64,
    mb_per_s: f64,
    setup_ns: Nanos,
}

impl BandwidthResource {
    /// A device streaming at `mb_per_s` with `setup_ns` per-operation cost.
    #[must_use]
    pub fn new(mb_per_s: f64, setup_ns: Nanos) -> Self {
        Self {
            busy: AtomicU64::new(0),
            mb_per_s,
            setup_ns,
        }
    }

    /// Configured streaming bandwidth in MB/s.
    #[must_use]
    pub fn bandwidth_mb_s(&self) -> f64 {
        self.mb_per_s
    }

    /// Reserve the device for a transfer of `bytes`, not starting before
    /// `earliest_start`. Returns the reservation window.
    pub fn transfer(&self, earliest_start: Nanos, bytes: u64) -> Reservation {
        let dur = self
            .setup_ns
            .saturating_add(bw_time_ns(bytes, self.mb_per_s));
        let prior_work = self.busy.fetch_add(dur, Ordering::AcqRel);
        let start = earliest_start.max(prior_work);
        Reservation {
            start,
            end: start.saturating_add(dur),
        }
    }

    /// Reserve the device for one scatter-gather transaction moving the
    /// given extents back-to-back: a single per-operation setup cost is
    /// paid no matter how many extents the descriptor list names, which is
    /// what makes batched multi-page DMA cheaper than one transfer per
    /// page (the amortization behind GPUfs readahead).
    pub fn transfer_scattered(&self, earliest_start: Nanos, extent_bytes: &[u64]) -> Reservation {
        self.transfer_chunk(earliest_start, extent_bytes, true)
    }

    /// Reserve the device for one *chunk* of a larger scatter-gather
    /// transaction. A transaction streamed chunk by chunk pays the
    /// per-operation setup once — on its `first` chunk — while later
    /// chunks continue the already-programmed descriptor list and are
    /// charged pure bandwidth. This is what lets a producer overlap
    /// generating chunk *k+1* with the device moving chunk *k* without
    /// paying one setup per chunk.
    ///
    /// Chunks of one transaction are serialized *by the caller*: pass the
    /// previous chunk's `end` (max'ed with the data-ready time) as
    /// `earliest_start`. The work-conserving busy model alone orders
    /// requests only under saturation, which would let chunks of one
    /// transaction fictitiously overlap each other on an idle device.
    pub fn transfer_chunk(
        &self,
        earliest_start: Nanos,
        extent_bytes: &[u64],
        first: bool,
    ) -> Reservation {
        let total: u64 = extent_bytes.iter().sum();
        let mut dur = bw_time_ns(total, self.mb_per_s);
        if first {
            dur = dur.saturating_add(self.setup_ns);
        }
        let prior_work = self.busy.fetch_add(dur, Ordering::AcqRel);
        let start = earliest_start.max(prior_work);
        Reservation {
            start,
            end: start.saturating_add(dur),
        }
    }

    /// Time such a transfer would occupy the device, ignoring queueing.
    #[must_use]
    pub fn service_time(&self, bytes: u64) -> Nanos {
        self.setup_ns
            .saturating_add(bw_time_ns(bytes, self.mb_per_s))
    }

    /// Forget all queued work (used between benchmark phases).
    pub fn reset(&self) {
        self.busy.store(0, Ordering::Release);
    }
}

/// A device that serves caller-priced requests strictly one at a time.
///
/// Models the single-threaded RPC daemon on the host CPU or a disk head
/// whose per-request time the file system computes (seek + rotational +
/// transfer).
#[derive(Debug, Default)]
pub struct SerialResource {
    next_free: AtomicU64,
}

impl SerialResource {
    /// A serial device, idle at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            next_free: AtomicU64::new(0),
        }
    }

    /// Reserve the device for `dur` nanoseconds, not starting before
    /// `earliest_start`.
    pub fn acquire(&self, earliest_start: Nanos, dur: Nanos) -> Reservation {
        reserve(&self.next_free, earliest_start, dur)
    }

    /// Next time the device is free.
    #[must_use]
    pub fn next_free(&self) -> Nanos {
        self.next_free.load(Ordering::Acquire)
    }

    /// Forget all queued work (used between benchmark phases).
    pub fn reset(&self) {
        self.next_free.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_transfers_queue_fifo() {
        let r = BandwidthResource::new(1000.0, 0); // 1000 MB/s => 1 ns/KB... (1 MB/ms)
        let a = r.transfer(0, 1_000_000); // 1 ms
        let b = r.transfer(0, 1_000_000); // queued behind a
        assert_eq!(a.start, 0);
        assert_eq!(a.end, 1_000_000);
        assert_eq!(b.start, 1_000_000);
        assert_eq!(b.end, 2_000_000);
    }

    #[test]
    fn bandwidth_respects_earliest_start() {
        let r = BandwidthResource::new(1000.0, 500);
        let a = r.transfer(10_000, 1_000_000);
        assert_eq!(a.start, 10_000);
        assert_eq!(a.end, 10_000 + 500 + 1_000_000);
    }

    #[test]
    fn setup_cost_dominates_small_transfers() {
        let r = BandwidthResource::new(5731.0, 10_000);
        let a = r.transfer(0, 16 * 1024); // 16 KB
                                          // 16 KiB at 5731 MB/s is ~2.9 us; with the 10 us setup the device is
                                          // mostly paying overhead, which is what makes small pages slow.
        assert!(a.busy() > 12_000);
        assert!(a.busy() < 14_000);
    }

    #[test]
    fn scattered_transfer_pays_setup_once() {
        let r = BandwidthResource::new(1000.0, 10_000);
        let scattered = r.transfer_scattered(0, &[500_000, 250_000, 250_000]);
        r.reset();
        let contiguous = r.transfer(0, 1_000_000);
        assert_eq!(scattered.busy(), contiguous.busy());
        r.reset();
        let mut serial_busy = 0;
        for bytes in [500_000u64, 250_000, 250_000] {
            serial_busy += r.transfer(0, bytes).busy();
        }
        assert_eq!(
            serial_busy - scattered.busy(),
            2 * 10_000,
            "batching saves one setup per extra extent"
        );
    }

    #[test]
    fn chunked_transaction_pays_setup_once_and_serializes_on_caller_order() {
        let r = BandwidthResource::new(1000.0, 10_000);
        // One 1 MB transaction streamed as two 500 KB chunks, with the
        // caller threading prev.end into the next chunk's earliest.
        let c1 = r.transfer_chunk(0, &[500_000], true);
        let c2 = r.transfer_chunk(c1.end, &[500_000], false);
        assert_eq!(c1.busy(), 10_000 + 500_000, "first chunk carries setup");
        assert_eq!(c2.busy(), 500_000, "continuation is pure bandwidth");
        assert_eq!(c2.start, c1.end, "chunks never overlap each other");
        r.reset();
        let whole = r.transfer(0, 1_000_000);
        assert_eq!(
            c2.end - c1.start,
            whole.busy(),
            "chunked transaction costs exactly the contiguous transfer"
        );
    }

    #[test]
    fn serial_resource_orders_requests() {
        let r = SerialResource::new();
        let a = r.acquire(0, 100);
        let b = r.acquire(0, 50);
        assert_eq!(a.end, 100);
        assert_eq!(b.start, 100);
        assert_eq!(b.end, 150);
        assert_eq!(r.next_free(), 150);
    }

    #[test]
    fn concurrent_reservations_never_overlap() {
        let r = SerialResource::new();
        let windows: Vec<Reservation> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..16).map(|_| s.spawn(|| r.acquire(0, 10))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut sorted = windows.clone();
        sorted.sort_by_key(|w| w.start);
        for pair in sorted.windows(2) {
            assert!(pair[0].end <= pair[1].start);
        }
        assert_eq!(r.next_free(), 160);
    }

    #[test]
    fn reset_clears_queue() {
        let r = BandwidthResource::new(100.0, 0);
        r.transfer(0, 1_000_000);
        r.reset();
        let a = r.transfer(0, 1_000_000);
        assert_eq!(a.start, 0);
    }
}
