//! Lightweight atomic counters for experiment instrumentation.

use std::sync::atomic::{AtomicU64, Ordering};

/// A relaxed atomic event counter.
///
/// GPUfs uses these to report the instrumentation columns of the paper's
/// tables: lock-free vs locked radix-tree accesses (Table 2), pages
/// reclaimed, RPC counts, and bytes moved per direction.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Increment by one.
    pub fn incr(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

/// Shared accounting of bytes in use, with a fixed capacity.
///
/// Used to model host-memory pressure: pinned DMA buffers allocated by the
/// GPU runtime register here, and the host page cache sizes itself against
/// what remains (the mechanism behind the disk-bound regime of Figure 8,
/// where large pinned staging buffers crowd out the CPU buffer cache).
#[derive(Debug)]
pub struct ByteLedger {
    capacity: u64,
    used: AtomicU64,
}

impl ByteLedger {
    /// A ledger with `capacity` total bytes and nothing charged.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: AtomicU64::new(0),
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently charged.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Acquire)
    }

    /// Bytes not charged. Saturates at zero if over-committed.
    #[must_use]
    pub fn available(&self) -> u64 {
        self.capacity.saturating_sub(self.used())
    }

    /// Charge `bytes` to the ledger. Over-commit is allowed (the real OS
    /// would start thrashing, which callers model from [`Self::available`]).
    pub fn charge(&self, bytes: u64) {
        self.used.fetch_add(bytes, Ordering::AcqRel);
    }

    /// Release `bytes` previously charged.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more is released than was charged.
    pub fn release(&self, bytes: u64) {
        let prev = self.used.fetch_sub(bytes, Ordering::AcqRel);
        debug_assert!(
            prev >= bytes,
            "ByteLedger::release of {bytes} exceeds used {prev}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_tracks_usage() {
        let l = ByteLedger::new(1000);
        l.charge(300);
        assert_eq!(l.used(), 300);
        assert_eq!(l.available(), 700);
        l.release(100);
        assert_eq!(l.available(), 800);
    }

    #[test]
    fn ledger_overcommit_saturates_available() {
        let l = ByteLedger::new(100);
        l.charge(250);
        assert_eq!(l.available(), 0);
        assert_eq!(l.used(), 250);
    }

    #[test]
    fn counts_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn add_and_take() {
        let c = Counter::new();
        c.add(5);
        c.add(7);
        assert_eq!(c.take(), 12);
        assert_eq!(c.get(), 0);
    }
}
