//! Device timing calibration.
//!
//! Default values reproduce the evaluation platform of the paper (§5): a
//! SuperMicro server with PCIe 2.0 (5731 MB/s effective, the red line in
//! Figure 4), NVIDIA TESLA C2075 GPUs (GDDR5), and a 500 GB 7200 RPM disk
//! measuring 6600 MB/s cached and 132 MB/s raw reads under `hdparm`.

use crate::Nanos;

/// Calibrated timing constants for the simulated platform.
///
/// Benchmarks that need a component "excluded" (Figure 5 removes DMA time
/// and/or CPU file I/O time) build a modified copy with the relevant costs
/// zeroed via [`Timings::without_dma`] / [`Timings::without_host_io`].
#[derive(Debug, Clone, PartialEq)]
pub struct Timings {
    /// Effective PCIe bandwidth per direction for pinned-memory DMA, MB/s
    /// (paper: 5731 MB/s).
    pub pcie_mb_s: f64,
    /// Effective PCIe bandwidth when the source is pageable host memory
    /// (the driver staging copy roughly halves throughput; this is what
    /// limits the paper's 2100 MB/s whole-file-transfer baseline).
    pub pcie_pageable_mb_s: f64,
    /// Per-DMA-transaction setup cost (driver + doorbell + descriptor).
    pub dma_setup_ns: Nanos,
    /// CPU-side cost of submitting one *continuation chunk* of an
    /// already-set-up scatter-gather transaction (append descriptors +
    /// ring the doorbell — no driver mapping, so far cheaper than
    /// [`Timings::dma_setup_ns`]). Charged to the daemon worker's clock
    /// per extra chunk when a batched RPC is streamed through the
    /// pipelined I/O engine.
    pub dma_chunk_ns: Nanos,
    /// Host page-cache streaming read bandwidth, MB/s (paper: 6600 MB/s).
    pub host_cached_mb_s: f64,
    /// Raw disk streaming bandwidth, MB/s (paper: 132 MB/s).
    pub disk_mb_s: f64,
    /// Disk seek + rotational latency per discontiguous access.
    pub disk_seek_ns: Nanos,
    /// Host per-syscall overhead for pread/pwrite (enter + find page).
    pub host_syscall_ns: Nanos,
    /// GPU global-memory bandwidth, MB/s (GDDR5 on the C2075: ~144 GB/s).
    pub gpu_mem_mb_s: f64,
    /// Host DRAM copy bandwidth, MB/s.
    pub host_mem_mb_s: f64,
    /// One-way latency for the GPU to post an RPC slot and the polling CPU
    /// daemon to notice it over write-shared memory.
    pub rpc_poll_ns: Nanos,
    /// One-way latency for the CPU daemon's completion write to become
    /// visible to the spinning GPU threadblock.
    pub rpc_complete_ns: Nanos,
    /// Fixed CPU-side cost to decode and dispatch one RPC request.
    pub rpc_dispatch_ns: Nanos,
    /// GPUfs library software cost per buffer-cache page operation on the
    /// GPU (radix lookup, fpage init, refcounting), charged per page.
    pub gpufs_page_op_ns: Nanos,
    /// GPUfs cost of a *warm* lock-free lookup hit (seqlock reads +
    /// refcount), much cheaper than a full page operation.
    pub gpufs_hit_ns: Nanos,
    /// GDDR access latency charged once per coalesced block copy, on both
    /// GPUfs reads and raw-memory baselines (Figure 7 normalization).
    pub gpu_mem_latency_ns: Nanos,
    /// Time the locked (non-lock-free) radix traversal holds the tree
    /// lock per access; the locked variant of Figure 7 serializes on it.
    pub radix_lock_hold_ns: Nanos,
    /// Cost of one GPU kernel launch as seen from the host.
    pub kernel_launch_ns: Nanos,
    /// Round-trip latency of one host↔storage-server network exchange
    /// (request on the wire to response on the wire, excluding
    /// serialization time, which the bandwidth terms cover). Modeled the
    /// way PCIe setup cost is: a fixed per-exchange charge split evenly
    /// across the two directions. Default approximates a switched
    /// datacenter link (~30 µs RTT).
    pub net_rtt_ns: Nanos,
    /// Per-direction bandwidth of the host↔storage-server link, MB/s.
    /// Default approximates 100 GbE payload throughput. As with every
    /// other bandwidth knob, `0.0` means the transfer is free
    /// ([`crate::bw_time_ns`] returns 0) — the exclusion convention
    /// [`Timings::without_net`] relies on.
    pub net_mb_s: f64,
}

impl Default for Timings {
    fn default() -> Self {
        Self {
            pcie_mb_s: 5731.0,
            pcie_pageable_mb_s: 3100.0,
            dma_setup_ns: 25_000,
            dma_chunk_ns: 2_000,
            host_cached_mb_s: 6600.0,
            disk_mb_s: 132.0,
            disk_seek_ns: 8_000_000,
            host_syscall_ns: 2_500,
            gpu_mem_mb_s: 144_000.0,
            host_mem_mb_s: 20_000.0,
            rpc_poll_ns: 4_000,
            rpc_complete_ns: 3_000,
            rpc_dispatch_ns: 1_000,
            gpufs_page_op_ns: 3_500,
            gpufs_hit_ns: 150,
            gpu_mem_latency_ns: 600,
            radix_lock_hold_ns: 60,
            kernel_launch_ns: 7_000,
            net_rtt_ns: 30_000,
            net_mb_s: 11_600.0,
        }
    }
}

impl Timings {
    /// Platform defaults matching the paper's testbed.
    #[must_use]
    pub fn paper_platform() -> Self {
        Self::default()
    }

    /// Copy with all PCIe DMA costs removed (Figure 5, "CPU DMA excluded").
    #[must_use]
    pub fn without_dma(&self) -> Self {
        Self {
            pcie_mb_s: 0.0,
            pcie_pageable_mb_s: 0.0,
            dma_setup_ns: 0,
            dma_chunk_ns: 0,
            ..self.clone()
        }
    }

    /// Copy with all host file I/O costs removed (Figure 5, "CPU file I/O
    /// excluded"): page-cache reads, disk, and syscall overhead are free.
    #[must_use]
    pub fn without_host_io(&self) -> Self {
        Self {
            host_cached_mb_s: 0.0,
            disk_mb_s: 0.0,
            disk_seek_ns: 0,
            host_syscall_ns: 0,
            ..self.clone()
        }
    }

    /// Copy with both DMA and host file I/O removed (Figure 5, rightmost
    /// series): what remains is RPC traffic plus GPUfs buffer-cache code.
    #[must_use]
    pub fn rpc_and_cache_only(&self) -> Self {
        self.without_dma().without_host_io()
    }

    /// Copy with the host↔storage network made free: zero round-trip
    /// latency and free transfers. A proxy-backed daemon under this copy
    /// must time identically to a daemon holding the file system
    /// directly — the equivalence `bench_dist` asserts against the
    /// recorded BENCH_scale numbers.
    #[must_use]
    pub fn without_net(&self) -> Self {
        Self {
            net_rtt_ns: 0,
            net_mb_s: 0.0,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bw_time_ns;

    #[test]
    fn defaults_match_paper_measurements() {
        let t = Timings::paper_platform();
        assert_eq!(t.pcie_mb_s, 5731.0);
        assert_eq!(t.host_cached_mb_s, 6600.0);
        assert_eq!(t.disk_mb_s, 132.0);
    }

    #[test]
    fn exclusion_copies_zero_the_right_components() {
        let t = Timings::default();
        let no_dma = t.without_dma();
        assert_eq!(no_dma.pcie_mb_s, 0.0);
        assert_eq!(no_dma.dma_setup_ns, 0);
        assert_eq!(no_dma.dma_chunk_ns, 0);
        // Host I/O untouched.
        assert_eq!(no_dma.host_cached_mb_s, t.host_cached_mb_s);

        let no_io = t.without_host_io();
        assert_eq!(no_io.disk_mb_s, 0.0);
        assert_eq!(no_io.host_syscall_ns, 0);
        assert_eq!(no_io.pcie_mb_s, t.pcie_mb_s);

        let bare = t.rpc_and_cache_only();
        assert_eq!(bare.pcie_mb_s, 0.0);
        assert_eq!(bare.disk_mb_s, 0.0);
        // RPC and GPUfs software costs always remain.
        assert!(bare.rpc_poll_ns > 0);
        assert!(bare.gpufs_page_op_ns > 0);

        let no_net = t.without_net();
        assert_eq!(no_net.net_rtt_ns, 0);
        assert_eq!(no_net.net_mb_s, 0.0);
        // Everything host-local untouched.
        assert_eq!(no_net.pcie_mb_s, t.pcie_mb_s);
        assert_eq!(no_net.host_cached_mb_s, t.host_cached_mb_s);
    }

    #[test]
    fn zeroed_bandwidth_means_free_transfer() {
        let t = Timings::default().without_dma();
        assert_eq!(bw_time_ns(1 << 30, t.pcie_mb_s), 0);
    }
}
