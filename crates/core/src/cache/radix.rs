//! The per-file buffer-cache radix tree with lock-free lookup (paper §4.2).
//!
//! Each open file's cached pages are indexed by a radix tree whose
//! last-level nodes hold `fpage` structures **by value** — in-place data
//! structures that avoid pointer chasing and memory allocation on the hot
//! path. Readers traverse the tree without taking any lock, validating
//! each fpage with a seqlock-style version counter (inspired by Linux
//! seqlocks and RCU, §6); updates (page initialization, eviction) take the
//! fpage spinlock and bump the version around their critical section.
//!
//! A lookup retries the lock-free protocol a configurable number of times
//! (the paper retries once) and falls back to locking on the next attempt.
//! The caller counts which path succeeded — those counters are the
//! "lock-free vs locked accesses" columns of Table 2 and the two curves of
//! Figure 7.
//!
//! Deviation from the paper: interior and leaf nodes, once allocated, are
//! reused rather than freed when their pages are reclaimed (only *frames*
//! are recycled). This keeps traversal memory-safe without hazard
//! pointers; node memory is bounded by file size / page size and is
//! released when the file cache itself is dropped.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::cache::frames::{FrameIdx, NO_FRAME};

/// log2 of the tree fanout.
pub const FANOUT_BITS: u32 = 6;
/// Children per interior node / fpages per leaf.
pub const FANOUT: usize = 1 << FANOUT_BITS;
/// Tree depth: a fixed four levels cover `64^4 ≈ 16.7M` pages, enough for
/// the largest files the paper reads (11.2 GB) at any page size.
pub const TREE_LEVELS: u32 = 4;
/// Largest page index the tree can hold.
pub const MAX_PAGES: u64 = 1 << (FANOUT_BITS * TREE_LEVELS);

/// Lifecycle of one fpage slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PageState {
    /// No frame attached.
    Empty = 0,
    /// A threadblock is fetching/zeroing the page; others must wait.
    Initializing = 1,
    /// Frame attached and content valid.
    Ready = 2,
}

impl PageState {
    fn from_u8(v: u8) -> Self {
        match v {
            0 => PageState::Empty,
            1 => PageState::Initializing,
            2 => PageState::Ready,
            _ => unreachable!("invalid page state"),
        }
    }
}

/// Result of one lock-free pin attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Snapshot {
    /// Page pinned: the frame cannot be evicted until unpinned.
    Pinned(FrameIdx),
    /// Slot has no frame; the caller may initialize it.
    Empty,
    /// Another threadblock is initializing; the caller should wait.
    Initializing,
}

/// An fpage: the in-place per-page concurrency record inside a leaf node.
///
/// Holds the page's read/write reference count and a spinlock, "together
/// preventing concurrent access by mutually exclusive operations such as
/// initialization, read/write access, and paging out" (paper §4.2).
#[derive(Debug)]
pub struct FPage {
    /// Seqlock version: odd while an update is in flight.
    version: AtomicU64,
    state: AtomicU32,
    frame: AtomicU32,
    /// Pages pinned by in-flight reads/writes/mappings.
    refs: AtomicU32,
    locked: AtomicBool,
}

impl FPage {
    fn new() -> Self {
        Self {
            version: AtomicU64::new(0),
            state: AtomicU32::new(PageState::Empty as u32),
            frame: AtomicU32::new(NO_FRAME),
            refs: AtomicU32::new(0),
            locked: AtomicBool::new(false),
        }
    }

    /// Spin until the fpage lock is held.
    pub fn lock(&self) {
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// Release the fpage lock.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the lock is not held.
    pub fn unlock(&self) {
        debug_assert!(
            self.locked.load(Ordering::Relaxed),
            "unlock of unlocked fpage"
        );
        self.locked.store(false, Ordering::Release);
    }

    /// Enter an update critical section (must hold the lock): readers see
    /// an odd version and retry.
    pub fn begin_update(&self) {
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v.is_multiple_of(2), "nested begin_update");
    }

    /// Leave the update critical section.
    pub fn end_update(&self) {
        let v = self.version.fetch_add(1, Ordering::AcqRel);
        debug_assert!(v % 2 == 1, "end_update without begin");
    }

    /// Current state (racy read; stable only under the lock or seqlock).
    #[must_use]
    pub fn state(&self) -> PageState {
        PageState::from_u8(self.state.load(Ordering::Acquire) as u8)
    }

    /// Set the state (must hold the lock, inside an update section).
    pub fn set_state(&self, s: PageState) {
        self.state.store(s as u32, Ordering::Release);
    }

    /// Attached frame, if any (racy read).
    #[must_use]
    pub fn frame(&self) -> Option<FrameIdx> {
        let f = self.frame.load(Ordering::Acquire);
        if f == NO_FRAME {
            None
        } else {
            Some(f)
        }
    }

    /// Attach or detach the frame (must hold the lock, inside an update).
    pub fn set_frame(&self, frame: Option<FrameIdx>) {
        self.frame
            .store(frame.unwrap_or(NO_FRAME), Ordering::Release);
    }

    /// Current pin count.
    #[must_use]
    pub fn refs(&self) -> u32 {
        self.refs.load(Ordering::Acquire)
    }

    /// Add a pin without the seqlock protocol (caller holds the lock and
    /// has verified the state).
    pub fn pin_direct(&self) {
        self.refs.fetch_add(1, Ordering::AcqRel);
    }

    /// Drop a pin.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on underflow.
    pub fn unpin(&self) {
        let prev = self.refs.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "unpin of unpinned fpage");
    }

    /// One lock-free pin attempt using the seqlock protocol.
    ///
    /// Returns `Err(())` when a concurrent update forced a retry.
    // The unit error is deliberate: a seqlock retry carries no information
    // beyond "try again", and callers only pattern-match on Ok/Err.
    #[allow(clippy::result_unit_err)]
    pub fn try_pin_lockfree(&self) -> Result<Snapshot, ()> {
        let v1 = self.version.load(Ordering::Acquire);
        if v1 % 2 == 1 {
            return Err(()); // update in flight
        }
        let state = self.state();
        let frame = self.frame.load(Ordering::Acquire);
        if self.version.load(Ordering::Acquire) != v1 {
            return Err(());
        }
        match state {
            PageState::Ready => {
                // Optimistically pin, then revalidate: if an eviction
                // started between the reads and the pin, back out.
                self.refs.fetch_add(1, Ordering::AcqRel);
                if self.version.load(Ordering::Acquire) == v1 {
                    Ok(Snapshot::Pinned(frame))
                } else {
                    self.refs.fetch_sub(1, Ordering::AcqRel);
                    Err(())
                }
            }
            PageState::Empty => Ok(Snapshot::Empty),
            PageState::Initializing => Ok(Snapshot::Initializing),
        }
    }

    /// Pin attempt under the fpage lock (the fallback path). Never fails,
    /// but may report `Empty`/`Initializing` just like the fast path.
    #[must_use]
    pub fn pin_locked(&self) -> Snapshot {
        self.lock();
        let out = match self.state() {
            PageState::Ready => {
                self.refs.fetch_add(1, Ordering::AcqRel);
                Snapshot::Pinned(self.frame.load(Ordering::Acquire))
            }
            PageState::Empty => Snapshot::Empty,
            PageState::Initializing => Snapshot::Initializing,
        };
        self.unlock();
        out
    }
}

/// One radix-tree node. Interior nodes use `children`; leaves (height 0)
/// use `pages`.
pub(crate) struct Node {
    height: u8,
    children: [AtomicPtr<Node>; FANOUT],
    pages: Box<[FPage]>,
}

impl Node {
    fn new(height: u8) -> Self {
        let pages = if height == 0 {
            (0..FANOUT).map(|_| FPage::new()).collect()
        } else {
            Box::from([])
        };
        Self {
            height,
            children: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
            pages,
        }
    }
}

/// A leaf node reference in the eviction list.
#[derive(Debug, Clone, Copy)]
struct LeafRef {
    node: *const Node,
    /// Page index of the leaf's first slot.
    base_page: u64,
}

// SAFETY: the raw pointers reference nodes owned by the tree's arena,
// which outlives every LeafRef; nodes are never freed before the tree.
unsafe impl Send for LeafRef {}
unsafe impl Sync for LeafRef {}

static NEXT_UID: AtomicU64 = AtomicU64::new(1);

/// Shards of the node arena and leaf registry. Node creation is rare
/// (once per 64 pages) but every creation under one tree-wide lock still
/// convoys concurrent first-touch faults of distant file regions; keying
/// the lock by the child slot being filled (`slot % RADIX_SHARDS`) lets
/// those proceed independently while keeping the double-checked publish
/// sound — racing inserts of the *same* child always pick the same shard.
const RADIX_SHARDS: usize = 8;

/// The per-file page index (see module docs).
pub struct RadixTree {
    uid: u64,
    root: Box<Node>,
    /// Owns every non-root node, sharded by the child slot being filled
    /// (see [`RADIX_SHARDS`]); lookups stay lock-free.
    // The Box is load-bearing: `children` and `LeafRef` hold raw pointers
    // to nodes, so node addresses must survive Vec reallocation.
    #[allow(clippy::vec_box)]
    arena: Box<[Mutex<Vec<Box<Node>>>]>,
    /// Leaves in per-shard allocation order — the (approximate) FIFO
    /// spine of the eviction policy. Concatenating the shards loses total
    /// allocation order across shards, which the reclaim scan tolerates:
    /// its cursor rotation only ever promised FIFO-*like* coverage.
    leaves: Box<[Mutex<Vec<LeafRef>>]>,
    /// Rotating start position for reclaim scans.
    evict_cursor: AtomicUsize,
}

// SAFETY: all interior mutability is through atomics and mutexes; raw
// node pointers never escape the tree's lifetime.
unsafe impl Send for RadixTree {}
unsafe impl Sync for RadixTree {}

impl std::fmt::Debug for RadixTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RadixTree")
            .field("uid", &self.uid)
            .field("leaves", &self.num_leaves())
            .finish()
    }
}

impl Default for RadixTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RadixTree {
    /// An empty tree with a fresh unique id.
    ///
    /// The id is "assigned to each radix tree during initialization, then
    /// propagated to every page referenced by the tree" so that lock-free
    /// readers can verify they found the right page (paper §4.2).
    #[must_use]
    pub fn new() -> Self {
        Self {
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            root: Box::new(Node::new((TREE_LEVELS - 1) as u8)),
            arena: (0..RADIX_SHARDS).map(|_| Mutex::default()).collect(),
            leaves: (0..RADIX_SHARDS).map(|_| Mutex::default()).collect(),
            evict_cursor: AtomicUsize::new(0),
        }
    }

    /// The tree's unique id.
    #[must_use]
    pub fn uid(&self) -> u64 {
        self.uid
    }

    fn slot(page_idx: u64, height: u8) -> usize {
        ((page_idx >> (FANOUT_BITS * u32::from(height))) & (FANOUT as u64 - 1)) as usize
    }

    /// Lock-free lookup of the fpage slot for `page_idx`, if its leaf
    /// exists.
    ///
    /// # Panics
    ///
    /// Panics if `page_idx` exceeds the tree capacity.
    #[must_use]
    pub fn lookup(&self, page_idx: u64) -> Option<&FPage> {
        assert!(page_idx < MAX_PAGES, "page index beyond tree capacity");
        let mut node: &Node = &self.root;
        while node.height > 0 {
            let child = node.children[Self::slot(page_idx, node.height)].load(Ordering::Acquire);
            if child.is_null() {
                return None;
            }
            // SAFETY: non-null children point into the arena, which lives
            // as long as `self`; nodes are never freed before the tree.
            node = unsafe { &*child };
        }
        Some(&node.pages[Self::slot(page_idx, 0)])
    }

    /// Find the fpage slot for `page_idx`, creating missing nodes.
    ///
    /// # Panics
    ///
    /// Panics if `page_idx` exceeds the tree capacity.
    pub fn get_or_insert(&self, page_idx: u64) -> &FPage {
        assert!(page_idx < MAX_PAGES, "page index beyond tree capacity");
        let mut node: &Node = &self.root;
        while node.height > 0 {
            let slot = Self::slot(page_idx, node.height);
            let mut child = node.children[slot].load(Ordering::Acquire);
            if child.is_null() {
                let mut arena = self.arena[slot % RADIX_SHARDS].lock();
                // Re-check under the shard lock: racing creators of this
                // child picked the same shard, so one of them won.
                child = node.children[slot].load(Ordering::Acquire);
                if child.is_null() {
                    let mut fresh = Box::new(Node::new(node.height - 1));
                    let raw: *mut Node = &mut *fresh;
                    arena.push(fresh);
                    if node.height == 1 {
                        // New leaf: register at the tail of its shard's
                        // allocation-order list.
                        let base = page_idx & !(FANOUT as u64 - 1);
                        self.leaves[slot % RADIX_SHARDS].lock().push(LeafRef {
                            node: raw,
                            base_page: base,
                        });
                    }
                    node.children[slot].store(raw, Ordering::Release);
                    child = raw;
                }
            }
            // SAFETY: see `lookup`.
            node = unsafe { &*child };
        }
        &node.pages[Self::slot(page_idx, 0)]
    }

    /// Number of leaf nodes allocated so far.
    #[must_use]
    pub fn num_leaves(&self) -> usize {
        self.leaves.iter().map(|s| s.lock().len()).sum()
    }

    /// Concatenated snapshot of every shard's leaf list.
    fn leaf_snapshot(&self) -> Vec<LeafRef> {
        let mut out = Vec::new();
        for shard in self.leaves.iter() {
            out.extend(shard.lock().iter().copied());
        }
        out
    }

    /// Visit fpages in FIFO-like reclaim order, starting from a rotating
    /// cursor over leaves in allocation order. `f` receives each page's
    /// index and slot and returns `true` to keep scanning.
    pub fn for_each_reclaim_candidate(&self, mut f: impl FnMut(u64, &FPage) -> bool) {
        let snapshot: Vec<LeafRef> = self.leaf_snapshot();
        if snapshot.is_empty() {
            return;
        }
        let start = self.evict_cursor.fetch_add(1, Ordering::Relaxed) % snapshot.len();
        for i in 0..snapshot.len() {
            let leaf = snapshot[(start + i) % snapshot.len()];
            // SAFETY: leaf nodes live in the arena for the tree's lifetime.
            let node = unsafe { &*leaf.node };
            for (slot, page) in node.pages.iter().enumerate() {
                if !f(leaf.base_page + slot as u64, page) {
                    return;
                }
            }
        }
    }

    /// Visit every allocated fpage in page-index order (used by `gfsync`
    /// to find dirty pages and by invalidation to drop all frames).
    pub fn for_each_page(&self, mut f: impl FnMut(u64, &FPage)) {
        let mut snapshot: Vec<LeafRef> = self.leaf_snapshot();
        snapshot.sort_by_key(|l| l.base_page);
        for leaf in snapshot {
            // SAFETY: see above.
            let node = unsafe { &*leaf.node };
            for (slot, page) in node.pages.iter().enumerate() {
                f(leaf.base_page + slot as u64, page);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_of_missing_page_is_none() {
        let t = RadixTree::new();
        assert!(t.lookup(0).is_none());
        assert!(t.lookup(12345).is_none());
    }

    #[test]
    fn insert_then_lookup_same_slot() {
        let t = RadixTree::new();
        let a = t.get_or_insert(77) as *const FPage;
        let b = t.lookup(77).unwrap() as *const FPage;
        assert_eq!(a, b);
        // Neighbouring page in the same leaf.
        let c = t.lookup(76);
        assert!(c.is_some(), "whole leaf becomes visible");
    }

    #[test]
    fn distant_pages_use_distinct_leaves() {
        let t = RadixTree::new();
        t.get_or_insert(0);
        t.get_or_insert(1 << 18); // different level-2 subtree
        assert_eq!(t.num_leaves(), 2);
    }

    #[test]
    fn uids_are_unique() {
        assert_ne!(RadixTree::new().uid(), RadixTree::new().uid());
    }

    #[test]
    #[should_panic(expected = "beyond tree capacity")]
    fn oversized_index_panics() {
        let t = RadixTree::new();
        let _ = t.lookup(MAX_PAGES);
    }

    #[test]
    fn fpage_lockfree_pin_of_ready_page() {
        let t = RadixTree::new();
        let p = t.get_or_insert(3);
        // Initialize: Empty -> Initializing -> Ready with frame 9.
        p.lock();
        p.begin_update();
        p.set_state(PageState::Initializing);
        p.set_frame(Some(9));
        p.set_state(PageState::Ready);
        p.end_update();
        p.unlock();

        match p.try_pin_lockfree() {
            Ok(Snapshot::Pinned(f)) => assert_eq!(f, 9),
            other => panic!("expected pinned, got {other:?}"),
        }
        assert_eq!(p.refs(), 1);
        p.unpin();
        assert_eq!(p.refs(), 0);
    }

    #[test]
    fn lockfree_pin_retries_during_update() {
        let t = RadixTree::new();
        let p = t.get_or_insert(0);
        p.lock();
        p.begin_update();
        assert_eq!(
            p.try_pin_lockfree(),
            Err(()),
            "odd version must force retry"
        );
        p.end_update();
        p.unlock();
        assert_eq!(p.try_pin_lockfree(), Ok(Snapshot::Empty));
    }

    #[test]
    fn locked_pin_reports_states() {
        let t = RadixTree::new();
        let p = t.get_or_insert(0);
        assert_eq!(p.pin_locked(), Snapshot::Empty);
        p.lock();
        p.begin_update();
        p.set_state(PageState::Initializing);
        p.end_update();
        p.unlock();
        assert_eq!(p.pin_locked(), Snapshot::Initializing);
    }

    #[test]
    fn reclaim_candidates_cover_all_leaves() {
        let t = RadixTree::new();
        t.get_or_insert(0);
        t.get_or_insert(100);
        t.get_or_insert(1000);
        let mut seen = std::collections::HashSet::new();
        t.for_each_reclaim_candidate(|idx, _| {
            seen.insert(idx);
            true
        });
        assert!(seen.contains(&0) && seen.contains(&100) && seen.contains(&1000));
        assert_eq!(seen.len(), 3 * FANOUT);
    }

    #[test]
    fn for_each_page_is_sorted_by_index() {
        let t = RadixTree::new();
        t.get_or_insert(5000);
        t.get_or_insert(2);
        let mut indices = Vec::new();
        t.for_each_page(|idx, _| indices.push(idx));
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(indices, sorted);
    }

    #[test]
    fn concurrent_get_or_insert_returns_one_slot() {
        let t = RadixTree::new();
        let ptrs: Vec<usize> = std::thread::scope(|s| {
            (0..8)
                .map(|_| s.spawn(|| t.get_or_insert(42) as *const FPage as usize))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(t.num_leaves(), 1);
    }

    #[test]
    fn sharded_arena_publishes_concurrent_distant_inserts() {
        // Eight threads populate distant subtrees (different arena
        // shards) at once; every leaf must come out registered and every
        // page resolvable.
        let t = RadixTree::new();
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let t = &t;
                s.spawn(move || {
                    for j in 0..16u64 {
                        t.get_or_insert(i * (1 << 12) + j * FANOUT as u64);
                    }
                });
            }
        });
        assert_eq!(t.num_leaves(), 8 * 16);
        for i in 0..8u64 {
            for j in 0..16u64 {
                assert!(t.lookup(i * (1 << 12) + j * FANOUT as u64).is_some());
            }
        }
        let mut seen = 0usize;
        t.for_each_page(|_, _| seen += 1);
        assert_eq!(seen, 8 * 16 * FANOUT, "snapshot covers every shard");
    }

    #[test]
    fn concurrent_pin_unpin_is_balanced() {
        let t = RadixTree::new();
        let p = t.get_or_insert(7);
        p.lock();
        p.begin_update();
        p.set_state(PageState::Ready);
        p.set_frame(Some(1));
        p.end_update();
        p.unlock();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        loop {
                            match p.try_pin_lockfree() {
                                Ok(Snapshot::Pinned(_)) => break,
                                _ => std::thread::yield_now(),
                            }
                        }
                        p.unpin();
                    }
                });
            }
        });
        assert_eq!(p.refs(), 0);
    }
}
