//! The paging layer: pinning pages and faulting them in (paper §4.2).
//!
//! Lookups follow the paper's lock-free protocol — seqlock-validated
//! radix traversal, a bounded number of retries, then the fpage-lock
//! fallback — and misses hijack the calling threadblock to perform the
//! fault. A miss during sequential access widens into a *batched* fault:
//! up to [`crate::GpufsConfig::readahead_pages`] consecutive pages are
//! claimed, given frames, and fetched in one `ReadPages` RPC, so the
//! round-trip, dispatch, and DMA-setup costs amortize over the whole
//! window instead of being paid per page.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use gpusim::BlockCtx;
use simtime::{bw_time_ns, Nanos};

use crate::cache::{FPage, FrameIdx, PageState, Snapshot};
use crate::config::GOpenMode;
use crate::error::GpufsResult;
use crate::mount::GpuFsMount;
use crate::rpc::{PageRead, Request, RespOk};
use crate::table::GFile;

/// Upper bound on the bytes one readahead batch may carry under the
/// *serialized* daemon engine (`io_chunk_pages = 0`), whatever the
/// configured window. A serialized batch is one pread sequence followed
/// by one scatter DMA, so an over-large batch trades away the pread/DMA
/// pipelining that overlapping smaller requests get (measured: window 8
/// at 16 MB pages more than halves Figure-4 throughput without this cap,
/// because a single batch spans the whole file). 8 MB keeps the full
/// window at every page size up to 1 MB and degrades gracefully above.
const READAHEAD_MAX_BATCH_BYTES: usize = 8 << 20;

/// The same bound under the *pipelined* engine, which chunks a batch so
/// host file I/O overlaps the in-flight DMA — removing the very
/// serialization the 8 MB cap works around. Measured on the Figure-4
/// sweep, a whole-per-block batch (128 MB at window 8 / 16 MB pages) now
/// lands within a few percent of the capped optimum instead of halving
/// throughput, so the cap is raised to stay out of the way at every
/// paper page size while still bounding daemon staging memory.
const READAHEAD_MAX_BATCH_BYTES_PIPELINED: usize = 128 << 20;

/// A pinned page: holds a reference that keeps the frame from eviction,
/// plus the file itself so the fpage (which lives inside the file's radix
/// tree) cannot be freed while pinned.
pub(crate) struct PagePin {
    file: Arc<GFile>,
    fp: *const FPage,
    frame: FrameIdx,
}

// SAFETY: the raw fpage pointer targets the radix tree owned by `file`,
// which the pin keeps alive; FPage itself is Sync.
unsafe impl Send for PagePin {}
unsafe impl Sync for PagePin {}

impl PagePin {
    fn new(file: Arc<GFile>, fp: &FPage, frame: FrameIdx) -> Self {
        Self {
            file,
            fp: fp as *const FPage,
            frame,
        }
    }

    /// The pinned frame.
    pub(crate) fn frame(&self) -> FrameIdx {
        self.frame
    }

    fn fpage(&self) -> &FPage {
        // SAFETY: see the Send/Sync justification above.
        unsafe { &*self.fp }
    }
}

impl Drop for PagePin {
    fn drop(&mut self) {
        let _keepalive = &self.file;
        self.fpage().unpin();
    }
}

/// One readahead page claimed for a batched fault: its fpage is already
/// `Initializing` and its frames are allocated.
struct ClaimedPage {
    page_idx: u64,
    fp: *const FPage,
    frame: FrameIdx,
    pristine: Option<FrameIdx>,
}

impl ClaimedPage {
    fn fpage(&self) -> &FPage {
        // SAFETY: the caller holds the file Arc for the whole batch; the
        // fpage lives in its radix tree.
        unsafe { &*self.fp }
    }
}

impl GpuFsMount {
    /// Pin `page_idx` of `file`, faulting it in if absent (no readahead).
    pub(crate) fn pin_page(
        &self,
        blk: &mut BlockCtx<'_>,
        file: &Arc<GFile>,
        page_idx: u64,
    ) -> GpufsResult<PagePin> {
        self.pin_page_windowed(blk, file, page_idx, 1, page_idx)
    }

    /// Pin `page_idx` only if it is (or becomes) resident: waits out an
    /// in-flight initialization or eviction, but **never faults the page
    /// in** — an `Empty` page returns `None`.
    ///
    /// The write-back flush pins whole batches with this: a sync pass
    /// holding several pins must never allocate frames, or it would
    /// reintroduce the hold-and-wait interlock `alloc_frame_pair` exists
    /// to prevent (flusher holds most frames pinned, its re-fault needs
    /// frames, reclaim finds nothing evictable). A page that went `Empty`
    /// since the dirty scan was evicted — and eviction writes dirty data
    /// back before releasing the frame — so there is nothing left to
    /// flush and re-reading it from the host would be pure waste. An
    /// `Initializing` page resolves in bounded time: its owner either
    /// publishes it `Ready` or backs out to `Empty` (a frame-starved
    /// initializer gives up with `CacheExhausted` on its own call site).
    ///
    /// This is an internal sync-path pin, not an application page access:
    /// it deliberately leaves the hit/miss and lock-free/locked counters
    /// untouched on both sides of the accounting invariant. It does use
    /// the same lock-free-first pin protocol as the access path, though:
    /// a sync pass sweeps every dirty page of a file, and taking the
    /// fpage lock for each would serialize it against the very readers
    /// the sharded control plane keeps lock-free.
    pub(crate) fn pin_page_resident<L: crate::mount::Lane>(
        &self,
        blk: &mut L,
        file: &Arc<GFile>,
        page_idx: u64,
    ) -> Option<PagePin> {
        let fp = file.tree().get_or_insert(page_idx);
        let mut failed_attempts = 0u32;
        loop {
            let snap =
                if !self.config.force_locked && failed_attempts <= self.config.lockfree_retries {
                    match fp.try_pin_lockfree() {
                        Ok(s) => s,
                        Err(()) => {
                            failed_attempts += 1;
                            continue;
                        }
                    }
                } else {
                    fp.pin_locked()
                };
            match snap {
                Snapshot::Pinned(frame) => {
                    let pf = self.frames.pframe(frame);
                    blk.wait_until(pf.ready_at.load(Ordering::Acquire));
                    blk.advance(self.timings.gpufs_hit_ns);
                    return Some(PagePin::new(Arc::clone(file), fp, frame));
                }
                Snapshot::Empty => return None,
                Snapshot::Initializing => {
                    // An in-flight init resolves in bounded time; retry
                    // from the fast path once it settles.
                    failed_attempts = 0;
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Pin `page_idx` of `file`, faulting in up to `window` consecutive
    /// pages in one batched RPC if it is absent. Batched pages up to and
    /// including `demand_through` are part of the caller's own request
    /// (it will pin them itself momentarily); only pages beyond it are
    /// true readahead, flagged `prefetched` for the hit accounting.
    ///
    /// The lock-free fast path follows the paper's protocol: try the
    /// seqlock-validated lookup, retry `lockfree_retries` times on
    /// contention, then fall back to the fpage lock.
    pub(crate) fn pin_page_windowed(
        &self,
        blk: &mut BlockCtx<'_>,
        file: &Arc<GFile>,
        page_idx: u64,
        window: usize,
        demand_through: u64,
    ) -> GpufsResult<PagePin> {
        let fp = file.tree().get_or_insert(page_idx);
        let mut failed_attempts = 0u32;
        // An access that ever hit a concurrent update — a seqlock retry,
        // the lock fallback, or an in-flight initialization/eviction —
        // counts as contended; the paper's "locked accesses" column
        // "also includes unlocked retries" (Table 2).
        let mut contended = self.config.force_locked;
        loop {
            let mut via_lock = false;
            let snap =
                if !self.config.force_locked && failed_attempts <= self.config.lockfree_retries {
                    match fp.try_pin_lockfree() {
                        Ok(s) => s,
                        Err(()) => {
                            failed_attempts += 1;
                            contended = true;
                            continue;
                        }
                    }
                } else {
                    via_lock = true;
                    contended = true;
                    fp.pin_locked()
                };
            match snap {
                Snapshot::Pinned(frame) => {
                    self.count_for(blk.block_id(), |c| {
                        if contended {
                            c.locked_accesses.incr();
                        } else {
                            c.lockfree_accesses.incr();
                        }
                        c.hits.incr();
                    });
                    let pf = self.frames.pframe(frame);
                    // Relaxed-load guard: with readahead off (or the page
                    // demand-fetched) this stays a read, keeping the
                    // lock-free hit path free of RMW contention.
                    if pf.prefetched.load(Ordering::Relaxed)
                        && pf.prefetched.swap(false, Ordering::AcqRel)
                    {
                        // First pin of a page readahead brought in: the
                        // round-trip this access would have paid was
                        // amortized into an earlier batch.
                        self.count_for(blk.block_id(), |c| c.readahead_hits.incr());
                    }
                    debug_assert_eq!(pf.file_uid.load(Ordering::Relaxed), file.tree().uid());
                    debug_assert_eq!(pf.page_idx.load(Ordering::Relaxed), page_idx);
                    blk.wait_until(pf.ready_at.load(Ordering::Acquire));
                    if via_lock {
                        // A locked traversal serializes on the tree lock.
                        // Under the saturation of a data-parallel kernel
                        // every acquisition waits out the convoy of all
                        // concurrently resident blocks; charge that
                        // analytically (the Figure 7 "locked" ablation).
                        let convoy = self.timings.radix_lock_hold_ns
                            * self.gpu.spec().concurrent_blocks() as u64;
                        blk.advance(convoy);
                    }
                    blk.advance(self.timings.gpufs_hit_ns);
                    return Ok(PagePin::new(Arc::clone(file), fp, frame));
                }
                Snapshot::Empty => {
                    fp.lock();
                    if fp.state() == PageState::Empty {
                        fp.begin_update();
                        fp.set_state(PageState::Initializing);
                        fp.end_update();
                        fp.unlock();
                        return self.initialize_pages(
                            blk,
                            file,
                            page_idx,
                            fp,
                            window,
                            demand_through,
                        );
                    }
                    fp.unlock();
                }
                Snapshot::Initializing => {
                    std::thread::yield_now();
                    contended = true;
                    failed_attempts = 0; // fresh page, start protocol over
                }
            }
        }
    }

    /// Whether `page_idx` of `file` holds host bytes a fault must fetch.
    ///
    /// The fetch limit is [`GFile::host_valid`] — the size at open, or
    /// the high-water mark of bytes this GPU has written back, whichever
    /// is larger — so pages of *any* mode that eviction spilled to the
    /// host (locally-extended read-write pages, O_NOSYNC temporaries)
    /// refetch instead of zero-filling, while O_GWRONCE never reads back
    /// (§3.2). Readahead shares this predicate, so it can never fetch
    /// into a write-once file, and the end-of-file clamp here is what
    /// keeps it from fetching past EOF.
    fn page_fetches(&self, file: &GFile, page_idx: u64) -> bool {
        let offset = page_idx * self.config.page_size as u64;
        file.mode() != GOpenMode::WriteOnce && offset < file.host_valid()
    }

    /// Claim up to `window - 1` pages after `page_idx` for readahead:
    /// each must still be fetchable (inside EOF, right mode), currently
    /// `Empty`, and backed by freshly allocated frames. Claiming stops at
    /// the first page that fails any test, keeping the batch contiguous.
    fn claim_readahead(
        &self,
        blk: &mut BlockCtx<'_>,
        file: &Arc<GFile>,
        page_idx: u64,
        window: usize,
    ) -> Vec<ClaimedPage> {
        let mut claimed = Vec::new();
        let cap_bytes = if self.config.io_chunk_pages == 0 {
            READAHEAD_MAX_BATCH_BYTES
        } else {
            READAHEAD_MAX_BATCH_BYTES_PIPELINED
        };
        let max_pages = (cap_bytes / self.config.page_size).max(1);
        let window = window.min(max_pages);
        for idx in page_idx + 1..page_idx + window as u64 {
            if !self.page_fetches(file, idx) {
                break;
            }
            let fp = file.tree().get_or_insert(idx);
            fp.lock();
            if fp.state() != PageState::Empty {
                fp.unlock();
                break;
            }
            fp.begin_update();
            fp.set_state(PageState::Initializing);
            fp.end_update();
            fp.unlock();
            // Frames for readahead are opportunistic: one reclaim attempt,
            // then give up rather than stall the demand miss.
            let Some(frame) = self.alloc_frame_opportunistic(blk) else {
                Self::abort_init(fp);
                break;
            };
            let pristine = if file.mode().needs_pristine() {
                match self.alloc_frame_opportunistic(blk) {
                    Some(p) => Some(p),
                    None => {
                        self.frames.release(blk.block_id(), frame);
                        Self::abort_init(fp);
                        break;
                    }
                }
            } else {
                None
            };
            claimed.push(ClaimedPage {
                page_idx: idx,
                fp: fp as *const FPage,
                frame,
                pristine,
            });
        }
        claimed
    }

    /// Fault in `page_idx` (whose fpage the caller has already moved to
    /// `Initializing`), batching up to `window - 1` readahead pages into
    /// the same `ReadPages` RPC. The target page is returned pinned;
    /// readahead pages are published `Ready`, unpinned, and flagged
    /// `prefetched` so later pins can count the readahead hit.
    fn initialize_pages(
        &self,
        blk: &mut BlockCtx<'_>,
        file: &Arc<GFile>,
        page_idx: u64,
        fp: &FPage,
        window: usize,
        demand_through: u64,
    ) -> GpufsResult<PagePin> {
        self.count_for(blk.block_id(), |c| {
            c.misses.incr();
            // Initialization holds the fpage lock for its state
            // transitions: it is a locked access in the paper's
            // accounting.
            c.locked_accesses.incr();
        });
        // The fault-in span: frame allocation, the ReadPages round-trip
        // (or zero-fill), and page publication all nest under it.
        let sp = obs::span("pin_miss");
        let t_miss = blk.now();
        let fetch = self.page_fetches(file, page_idx);
        // A fetched read-write page needs its pristine frame too; the two
        // are allocated as an atomic pair (see `alloc_frame_pair` for the
        // deadlock this avoids).
        let allocated = if fetch && file.mode().needs_pristine() {
            self.alloc_frame_pair(blk).map(|(f, p)| (f, Some(p)))
        } else {
            self.alloc_frame(blk).map(|f| (f, None))
        };
        let (frame, pristine) = match allocated {
            Ok(pair) => pair,
            Err(e) => {
                Self::abort_init(fp);
                return Err(e);
            }
        };
        let ps = self.config.page_size;
        let offset = page_idx * ps as u64;
        let ptr = self.frames.frame_ptr(frame);

        if fetch {
            let extras = if window > 1 {
                self.claim_readahead(blk, file, page_idx, window)
            } else {
                Vec::new()
            };
            let mut pages = Vec::with_capacity(1 + extras.len());
            pages.push(PageRead {
                offset,
                len: ps,
                dst: ptr,
            });
            for extra in &extras {
                pages.push(PageRead {
                    offset: extra.page_idx * ps as u64,
                    len: ps,
                    dst: self.frames.frame_ptr(extra.frame),
                });
            }
            self.count_for(blk.block_id(), |c| {
                c.read_rpcs.incr();
                if pages.len() > 1 {
                    c.batched_rpcs.incr();
                    c.pages_per_rpc.add(pages.len() as u64);
                }
            });
            let resp = self.rpc(
                blk,
                Request::ReadPages {
                    fd: file.host_fd(),
                    pages,
                    gpu: self.gpu.id(),
                },
            );
            let (ns, ready) = match resp {
                Ok(RespOk::Read { ns, ready }) => (ns, ready),
                Ok(_) => unreachable!("read answers Read"),
                Err(e) => {
                    self.abort_batch(blk.block_id(), &extras, frame, pristine, fp);
                    return Err(e);
                }
            };
            // Publish the demand page pinned, then the batched pages
            // unpinned. Pages inside the caller's own request span are
            // demand bytes (the same gread's loop pins them next); only
            // pages beyond `demand_through` are true readahead and get
            // the `prefetched` flag. Each page carries its own DMA
            // completion time: under a deep staging ring the daemon
            // responds before the trailing chunks land, and those pages'
            // `ready_at` gates their first pin instead.
            self.publish_fetched_page(
                blk, file, page_idx, fp, frame, pristine, ns[0], ready[0], true, false,
            );
            for (extra, (&xn, &xready)) in extras.iter().zip(ns[1..].iter().zip(&ready[1..])) {
                // A batched initialization is a locked page operation
                // like any other fault; it is a miss in the "unique pages
                // faulted" sense.
                self.count_for(blk.block_id(), |c| {
                    c.misses.incr();
                    c.locked_accesses.incr();
                });
                self.publish_fetched_page(
                    blk,
                    file,
                    extra.page_idx,
                    extra.fpage(),
                    extra.frame,
                    extra.pristine,
                    xn,
                    xready,
                    false,
                    extra.page_idx > demand_through,
                );
            }
        } else {
            // O_GWRONCE / O_NOSYNC / beyond-EOF pages: "GPUfs never reads
            // pages of such files from the host ... the pristine copy of
            // any file block is all zeros" (§3.1). No readahead either —
            // there is nothing on the host to read ahead *from*.
            let pf = self.frames.pframe(frame);
            pf.file_uid.store(file.tree().uid(), Ordering::Release);
            pf.page_idx.store(page_idx, Ordering::Release);
            self.gpu.global().zero(ptr, ps);
            blk.advance(bw_time_ns(ps as u64, self.timings.gpu_mem_mb_s));
            pf.data_size.store(0, Ordering::Release);
            // Zero content carries no data dependency: concurrent blocks
            // sharing this page need not synchronize to the initializer's
            // (possibly far-ahead) clock, only to the real mutual
            // exclusion of the initialization itself.
            pf.set_ready_at(0);
            fp.lock();
            fp.begin_update();
            fp.set_frame(Some(frame));
            fp.set_state(PageState::Ready);
            fp.pin_direct();
            fp.end_update();
            fp.unlock();
            blk.advance(self.timings.gpufs_page_op_ns);
        }
        sp.finish_attrs(t_miss, blk.now(), &[("page", page_idx)]);
        Ok(PagePin::new(Arc::clone(file), fp, frame))
    }

    /// Publish one fetched page: EOF tail zeroing, pframe bookkeeping,
    /// optional pristine copy (with its bandwidth charge), and the locked
    /// `Initializing -> Ready` transition. The demand page (`pin`) is
    /// pinned inside the same critical section; true readahead pages
    /// (`prefetched`) are flagged so a later pin can count the readahead
    /// hit.
    #[allow(clippy::too_many_arguments)]
    fn publish_fetched_page(
        &self,
        blk: &mut BlockCtx<'_>,
        file: &Arc<GFile>,
        page_idx: u64,
        fp: &FPage,
        frame: FrameIdx,
        pristine: Option<FrameIdx>,
        n: usize,
        ready: Nanos,
        pin: bool,
        prefetched: bool,
    ) {
        let ps = self.config.page_size;
        let ptr = self.frames.frame_ptr(frame);
        let pf = self.frames.pframe(frame);
        pf.file_uid.store(file.tree().uid(), Ordering::Release);
        pf.page_idx.store(page_idx, Ordering::Release);
        if n < ps {
            self.gpu.global().zero(ptr + n, ps - n);
        }
        pf.data_size.store(n, Ordering::Release);
        if let Some(pristine) = pristine {
            self.gpu
                .global()
                .copy_within(ptr, self.frames.frame_ptr(pristine), ps);
            blk.advance(bw_time_ns(2 * ps as u64, self.timings.gpu_mem_mb_s));
            pf.set_pristine(Some(pristine));
        }
        // At io_depth 2 the daemon drains before responding, so `ready`
        // never exceeds the response time and this is exactly `blk.now()`;
        // deeper staging can hand back pages whose DMA is still in flight,
        // and their first pin waits for the bytes, not this publish.
        pf.set_ready_at(blk.now().max(ready));
        if prefetched {
            pf.prefetched.store(true, Ordering::Release);
        }
        fp.lock();
        fp.begin_update();
        fp.set_frame(Some(frame));
        fp.set_state(PageState::Ready);
        if pin {
            fp.pin_direct();
        }
        fp.end_update();
        fp.unlock();
        blk.advance(self.timings.gpufs_page_op_ns);
    }

    /// Unwind a failed batched fault: free every claimed readahead page's
    /// frames and back their fpages (and the demand page's) out to
    /// `Empty`.
    fn abort_batch(
        &self,
        shard: usize,
        extras: &[ClaimedPage],
        frame: FrameIdx,
        pristine: Option<FrameIdx>,
        fp: &FPage,
    ) {
        for extra in extras {
            if let Some(p) = extra.pristine {
                self.frames.release(shard, p);
            }
            self.frames.release(shard, extra.frame);
            Self::abort_init(extra.fpage());
        }
        if let Some(p) = pristine {
            self.frames.release(shard, p);
        }
        self.frames.release(shard, frame);
        Self::abort_init(fp);
    }

    pub(crate) fn abort_init(fp: &FPage) {
        fp.lock();
        fp.begin_update();
        fp.set_state(PageState::Empty);
        fp.set_frame(None);
        fp.end_update();
        fp.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpufsConfig;
    use crate::error::GpufsError;
    use crate::testrig::{rig, run_block};

    #[test]
    fn pinned_mapping_blocks_eviction() {
        let r = rig(1);
        r.fs.create("/pin", &[3u8; 4096]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::new(4096, 2 * 4096)).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/pin", GOpenMode::ReadOnly).unwrap();
            let map = mount.mmap(blk, &fd, 0, 4096).unwrap();
            // Burn through the other frame repeatedly with a second file;
            // the pinned page must survive.
            let fd2 = mount.open(blk, "/pin2", GOpenMode::Temp).unwrap();
            for page in 0..6u64 {
                mount.write(blk, &fd2, page * 4096, &[9u8; 4096]).unwrap();
            }
            assert!(map.bytes().iter().all(|&b| b == 3));
            mount.munmap(blk, map);
            mount.close(blk, fd2).unwrap();
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn cache_exhaustion_is_reported_not_hung() {
        let r = rig(1);
        r.fs.create("/ex", &[1u8; 16384]).unwrap();
        // Two frames only; pin both via mappings, then fault a third page.
        let mount = r.host.mount(0, GpufsConfig::new(4096, 2 * 4096)).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/ex", GOpenMode::ReadOnly).unwrap();
            let m1 = mount.mmap(blk, &fd, 0, 10).unwrap();
            let m2 = mount.mmap(blk, &fd, 4096, 10).unwrap();
            let err = mount.mmap(blk, &fd, 8192, 10);
            assert!(matches!(err, Err(GpufsError::CacheExhausted { .. })));
            mount.munmap(blk, m1);
            mount.munmap(blk, m2);
            // With the pins gone the same fault now succeeds.
            let m3 = mount.mmap(blk, &fd, 8192, 10).unwrap();
            assert_eq!(m3.bytes()[0], 1);
            mount.munmap(blk, m3);
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn readahead_never_fetches_past_eof() {
        let r = rig(1);
        // 3 full pages plus a 100-byte tail; window far larger than the file.
        r.fs.create("/eof", &[9u8; 3 * 4096 + 100]).unwrap();
        let cfg = GpufsConfig::new(4096, 64 * 4096).with_readahead(16);
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/eof", GOpenMode::ReadOnly).unwrap();
            let mut buf = vec![0u8; 4096];
            let mut off = 0u64;
            loop {
                let n = mount.read(blk, &fd, off, &mut buf).unwrap();
                if n == 0 {
                    break;
                }
                assert!(buf[..n].iter().all(|&b| b == 9));
                off += n as u64;
            }
            assert_eq!(off, 3 * 4096 + 100);
            mount.close(blk, fd).unwrap();
        });
        assert_eq!(
            mount.counters().misses.get(),
            4,
            "only the file's four pages fault, despite window 16"
        );
        assert_eq!(
            r.host.stats().bytes_h2d.get(),
            3 * 4096 + 100,
            "not one byte fetched beyond EOF"
        );
    }

    #[test]
    fn readahead_never_fetches_into_write_once_files() {
        let r = rig(1);
        let cfg = GpufsConfig::new(4096, 64 * 4096).with_readahead(8);
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/wonce.out", GOpenMode::WriteOnce).unwrap();
            // A perfectly sequential write pattern: were readahead applied
            // to O_GWRONCE it would trigger here.
            for page in 0..8u64 {
                mount.write(blk, &fd, page * 4096, &[1u8; 4096]).unwrap();
            }
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        assert_eq!(
            r.host.stats().bytes_h2d.get(),
            0,
            "write-once files never read from the host"
        );
        assert_eq!(mount.counters().batched_rpcs.get(), 0);
        assert_eq!(mount.counters().readahead_hits.get(), 0);
    }

    #[test]
    fn extended_read_write_pages_survive_eviction_spill() {
        // A ReadWrite file extended past its size-at-open under memory
        // pressure: eviction writes the dirty extensions to the host and
        // bumps host_valid, so a re-fault must fetch them back — not
        // zero-fill just because they lie beyond open_size.
        let r = rig(1);
        r.fs.create("/ext", &[1u8; 4096]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::new(4096, 4 * 4096)).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/ext", GOpenMode::ReadWrite).unwrap();
            for page in 1..9u64 {
                mount
                    .write(blk, &fd, page * 4096, &[page as u8; 4096])
                    .unwrap();
            }
            for page in 1..9u64 {
                let mut buf = [0u8; 4096];
                let n = mount.read(blk, &fd, page * 4096, &mut buf).unwrap();
                assert_eq!(n, 4096);
                assert!(
                    buf.iter().all(|&b| b == page as u8),
                    "page {page} lost after spill"
                );
            }
            mount.close(blk, fd).unwrap();
        });
        assert!(
            mount.counters().pages_reclaimed.get() > 0,
            "pressure evicted"
        );
    }

    #[test]
    fn readahead_degrades_when_frames_run_out() {
        let r = rig(1);
        r.fs.create("/tight", &[4u8; 16 * 4096]).unwrap();
        // 4 frames, window 8: the batch cannot ever fully materialize, but
        // reads must still succeed page by page.
        let cfg = GpufsConfig::new(4096, 4 * 4096).with_readahead(8);
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/tight", GOpenMode::ReadOnly).unwrap();
            let mut buf = vec![0u8; 4096];
            for page in 0..16u64 {
                let n = mount.read(blk, &fd, page * 4096, &mut buf).unwrap();
                assert_eq!(n, 4096);
                assert!(buf.iter().all(|&b| b == 4));
            }
            mount.close(blk, fd).unwrap();
        });
        assert!(
            mount.counters().pages_reclaimed.get() > 0,
            "pressure forced reclaim"
        );
    }
}
