//! The GPU buffer cache: raw data array, pframes, per-file radix trees,
//! byte diffs, and activity counters (paper §3.3 and §4.2).

pub mod diff;
pub mod frames;
pub mod radix;

pub use diff::{diff_extents, extent_bytes, nonzero_extents, Extents};
pub use frames::{FrameArena, FrameIdx, PFrame, NO_FRAME};
pub use radix::{FPage, PageState, RadixTree, Snapshot, FANOUT, MAX_PAGES, TREE_LEVELS};

use simtime::Counter;

/// Buffer-cache activity counters.
///
/// These are the instrumentation columns the paper reports: lock-free vs
/// locked radix accesses (Table 2, Figure 7) and pages reclaimed under
/// memory pressure (Table 2).
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Page lookups satisfied by the lock-free seqlock protocol.
    pub lockfree_accesses: Counter,
    /// Page lookups that fell back to the fpage lock (includes the
    /// unlocked retries that preceded them, as in the paper's Table 2
    /// footnote).
    pub locked_accesses: Counter,
    /// Frames reclaimed by the paging path.
    pub pages_reclaimed: Counter,
    /// Lookups that found the page resident (cache hits).
    pub hits: Counter,
    /// Lookups that had to fetch or zero-fill a page.
    pub misses: Counter,
    /// Pages written back to the host (eviction or sync).
    pub writebacks: Counter,
}

impl CacheCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.lockfree_accesses.take();
        self.locked_accesses.take();
        self.pages_reclaimed.take();
        self.hits.take();
        self.misses.take();
        self.writebacks.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_reset() {
        let c = CacheCounters::new();
        c.lockfree_accesses.add(5);
        c.pages_reclaimed.incr();
        c.reset();
        assert_eq!(c.lockfree_accesses.get(), 0);
        assert_eq!(c.pages_reclaimed.get(), 0);
    }
}
