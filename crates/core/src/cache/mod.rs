//! The GPU buffer cache: raw data array, pframes, per-file radix trees,
//! byte diffs, activity counters, and the mount-facing paging, reclaim,
//! and write-back layers (paper §3.3 and §4.2).

pub mod diff;
pub(crate) mod flusher;
pub mod frames;
pub(crate) mod paging;
pub mod radix;
pub(crate) mod reclaim;
pub(crate) mod writeback;

pub use diff::{diff_extents, extent_bytes, nonzero_extents, Extents};
pub use frames::{FrameArena, FrameIdx, PFrame, NO_FRAME};
pub use radix::{FPage, PageState, RadixTree, Snapshot, FANOUT, MAX_PAGES, TREE_LEVELS};

use obs::{Counter, Labels, Registry};

/// Buffer-cache activity counters.
///
/// These are the instrumentation columns the paper reports: lock-free vs
/// locked radix accesses (Table 2, Figure 7) and pages reclaimed under
/// memory pressure (Table 2).
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Page lookups satisfied by the lock-free seqlock protocol.
    pub lockfree_accesses: Counter,
    /// Page lookups that fell back to the fpage lock (includes the
    /// unlocked retries that preceded them, as in the paper's Table 2
    /// footnote).
    pub locked_accesses: Counter,
    /// Frames reclaimed by the paging path.
    pub pages_reclaimed: Counter,
    /// Lookups that found the page resident (cache hits).
    pub hits: Counter,
    /// Lookups that had to fetch or zero-fill a page. Pages brought in by
    /// readahead count here too (they are page initializations), which
    /// keeps this equal to "unique pages faulted" at any window.
    pub misses: Counter,
    /// Pages written back to the host (eviction or sync).
    pub writebacks: Counter,
    /// Pins that found their page already resident because readahead (not
    /// a demand miss) had fetched it: the first pin of a prefetched page.
    pub readahead_hits: Counter,
    /// `ReadPages` RPCs issued, of any width — the read-side round-trip
    /// count. Smaller than [`CacheCounters::misses`] when batching rides
    /// extra pages along, and also excludes misses that never touch the
    /// host (`O_GWRONCE` / beyond-EOF zero-fills).
    pub read_rpcs: Counter,
    /// `ReadPages` RPCs issued with more than one page — a readahead
    /// window, or a single multi-page `gread` batching its own span (a
    /// demand miss with no batching is a batch of one and not counted).
    pub batched_rpcs: Counter,
    /// Total pages carried by those multi-page RPCs. Divide by
    /// [`CacheCounters::batched_rpcs`] for the mean batch width.
    pub pages_per_rpc: Counter,
    /// `WritePages` RPCs issued, of any width — the write-side round-trip
    /// count. With batching off (`write_batch_pages = 1`) this equals
    /// [`CacheCounters::writebacks`]; batching drives it down toward
    /// `writebacks / write_batch_pages`.
    pub write_rpcs: Counter,
    /// Total pages carried by those write RPCs. Divide by
    /// [`CacheCounters::write_rpcs`] for the mean write-batch width.
    pub pages_per_write_rpc: Counter,
    /// Flush passes the background write-back thread completed (each
    /// pass sweeps every syncable file once).
    pub flusher_passes: Counter,
    /// `gwrite` calls that stalled on the dirty-page high watermark.
    pub throttle_stalls: Counter,
}

impl CacheCounters {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.lockfree_accesses.take();
        self.locked_accesses.take();
        self.pages_reclaimed.take();
        self.hits.take();
        self.misses.take();
        self.writebacks.take();
        self.readahead_hits.take();
        self.read_rpcs.take();
        self.batched_rpcs.take();
        self.pages_per_rpc.take();
        self.write_rpcs.take();
        self.pages_per_write_rpc.take();
        self.flusher_passes.take();
        self.throttle_stalls.take();
    }

    /// A read-only sum view over `parts`: each field aggregates the
    /// matching field of every part. This is how the mount's aggregate
    /// sheet is built from its per-tenant leaves — one write path, no
    /// second copy to drift.
    #[must_use]
    pub fn sum_of(parts: &[&CacheCounters]) -> Self {
        let field = |f: fn(&CacheCounters) -> &Counter| Counter::sum(parts.iter().map(|p| f(p)));
        Self {
            lockfree_accesses: field(|c| &c.lockfree_accesses),
            locked_accesses: field(|c| &c.locked_accesses),
            pages_reclaimed: field(|c| &c.pages_reclaimed),
            hits: field(|c| &c.hits),
            misses: field(|c| &c.misses),
            writebacks: field(|c| &c.writebacks),
            readahead_hits: field(|c| &c.readahead_hits),
            read_rpcs: field(|c| &c.read_rpcs),
            batched_rpcs: field(|c| &c.batched_rpcs),
            pages_per_rpc: field(|c| &c.pages_per_rpc),
            write_rpcs: field(|c| &c.write_rpcs),
            pages_per_write_rpc: field(|c| &c.pages_per_write_rpc),
            flusher_passes: field(|c| &c.flusher_passes),
            throttle_stalls: field(|c| &c.throttle_stalls),
        }
    }

    /// Register every field with `registry` under `labels`, prefixed
    /// `cache_` (the same cells — the registry adds names, not copies).
    pub fn register(&self, registry: &Registry, labels: Labels) {
        for (name, counter) in self.fields() {
            registry.register(name, labels, counter);
        }
    }

    fn fields(&self) -> [(&'static str, &Counter); 14] {
        [
            ("cache_lockfree_accesses", &self.lockfree_accesses),
            ("cache_locked_accesses", &self.locked_accesses),
            ("cache_pages_reclaimed", &self.pages_reclaimed),
            ("cache_hits", &self.hits),
            ("cache_misses", &self.misses),
            ("cache_writebacks", &self.writebacks),
            ("cache_readahead_hits", &self.readahead_hits),
            ("cache_read_rpcs", &self.read_rpcs),
            ("cache_batched_rpcs", &self.batched_rpcs),
            ("cache_pages_per_rpc", &self.pages_per_rpc),
            ("cache_write_rpcs", &self.write_rpcs),
            ("cache_pages_per_write_rpc", &self.pages_per_write_rpc),
            ("cache_flusher_passes", &self.flusher_passes),
            ("cache_throttle_stalls", &self.throttle_stalls),
        ]
    }

    /// Every counter as a `(name, value)` row — the one list tests and
    /// reporters iterate so a newly added counter cannot silently escape
    /// the per-tenant sum-to-aggregate invariant.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("lockfree_accesses", self.lockfree_accesses.get()),
            ("locked_accesses", self.locked_accesses.get()),
            ("pages_reclaimed", self.pages_reclaimed.get()),
            ("hits", self.hits.get()),
            ("misses", self.misses.get()),
            ("writebacks", self.writebacks.get()),
            ("readahead_hits", self.readahead_hits.get()),
            ("read_rpcs", self.read_rpcs.get()),
            ("batched_rpcs", self.batched_rpcs.get()),
            ("pages_per_rpc", self.pages_per_rpc.get()),
            ("write_rpcs", self.write_rpcs.get()),
            ("pages_per_write_rpc", self.pages_per_write_rpc.get()),
            ("flusher_passes", self.flusher_passes.get()),
            ("throttle_stalls", self.throttle_stalls.get()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_reset() {
        let c = CacheCounters::new();
        c.lockfree_accesses.add(5);
        c.pages_reclaimed.incr();
        c.readahead_hits.add(3);
        c.read_rpcs.incr();
        c.batched_rpcs.incr();
        c.pages_per_rpc.add(8);
        c.write_rpcs.incr();
        c.pages_per_write_rpc.add(4);
        c.reset();
        assert_eq!(c.lockfree_accesses.get(), 0);
        assert_eq!(c.pages_reclaimed.get(), 0);
        assert_eq!(c.readahead_hits.get(), 0);
        assert_eq!(c.read_rpcs.get(), 0);
        assert_eq!(c.batched_rpcs.get(), 0);
        assert_eq!(c.pages_per_rpc.get(), 0);
        assert_eq!(c.write_rpcs.get(), 0);
        assert_eq!(c.pages_per_write_rpc.get(), 0);
    }
}
