//! The reclaim layer: frame allocation, eviction, and discard
//! (paper §4.2).
//!
//! There is no daemon thread on the GPU: when the raw data array runs
//! dry, the *calling* threadblock reclaims frames, preferring closed
//! files, then open read-only files, then writable ones. Dirty victims
//! are written back through [`crate::cache::writeback`] before their
//! frames are reused.

use std::sync::atomic::Ordering;

use gpusim::BlockCtx;

use crate::cache::{FPage, FrameIdx, PageState};
use crate::config::GOpenMode;
use crate::error::{GpufsError, GpufsResult};
use crate::mount::GpuFsMount;
use crate::rpc::Request;
use crate::table::GFile;

/// Consecutive *zero-progress* reclaim rounds before a frame allocation
/// gives up. Transient exhaustion — every frame momentarily pinned by
/// concurrent faults, a convoy the OS scheduler can stretch out under
/// load — resolves as soon as any pin drops, so only rounds that free
/// nothing count toward giving up; genuinely wedged caches (all frames
/// pinned indefinitely) still error out promptly.
const RECLAIM_ROUNDS: usize = 4096;

/// Zero-progress rounds spent busy-yielding before the allocation loop
/// falls back to short sleeps (keeps the give-up latency for a genuinely
/// wedged cache around 0.2 s while tolerating slow in-flight faults).
const RECLAIM_SPIN_ROUNDS: usize = 128;

/// Frames reclaimed per paging pass; small to keep the hijacked caller's
/// detour short (the paper avoids variable-work replacement like clock).
const RECLAIM_BATCH: usize = 8;

/// One page detached from its fpage for eviction: the fpage is
/// `Initializing` (blocking new pins) and `frame` still holds the data.
struct Detached {
    page_idx: u64,
    frame: FrameIdx,
    fp: *const FPage,
}

impl Detached {
    fn fpage(&self) -> &FPage {
        // SAFETY: the caller holds the victim file's Arc for the whole
        // reclaim pass; the fpage lives in its radix tree.
        unsafe { &*self.fp }
    }
}

impl GpuFsMount {
    /// Allocate a frame, reclaiming pages when the raw data array is full.
    pub(crate) fn alloc_frame(&self, blk: &mut BlockCtx<'_>) -> GpufsResult<FrameIdx> {
        let (frame, _) = self.alloc_frames_reclaiming(blk, false)?;
        Ok(frame)
    }

    /// Allocate a working/pristine frame pair **atomically**: either both
    /// frames or neither. Read-write faults need two frames, and grabbing
    /// them one at a time is a textbook hold-and-wait deadlock — with N
    /// concurrent faults against N frames, every fault holds its working
    /// frame while spinning for a pristine one and reclaim can free
    /// nothing, so all of them starve out to `CacheExhausted`. Releasing
    /// the first frame whenever the second is unavailable breaks the
    /// circular wait: some fault always completes and its pages become
    /// evictable.
    pub(crate) fn alloc_frame_pair(
        &self,
        blk: &mut BlockCtx<'_>,
    ) -> GpufsResult<(FrameIdx, FrameIdx)> {
        match self.alloc_frames_reclaiming(blk, true)? {
            (frame, Some(pristine)) => Ok((frame, pristine)),
            (frame, None) => {
                // Unreachable by construction (`pair == true` only returns
                // with both frames), but losing `frame` here would leak it.
                self.frames.release(blk.block_id(), frame);
                Err(GpufsError::CacheExhausted { requested: 2 })
            }
        }
    }

    fn alloc_frames_reclaiming(
        &self,
        blk: &mut BlockCtx<'_>,
        pair: bool,
    ) -> GpufsResult<(FrameIdx, Option<FrameIdx>)> {
        let mut fruitless = 0usize;
        while fruitless < RECLAIM_ROUNDS {
            let shard = blk.block_id();
            let tenant = self.tenant_of(blk.block_id());
            if let Some(first) = self.frames.alloc_owned(shard, tenant) {
                if !pair {
                    return Ok((first, None));
                }
                if let Some(second) = self.frames.alloc_owned(shard, tenant) {
                    return Ok((first, Some(second)));
                }
                // All-or-nothing: never hold one frame while waiting for
                // another (see `alloc_frame_pair`).
                self.frames.release(shard, first);
            }
            if self.reclaim(blk, RECLAIM_BATCH)? == 0 {
                fruitless += 1;
                // Give in-flight faults (e.g. a readahead batch whose
                // frames are claimed across a host RPC) real time to
                // publish and become evictable before giving up.
                crate::backoff::spin_then_sleep(fruitless, RECLAIM_SPIN_ROUNDS);
            } else {
                // Progress was made (even if a concurrent fault won the
                // race to the freed frame): keep going.
                fruitless = 0;
            }
        }
        Err(GpufsError::CacheExhausted {
            requested: if pair { 2 } else { 1 },
        })
    }

    /// Best-effort frame allocation for readahead: one reclaim attempt,
    /// then give up. Readahead must never stall (or fail) the demand miss
    /// it rides on, so it degrades to a narrower batch instead of spinning
    /// on a loaded cache.
    pub(crate) fn alloc_frame_opportunistic(&self, blk: &mut BlockCtx<'_>) -> Option<FrameIdx> {
        let shard = blk.block_id();
        let tenant = self.tenant_of(blk.block_id());
        if let Some(frame) = self.frames.alloc_owned(shard, tenant) {
            return Some(frame);
        }
        // A write-back error here surfaces later on the demand path that
        // touches the dirty page; readahead just narrows.
        let _ = self.reclaim(blk, RECLAIM_BATCH);
        self.frames.alloc_owned(shard, tenant)
    }

    /// Reclaim up to `want` frames, preferring closed files, then open
    /// read-only files, then writable ones (paper §4.2). The dirty pages
    /// of each victim file are written back in batched `WritePages` RPCs
    /// (shared with `gfsync`, see [`crate::cache::writeback`]) rather
    /// than one round-trip per page.
    ///
    /// With tenant quotas configured, eviction is steered in two passes:
    /// the first detaches only pages charged to the *preferred* victim
    /// tenant — the over-quota caller itself, else the first over-quota
    /// tenant — so a hot tenant evicts its own pages before anyone
    /// else's; the second pass (only if the first came up short) is
    /// unrestricted, keeping exhaustion semantics identical to the
    /// unpartitioned arena.
    pub(crate) fn reclaim(&self, blk: &mut BlockCtx<'_>, want: usize) -> GpufsResult<usize> {
        let prefer = if self.frames.has_quotas() {
            let caller = self.tenant_of(blk.block_id());
            if self.frames.over_quota(caller) {
                Some(caller)
            } else {
                (0..self.frames.num_tenants()).find(|&t| self.frames.over_quota(t))
            }
        } else {
            None
        };
        let mut freed = 0usize;
        if prefer.is_some() {
            freed = self.reclaim_pass(blk, want, prefer)?;
            if freed >= want {
                return Ok(freed);
            }
        }
        Ok(freed + self.reclaim_pass(blk, want - freed, None)?)
    }

    /// One eviction sweep over the victim files; `owner` restricts
    /// detachment to frames charged to that tenant (see
    /// [`GpuFsMount::reclaim`]).
    fn reclaim_pass(
        &self,
        blk: &mut BlockCtx<'_>,
        want: usize,
        owner: Option<usize>,
    ) -> GpufsResult<usize> {
        let mut freed = 0usize;
        let mut victims = self.tables.closed_files();
        let closed_count = victims.len();
        victims.extend(self.tables.open_files_by_eviction_priority());
        for (i, victim) in victims.iter().enumerate() {
            // Detach up to `want - freed` evictable pages: each leaves its
            // fpage `Initializing` (blocking new pins) with the frame
            // still holding the data, exactly as single-page eviction did.
            let mut detached: Vec<Detached> = Vec::new();
            victim.tree().for_each_reclaim_candidate(|idx, fp| {
                if freed + detached.len() >= want {
                    return false;
                }
                let owner_ok = |f: FrameIdx| {
                    owner.is_none_or(|t| self.frames.pframe(f).tenant.load(Ordering::Relaxed) == t)
                };
                if let Some(frame) = Self::try_detach_page(fp, &owner_ok) {
                    detached.push(Detached {
                        page_idx: idx,
                        frame,
                        fp: fp as *const FPage,
                    });
                }
                true
            });
            if !detached.is_empty() {
                // Everything except read-only data is written back before
                // the frames are reused — including O_NOSYNC temporaries,
                // which the paper spills to the host only "to reclaim GPU
                // buffer cache space" (§3.2) — as one batched write-back.
                if victim.mode() != GOpenMode::ReadOnly {
                    let dirty: Vec<(u64, FrameIdx)> = detached
                        .iter()
                        .filter(|d| self.frames.pframe(d.frame).dirty.load(Ordering::Acquire))
                        .map(|d| (d.page_idx, d.frame))
                        .collect();
                    if !dirty.is_empty() {
                        if let Err(e) = self.writeback_frames(blk, victim, &dirty) {
                            // Restore every detached page rather than lose
                            // data: already-shipped batches are clean and
                            // simply stay cached; the failed batch keeps
                            // its re-armed dirty flags.
                            for d in &detached {
                                Self::reattach_page(d.fpage(), d.frame);
                            }
                            return Err(e);
                        }
                    }
                }
                for d in &detached {
                    let shard = blk.block_id();
                    let pf = self.frames.pframe(d.frame);
                    if let Some(pristine) = pf.pristine_frame() {
                        self.retire_frame(shard, pristine);
                    }
                    self.retire_frame(shard, d.frame);
                    let fp = d.fpage();
                    fp.lock();
                    fp.begin_update();
                    fp.set_state(PageState::Empty);
                    fp.end_update();
                    fp.unlock();
                    self.count_for(blk.block_id(), |c| c.pages_reclaimed.incr());
                    freed += 1;
                }
            }
            // A closed file drained of pages can release its host fd and
            // its table slot entirely.
            if i < closed_count && victim.refcount() == 0 {
                let mut resident = false;
                victim.tree().for_each_page(|_, fp| {
                    resident |= fp.state() != PageState::Empty;
                });
                if !resident && self.tables.remove_closed(victim) {
                    let _ = self.rpc(
                        blk,
                        Request::Close {
                            fd: victim.host_fd(),
                        },
                    )?;
                    // Nothing of the file is cached here any more.
                    self.host_fs
                        .consistency()
                        .unregister_gpu_cache(victim.ino(), self.coherence_id);
                }
            }
            if freed >= want {
                break;
            }
        }
        Ok(freed)
    }

    /// Try to detach one Ready, unpinned page from its frame: the fpage
    /// moves to `Initializing` (blocking new pins) and the frame — data
    /// intact — is returned for write-back and release. `owner_ok`
    /// filters by the frame's charged tenant (checked under the fpage
    /// lock, so the owner cannot change underneath a positive answer).
    fn try_detach_page(fp: &FPage, owner_ok: &impl Fn(FrameIdx) -> bool) -> Option<FrameIdx> {
        if fp.state() != PageState::Ready || fp.refs() > 0 {
            return None;
        }
        fp.lock();
        if fp.state() != PageState::Ready || fp.refs() > 0 {
            fp.unlock();
            return None;
        }
        let Some(frame) = fp.frame() else {
            // A Ready page always has a frame; treat a violation as
            // not-detachable rather than tearing the daemon down.
            fp.unlock();
            return None;
        };
        if !owner_ok(frame) {
            fp.unlock();
            return None;
        }
        fp.begin_update();
        fp.set_state(PageState::Initializing); // blocks new pins
        fp.set_frame(None);
        fp.end_update();
        fp.unlock();
        Some(frame)
    }

    /// Undo [`Self::try_detach_page`] after a failed write-back.
    fn reattach_page(fp: &FPage, frame: FrameIdx) {
        fp.lock();
        fp.begin_update();
        fp.set_frame(Some(frame));
        fp.set_state(PageState::Ready);
        fp.end_update();
        fp.unlock();
    }

    /// Drop a page without write-back (stale cache, unlink, temp close).
    /// Pinned pages are skipped.
    pub(crate) fn try_discard_page(&self, fp: &FPage) -> bool {
        if fp.state() != PageState::Ready || fp.refs() > 0 {
            return false;
        }
        fp.lock();
        if fp.state() != PageState::Ready || fp.refs() > 0 {
            fp.unlock();
            return false;
        }
        let Some(frame) = fp.frame() else {
            // Same defensive stance as `try_detach_page`.
            fp.unlock();
            return false;
        };
        fp.begin_update();
        fp.set_frame(None);
        fp.set_state(PageState::Empty);
        fp.end_update();
        fp.unlock();
        let pf = self.frames.pframe(frame);
        if let Some(pristine) = pf.pristine_frame() {
            self.retire_frame(0, pristine);
        }
        self.retire_frame(0, frame);
        true
    }

    /// Discard every unpinned cached page of `file` and unregister this
    /// GPU from the file's consistency-layer cache registry (a caller
    /// that keeps a newer copy of the same inode cached re-registers).
    pub(crate) fn discard_file_cache(&self, file: &GFile) {
        file.tree().for_each_page(|_, fp| {
            self.try_discard_page(fp);
        });
        self.host_fs
            .consistency()
            .unregister_gpu_cache(file.ino(), self.coherence_id);
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{GOpenMode, GpufsConfig};
    use crate::testrig::{rig, run_block};
    use gpusim::Grid;

    #[test]
    fn temp_files_spill_and_refetch_under_pressure() {
        let r = rig(1);
        // 8 frames of 4K: a 64K temp file cannot stay resident.
        let mount = r.host.mount(0, GpufsConfig::new(4096, 8 * 4096)).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/tmp_scratch", GOpenMode::Temp).unwrap();
            for page in 0..16u64 {
                let payload = [page as u8 + 1; 4096];
                mount.write(blk, &fd, page * 4096, &payload).unwrap();
            }
            // Read everything back: early pages were evicted to the host
            // and must be refetched transparently.
            for page in 0..16u64 {
                let mut buf = [0u8; 4096];
                let n = mount.read(blk, &fd, page * 4096, &mut buf).unwrap();
                assert_eq!(n, 4096);
                assert!(
                    buf.iter().all(|&b| b == page as u8 + 1),
                    "page {page} corrupted after spill/refetch"
                );
            }
            mount.close(blk, fd).unwrap();
        });
        assert!(
            mount.counters().pages_reclaimed.get() > 0,
            "pressure must evict"
        );
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let r = rig(1);
        let mount = r.host.mount(0, GpufsConfig::new(4096, 4 * 4096)).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/big_out", GOpenMode::WriteOnce).unwrap();
            for page in 0..12u64 {
                mount.write(blk, &fd, page * 4096, &[0x5au8; 4096]).unwrap();
            }
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/big_out", 0).unwrap();
        assert_eq!(data.len(), 12 * 4096);
        assert!(data.iter().all(|&b| b == 0x5a));
        assert!(mount.counters().pages_reclaimed.get() > 0);
    }

    #[test]
    fn eviction_prefers_closed_files_over_open_ones() {
        let r = rig(1);
        r.fs.create("/closed.bin", &[1u8; 16 * 4096]).unwrap();
        r.fs.create("/open.bin", &[2u8; 16 * 4096]).unwrap();
        // 48 frames: both files fit, plus some slack to burn.
        let mount = r.host.mount(0, GpufsConfig::new(4096, 48 * 4096)).unwrap();
        r.gpus[0].launch_seeded(Grid::new(1, 32), 0, 1, |blk| {
            // Cache and close the victim-to-be.
            let fd = mount.open(blk, "/closed.bin", GOpenMode::ReadOnly).unwrap();
            let mut buf = vec![0u8; 16 * 4096];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            mount.close(blk, fd).unwrap();
            // Cache the protected open file.
            let fd_open = mount.open(blk, "/open.bin", GOpenMode::ReadOnly).unwrap();
            mount.read(blk, &fd_open, 0, &mut buf).unwrap();
            let misses_open = mount.counters().misses.get();
            // Exert pressure with a third file until reclaim kicks in.
            let fd_t = mount.open(blk, "/burn.tmp", GOpenMode::Temp).unwrap();
            for page in 0..24u64 {
                mount.write(blk, &fd_t, page * 4096, &[9u8; 4096]).unwrap();
            }
            assert!(
                mount.counters().pages_reclaimed.get() > 0,
                "pressure reclaimed"
            );
            // Re-read the still-open file: every page must still be
            // resident (closed file was sacrificed first).
            let before = mount.counters().misses.get();
            mount.read(blk, &fd_open, 0, &mut buf).unwrap();
            assert_eq!(
                mount.counters().misses.get(),
                before,
                "open file's pages must survive while a closed file exists"
            );
            let _ = misses_open;
            mount.close(blk, fd_t).unwrap();
            mount.close(blk, fd_open).unwrap();
        });
    }
}
