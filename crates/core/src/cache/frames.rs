//! The raw data array and pframe metadata (paper §4.2).
//!
//! GPUfs pre-allocates all buffer-cache pages in one large contiguous
//! array in GPU global memory — the *raw data array* — and keeps per-page
//! metadata in a separate, index-aligned *pframe* array: the `i`th pframe
//! describes the `i`th page, so translating between a page pointer and its
//! metadata is pure arithmetic in both directions.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

use gpusim::{DevPtr, GlobalMem, MemError};
use parking_lot::Mutex;
use simtime::Nanos;

/// Index of a page frame in the raw data array.
pub type FrameIdx = u32;

/// Sentinel for "no frame".
pub const NO_FRAME: FrameIdx = u32::MAX;

/// Metadata of one buffer-cache page (the paper's `pframe`).
///
/// Unlike Linux, pframes carry file identity — the owning radix tree's
/// unique id and the page's file offset — because GPUfs validates lock-free
/// lookups against them (§4.2), and every cached page is backed by a host
/// file.
#[derive(Debug)]
pub struct PFrame {
    /// Unique id of the radix tree (file cache) owning this frame.
    pub file_uid: AtomicU64,
    /// Page index within the file (`file_offset / page_size`).
    pub page_idx: AtomicU64,
    /// Valid bytes in the page (short at EOF or for freshly written
    /// write-once pages).
    pub data_size: AtomicUsize,
    /// Whether the page holds local writes not yet propagated to the host.
    pub dirty: AtomicBool,
    /// Virtual time at which the page content became valid (waiters on a
    /// concurrent initialization synchronize their clocks to this).
    pub ready_at: AtomicU64,
    /// Frame index of this page's pristine copy (`NO_FRAME` if none).
    /// Read-write files keep one so sync can diff working vs pristine
    /// (paper §3.1); write-once files diff against zeros instead.
    pub pristine: AtomicU64,
    /// Set when readahead (not a demand miss) brought this page in; the
    /// first pin consumes the flag so the mount can count readahead hits.
    pub prefetched: AtomicBool,
    /// Tenant the frame is charged to while allocated (0 when free or on
    /// single-tenant mounts). Reclaim reads it to evict an over-quota
    /// tenant's own pages first.
    pub tenant: AtomicUsize,
}

impl PFrame {
    fn new() -> Self {
        Self {
            file_uid: AtomicU64::new(0),
            page_idx: AtomicU64::new(0),
            data_size: AtomicUsize::new(0),
            dirty: AtomicBool::new(false),
            ready_at: AtomicU64::new(0),
            pristine: AtomicU64::new(u64::from(NO_FRAME)),
            prefetched: AtomicBool::new(false),
            tenant: AtomicUsize::new(0),
        }
    }

    /// Reset to a pristine, unowned state (frame freed).
    pub fn clear(&self) {
        self.file_uid.store(0, Ordering::Relaxed);
        self.page_idx.store(0, Ordering::Relaxed);
        self.data_size.store(0, Ordering::Relaxed);
        self.dirty.store(false, Ordering::Relaxed);
        self.ready_at.store(0, Ordering::Relaxed);
        self.pristine.store(u64::from(NO_FRAME), Ordering::Relaxed);
        self.prefetched.store(false, Ordering::Relaxed);
        self.tenant.store(0, Ordering::Relaxed);
    }

    /// The pristine frame index, if any.
    #[must_use]
    pub fn pristine_frame(&self) -> Option<FrameIdx> {
        let v = self.pristine.load(Ordering::Acquire);
        if v == u64::from(NO_FRAME) {
            None
        } else {
            Some(v as FrameIdx)
        }
    }

    /// Set or clear the pristine frame index.
    pub fn set_pristine(&self, frame: Option<FrameIdx>) {
        self.pristine
            .store(u64::from(frame.unwrap_or(NO_FRAME)), Ordering::Release);
    }

    /// Record when content becomes valid.
    pub fn set_ready_at(&self, t: Nanos) {
        self.ready_at.store(t, Ordering::Release);
    }
}

/// The raw data array plus its pframe array and sharded free list.
///
/// Frames are allocated from GPU global memory once at mount time; the
/// free list hands them out and takes them back on eviction. There is no
/// daemon thread: when the list runs dry, the *calling* threadblock
/// reclaims pages (paper §4.2, "GPUfs code hijacking the calling thread to
/// perform paging").
///
/// The free list is split into independently locked shards so that
/// threadblocks faulting concurrently on different shards never contend
/// on one `Mutex` (the control-plane half of the paper's Figure 7 hit
/// path scaling). Frames are striped round-robin across shards at init;
/// allocation pops the caller's shard first and *steals* from sibling
/// shards when it runs dry, so exhaustion semantics are independent of
/// the shard count: `alloc` fails only when every shard is empty.
/// Soft per-tenant quotas layer on top: every allocated frame is charged
/// to a tenant, quotas cap nothing at allocation time (steal-when-idle —
/// free frames always serve whoever faults), but reclaim consults
/// [`FrameArena::over_quota`] to make an over-quota tenant evict its own
/// pages first.
#[derive(Debug)]
pub struct FrameArena {
    base: DevPtr,
    page_size: usize,
    pframes: Box<[PFrame]>,
    shards: Box<[Mutex<Vec<FrameIdx>>]>,
    /// Frames currently charged to each tenant. Invariant:
    /// `sum(holdings) + free_frames() == num_frames()`.
    holdings: Box<[AtomicUsize]>,
    /// Soft frame quota per tenant (`usize::MAX` = unlimited).
    quotas: Box<[usize]>,
}

impl FrameArena {
    /// Carve `num_frames` pages of `page_size` bytes out of `mem`, with
    /// the free list split into `shards` shards (clamped to ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns the allocator error if GPU memory cannot hold the array.
    pub fn new(
        mem: &GlobalMem,
        page_size: usize,
        num_frames: usize,
        shards: usize,
    ) -> Result<Self, MemError> {
        Self::with_quotas(mem, page_size, num_frames, shards, 1, &[])
    }

    /// [`FrameArena::new`] plus tenant accounting: `tenants` holding
    /// counters (clamped to ≥ 1) and soft per-tenant frame `quotas`
    /// (missing or zero entries mean unlimited).
    ///
    /// # Errors
    ///
    /// Returns the allocator error if GPU memory cannot hold the array.
    pub fn with_quotas(
        mem: &GlobalMem,
        page_size: usize,
        num_frames: usize,
        shards: usize,
        tenants: usize,
        quotas: &[usize],
    ) -> Result<Self, MemError> {
        let base = mem.alloc(page_size * num_frames)?;
        let pframes = (0..num_frames).map(|_| PFrame::new()).collect();
        let n = shards.max(1);
        // Stripe frames round-robin: frame i lands in shard i % n. Each
        // shard is a LIFO popped from the back, seeded in reverse so low
        // indices come out first — with one shard this is exactly the
        // original single free list.
        let mut lists: Vec<Vec<FrameIdx>> = vec![Vec::new(); n];
        for i in (0..num_frames as FrameIdx).rev() {
            lists[(i as usize) % n].push(i);
        }
        let shards = lists.into_iter().map(Mutex::new).collect();
        let tenants = tenants.max(1);
        let holdings = (0..tenants).map(|_| AtomicUsize::new(0)).collect();
        let quotas = (0..tenants)
            .map(|t| match quotas.get(t) {
                Some(&q) if q > 0 => q,
                _ => usize::MAX,
            })
            .collect();
        Ok(Self {
            base,
            page_size,
            pframes,
            shards,
            holdings,
            quotas,
        })
    }

    /// Page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Total number of frames.
    #[must_use]
    pub fn num_frames(&self) -> usize {
        self.pframes.len()
    }

    /// Number of freelist shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Map an arbitrary caller hint (threadblock slot, flusher lane) to
    /// its home shard.
    #[must_use]
    pub fn shard_of(&self, hint: usize) -> usize {
        hint % self.shards.len()
    }

    /// Frames currently free, summed across shards.
    #[must_use]
    pub fn free_frames(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Tenant classes the arena accounts for (≥ 1).
    #[must_use]
    pub fn num_tenants(&self) -> usize {
        self.holdings.len()
    }

    /// Frames currently charged to `tenant` (clamped to the last tenant).
    #[must_use]
    pub fn tenant_held(&self, tenant: usize) -> usize {
        self.holdings[tenant.min(self.holdings.len() - 1)].load(Ordering::Relaxed)
    }

    /// Soft frame quota of `tenant` (`usize::MAX` = unlimited).
    #[must_use]
    pub fn tenant_quota(&self, tenant: usize) -> usize {
        self.quotas[tenant.min(self.quotas.len() - 1)]
    }

    /// Whether `tenant` currently holds more frames than its soft quota —
    /// the signal reclaim uses to steer eviction at its own pages first.
    #[must_use]
    pub fn over_quota(&self, tenant: usize) -> bool {
        let t = tenant.min(self.holdings.len() - 1);
        self.holdings[t].load(Ordering::Relaxed) > self.quotas[t]
    }

    /// Whether any tenant carries a finite quota (false on default,
    /// unpartitioned mounts — lets reclaim skip tenant steering entirely).
    #[must_use]
    pub fn has_quotas(&self) -> bool {
        self.quotas.iter().any(|&q| q != usize::MAX)
    }

    /// Device address of frame `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn frame_ptr(&self, idx: FrameIdx) -> DevPtr {
        assert!(
            (idx as usize) < self.pframes.len(),
            "frame index out of range"
        );
        self.base + (idx as usize) * self.page_size
    }

    /// Metadata of frame `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn pframe(&self, idx: FrameIdx) -> &PFrame {
        &self.pframes[idx as usize]
    }

    /// Take a free frame, if any, preferring the caller's home shard and
    /// stealing round-robin from sibling shards when it is empty. Only
    /// one shard lock is held at a time, so the lock-order graph stays a
    /// set of leaves.
    pub fn alloc(&self, hint: usize) -> Option<FrameIdx> {
        self.alloc_owned(hint, 0)
    }

    /// [`FrameArena::alloc`] charged to `tenant` (clamped): the frame's
    /// pframe is stamped with the owner and the tenant's holding counter
    /// incremented. Quotas are soft — a free frame is never refused, even
    /// over quota (steal-when-idle); pressure is applied at reclaim time
    /// instead.
    pub fn alloc_owned(&self, hint: usize, tenant: usize) -> Option<FrameIdx> {
        let n = self.shards.len();
        let home = self.shard_of(hint);
        for step in 0..n {
            let popped = self.shards[(home + step) % n].lock().pop();
            if let Some(f) = popped {
                let t = tenant.min(self.holdings.len() - 1);
                self.pframes[f as usize].tenant.store(t, Ordering::Relaxed);
                self.holdings[t].fetch_add(1, Ordering::Relaxed);
                return Some(f);
            }
        }
        None
    }

    /// Return a frame to the caller's home shard, clearing its metadata.
    /// Stolen frames migrate to the stealer's shard — affinity follows
    /// use, and conservation holds regardless of where a frame retires.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on double free.
    pub fn release(&self, hint: usize, idx: FrameIdx) {
        let owner = self.pframe(idx).tenant.load(Ordering::Relaxed);
        self.holdings[owner.min(self.holdings.len() - 1)].fetch_sub(1, Ordering::Relaxed);
        self.pframe(idx).clear();
        #[cfg(debug_assertions)]
        for s in self.shards.iter() {
            debug_assert!(!s.lock().contains(&idx), "double free of frame {idx}");
        }
        self.shards[self.shard_of(hint)].lock().push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::GlobalMem;

    fn arena() -> (GlobalMem, FrameArena) {
        arena_sharded(1)
    }

    fn arena_sharded(shards: usize) -> (GlobalMem, FrameArena) {
        let mem = GlobalMem::new(1 << 20);
        let arena = FrameArena::new(&mem, 4096, 16, shards).unwrap();
        (mem, arena)
    }

    #[test]
    fn frames_are_disjoint_and_addressable() {
        let (_mem, a) = arena();
        assert_eq!(a.num_frames(), 16);
        assert_eq!(a.free_frames(), 16);
        let p0 = a.frame_ptr(0);
        let p1 = a.frame_ptr(1);
        assert_eq!(p1.offset() - p0.offset(), 4096);
    }

    #[test]
    fn alloc_until_exhaustion_then_release() {
        let (_mem, a) = arena();
        let mut got = Vec::new();
        while let Some(f) = a.alloc(0) {
            got.push(f);
        }
        assert_eq!(got.len(), 16);
        assert_eq!(a.free_frames(), 0);
        a.release(0, got.pop().unwrap());
        assert_eq!(a.free_frames(), 1);
        assert!(a.alloc(0).is_some());
    }

    #[test]
    fn sharded_alloc_prefers_home_and_steals_on_empty() {
        let (_mem, a) = arena_sharded(4);
        assert_eq!(a.num_shards(), 4);
        // Frames are striped i % 4, LIFO low-first: shard 1 holds
        // {1, 5, 9, 13} and hands out 1 first.
        assert_eq!(a.alloc(1), Some(1));
        assert_eq!(a.alloc(5), Some(5), "hint 5 maps to shard 1");
        // Drain shard 1 entirely, then one more alloc must steal from a
        // sibling rather than fail.
        assert_eq!(a.alloc(1), Some(9));
        assert_eq!(a.alloc(1), Some(13));
        let stolen = a.alloc(1).expect("steal-on-empty");
        assert_eq!(stolen % 4, 2, "round-robin steal starts at the next shard");
        // Exhaustion is shard-count independent: every frame comes out.
        let mut n = 5;
        while a.alloc(3).is_some() {
            n += 1;
        }
        assert_eq!(n, 16);
        assert_eq!(a.free_frames(), 0);
    }

    #[test]
    fn release_returns_to_the_callers_shard() {
        let (_mem, a) = arena_sharded(4);
        let f = a.alloc(2).unwrap();
        // Retire a shard-2 frame to shard 0; the very next shard-0 alloc
        // gets it back (LIFO), showing affinity follows use.
        a.release(0, f);
        assert_eq!(a.alloc(0), Some(f));
    }

    #[test]
    fn release_clears_metadata() {
        let (_mem, a) = arena();
        let f = a.alloc(0).unwrap();
        let pf = a.pframe(f);
        pf.file_uid.store(9, Ordering::Relaxed);
        pf.dirty.store(true, Ordering::Relaxed);
        pf.set_pristine(Some(3));
        pf.prefetched.store(true, Ordering::Relaxed);
        a.release(0, f);
        let pf = a.pframe(f);
        assert_eq!(pf.file_uid.load(Ordering::Relaxed), 0);
        assert!(!pf.dirty.load(Ordering::Relaxed));
        assert_eq!(pf.pristine_frame(), None);
        assert!(!pf.prefetched.load(Ordering::Relaxed));
    }

    #[test]
    fn pframe_index_alignment_is_bidirectional() {
        // The ith pframe describes the ith page: ptr -> index -> ptr.
        let (_mem, a) = arena();
        for idx in [0u32, 5, 15] {
            let ptr = a.frame_ptr(idx);
            let back = ((ptr.offset() - a.frame_ptr(0).offset()) / 4096) as u32;
            assert_eq!(back, idx);
        }
    }

    #[test]
    fn arena_too_big_for_gpu_errors() {
        let mem = GlobalMem::new(1 << 12);
        assert!(FrameArena::new(&mem, 4096, 16, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_frame_index_panics() {
        let (_mem, a) = arena();
        let _ = a.frame_ptr(99);
    }

    #[test]
    fn tenant_holdings_track_alloc_and_release() {
        let mem = GlobalMem::new(1 << 20);
        let a = FrameArena::with_quotas(&mem, 4096, 16, 2, 2, &[3, 0]).unwrap();
        assert_eq!(a.num_tenants(), 2);
        assert_eq!(a.tenant_quota(0), 3);
        assert_eq!(a.tenant_quota(1), usize::MAX, "quota 0 means unlimited");
        assert!(a.has_quotas());
        let f0 = a.alloc_owned(0, 0).unwrap();
        let f1 = a.alloc_owned(0, 1).unwrap();
        assert_eq!(a.tenant_held(0), 1);
        assert_eq!(a.tenant_held(1), 1);
        assert_eq!(a.pframe(f1).tenant.load(Ordering::Relaxed), 1);
        assert_eq!(a.tenant_held(0) + a.tenant_held(1) + a.free_frames(), 16);
        a.release(0, f1);
        assert_eq!(a.tenant_held(1), 0);
        a.release(0, f0);
        assert_eq!(a.tenant_held(0), 0);
        assert_eq!(a.free_frames(), 16);
    }

    #[test]
    fn soft_quota_never_refuses_a_free_frame() {
        let mem = GlobalMem::new(1 << 20);
        let a = FrameArena::with_quotas(&mem, 4096, 8, 1, 2, &[2, 2]).unwrap();
        // Tenant 0 takes 5 of 8 frames: over its quota of 2, yet every
        // alloc succeeds because frames are free (steal-when-idle).
        let got: Vec<_> = (0..5).map(|_| a.alloc_owned(0, 0).unwrap()).collect();
        assert_eq!(got.len(), 5);
        assert!(a.over_quota(0));
        assert!(!a.over_quota(1));
    }

    #[test]
    fn default_arena_is_unpartitioned() {
        let (_mem, a) = arena();
        assert_eq!(a.num_tenants(), 1);
        assert!(!a.has_quotas());
        assert!(!a.over_quota(0));
        let f = a.alloc(7).unwrap();
        assert_eq!(a.tenant_held(0), 1);
        a.release(7, f);
        assert_eq!(a.tenant_held(0), 0);
    }
}
