//! Asynchronous write-back: a per-mount background thread that drains
//! dirty pages behind a high/low-watermark throttle.
//!
//! The paper decouples synchronization from close (§3.2) but still ships
//! dirty data on the faulting threadblock — `gfsync`, eviction, and the
//! stale-reopen flush all hijack the caller. This module moves the bulk
//! of that work off the critical path: a host-side flusher thread sweeps
//! the mount's syncable files and ships their dirty pages through the
//! same gather/diff/batch machinery ([`GpuFsMount::flush_dirty`]),
//! generic over [`Lane`] so the shared code never knows which side is
//! driving it.
//!
//! Watermark semantics: writers run untouched below
//! [`crate::GpufsConfig::dirty_high_pages`]; a `gwrite` that observes the
//! ledger at or above it stalls until the flusher drains the cache to
//! [`crate::GpufsConfig::dirty_low_pages`] (hysteresis, so one page of
//! headroom doesn't unblock and immediately re-block the writer). The
//! stall is charged in virtual time too: the writer resumes no earlier
//! than the flusher's drain timestamp. If the flusher cannot make
//! progress (daemon dead, thread stopped), the writer falls back to a
//! synchronous flush of its own file — throttling degrades to the old
//! behavior instead of wedging (errors stay re-armed for `gfsync` to
//! surface, per the failed-batch contract).
//!
//! Virtual-time placement: the flusher is a real concurrent thread, but
//! measurements are virtual. Its lane clock starts at — and each file
//! sweep re-synchronizes to — the mount's `virtual_frontier` (the latest
//! time any threadblock has reached), so background traffic lands "now",
//! never in the virtual past where it could retroactively speed up a
//! recorded run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};

use gpusim::BlockCtx;
use simtime::Clock;

use crate::backoff::spin_then_sleep;
use crate::mount::{GpuFsMount, Lane};
use crate::table::GFile;

/// Consecutive fruitless throttle rounds (50 µs sleeps, after the spin
/// budget) before a stalled writer gives up on the flusher and drains
/// synchronously — roughly 0.2 s of real time.
const THROTTLE_GIVEUP_ROUNDS: usize = 4096;

/// The flusher's RPC channel slot. It shares whatever channel slot 0
/// maps to; daemon channels are multi-producer queues, so this only
/// interleaves its envelopes with one block's, never corrupts FIFO.
const FLUSHER_LANE: usize = 0;

/// The background flusher's execution lane: its own virtual clock on a
/// host thread (no threadblock is hijacked — this is the one deliberate
/// exception to §3.4 pay-as-you-go, and it pays with idle host cycles).
struct FlusherLane {
    clock: Clock,
}

impl Lane for FlusherLane {
    fn now(&self) -> u64 {
        self.clock.now()
    }
    fn advance(&mut self, dur: u64) {
        self.clock.advance(dur);
    }
    fn wait_until(&mut self, t: u64) {
        self.clock.wait_until(t);
    }
    fn lane_id(&self) -> usize {
        FLUSHER_LANE
    }
}

/// Start the mount's flusher thread if async write-back is configured
/// (`dirty_high_pages > 0`). Failing to spawn is a mount-time error:
/// with the watermarks armed but no flusher draining, writers would
/// throttle against a ledger nothing empties in the background.
pub(crate) fn spawn_if_configured(mount: &Arc<GpuFsMount>) -> crate::error::GpufsResult<()> {
    if mount.config.dirty_high_pages == 0 {
        return Ok(());
    }
    let weak = Arc::downgrade(mount);
    let stop = Arc::clone(&mount.flusher_stop);
    let handle = std::thread::Builder::new()
        .name(format!("gpufs-flusher-{}", mount.gpu().id()))
        .spawn(move || flusher_loop(&weak, &stop))
        .map_err(|_| {
            crate::error::GpufsError::HostResource("could not spawn the write-back flusher thread")
        })?;
    *mount.flusher.lock() = Some(handle);
    Ok(())
}

/// Stop and join the flusher (mount drop). Safe against the flusher
/// itself holding the mount's last strong reference: a thread must not
/// join itself, so that (unlikely) unwind path just detaches.
pub(crate) fn stop(mount: &GpuFsMount) {
    mount.flusher_stop.store(true, Ordering::Release);
    let handle = mount.flusher.lock().take();
    if let Some(h) = handle {
        if h.thread().id() != std::thread::current().id() {
            let _ = h.join();
        }
    }
}

fn flusher_loop(mount: &Weak<GpuFsMount>, stop: &AtomicBool) {
    let mut fruitless = 0usize;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Upgrade per iteration (and drop before backing off) so this
        // thread never keeps a dying mount alive across a sleep.
        let Some(m) = mount.upgrade() else { return };
        if m.dirty.pages.load(Ordering::Acquire) <= m.config.dirty_low_pages {
            drop(m);
            spin_then_sleep(fruitless, 16);
            fruitless = fruitless.saturating_add(1);
            continue;
        }
        let shipped_before = m.counters.writebacks.get();
        flush_pass(&m, stop);
        m.count_for(FLUSHER_LANE, |c| c.flusher_passes.incr());
        if m.counters.writebacks.get() > shipped_before {
            fruitless = 0;
        } else {
            // Dirty pages it cannot ship (daemon down, everything
            // pinned): back off instead of spinning hot on failure.
            drop(m);
            spin_then_sleep(fruitless, 16);
            fruitless = fruitless.saturating_add(1);
        }
    }
}

/// One sweep over the mount's syncable files, stopping early once the
/// ledger drops to the low watermark. Errors are not surfaced anywhere:
/// a failed batch re-arms its pages' dirty bits, and the foreground
/// `gfsync` contract is that errors show up on *its* shipment attempt.
fn flush_pass(m: &GpuFsMount, stop: &AtomicBool) {
    let mut lane = FlusherLane {
        clock: Clock::starting_at(m.virtual_frontier.load(Ordering::Acquire)),
    };
    // Each flusher pass is its own trace root: its WritePages RPCs and
    // their daemon spans nest here, not under any threadblock's trace.
    let root = m.tracer.root("flush_pass");
    let t_entry = lane.now();
    for file in m.tables.syncable_files() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        // Re-synchronize to the frontier: threadblocks kept running
        // while this sweep shipped the previous file.
        lane.wait_until(m.virtual_frontier.load(Ordering::Acquire));
        let _ = m.flush_dirty(&mut lane, &file);
        if m.dirty.pages.load(Ordering::Acquire) <= m.config.dirty_low_pages {
            break;
        }
    }
    if m.dirty.pages.load(Ordering::Acquire) <= m.config.dirty_low_pages {
        // Publish the drain time: throttled writers resume at this
        // virtual instant.
        m.dirty.flush_vtime.fetch_max(lane.now(), Ordering::AcqRel);
    }
    root.finish(t_entry, lane.now());
}

impl GpuFsMount {
    /// Stall a writer at the dirty-page high watermark until the
    /// background flusher drains the cache to the low one (see module
    /// docs for the fallback ladder). No-op when async write-back is
    /// off or the ledger is below the high mark.
    pub(crate) fn throttle_dirty(&self, blk: &mut BlockCtx<'_>, file: &Arc<GFile>) {
        let high = self.config.dirty_high_pages;
        if high == 0 || self.dirty.pages.load(Ordering::Acquire) < high {
            return;
        }
        self.count_for(blk.block_id(), |c| c.throttle_stalls.incr());
        // Make sure the flusher issues at (at least) this writer's time.
        self.note_frontier(Lane::now(blk));
        let mut fruitless = 0usize;
        while self.dirty.pages.load(Ordering::Acquire) > self.config.dirty_low_pages {
            let flusher_gone =
                self.flusher_stop.load(Ordering::Acquire) || self.flusher.lock().is_none();
            if flusher_gone || fruitless > THROTTLE_GIVEUP_ROUNDS {
                // Progress guarantee: no (working) flusher means the
                // writer drains its own file synchronously, exactly the
                // pre-async behavior. Errors stay re-armed for gfsync.
                let _ = self.flush_dirty(blk, file);
                break;
            }
            spin_then_sleep(fruitless, 64);
            fruitless += 1;
        }
        // The stall costs virtual time too: resume no earlier than the
        // flusher's drain timestamp.
        Lane::wait_until(blk, self.dirty.flush_vtime.load(Ordering::Acquire));
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{GOpenMode, GpufsConfig};
    use crate::testrig::{rig, run_block};
    use std::sync::atomic::Ordering;

    #[test]
    fn flusher_drains_dirty_pages_in_background() {
        let r = rig(1);
        r.fs.create("/bg", &[0u8; 16 * 4096]).unwrap();
        let cfg = GpufsConfig::new(4096, 64 * 4096).with_async_writeback(8, 2);
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/bg", GOpenMode::ReadWrite).unwrap();
            for page in 0..16u64 {
                mount
                    .write(blk, &fd, page * 4096, &[page as u8 + 1; 4096])
                    .unwrap();
            }
            // Wait (in real time) for the flusher to drain to the low
            // watermark without any gfsync from this block.
            let mut fruitless = 0usize;
            while mount.dirty.pages.load(Ordering::Acquire) > 2 {
                crate::backoff::spin_then_sleep(fruitless, 64);
                fruitless += 1;
                assert!(fruitless < 200_000, "flusher never drained");
            }
            // gfsync now only has the residue to ship — and after it,
            // nothing dirty remains anywhere.
            mount.fsync(blk, &fd).unwrap();
            assert_eq!(mount.dirty.pages.load(Ordering::Acquire), 0);
            mount.close(blk, fd).unwrap();
        });
        assert!(
            mount.counters().flusher_passes.get() > 0,
            "background flusher did the draining"
        );
        let (data, _) = r.fs.read_whole("/bg", 0).unwrap();
        for page in 0..16usize {
            assert!(
                data[page * 4096..(page + 1) * 4096]
                    .iter()
                    .all(|&b| b == page as u8 + 1),
                "page {page} bytes wrong on host"
            );
        }
    }

    #[test]
    fn throttle_blocks_writers_above_high_watermark_only() {
        let r = rig(1);
        r.fs.create("/thr", &[0u8; 32 * 4096]).unwrap();
        let cfg = GpufsConfig::new(4096, 64 * 4096).with_async_writeback(4, 1);
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/thr", GOpenMode::ReadWrite).unwrap();
            for page in 0..32u64 {
                mount.write(blk, &fd, page * 4096, &[0xAB; 4096]).unwrap();
            }
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        assert!(
            mount.counters().throttle_stalls.get() > 0,
            "32 dirty pages against a high mark of 4 must stall at least once"
        );
        let (data, _) = r.fs.read_whole("/thr", 0).unwrap();
        assert!(
            data.iter().all(|&b| b == 0xAB),
            "no bytes lost to throttling"
        );
    }

    #[test]
    fn fsync_waits_out_inflight_flusher_batches() {
        // Every page the flusher gathered but had not confirmed must be
        // on the host by the time gfsync returns.
        let r = rig(1);
        r.fs.create("/drain", &[0u8; 24 * 4096]).unwrap();
        let cfg = GpufsConfig::new(4096, 64 * 4096).with_async_writeback(6, 1);
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/drain", GOpenMode::ReadWrite).unwrap();
            for page in 0..24u64 {
                mount.write(blk, &fd, page * 4096, &[0x5C; 4096]).unwrap();
            }
            // No real-time wait: fsync races the flusher mid-drain.
            mount.fsync(blk, &fd).unwrap();
            let file = fd.file();
            assert_eq!(
                file.wb_inflight(),
                0,
                "fsync returned with batches in flight"
            );
            assert_eq!(mount.dirty.pages.load(Ordering::Acquire), 0);
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/drain", 0).unwrap();
        assert!(data.iter().all(|&b| b == 0x5C));
    }

    #[test]
    fn mount_drop_stops_and_joins_the_flusher() {
        let r = rig(1);
        let cfg = GpufsConfig::new(4096, 64 * 4096).with_async_writeback(8, 2);
        let mount = r.host.mount(0, cfg).unwrap();
        let stop = std::sync::Arc::clone(&mount.flusher_stop);
        assert!(mount.flusher.lock().is_some(), "flusher spawned");
        drop(mount);
        assert!(stop.load(Ordering::Acquire), "drop signalled the flusher");
    }

    #[test]
    fn synchronous_config_spawns_no_flusher() {
        let r = rig(1);
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        assert!(mount.flusher.lock().is_none());
        assert_eq!(mount.config.dirty_high_pages, 0);
    }
}
