//! The write-back layer: diff-based *bulk* propagation of dirty pages to
//! the host (paper §3.1, §4.3).
//!
//! GPUfs never ships whole dirty pages: it computes the modified byte
//! extents — against a pristine copy for read-write files, against zeros
//! for `O_GWRONCE` — and sends only those, which is what lets concurrent
//! writers of *disjoint* ranges of one page merge losslessly on the host.
//! `gfsync`, `gmsync`, eviction, and the stale-reopen flush all funnel
//! through here, and all of them gather the dirty pages of a file into
//! capped [`Request::WritePages`] batches — one daemon round-trip and one
//! scatter-gather D2H DMA charge per batch — symmetric with the read
//! path's batched `ReadPages`. A single-page sync is simply the batch of
//! one, so `write_batch_pages = 1` reproduces the original per-page RPCs.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use simtime::bw_time_ns;

use crate::cache::{diff_extents, nonzero_extents, Extents, FrameIdx, PageState};
use crate::config::GOpenMode;
use crate::error::GpufsResult;
use crate::mount::{GpuFsMount, Lane};
use crate::rpc::{PageWrite, Request, RespOk};
use crate::table::GFile;

/// Identical-byte gap below which adjacent dirty extents are merged into
/// one host write.
const DIFF_MERGE_GAP: usize = 64;

/// Upper bound on the page span one `WritePages` batch may cover under
/// the *serialized* daemon engine (`io_chunk_pages = 0`), whatever the
/// configured [`crate::GpufsConfig::write_batch_pages`] — the same
/// pipelining argument as the read path's 8 MB readahead cap: a
/// serialized batch is one gather-then-pwrite sequence, and an
/// over-large batch trades away the overlap that separate in-flight
/// requests get. Measured on the write-throughput sweep, 2–4 MB spans
/// are the optimum (4 MB keeps the full default window at 128 KB pages
/// and is within a few percent of peak everywhere below 1 MB); wider
/// spans start losing the D2H/pwrite interleaving that separate
/// round-trips retain.
const WRITEBACK_MAX_BATCH_BYTES: usize = 4 << 20;

/// The same bound under the *pipelined* engine, whose chunked gathers
/// overlap each chunk's `pwrite`s — the serialization the 4 MB cap
/// worked around. Measured on the write sweep, a full 32-page batch at
/// large pages now matches or beats the span-capped split, so the cap is
/// raised until [`crate::GpufsConfig::write_batch_pages`] is the only
/// binding limit at every paper page size.
const WRITEBACK_MAX_BATCH_BYTES_PIPELINED: usize = 512 << 20;

/// One page whose modified extents have been computed (and whose dirty
/// flag has been cleared), awaiting shipment in a batch.
struct GatheredPage {
    page_idx: u64,
    frame: FrameIdx,
    extents: Extents,
    /// Snapshot of the working bytes the diff ran over, kept to refresh
    /// the pristine copy after a successful shipment (read-write mode).
    snapshot: Option<Vec<u8>>,
    /// Valid data bytes at gather time.
    ds: usize,
}

impl GpuFsMount {
    /// Write back every dirty, unpinned page of `file`, gathered into
    /// capped multi-page `WritePages` batches. Returns the number of
    /// dirty pages the scan found (shipped or already drained by a
    /// concurrent pass) — `0` means the file had nothing left to flush,
    /// which is what `gfsync`'s drain loop terminates on.
    pub(crate) fn flush_dirty<L: Lane>(
        &self,
        blk: &mut L,
        file: &Arc<GFile>,
    ) -> GpufsResult<usize> {
        let mut dirty_pages = Vec::new();
        file.tree().for_each_page(|idx, fp| {
            if fp.state() == PageState::Ready {
                if let Some(frame) = fp.frame() {
                    if self.frames.pframe(frame).dirty.load(Ordering::Acquire) {
                        dirty_pages.push(idx);
                    }
                }
            }
        });
        for chunk in dirty_pages.chunks(self.write_batch_cap()) {
            // Pin the chunk to hold its frames across the write-back; the
            // pins drop (and the pages become evictable again) batch by
            // batch, not at the end of the whole flush. The pins are
            // resident-only: a page evicted since the scan was already
            // written back by the evictor, and faulting it back in here —
            // while holding a batch of pins — could starve reclaim of the
            // very frames this flush is pinning (see `pin_page_resident`).
            let mut pinned = Vec::with_capacity(chunk.len());
            for &idx in chunk {
                if let Some(pin) = self.pin_page_resident(blk, file, idx) {
                    pinned.push((idx, pin));
                }
            }
            let pages: Vec<(u64, FrameIdx)> = pinned
                .iter()
                .map(|(idx, pin)| (*idx, pin.frame()))
                .collect();
            self.writeback_frames(blk, file, &pages)?;
        }
        Ok(dirty_pages.len())
    }

    /// Largest number of pages one `WritePages` batch may carry.
    pub(crate) fn write_batch_cap(&self) -> usize {
        let cap_bytes = if self.config.io_chunk_pages == 0 {
            WRITEBACK_MAX_BATCH_BYTES
        } else {
            WRITEBACK_MAX_BATCH_BYTES_PIPELINED
        };
        self.config
            .write_batch_pages
            .min((cap_bytes / self.config.page_size).max(1))
            .max(1)
    }

    /// Write back a single page (`gmsync`, and the batch-of-one case).
    pub(crate) fn writeback_frame<L: Lane>(
        &self,
        blk: &mut L,
        file: &GFile,
        page_idx: u64,
        frame: FrameIdx,
    ) -> GpufsResult<usize> {
        self.writeback_frames(blk, file, &[(page_idx, frame)])
    }

    /// Write back a set of pages of one file, in capped `WritePages`
    /// batches. The caller must hold each frame (pinned, or detached from
    /// its fpage by eviction). Pages found clean are skipped. Returns the
    /// bytes written.
    ///
    /// On a failed batch every page of that batch has its dirty flag
    /// re-armed (pages of earlier, successful batches stay propagated).
    pub(crate) fn writeback_frames<L: Lane>(
        &self,
        blk: &mut L,
        file: &GFile,
        pages: &[(u64, FrameIdx)],
    ) -> GpufsResult<usize> {
        let mut written = 0;
        for chunk in pages.chunks(self.write_batch_cap()) {
            written += self.ship_batch(blk, file, chunk)?;
        }
        Ok(written)
    }

    /// Gather the dirty extents of `chunk` and ship them in one
    /// `WritePages` round-trip.
    fn ship_batch<L: Lane>(
        &self,
        blk: &mut L,
        file: &GFile,
        chunk: &[(u64, FrameIdx)],
    ) -> GpufsResult<usize> {
        // Advertise the batch before gathering: `gather_page` clears
        // dirty bits, so from a syncer's point of view these pages look
        // clean the moment they are gathered — `wb_inflight` is what says
        // "but their bytes have not reached the host yet".
        file.wb_begin();
        let r = self.ship_batch_inner(blk, file, chunk);
        if let Ok(n) = r {
            if n > 0 {
                file.note_flush_horizon(blk.now());
            }
        }
        file.wb_end();
        r
    }

    fn ship_batch_inner<L: Lane>(
        &self,
        blk: &mut L,
        file: &GFile,
        chunk: &[(u64, FrameIdx)],
    ) -> GpufsResult<usize> {
        let mut gathered = Vec::with_capacity(chunk.len());
        for &(page_idx, frame) in chunk {
            if let Some(g) = self.gather_page(blk, file, page_idx, frame) {
                gathered.push(g);
            }
        }
        if gathered.is_empty() {
            return Ok(0);
        }
        let ps = self.config.page_size as u64;
        let pages: Vec<PageWrite> = gathered
            .iter()
            .map(|g| PageWrite {
                src: self.frames.frame_ptr(g.frame),
                page_offset: g.page_idx * ps,
                extents: g.extents.clone(),
            })
            .collect();
        self.count_for(blk.lane_id(), |c| {
            c.write_rpcs.incr();
            c.pages_per_write_rpc.add(gathered.len() as u64);
        });
        let resp = self.rpc(
            blk,
            Request::WritePages {
                fd: file.host_fd(),
                pages,
                gpu: self.gpu.id(),
            },
        );
        let resp = match resp {
            Ok(ok) => ok,
            Err(e) => {
                // Nothing of this batch was shipped: re-arm every page's
                // dirty flag so a retried sync (or eviction) still knows
                // it holds unsynced data — otherwise one failed RPC
                // silently marks the whole batch clean and its bytes are
                // lost.
                for g in &gathered {
                    if !self
                        .frames
                        .pframe(g.frame)
                        .dirty
                        .swap(true, Ordering::AcqRel)
                    {
                        self.dirty.pages.fetch_add(1, Ordering::AcqRel);
                    }
                }
                return Err(e);
            }
        };
        let RespOk::Wrote { n, generation } = resp else {
            unreachable!("write answers Wrote")
        };
        // Our own propagated writes bumped the host generation; observe
        // it (and refresh this GPU's consistency registration, which is
        // monotonic, so a lagging batch can never regress it) so they do
        // not read as a foreign invalidation on reopen.
        file.observe_generation(generation);
        self.host_fs
            .consistency()
            .register_gpu_cache(file.ino(), self.coherence_id, generation);
        for g in &gathered {
            self.count_for(blk.lane_id(), |c| c.writebacks.incr());
            file.mark_host_valid(g.page_idx * ps + g.ds as u64);
            if let Some(snapshot) = &g.snapshot {
                // Refresh the pristine copy: future diffs are relative to
                // the state just propagated — the snapshot the diff ran
                // over, not the live page, which concurrent writers may
                // have moved on from (their bytes must stay "different
                // from pristine" until their own sync sends them).
                if let Some(pristine_frame) = self.frames.pframe(g.frame).pristine_frame() {
                    self.gpu
                        .global()
                        .write(self.frames.frame_ptr(pristine_frame), snapshot);
                    blk.advance(bw_time_ns(2 * g.ds as u64, self.timings.gpu_mem_mb_s));
                }
            }
        }
        Ok(n)
    }

    /// Compute the modified extents of one page: a byte diff against the
    /// pristine copy for read-write files, or against zeros for
    /// `O_GWRONCE` (paper §3.1). Returns `None` for clean pages and pages
    /// whose diff is empty.
    fn gather_page<L: Lane>(
        &self,
        blk: &mut L,
        file: &GFile,
        page_idx: u64,
        frame: FrameIdx,
    ) -> Option<GatheredPage> {
        let pf = self.frames.pframe(frame);
        if !pf.dirty.load(Ordering::Acquire) {
            return None;
        }
        // Clear the dirty flag *before* reading the bytes this sync will
        // describe: a concurrent write landing afterwards re-arms the
        // flag, so its bytes — whether or not this pass happens to carry
        // them — are guaranteed a later write-back. Clearing after the
        // scan instead would let a write that slipped in between be
        // wiped from the flag without ever being shipped.
        if pf.dirty.swap(false, Ordering::AcqRel) {
            self.dirty.pages.fetch_sub(1, Ordering::AcqRel);
        } else {
            // A concurrent pass drained it between the check above and
            // the swap; the ledger entry was theirs to settle.
            return None;
        }
        let ds = pf.data_size.load(Ordering::Acquire);
        let ptr = self.frames.frame_ptr(frame);
        // SAFETY: the caller holds a pin (or has detached the frame from
        // its fpage), so the frame cannot be reused; concurrent writers
        // to the same page must coordinate with sync, per Table 1.
        let working = unsafe { self.gpu.global().slice(ptr, ds) };
        // Snapshot of the working bytes the diff was computed over, taken
        // for modes that refresh a pristine copy after shipment. The diff
        // and the pristine refresh must describe the *same instant*:
        // refreshing from live working memory would absorb a concurrent
        // writer's not-yet-synced bytes into the pristine copy, making
        // that writer's own sync diff them away — a lost update.
        let mut snapshot: Option<Vec<u8>> = None;
        let extents: Extents = match file.mode() {
            GOpenMode::WriteOnce => {
                blk.advance(bw_time_ns(ds as u64, self.timings.gpu_mem_mb_s));
                nonzero_extents(working, DIFF_MERGE_GAP)
            }
            GOpenMode::ReadWrite => match pf.pristine_frame() {
                Some(pristine_frame) => {
                    let snap = working.to_vec();
                    let pptr = self.frames.frame_ptr(pristine_frame);
                    // SAFETY: pristine frames are only touched by sync
                    // paths, serialized by the page pin / detachment above.
                    let pristine = unsafe { self.gpu.global().slice(pptr, ds) };
                    blk.advance(bw_time_ns(2 * ds as u64, self.timings.gpu_mem_mb_s));
                    let extents = diff_extents(&snap, pristine, DIFF_MERGE_GAP);
                    snapshot = Some(snap);
                    extents
                }
                None => {
                    // A page that never existed on the host (beyond EOF at
                    // open) has an implicitly all-zero pristine copy.
                    blk.advance(bw_time_ns(ds as u64, self.timings.gpu_mem_mb_s));
                    nonzero_extents(working, DIFF_MERGE_GAP)
                }
            },
            // A spilled temporary page has no pristine copy and no
            // written-zeros hazard to exploit: ship the whole valid prefix.
            GOpenMode::Temp => vec![(0, ds as u32)],
            GOpenMode::ReadOnly => Vec::new(),
        };
        if extents.is_empty() {
            return None;
        }
        Some(GatheredPage {
            page_idx,
            frame,
            extents,
            snapshot,
            ds,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{GOpenMode, GpufsConfig};
    use crate::error::GpufsError;
    use crate::testrig::{rig, run_block};
    use gpusim::Grid;

    #[test]
    fn write_once_diffs_against_zeros() {
        let r = rig(1);
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/wonce", GOpenMode::WriteOnce).unwrap();
            mount.write(blk, &fd, 10, b"abc").unwrap();
            mount.write(blk, &fd, 100, b"xyz").unwrap();
            // Reading a write-once file is forbidden.
            let mut buf = [0u8; 4];
            assert!(matches!(
                mount.read(blk, &fd, 0, &mut buf),
                Err(GpufsError::WriteOnce(_))
            ));
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/wonce", 0).unwrap();
        assert_eq!(&data[10..13], b"abc");
        assert_eq!(&data[100..103], b"xyz");
        assert!(data[..10].iter().all(|&b| b == 0));
    }

    #[test]
    fn gmsync_pushes_one_page() {
        let r = rig(1);
        r.fs.create("/ms", &[0u8; 8192]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/ms", GOpenMode::ReadWrite).unwrap();
            mount.write(blk, &fd, 0, &[1u8; 4096]).unwrap();
            mount.write(blk, &fd, 4096, &[2u8; 4096]).unwrap();
            mount.msync(blk, &fd, 0).unwrap(); // only page 0
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/ms", 0).unwrap();
        assert!(data[..4096].iter().all(|&b| b == 1), "page 0 synced");
        assert!(data[4096..].iter().all(|&b| b == 0), "page 1 not synced");
    }

    #[test]
    fn msync_rejects_temp_and_read_only_modes() {
        let r = rig(1);
        r.fs.create("/r", &[0u8; 64]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let ro = mount.open(blk, "/r", GOpenMode::ReadOnly).unwrap();
            assert!(matches!(
                mount.msync(blk, &ro, 0),
                Err(GpufsError::InvalidMode(_))
            ));
            mount.close(blk, ro).unwrap();
            let tmp = mount.open(blk, "/t", GOpenMode::Temp).unwrap();
            assert!(matches!(
                mount.msync(blk, &tmp, 0),
                Err(GpufsError::InvalidMode(_))
            ));
            mount.close(blk, tmp).unwrap();
        });
    }

    #[test]
    fn concurrent_blocks_write_disjoint_ranges_of_one_page() {
        // False sharing within one page: 8 blocks write disjoint 512-byte
        // slices of a single 4 KB page; the byte diff must merge all of
        // them on the host (paper §3.1's motivating case).
        let r = rig(1);
        r.fs.create("/false_share", &[0u8; 4096]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        r.gpus[0].launch(Grid::new(8, 32), 0, |blk| {
            let fd = mount
                .open(blk, "/false_share", GOpenMode::ReadWrite)
                .unwrap();
            let off = blk.block_id() as u64 * 512;
            mount
                .write(blk, &fd, off, &[blk.block_id() as u8 + 1; 512])
                .unwrap();
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/false_share", 0).unwrap();
        for b in 0..8usize {
            assert!(
                data[b * 512..(b + 1) * 512]
                    .iter()
                    .all(|&x| x == b as u8 + 1),
                "slice {b} lost to false sharing"
            );
        }
    }

    #[test]
    fn failed_writeback_rearms_dirty_for_retry() {
        let mut r = rig(1);
        r.fs.create("/rearm", &[0u8; 4096]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/rearm", GOpenMode::ReadWrite).unwrap();
            mount.write(blk, &fd, 0, b"keep me").unwrap();
            mount.close(blk, fd).unwrap();
        });
        // Kill the daemon: every write-back RPC now fails. The reopen
        // itself survives via closed-table revival (no RPC needed).
        r.host.shutdown();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/rearm", GOpenMode::ReadWrite).unwrap();
            assert!(mount.fsync(blk, &fd).is_err(), "daemon is down");
            assert!(
                mount.fsync(blk, &fd).is_err(),
                "a failed write-back must leave the page dirty: a retried \
                 fsync has to fail too, not silently report clean"
            );
        });
    }

    #[test]
    fn failed_chunked_batch_rearms_dirty_on_every_page() {
        // A multi-page batch that the pipelined engine would stream in
        // several chunks fails as a whole RPC: every page the batch
        // carried — not just the chunk that errored — must come back
        // dirty, or a retried sync would silently lose the rest.
        use std::sync::atomic::Ordering;
        let mut r = rig(1);
        r.fs.create("/rearm_batch", &[0u8; 6 * 4096]).unwrap();
        assert!(
            GpufsConfig::default().io_chunk_pages > 0 && GpufsConfig::default().io_chunk_pages < 6,
            "the 6-page batch must span several pipeline chunks"
        );
        let cfg = GpufsConfig::new(4096, 32 * 4096).with_write_batch(8);
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount
                .open(blk, "/rearm_batch", GOpenMode::ReadWrite)
                .unwrap();
            for page in 0..6u64 {
                mount
                    .write(blk, &fd, page * 4096, &[page as u8 + 1; 4096])
                    .unwrap();
            }
            // Keep the file open (and its pages resident) across the
            // daemon's death; no fsync yet.
            std::mem::forget(fd);
        });
        r.host.shutdown();
        let file = mount.tables.get_open("/rearm_batch").expect("still open");
        run_block(&r, |blk| {
            assert!(
                mount.flush_dirty(blk, &file).is_err(),
                "daemon is down: the whole batch must fail"
            );
        });
        let mut dirty = 0;
        file.tree().for_each_page(|_, fp| {
            if let Some(frame) = fp.frame() {
                if mount.frames.pframe(frame).dirty.load(Ordering::Acquire) {
                    dirty += 1;
                }
            }
        });
        assert_eq!(dirty, 6, "every page of the failed batch re-armed");
    }

    #[test]
    fn batched_fsync_gathers_pages_into_capped_write_rpcs() {
        // 12 dirty pages at a batch cap of 8: gfsync must ship them in
        // exactly two WritePages round-trips (8 + 4), with the client and
        // daemon write counters agreeing and the bytes landing exactly.
        let r = rig(1);
        r.fs.create("/batchy", &[0u8; 12 * 4096]).unwrap();
        let cfg = GpufsConfig::new(4096, 32 * 4096).with_write_batch(8);
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/batchy", GOpenMode::ReadWrite).unwrap();
            for page in 0..12u64 {
                mount
                    .write(blk, &fd, page * 4096, &[page as u8 + 1; 4096])
                    .unwrap();
            }
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let c = mount.counters();
        assert_eq!(c.write_rpcs.get(), 2, "ceil(12 / 8) round-trips");
        assert_eq!(c.pages_per_write_rpc.get(), 12);
        assert_eq!(c.writebacks.get(), 12, "every page individually counted");
        // The daemon saw one multi-page batch of 8 and one of 4.
        assert_eq!(r.host.stats().batched_write_rpcs.get(), 2);
        assert_eq!(r.host.stats().pages_per_write_rpc.get(), 12);
        assert_eq!(r.host.stats().bytes_d2h.get(), 12 * 4096);
        let (data, _) = r.fs.read_whole("/batchy", 0).unwrap();
        for page in 0..12usize {
            assert!(
                data[page * 4096..(page + 1) * 4096]
                    .iter()
                    .all(|&b| b == page as u8 + 1),
                "page {page} bytes wrong"
            );
        }
    }

    #[test]
    fn write_batch_one_reproduces_per_page_rpcs() {
        let r = rig(1);
        r.fs.create("/perpage", &[0u8; 6 * 4096]).unwrap();
        let cfg = GpufsConfig::new(4096, 32 * 4096).with_write_batch(1);
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/perpage", GOpenMode::ReadWrite).unwrap();
            for page in 0..6u64 {
                mount.write(blk, &fd, page * 4096, &[7u8; 4096]).unwrap();
            }
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let c = mount.counters();
        assert_eq!(c.write_rpcs.get(), 6, "one RPC per dirty page");
        assert_eq!(c.pages_per_write_rpc.get(), 6);
        assert_eq!(
            r.host.stats().batched_write_rpcs.get(),
            0,
            "batches of one are not batched writes"
        );
    }

    #[test]
    fn read_write_pristine_diff_preserves_concurrent_host_bytes() {
        // GPU writes bytes [0,4) of a page; meanwhile the host rewrites
        // bytes [100,104). The GPU's diff-based sync must not revert the
        // host's bytes with its stale pristine copy.
        let r = rig(1);
        r.fs.create("/fs_merge", &[0u8; 4096]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/fs_merge", GOpenMode::ReadWrite).unwrap();
            mount.write(blk, &fd, 0, &[7u8; 4]).unwrap();
            // Host writes concurrently (before the GPU syncs).
            let (hfd, t) =
                r.fs.open("/fs_merge", hostfs::OpenFlags::read_write(), 0)
                    .unwrap();
            r.fs.pwrite(hfd, 100, &[9u8; 4], t).unwrap();
            r.fs.close(hfd).unwrap();
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/fs_merge", 0).unwrap();
        assert_eq!(&data[0..4], &[7u8; 4], "gpu bytes written");
        assert_eq!(&data[100..104], &[9u8; 4], "host bytes preserved by diff");
    }
}
