//! Byte diffs for write-back (paper §3.1).
//!
//! GPUfs must "determine which specific portions of a given page were
//! modified on a given GPU when propagating those modifications to the
//! host, to avoid accidentally reverting other portions of the same page
//! that have been modified concurrently by other GPUs." For read-write
//! files that means diffing the working copy against a pristine copy
//! preserved at first read; for `O_GWRONCE` files the pristine copy is
//! implicitly all zeros and the diff degenerates to a scan for nonzero
//! runs.

/// Byte extents `(offset, len)` within one page.
pub type Extents = Vec<(u32, u32)>;

/// Extents where `working` differs from `pristine`. Runs separated by
/// fewer than `merge_gap` identical bytes are merged, trading a few
/// redundant bytes on the wire for fewer host `pwrite`s.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn diff_extents(working: &[u8], pristine: &[u8], merge_gap: usize) -> Extents {
    assert_eq!(
        working.len(),
        pristine.len(),
        "diff requires equal-length copies"
    );
    extents_where(working.len(), merge_gap, |i| working[i] != pristine[i])
}

/// Extents of nonzero bytes — the "diff against zeros" of write-once
/// pages. A genuinely written zero byte is indistinguishable from an
/// untouched byte, which is exactly the `O_GWRONCE` contract ("if data is
/// overwritten, partial updates may occur").
#[must_use]
pub fn nonzero_extents(working: &[u8], merge_gap: usize) -> Extents {
    extents_where(working.len(), merge_gap, |i| working[i] != 0)
}

fn extents_where(len: usize, merge_gap: usize, modified: impl Fn(usize) -> bool) -> Extents {
    let mut out: Extents = Vec::new();
    let mut run_start: Option<usize> = None;
    for i in 0..len {
        match (modified(i), run_start) {
            (true, None) => run_start = Some(i),
            (false, Some(start)) => {
                push_or_merge(&mut out, start, i - start, merge_gap);
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(start) = run_start {
        push_or_merge(&mut out, start, len - start, merge_gap);
    }
    out
}

fn push_or_merge(out: &mut Extents, start: usize, len: usize, merge_gap: usize) {
    if let Some(&mut (ref mut last_off, ref mut last_len)) = out.last_mut() {
        let last_end = *last_off as usize + *last_len as usize;
        if start - last_end <= merge_gap {
            *last_len = (start + len - *last_off as usize) as u32;
            return;
        }
    }
    out.push((start as u32, len as u32));
}

/// Total bytes covered by `extents`.
#[must_use]
pub fn extent_bytes(extents: &[(u32, u32)]) -> u64 {
    extents.iter().map(|&(_, l)| u64::from(l)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_pages_diff_to_nothing() {
        let a = [7u8; 64];
        assert!(diff_extents(&a, &a, 0).is_empty());
    }

    #[test]
    fn single_byte_change() {
        let pristine = [0u8; 16];
        let mut working = pristine;
        working[5] = 1;
        assert_eq!(diff_extents(&working, &pristine, 0), vec![(5, 1)]);
    }

    #[test]
    fn disjoint_runs_stay_disjoint_without_merging() {
        let pristine = [0u8; 32];
        let mut working = pristine;
        working[2] = 1;
        working[3] = 1;
        working[20] = 1;
        assert_eq!(diff_extents(&working, &pristine, 0), vec![(2, 2), (20, 1)]);
    }

    #[test]
    fn small_gaps_merge() {
        let pristine = [0u8; 32];
        let mut working = pristine;
        working[2] = 1;
        working[6] = 1; // gap of 3 clean bytes
        assert_eq!(diff_extents(&working, &pristine, 4), vec![(2, 5)]);
        assert_eq!(diff_extents(&working, &pristine, 2), vec![(2, 1), (6, 1)]);
    }

    #[test]
    fn run_reaching_end_is_closed() {
        let pristine = [0u8; 8];
        let mut working = pristine;
        working[6] = 1;
        working[7] = 1;
        assert_eq!(diff_extents(&working, &pristine, 0), vec![(6, 2)]);
    }

    #[test]
    fn nonzero_extents_ignore_written_zeros() {
        let mut page = [0u8; 16];
        page[1] = 5;
        page[2] = 0; // "written" zero: invisible, per O_GWRONCE semantics
        page[3] = 5;
        assert_eq!(nonzero_extents(&page, 0), vec![(1, 1), (3, 1)]);
        assert_eq!(nonzero_extents(&page, 1), vec![(1, 3)]);
    }

    #[test]
    fn empty_input_yields_no_extents() {
        assert!(nonzero_extents(&[], 8).is_empty());
        assert!(diff_extents(&[], &[], 8).is_empty());
    }

    #[test]
    fn extent_bytes_sums_lengths() {
        assert_eq!(extent_bytes(&[(0, 4), (10, 6)]), 10);
        assert_eq!(extent_bytes(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = diff_extents(&[0], &[0, 1], 0);
    }
}
