//! [`FleetView`]: the surface workload drivers need from "a set of
//! GPUfs mounts over one coherent file system".
//!
//! A single-host [`GpuFleet`] and a cross-host
//! [`crate::cluster::HostFleet`] differ in what sits between a mount and
//! the storage (nothing vs a wire), but not in how work is driven over
//! them: pick a GPU, take its mount, launch kernels, audit the shared
//! registry. Drivers written against this trait — the distributed image
//! search, the close-to-open schedule runner — run unchanged over both.

use std::sync::Arc;

use gpusim::Gpu;
use hostfs::HostFs;

use crate::cluster::fleet::GpuFleet;
use crate::mount::GpuFsMount;

/// A fleet of GPUfs mounts addressable by one global GPU index, sharing
/// one (coherence-bearing) host file system. See module docs.
pub trait FleetView {
    /// Total GPUs addressable through this view.
    fn len(&self) -> usize;

    /// Whether the view holds no GPUs (builders reject this, so `false`
    /// for both fleet types).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// GPU `g` (global index).
    fn gpu(&self, g: usize) -> &Arc<Gpu>;

    /// GPU `g`'s mount (global index).
    fn mount(&self, g: usize) -> &Arc<GpuFsMount>;

    /// The shared host file system — the storage-server view in a
    /// cross-host fleet — carrying the consistency registry.
    fn fs(&self) -> &Arc<HostFs>;
}

impl FleetView for GpuFleet {
    fn len(&self) -> usize {
        GpuFleet::len(self)
    }

    fn gpu(&self, g: usize) -> &Arc<Gpu> {
        GpuFleet::gpu(self, g)
    }

    fn mount(&self, g: usize) -> &Arc<GpuFsMount> {
        GpuFleet::mount(self, g)
    }

    fn fs(&self) -> &Arc<HostFs> {
        GpuFleet::fs(self)
    }
}
