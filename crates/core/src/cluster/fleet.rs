//! [`GpuFleet`]: N GPUfs mounts over one shared host file system.
//!
//! A fleet is the paper's multi-GPU testbed in one object: every GPU has
//! its own simulated PCIe link ([`gpusim::Gpu`] with its own
//! [`simtime::Timings`]-calibrated DMA engines) and its own buffer
//! cache, while the host file system — and with it the §4.4 consistency
//! registry — is shared, so cross-GPU coherence traffic is real.
//!
//! The daemon topology is a fleet-level choice:
//!
//! * **[`DaemonTopology::Shared`]** (default) — one [`GpufsHost`] serves
//!   every GPU, as the paper's single daemon process does. The host-side
//!   knobs ([`GpufsConfig::rpc_channels`],
//!   [`GpufsConfig::daemon_workers`], [`GpufsConfig::io_chunk_pages`])
//!   come from the fleet's base config, and a per-GPU override that
//!   names different values is rejected at build — exactly the
//!   validation `mount` performs for a lone mount, surfaced earlier.
//! * **[`DaemonTopology::PerGpu`]** — each GPU gets its own daemon
//!   (worker pool + RPC hub) over the same shared file system, so
//!   per-GPU overrides may legitimately differ in host-side knobs too.

use std::collections::HashMap;
use std::sync::Arc;

use gpusim::{Gpu, GpuCluster, GpuSpec};
use hostfs::{HostFs, HostFsConfig};
use simtime::Timings;

use crate::config::GpufsConfig;
use crate::daemon::{DaemonStats, GpufsHost};
use crate::error::{GpufsError, GpufsResult};
use crate::mount::GpuFsMount;
use crate::remote::HostProxy;

/// How the fleet's GPUs share CPU-side daemon resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DaemonTopology {
    /// One daemon (hub + worker pool) serves every GPU — the paper's
    /// single host process. Per-GPU RPC attribution still works through
    /// [`GpufsHost::stats_for`].
    #[default]
    Shared,
    /// One daemon per GPU over the same shared host file system: no
    /// cross-GPU queueing in the communication layer, at the cost of one
    /// worker pool per device.
    PerGpu,
}

/// Builder for a [`GpuFleet`], mirroring [`GpufsConfig`]'s builder style.
///
/// Defaults: TESLA C2075 GPUs on the platform-default [`Timings`], the
/// default [`GpufsConfig`], a shared daemon, and a fresh default host
/// file system. Everything can be overridden fleet-wide or per GPU.
#[derive(Debug, Clone)]
pub struct FleetBuilder {
    n_gpus: usize,
    base: GpufsConfig,
    overrides: HashMap<usize, GpufsConfig>,
    spec: GpuSpec,
    timings: Timings,
    gpu_timings: HashMap<usize, Timings>,
    topology: DaemonTopology,
    fs: Option<Arc<HostFs>>,
    proxy: Option<Arc<HostProxy>>,
    coherence_base: usize,
}

impl FleetBuilder {
    /// A builder for a fleet of `n_gpus` GPUs.
    #[must_use]
    pub fn new(n_gpus: usize) -> Self {
        Self {
            n_gpus,
            base: GpufsConfig::default(),
            overrides: HashMap::new(),
            spec: GpuSpec::tesla_c2075(),
            timings: Timings::default(),
            gpu_timings: HashMap::new(),
            topology: DaemonTopology::Shared,
            fs: None,
            proxy: None,
            coherence_base: 0,
        }
    }

    /// Fleet-wide GPUfs configuration (every GPU, unless overridden).
    #[must_use]
    pub fn config(mut self, config: GpufsConfig) -> Self {
        self.base = config;
        self
    }

    /// Override the configuration of one GPU (page size, cache budget,
    /// readahead, ... — under a shared daemon the host-side knobs must
    /// still match the fleet's base config; [`FleetBuilder::build`]
    /// rejects an override that disagrees).
    #[must_use]
    pub fn gpu_config(mut self, gpu: usize, config: GpufsConfig) -> Self {
        self.overrides.insert(gpu, config);
        self
    }

    /// Hardware spec of every GPU.
    #[must_use]
    pub fn spec(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Fleet-default timing calibration (PCIe link, and the host FS when
    /// the builder creates one).
    #[must_use]
    pub fn timings(mut self, timings: Timings) -> Self {
        self.timings = timings;
        self
    }

    /// Give one GPU its own timing calibration — e.g. a narrower PCIe
    /// slot — so the fleet models genuinely independent links.
    #[must_use]
    pub fn gpu_timings(mut self, gpu: usize, timings: Timings) -> Self {
        self.gpu_timings.insert(gpu, timings);
        self
    }

    /// Choose the daemon topology (default: [`DaemonTopology::Shared`]).
    #[must_use]
    pub fn topology(mut self, topology: DaemonTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Mount the fleet over an existing host file system instead of a
    /// fresh default one (shared corpora, custom memory budgets).
    #[must_use]
    pub fn host_fs(mut self, fs: Arc<HostFs>) -> Self {
        self.fs = Some(fs);
        self
    }

    /// Serve the fleet's daemon through a cross-host storage proxy
    /// instead of a local file system: every request crosses `proxy`'s
    /// simulated network link to the shared [`crate::StorageServer`].
    /// The fleet's file-system handle aliases the server's (for seeding
    /// corpora and auditing coherence); combine with
    /// [`FleetBuilder::coherence_base`] so mounts of different hosts
    /// register distinctly.
    #[must_use]
    pub fn proxy(mut self, proxy: Arc<HostProxy>) -> Self {
        self.proxy = Some(proxy);
        self
    }

    /// Offset every mount's consistency-registry identity by `base`
    /// (GPU `g` registers as `base + g`). Hosts of a cross-host fleet
    /// use disjoint bases so positional GPU ids never collide in the
    /// shared registry. Default 0: identity = GPU id, the single-host
    /// behaviour.
    #[must_use]
    pub fn coherence_base(mut self, base: usize) -> Self {
        self.coherence_base = base;
        self
    }

    /// Effective configuration of GPU `gpu`.
    fn config_of(&self, gpu: usize) -> GpufsConfig {
        self.overrides
            .get(&gpu)
            .cloned()
            .unwrap_or_else(|| self.base.clone())
    }

    /// Build the fleet: construct the GPUs, start the daemon(s), and
    /// mount GPUfs on every GPU.
    ///
    /// # Errors
    ///
    /// Fails on an empty fleet, on a per-GPU override whose host-side
    /// knobs disagree with the shared daemon, or on any `mount` error
    /// (cache larger than GPU memory, ...).
    pub fn build(self) -> GpufsResult<GpuFleet> {
        if self.n_gpus == 0 {
            return Err(GpufsError::InvalidMode("a fleet needs at least one GPU"));
        }
        // An override keyed outside the fleet would be silently dropped
        // by the loops below — the exact silent no-op this builder exists
        // to reject (an experiment "slowing GPU 4" of a 4-GPU fleet must
        // fail loudly, not measure a uniform fleet).
        if self.overrides.keys().any(|&g| g >= self.n_gpus)
            || self.gpu_timings.keys().any(|&g| g >= self.n_gpus)
        {
            return Err(GpufsError::InvalidMode(
                "per-GPU config/timings override names a GPU outside the fleet",
            ));
        }
        if let (Some(proxy), Some(fs)) = (&self.proxy, &self.fs) {
            if !Arc::ptr_eq(proxy.server().fs(), fs) {
                return Err(GpufsError::InvalidMode(
                    "host_fs and proxy name different file systems; a proxied \
                     fleet's fs is always its server's",
                ));
            }
        }
        let fs = match &self.proxy {
            // A proxied fleet's device view *is* the server's file
            // system: probing/seeding stays direct, data requests cross
            // the wire.
            Some(proxy) => Arc::clone(proxy.server().fs()),
            None => self.fs.clone().unwrap_or_else(|| {
                Arc::new(HostFs::new(HostFsConfig {
                    timings: self.timings.clone(),
                    ..HostFsConfig::default()
                }))
            }),
        };
        let links: Vec<(GpuSpec, Timings)> = (0..self.n_gpus)
            .map(|g| {
                (
                    self.spec.clone(),
                    self.gpu_timings
                        .get(&g)
                        .cloned()
                        .unwrap_or_else(|| self.timings.clone()),
                )
            })
            .collect();
        let cluster = GpuCluster::heterogeneous(&links);
        let gpus: Vec<Arc<Gpu>> = cluster.gpus().to_vec();

        let (hosts, host_of) = match self.topology {
            DaemonTopology::Shared => {
                // Host-side knobs are daemon state: under one shared
                // daemon an override that names different values would be
                // exactly the silent no-op `mount` guards against —
                // reject it here, where the message can say which GPU.
                let key = |c: &GpufsConfig| {
                    (
                        c.rpc_channels.max(1),
                        c.daemon_workers.max(1),
                        c.io_chunk_pages,
                        c.tenant_weights.clone(),
                        c.tenant_admission.clone(),
                    )
                };
                for over in self.overrides.values() {
                    if key(over) != key(&self.base) {
                        return Err(GpufsError::InvalidMode(
                            "per-GPU override changes rpc_channels/daemon_workers/\
                             io_chunk_pages/tenant_weights/tenant_admission under \
                             a shared daemon; use DaemonTopology::PerGpu for \
                             per-GPU host-side knobs",
                        ));
                    }
                }
                let host = match &self.proxy {
                    Some(proxy) => {
                        GpufsHost::with_proxy(Arc::clone(proxy), gpus.clone(), &self.base)
                    }
                    None => GpufsHost::with_config(Arc::clone(&fs), gpus.clone(), &self.base),
                };
                (vec![host], vec![0; self.n_gpus])
            }
            DaemonTopology::PerGpu => {
                if self.proxy.is_some() {
                    // One proxy models one host's network link; per-GPU
                    // daemons multiplexed onto it would share the link's
                    // descriptor table without sharing its queueing
                    // discipline — nothing the simulation means to model.
                    return Err(GpufsError::InvalidMode(
                        "DaemonTopology::PerGpu cannot serve through a host \
                         proxy; use the shared topology per host",
                    ));
                }
                let hosts: Vec<GpufsHost> = (0..self.n_gpus)
                    .map(|g| {
                        GpufsHost::with_config(Arc::clone(&fs), gpus.clone(), &self.config_of(g))
                    })
                    .collect();
                (hosts, (0..self.n_gpus).collect())
            }
        };

        let mut mounts = Vec::with_capacity(self.n_gpus);
        for g in 0..self.n_gpus {
            mounts.push(hosts[host_of[g]].mount_with_coherence_id(
                g,
                self.config_of(g),
                self.coherence_base + g,
            )?);
        }
        Ok(GpuFleet {
            fs,
            gpus,
            hosts,
            host_of,
            mounts,
            topology: self.topology,
        })
    }
}

/// N GPUfs mounts over one shared host file system (see module docs).
pub struct GpuFleet {
    fs: Arc<HostFs>,
    gpus: Vec<Arc<Gpu>>,
    hosts: Vec<GpufsHost>,
    /// `host_of[g]` indexes the daemon in `hosts` that serves GPU `g`.
    host_of: Vec<usize>,
    mounts: Vec<Arc<GpuFsMount>>,
    topology: DaemonTopology,
}

impl std::fmt::Debug for GpuFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuFleet")
            .field("gpus", &self.gpus.len())
            .field("daemons", &self.hosts.len())
            .field("topology", &self.topology)
            .finish()
    }
}

impl GpuFleet {
    /// A builder for a fleet of `n_gpus` GPUs.
    #[must_use]
    pub fn builder(n_gpus: usize) -> FleetBuilder {
        FleetBuilder::new(n_gpus)
    }

    /// Number of GPUs in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// Whether the fleet is empty (never: `build` rejects zero GPUs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    /// The shared host file system (and through it the consistency
    /// registry).
    #[must_use]
    pub fn fs(&self) -> &Arc<HostFs> {
        &self.fs
    }

    /// The fleet's GPUs.
    #[must_use]
    pub fn gpus(&self) -> &[Arc<Gpu>] {
        &self.gpus
    }

    /// GPU `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn gpu(&self, g: usize) -> &Arc<Gpu> {
        &self.gpus[g]
    }

    /// Every GPU's mount, indexed by GPU id.
    #[must_use]
    pub fn mounts(&self) -> &[Arc<GpuFsMount>] {
        &self.mounts
    }

    /// GPU `g`'s mount.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn mount(&self, g: usize) -> &Arc<GpuFsMount> {
        &self.mounts[g]
    }

    /// The daemon topology this fleet was built with.
    #[must_use]
    pub fn topology(&self) -> DaemonTopology {
        self.topology
    }

    /// The daemons (one under [`DaemonTopology::Shared`], one per GPU
    /// under [`DaemonTopology::PerGpu`]).
    #[must_use]
    pub fn hosts(&self) -> &[GpufsHost] {
        &self.hosts
    }

    /// The daemon serving GPU `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn host_for(&self, g: usize) -> &GpufsHost {
        &self.hosts[self.host_of[g]]
    }

    /// Daemon activity attributed to GPU `g` alone, whichever topology is
    /// in use ([`GpufsHost::stats_for`] under a shared daemon; the GPU's
    /// own daemon's sheet under per-GPU daemons reports the same thing).
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn stats_for(&self, g: usize) -> &DaemonStats {
        self.hosts[self.host_of[g]].stats_for(g)
    }

    /// Stop every daemon. Idempotent; in-flight requests drain first.
    pub fn shutdown(&mut self) {
        for host in &mut self.hosts {
            host.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GOpenMode;
    use gpusim::Grid;

    fn small_fleet(n: usize) -> FleetBuilder {
        GpuFleet::builder(n)
            .spec(GpuSpec::small_test())
            .config(GpufsConfig::small_test())
    }

    #[test]
    fn fleet_builds_n_mounts_over_one_shared_fs() {
        let fleet = small_fleet(4).build().unwrap();
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet.hosts().len(), 1, "shared daemon by default");
        assert_eq!(fleet.topology(), DaemonTopology::Shared);
        for g in 0..4 {
            assert_eq!(fleet.gpu(g).id(), g);
            assert!(Arc::ptr_eq(fleet.fs(), fleet.host_for(g).fs()));
        }
        // All four mounts read the same shared file.
        fleet.fs().create("/shared", &[3u8; 4096]).unwrap();
        for g in 0..4 {
            let mount = Arc::clone(fleet.mount(g));
            fleet.gpu(g).launch(Grid::new(1, 32), 0, move |blk| {
                let fd = mount.open(blk, "/shared", GOpenMode::ReadOnly).unwrap();
                let mut buf = [0u8; 64];
                mount.read(blk, &fd, 0, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == 3));
                mount.close(blk, fd).unwrap();
            });
        }
        let ino = fleet.fs().ino_of("/shared").unwrap();
        assert_eq!(
            fleet.fs().consistency().cachers(ino),
            (0..4).collect(),
            "every GPU registered its cached copy"
        );
    }

    #[test]
    fn per_gpu_daemons_give_each_gpu_its_own_host() {
        let fleet = small_fleet(3)
            .topology(DaemonTopology::PerGpu)
            .build()
            .unwrap();
        assert_eq!(fleet.hosts().len(), 3);
        for g in 0..3 {
            assert!(std::ptr::eq(fleet.host_for(g), &fleet.hosts()[g]));
        }
        // Per-GPU daemons may differ in host-side knobs.
        let fleet = small_fleet(2)
            .topology(DaemonTopology::PerGpu)
            .gpu_config(1, GpufsConfig::small_test().with_concurrency(4, 2))
            .build()
            .unwrap();
        assert_eq!(fleet.host_for(0).daemon_workers(), 1);
        assert_eq!(fleet.host_for(1).daemon_workers(), 2);
    }

    #[test]
    fn shared_daemon_rejects_host_side_knob_overrides() {
        let err = small_fleet(2)
            .gpu_config(1, GpufsConfig::small_test().with_concurrency(4, 2))
            .build();
        assert!(matches!(err, Err(GpufsError::InvalidMode(_))));
        // GPU-side overrides are fine under a shared daemon.
        let fleet = small_fleet(2)
            .gpu_config(1, GpufsConfig::small_test().with_readahead(8))
            .build()
            .unwrap();
        assert_eq!(
            fleet.mount(1).page_size(),
            GpufsConfig::small_test().page_size
        );
        // And a zero-GPU fleet is rejected outright.
        assert!(matches!(
            GpuFleet::builder(0).build(),
            Err(GpufsError::InvalidMode(_))
        ));
        // An override naming a GPU outside the fleet must fail loudly,
        // never be silently dropped — whichever kind it is.
        assert!(matches!(
            small_fleet(2)
                .gpu_config(2, GpufsConfig::small_test())
                .build(),
            Err(GpufsError::InvalidMode(_))
        ));
        assert!(matches!(
            small_fleet(2).gpu_timings(7, Timings::default()).build(),
            Err(GpufsError::InvalidMode(_))
        ));
    }

    #[test]
    fn per_gpu_timings_make_links_independent() {
        let slow = Timings {
            pcie_mb_s: 1000.0,
            ..Timings::default()
        };
        let fleet = small_fleet(2).gpu_timings(1, slow).build().unwrap();
        assert_eq!(fleet.gpu(0).timings().pcie_mb_s, 5731.0);
        assert_eq!(fleet.gpu(1).timings().pcie_mb_s, 1000.0);
        // The slow link really is slower: same single-page fetch, higher
        // virtual elapsed time. Warm the (shared) host page cache first
        // so neither GPU pays the one-off disk fetch.
        fleet.fs().create("/t", &vec![1u8; 16 << 10]).unwrap();
        let _ = fleet.fs().read_whole("/t", 0).unwrap();
        let ends: Vec<u64> = (0..2)
            .map(|g| {
                let mount = Arc::clone(fleet.mount(g));
                fleet
                    .gpu(g)
                    .launch(Grid::new(1, 32), 0, move |blk| {
                        let fd = mount.open(blk, "/t", GOpenMode::ReadOnly).unwrap();
                        let mut buf = vec![0u8; 16 << 10];
                        mount.read(blk, &fd, 0, &mut buf).unwrap();
                        mount.close(blk, fd).unwrap();
                    })
                    .end
            })
            .collect();
        assert!(
            ends[1] > ends[0],
            "narrow link {} must be slower than wide {}",
            ends[1],
            ends[0]
        );
    }

    #[test]
    fn fleet_attributes_daemon_stats_per_gpu() {
        let fleet = small_fleet(2).build().unwrap();
        fleet.fs().create("/a", &[1u8; 8192]).unwrap();
        // GPU 0 reads two pages, GPU 1 none.
        let mount = Arc::clone(fleet.mount(0));
        fleet.gpu(0).launch(Grid::new(1, 32), 0, move |blk| {
            let fd = mount.open(blk, "/a", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 8192];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            mount.close(blk, fd).unwrap();
        });
        assert_eq!(fleet.stats_for(0).bytes_h2d.get(), 8192);
        assert_eq!(fleet.stats_for(1).bytes_h2d.get(), 0);
        assert_eq!(fleet.stats_for(1).requests.get(), 0);
        assert_eq!(
            fleet.host_for(0).stats().bytes_h2d.get(),
            8192,
            "aggregate equals the per-GPU sum"
        );
    }
}
