//! Fleet-level close-to-open consistency: enforcement, auditing, and
//! stress machinery (paper §4.4).
//!
//! The consistency model is deliberately weak — a GPU's writes become
//! visible to another GPU only after the writer closes and the reader
//! (re)opens — and deliberately *lazy*: closing pushes nothing; a stale
//! cache is discovered, and dropped, at reopen time on the GPU that
//! holds it. This module gives the fleet the tools to observe and stress
//! exactly that contract:
//!
//! * [`GpuFleet::coherence_audit`] / [`GpuFleet::audit_file`] — a
//!   point-in-time view over the shared registry ([`hostfs::Consistency`
//!   `::snapshot`]): per file, the host generation, every GPU's
//!   registered cached generation, and which of those are lazily stale.
//! * [`CoherenceOp`] + [`GpuFleet::run_close_to_open_schedule`] — a
//!   schedule driver for randomized cross-GPU open→write→close→reopen
//!   interleavings: every `OpenCheck` must observe the latest *closed*
//!   write, whichever GPU made it. The driver reports mismatches as data
//!   (not panics) so property harnesses can attach case numbers.

use std::sync::Arc;

use gpusim::Grid;
use hostfs::{HostFs, Ino};
use parking_lot::Mutex;

use crate::cluster::fleet::GpuFleet;
use crate::cluster::view::FleetView;
use crate::config::GOpenMode;
use crate::error::GpufsResult;

/// Audited coherence state of one file across the fleet (a
/// [`hostfs::FileSnapshot`] with the staleness verdict applied).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCoherence {
    /// The file's host inode.
    pub ino: Ino,
    /// Current host generation.
    pub generation: u64,
    /// Every registered GPU cache as `(coherence_id, cached_generation)`
    /// — the coherence id is the GPU id in a single-host fleet, and the
    /// host-qualified [`crate::GpuFsMount::coherence_id`] in a
    /// cross-host one.
    pub cachers: Vec<(usize, u64)>,
    /// Coherence ids whose cached generation lags — still registered
    /// (lazy invalidation has not reached them) but guaranteed to
    /// refetch on their next open.
    pub stale: Vec<usize>,
}

/// One step of a randomized close-to-open schedule
/// (see [`GpuFleet::run_close_to_open_schedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceOp {
    /// GPU `gpu` opens the file read-write, writes `tag` (to two
    /// separate pages), syncs, and closes — a complete close-to-open
    /// publication.
    WriteClose {
        /// The writing GPU.
        gpu: usize,
        /// The value published.
        tag: u64,
    },
    /// GPU `gpu` opens the file read-only, reads both tag cells, and
    /// closes. Close-to-open requires it to observe the latest
    /// `WriteClose` tag, whichever GPU wrote it.
    OpenCheck {
        /// The reading GPU.
        gpu: usize,
    },
}

/// Outcome of one [`GpuFleet::run_close_to_open_schedule`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleReport {
    /// `OpenCheck` steps executed.
    pub checks: usize,
    /// Violations as `(op_index, expected_tag, observed_tag)` — empty on
    /// a consistency-respecting run.
    pub mismatches: Vec<(usize, u64, u64)>,
}

/// Byte offset of the second tag cell: one page past the first at the
/// fleet's smallest configured page size would depend on config, so the
/// driver uses a fixed 64 KB stride and sizes the file accordingly —
/// with ≤ 64 KB pages the two cells exercise two separate cache pages.
const TAG_STRIDE: u64 = 64 << 10;

/// Point-in-time coherence audit of every file `fs`'s registry tracks,
/// sorted by inode — the shared engine behind both fleet types' audits.
pub(crate) fn audit_registry(fs: &HostFs) -> Vec<FileCoherence> {
    fs.consistency()
        .snapshot()
        .into_iter()
        .map(|s| {
            let stale = s.stale_cachers();
            FileCoherence {
                ino: s.ino,
                generation: s.generation,
                cachers: s.cachers,
                stale,
            }
        })
        .collect()
}

/// Per-file audit engine (one registry entry read, never the whole
/// registry).
pub(crate) fn audit_path(fs: &HostFs, path: &str) -> Option<FileCoherence> {
    let ino = fs.ino_of(path).ok()?;
    let s = fs.consistency().file_snapshot(ino)?;
    let stale = s.stale_cachers();
    Some(FileCoherence {
        ino: s.ino,
        generation: s.generation,
        cachers: s.cachers,
        stale,
    })
}

impl GpuFleet {
    /// Point-in-time coherence audit of every file the shared registry
    /// tracks, sorted by inode.
    #[must_use]
    pub fn coherence_audit(&self) -> Vec<FileCoherence> {
        audit_registry(self.fs())
    }

    /// Coherence audit of the file at `path`, if the registry tracks it
    /// (one registry entry is read — a per-file audit never pays for the
    /// whole registry).
    #[must_use]
    pub fn audit_file(&self, path: &str) -> Option<FileCoherence> {
        audit_path(self.fs(), path)
    }

    /// Run a sequential close-to-open schedule against `path` (created
    /// with tag 0 if missing): each op runs to completion — every
    /// `WriteClose` fully publishes before the next op starts — so each
    /// `OpenCheck` has exactly one correct answer, the latest closed
    /// tag. Both tag cells (offset 0 and offset `TAG_STRIDE` = 64 KB)
    /// must agree; a disagreement between them, or with the expected
    /// tag, lands in [`ScheduleReport::mismatches`].
    ///
    /// # Errors
    ///
    /// Fails on host errors seeding the file and on GPUfs errors inside
    /// any step (daemon down, cache exhausted, ...), never on a
    /// consistency violation — those are the report's job.
    ///
    /// # Panics
    ///
    /// Panics if an op names a GPU outside the fleet.
    pub fn run_close_to_open_schedule(
        &self,
        path: &str,
        ops: &[CoherenceOp],
    ) -> GpufsResult<ScheduleReport> {
        run_schedule(self, path, ops)
    }
}

/// The schedule driver behind [`GpuFleet::run_close_to_open_schedule`]
/// (and its cross-host counterpart): ops name GPUs by the view's global
/// index, so the same schedule type spans hosts when the view does.
pub(crate) fn run_schedule<F: FleetView>(
    fleet: &F,
    path: &str,
    ops: &[CoherenceOp],
) -> GpufsResult<ScheduleReport> {
    if !fleet.fs().exists(path) {
        fleet
            .fs()
            .create(path, &vec![0u8; (TAG_STRIDE + 8) as usize])
            .map_err(crate::GpufsError::Host)?;
    }
    let mut report = ScheduleReport::default();
    // Seed the expectation from the file's current (host-visible)
    // tag: every WriteClose publishes before returning, so on a
    // reused path the first tag cell *is* the latest closed write —
    // resetting to 0 instead would report phantom mismatches.
    let mut latest: u64 = {
        let (data, _) = fleet
            .fs()
            .read_whole(path, 0)
            .map_err(crate::GpufsError::Host)?;
        let mut cell = [0u8; 8];
        let n = data.len().min(8);
        cell[..n].copy_from_slice(&data[..n]);
        u64::from_le_bytes(cell)
    };
    let failure: Arc<Mutex<Option<crate::GpufsError>>> = Arc::new(Mutex::new(None));
    let observed: Arc<Mutex<Option<(u64, u64)>>> = Arc::new(Mutex::new(None));
    for (i, &op) in ops.iter().enumerate() {
        match op {
            CoherenceOp::WriteClose { gpu, tag } => {
                let mount = Arc::clone(fleet.mount(gpu));
                let path = path.to_owned();
                let failure = Arc::clone(&failure);
                fleet.gpu(gpu).launch(Grid::new(1, 32), 0, move |blk| {
                    let mut work = || -> GpufsResult<()> {
                        let fd = mount.open(blk, &path, GOpenMode::ReadWrite)?;
                        mount.write(blk, &fd, 0, &tag.to_le_bytes())?;
                        mount.write(blk, &fd, TAG_STRIDE, &tag.to_le_bytes())?;
                        mount.fsync(blk, &fd)?;
                        mount.close(blk, fd)
                    };
                    if let Err(e) = work() {
                        failure.lock().get_or_insert(e);
                    }
                });
                latest = tag;
            }
            CoherenceOp::OpenCheck { gpu } => {
                let mount = Arc::clone(fleet.mount(gpu));
                let path = path.to_owned();
                let failure = Arc::clone(&failure);
                let observed_in = Arc::clone(&observed);
                fleet.gpu(gpu).launch(Grid::new(1, 32), 0, move |blk| {
                    let mut work = || -> GpufsResult<(u64, u64)> {
                        let fd = mount.open(blk, &path, GOpenMode::ReadOnly)?;
                        let mut a = [0u8; 8];
                        let mut b = [0u8; 8];
                        mount.read(blk, &fd, 0, &mut a)?;
                        mount.read(blk, &fd, TAG_STRIDE, &mut b)?;
                        mount.close(blk, fd)?;
                        Ok((u64::from_le_bytes(a), u64::from_le_bytes(b)))
                    };
                    match work() {
                        Ok(tags) => *observed_in.lock() = Some(tags),
                        Err(e) => {
                            failure.lock().get_or_insert(e);
                        }
                    }
                });
                report.checks += 1;
                if let Some((a, b)) = observed.lock().take() {
                    if a != latest {
                        report.mismatches.push((i, latest, a));
                    }
                    if b != latest {
                        report.mismatches.push((i, latest, b));
                    }
                }
            }
        }
        if let Some(e) = failure.lock().take() {
            return Err(e);
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::fleet::FleetBuilder;
    use crate::config::GpufsConfig;
    use gpusim::GpuSpec;

    fn fleet(n: usize) -> GpuFleet {
        FleetBuilder::new(n)
            .spec(GpuSpec::small_test())
            .config(GpufsConfig::small_test())
            .build()
            .unwrap()
    }

    #[test]
    fn open_after_write_observes_the_writers_generation() {
        let fleet = fleet(3);
        let report = fleet
            .run_close_to_open_schedule(
                "/c2o",
                &[
                    CoherenceOp::OpenCheck { gpu: 2 },
                    CoherenceOp::WriteClose { gpu: 0, tag: 7 },
                    CoherenceOp::OpenCheck { gpu: 1 },
                    CoherenceOp::OpenCheck { gpu: 2 },
                    CoherenceOp::WriteClose { gpu: 1, tag: 9 },
                    CoherenceOp::OpenCheck { gpu: 0 },
                ],
            )
            .unwrap();
        assert_eq!(report.checks, 4);
        assert_eq!(report.mismatches, vec![], "close-to-open violated");
        // After the dust settles, every cacher that reopened since the
        // last write is at the writer's generation.
        let audit = fleet.audit_file("/c2o").unwrap();
        let reader0 = audit.cachers.iter().find(|&&(g, _)| g == 0).unwrap();
        assert_eq!(
            reader0.1, audit.generation,
            "the reopened reader observed the writer's generation"
        );
    }

    #[test]
    fn stale_readers_are_invalidated_lazily_not_eagerly() {
        let fleet = fleet(3);
        // GPUs 1 and 2 cache the file, then GPU 0 publishes a write.
        fleet
            .run_close_to_open_schedule(
                "/lazy",
                &[
                    CoherenceOp::OpenCheck { gpu: 1 },
                    CoherenceOp::OpenCheck { gpu: 2 },
                    CoherenceOp::WriteClose { gpu: 0, tag: 5 },
                ],
            )
            .unwrap();
        // Nothing was broadcast: both readers still hold their (parked)
        // caches, registered at the old generation — stale, not dropped.
        let audit = fleet.audit_file("/lazy").unwrap();
        assert!(audit.stale.contains(&1) && audit.stale.contains(&2));
        // GPU 1 reopens: only *its* staleness resolves; GPU 2 stays
        // lazily stale until it reopens itself. The reused path seeds
        // the schedule's expectation from the file's current tag, so
        // the check must observe tag 5 — not a phantom 0.
        let report = fleet
            .run_close_to_open_schedule("/lazy", &[CoherenceOp::OpenCheck { gpu: 1 }])
            .unwrap();
        assert_eq!(report.mismatches, vec![], "reused path keeps its tag");
        let audit = fleet.audit_file("/lazy").unwrap();
        assert!(!audit.stale.contains(&1), "reopen resolved GPU 1");
        assert!(audit.stale.contains(&2), "GPU 2 still lazily stale");
    }

    #[test]
    fn concurrent_writers_to_disjoint_pages_merge_via_the_diff_protocol() {
        let fleet = fleet(4);
        let page = GpufsConfig::small_test().page_size as u64;
        fleet
            .fs()
            .create("/merge", &vec![0u8; (4 * page) as usize])
            .unwrap();
        // All four GPUs write their own page of one shared file at once.
        std::thread::scope(|s| {
            for g in 0..4usize {
                let mount = Arc::clone(fleet.mount(g));
                let gpu = Arc::clone(fleet.gpu(g));
                s.spawn(move || {
                    gpu.launch(Grid::new(1, 32), 0, move |blk| {
                        let fd = mount.open(blk, "/merge", GOpenMode::ReadWrite).unwrap();
                        mount
                            .write(blk, &fd, g as u64 * page, &vec![g as u8 + 1; page as usize])
                            .unwrap();
                        mount.fsync(blk, &fd).unwrap();
                        mount.close(blk, fd).unwrap();
                    });
                });
            }
        });
        let (data, _) = fleet.fs().read_whole("/merge", 0).unwrap();
        for g in 0..4usize {
            assert!(
                data[g * page as usize..(g + 1) * page as usize]
                    .iter()
                    .all(|&b| b == g as u8 + 1),
                "GPU {g}'s page lost in the merge"
            );
        }
        // A follow-up reader on any GPU sees the merged file.
        let report = fleet
            .run_close_to_open_schedule("/probe", &[CoherenceOp::OpenCheck { gpu: 3 }])
            .unwrap();
        assert_eq!(report.mismatches, vec![]);
    }

    #[test]
    fn audit_reports_unknown_paths_as_none() {
        let fleet = fleet(1);
        assert!(fleet.audit_file("/nope").is_none());
        assert!(fleet.coherence_audit().is_empty());
    }
}
