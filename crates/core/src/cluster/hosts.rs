//! [`HostFleet`]: fleets of fleets — M hosts × N GPUs over one shared
//! storage server.
//!
//! The cross-host tier composes what the crate already has: every host
//! is a plain [`GpuFleet`] (its own GPUs, PCIe links, daemon worker
//! pool), except its daemon serves through a [`HostProxy`] — one
//! simulated network link plus a host-local page cache — instead of a
//! local file system. All M proxies answer to one [`StorageServer`],
//! whose file system carries the §4.4 close-to-open consistency
//! registry; mounts register with host-qualified coherence ids
//! (`host * gpus_per_host + gpu`), so the registry, audits, and the
//! schedule driver span hosts with no new machinery.
//!
//! GPUs are addressed by a **global index** `g`: host `g / N`, local GPU
//! `g % N`. [`HostFleet`] implements [`FleetView`] under that indexing,
//! so the distributed search and the coherence schedule driver run over
//! a cross-host fleet exactly as they do over a single-host one.

use std::sync::Arc;

use gpusim::{Gpu, GpuSpec};
use hostfs::{HostFs, HostFsConfig};
use simtime::Timings;

use crate::cluster::coherence::{audit_path, audit_registry, run_schedule};
use crate::cluster::fleet::GpuFleet;
use crate::cluster::view::FleetView;
use crate::cluster::{CoherenceOp, FileCoherence, ScheduleReport};
use crate::config::GpufsConfig;
use crate::daemon::DaemonStats;
use crate::error::{GpufsError, GpufsResult};
use crate::mount::GpuFsMount;
use crate::remote::{HostProxy, StorageServer};

/// Builder for a [`HostFleet`], mirroring [`crate::FleetBuilder`]'s
/// style. Defaults: TESLA C2075 GPUs, default [`Timings`] (whose
/// `net_rtt_ns`/`net_mb_s` calibrate every host link), the default
/// [`GpufsConfig`], host caches off, and a fresh storage file system.
#[derive(Debug, Clone)]
pub struct HostFleetBuilder {
    hosts: usize,
    gpus_per_host: usize,
    config: GpufsConfig,
    spec: GpuSpec,
    timings: Timings,
    cache_pages: usize,
    fs: Option<Arc<HostFs>>,
}

impl HostFleetBuilder {
    /// A builder for `hosts` hosts of `gpus_per_host` GPUs each.
    #[must_use]
    pub fn new(hosts: usize, gpus_per_host: usize) -> Self {
        Self {
            hosts,
            gpus_per_host,
            config: GpufsConfig::default(),
            spec: GpuSpec::tesla_c2075(),
            timings: Timings::default(),
            cache_pages: 0,
            fs: None,
        }
    }

    /// GPUfs configuration of every mount on every host.
    #[must_use]
    pub fn config(mut self, config: GpufsConfig) -> Self {
        self.config = config;
        self
    }

    /// Hardware spec of every GPU.
    #[must_use]
    pub fn spec(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Timing calibration: PCIe per GPU, and — through `net_rtt_ns` /
    /// `net_mb_s` — every host's network link to the storage server.
    /// [`Timings::without_net`] makes the links free, which reduces one
    /// host to the local fleet it wraps.
    #[must_use]
    pub fn timings(mut self, timings: Timings) -> Self {
        self.timings = timings;
        self
    }

    /// Capacity of each host's local page cache, in pages (0 = off, the
    /// default). Hits are served at host-DRAM speed without touching the
    /// wire; coherence stays close-to-open via lazy generation checks.
    #[must_use]
    pub fn host_cache_pages(mut self, pages: usize) -> Self {
        self.cache_pages = pages;
        self
    }

    /// Put the storage server over an existing file system instead of a
    /// fresh one built from the builder's timings (shared corpora,
    /// custom memory budgets). Its [`Timings`] calibrate the host links.
    #[must_use]
    pub fn storage_fs(mut self, fs: Arc<HostFs>) -> Self {
        self.fs = Some(fs);
        self
    }

    /// Build the fleet: one [`StorageServer`], M proxies, M per-host
    /// [`GpuFleet`]s with disjoint coherence-id ranges.
    ///
    /// # Errors
    ///
    /// Fails on an empty dimension and on any per-host fleet build error
    /// (cache larger than GPU memory, ...).
    pub fn build(self) -> GpufsResult<HostFleet> {
        if self.hosts == 0 || self.gpus_per_host == 0 {
            return Err(GpufsError::InvalidMode(
                "a host fleet needs at least one host and one GPU per host",
            ));
        }
        let fs = self.fs.clone().unwrap_or_else(|| {
            Arc::new(HostFs::new(HostFsConfig {
                timings: self.timings.clone(),
                ..HostFsConfig::default()
            }))
        });
        let server = Arc::new(StorageServer::new(fs));
        let mut proxies = Vec::with_capacity(self.hosts);
        let mut fleets = Vec::with_capacity(self.hosts);
        for h in 0..self.hosts {
            let proxy = Arc::new(HostProxy::new(Arc::clone(&server), self.cache_pages));
            let fleet = GpuFleet::builder(self.gpus_per_host)
                .spec(self.spec.clone())
                .timings(self.timings.clone())
                .config(self.config.clone())
                .proxy(Arc::clone(&proxy))
                .coherence_base(h * self.gpus_per_host)
                .build()?;
            proxies.push(proxy);
            fleets.push(fleet);
        }
        Ok(HostFleet {
            server,
            proxies,
            fleets,
            gpus_per_host: self.gpus_per_host,
        })
    }
}

/// M hosts × N GPUs over one shared storage server (see module docs).
pub struct HostFleet {
    server: Arc<StorageServer>,
    proxies: Vec<Arc<HostProxy>>,
    fleets: Vec<GpuFleet>,
    gpus_per_host: usize,
}

impl std::fmt::Debug for HostFleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostFleet")
            .field("hosts", &self.fleets.len())
            .field("gpus_per_host", &self.gpus_per_host)
            .finish()
    }
}

impl HostFleet {
    /// A builder for `hosts` hosts of `gpus_per_host` GPUs each.
    #[must_use]
    pub fn builder(hosts: usize, gpus_per_host: usize) -> HostFleetBuilder {
        HostFleetBuilder::new(hosts, gpus_per_host)
    }

    /// Number of hosts.
    #[must_use]
    pub fn num_hosts(&self) -> usize {
        self.fleets.len()
    }

    /// GPUs on each host.
    #[must_use]
    pub fn gpus_per_host(&self) -> usize {
        self.gpus_per_host
    }

    /// The shared storage server.
    #[must_use]
    pub fn server(&self) -> &Arc<StorageServer> {
        &self.server
    }

    /// The storage server's file system (and through it the consistency
    /// registry).
    #[must_use]
    pub fn fs(&self) -> &Arc<HostFs> {
        self.server.fs()
    }

    /// Host `h`'s fleet.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    #[must_use]
    pub fn fleet(&self, h: usize) -> &GpuFleet {
        &self.fleets[h]
    }

    /// Host `h`'s proxy (network link, wire counters, host page cache).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    #[must_use]
    pub fn proxy(&self, h: usize) -> &Arc<HostProxy> {
        &self.proxies[h]
    }

    /// The host that global GPU `g` lives on.
    #[must_use]
    pub fn host_of(&self, g: usize) -> usize {
        g / self.gpus_per_host
    }

    /// Host `h`'s daemon stat sheet — the per-host slice of the fleet's
    /// activity. Summing any counter over every host reproduces the
    /// whole fleet's traffic (each request is served by exactly one
    /// host's daemon).
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    #[must_use]
    pub fn host_stats(&self, h: usize) -> &DaemonStats {
        self.fleets[h].hosts()[0].stats()
    }

    /// Point-in-time coherence audit of every file the shared registry
    /// tracks — cachers carry host-qualified coherence ids.
    #[must_use]
    pub fn coherence_audit(&self) -> Vec<FileCoherence> {
        audit_registry(self.fs())
    }

    /// Coherence audit of the file at `path`, if the registry tracks it.
    #[must_use]
    pub fn audit_file(&self, path: &str) -> Option<FileCoherence> {
        audit_path(self.fs(), path)
    }

    /// Run a sequential close-to-open schedule whose ops name GPUs by
    /// global index — so one schedule interleaves writers and readers
    /// across hosts. Semantics are exactly
    /// [`GpuFleet::run_close_to_open_schedule`]'s.
    ///
    /// # Errors
    ///
    /// Fails on host errors seeding the file and on GPUfs errors inside
    /// any step, never on a consistency violation — those are the
    /// report's job.
    pub fn run_close_to_open_schedule(
        &self,
        path: &str,
        ops: &[CoherenceOp],
    ) -> GpufsResult<ScheduleReport> {
        run_schedule(self, path, ops)
    }

    /// Stop every host's daemon. Idempotent; in-flight requests drain
    /// first.
    pub fn shutdown(&mut self) {
        for fleet in &mut self.fleets {
            fleet.shutdown();
        }
    }
}

impl FleetView for HostFleet {
    fn len(&self) -> usize {
        self.fleets.len() * self.gpus_per_host
    }

    fn gpu(&self, g: usize) -> &Arc<Gpu> {
        self.fleets[g / self.gpus_per_host].gpu(g % self.gpus_per_host)
    }

    fn mount(&self, g: usize) -> &Arc<GpuFsMount> {
        self.fleets[g / self.gpus_per_host].mount(g % self.gpus_per_host)
    }

    fn fs(&self) -> &Arc<HostFs> {
        self.server.fs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(hosts: usize, gpus: usize, cache_pages: usize) -> HostFleet {
        HostFleet::builder(hosts, gpus)
            .spec(GpuSpec::small_test())
            .config(GpufsConfig::small_test())
            .host_cache_pages(cache_pages)
            .build()
            .unwrap()
    }

    #[test]
    fn hosts_share_one_server_with_disjoint_coherence_ids() {
        let hf = small(2, 2, 0);
        assert_eq!(FleetView::len(&hf), 4);
        assert_eq!(hf.num_hosts(), 2);
        for h in 0..2 {
            assert!(Arc::ptr_eq(hf.fleet(h).fs(), hf.fs()));
            assert!(Arc::ptr_eq(hf.proxy(h).server().fs(), hf.fs()));
        }
        for g in 0..4 {
            assert_eq!(FleetView::mount(&hf, g).coherence_id(), g);
            assert_eq!(
                FleetView::gpu(&hf, g).id(),
                g % 2,
                "GPU ids stay positional"
            );
            assert_eq!(hf.host_of(g), g / 2);
        }
        // Empty dimensions are rejected loudly.
        assert!(matches!(
            HostFleet::builder(0, 2).build(),
            Err(GpufsError::InvalidMode(_))
        ));
        assert!(matches!(
            HostFleet::builder(2, 0).build(),
            Err(GpufsError::InvalidMode(_))
        ));
    }

    #[test]
    fn cross_host_schedule_respects_close_to_open() {
        let hf = small(2, 2, 64);
        // Writers and readers alternate hosts: GPU 0/1 on host 0,
        // GPU 2/3 on host 1.
        let report = hf
            .run_close_to_open_schedule(
                "/xh",
                &[
                    CoherenceOp::OpenCheck { gpu: 3 },
                    CoherenceOp::WriteClose { gpu: 0, tag: 11 },
                    CoherenceOp::OpenCheck { gpu: 2 },
                    CoherenceOp::WriteClose { gpu: 3, tag: 12 },
                    CoherenceOp::OpenCheck { gpu: 0 },
                    CoherenceOp::OpenCheck { gpu: 1 },
                ],
            )
            .unwrap();
        assert_eq!(report.checks, 4);
        assert_eq!(
            report.mismatches,
            vec![],
            "close-to-open violated across hosts"
        );
        // The audit sees host-qualified cachers from both hosts.
        let audit = hf.audit_file("/xh").unwrap();
        assert!(audit.cachers.iter().any(|&(id, _)| id >= 2));
        assert!(audit.cachers.iter().any(|&(id, _)| id < 2));
    }

    #[test]
    fn stale_host_caches_are_invalidated_lazily_never_eagerly() {
        let hf = small(2, 1, 64);
        // Host 1 reads (fills its host cache), then host 0 publishes.
        hf.run_close_to_open_schedule(
            "/lazy-xh",
            &[
                CoherenceOp::OpenCheck { gpu: 1 },
                CoherenceOp::WriteClose { gpu: 0, tag: 3 },
            ],
        )
        .unwrap();
        let before = hf.proxy(1).cache().stats().lazy_invalidations.get();
        assert_eq!(before, 0, "publication must not reach into host 1's cache");
        assert!(
            !hf.proxy(1).cache().is_empty(),
            "host 1 still holds its (now stale) pages"
        );
        // Only when host 1 reads again do its stale pages fall out —
        // detected page by page at lookup, the §4.4 lazy discipline
        // extended to the host tier.
        hf.run_close_to_open_schedule("/lazy-xh", &[CoherenceOp::OpenCheck { gpu: 1 }])
            .unwrap();
        assert!(
            hf.proxy(1).cache().stats().lazy_invalidations.get() > 0,
            "stale host-cache pages must be dropped at lookup"
        );
    }

    #[test]
    fn per_host_stats_sum_to_the_fleet_aggregate() {
        use crate::config::GOpenMode;
        use gpusim::Grid;

        // The full fleets-of-fleets matrix: 4 hosts × 8 GPUs × 2
        // tenants. Every rollup anyone reads — per-cell, per-GPU,
        // per-tenant, per-host, fleet-wide — must reconcile counter by
        // counter, because they are all sum views over the same
        // (gpu, tenant) leaf sheets.
        const HOSTS: usize = 4;
        const GPUS: usize = 8;
        let hf = HostFleet::builder(HOSTS, GPUS)
            .spec(GpuSpec::small_test())
            .config(GpufsConfig::small_test().with_tenant_weights(vec![2, 1]))
            .host_cache_pages(16)
            .build()
            .unwrap();
        hf.fs().create("/sum", &vec![7u8; 32 << 10]).unwrap();
        for g in 0..HOSTS * GPUS {
            let mount = Arc::clone(FleetView::mount(&hf, g));
            // Odd blocks run as tenant 1, so both breakdown columns see
            // traffic on every GPU (the lane is the block id).
            for slot in 0..4 {
                mount.set_tenant(slot, slot % 2);
            }
            FleetView::gpu(&hf, g).launch(Grid::new(4, 8), 0, move |blk| {
                let fd = mount.open(blk, "/sum", GOpenMode::ReadOnly).unwrap();
                let mut buf = [0u8; 4096];
                mount.read(blk, &fd, 0, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == 7));
                mount.close(blk, fd).unwrap();
            });
        }
        let find =
            |sheet: &[(&str, u64)], name: &str| sheet.iter().find(|&&(n, _)| n == name).unwrap().1;
        let fleet_total: u64 = (0..HOSTS)
            .map(|h| find(&hf.host_stats(h).snapshot(), "requests"))
            .sum();
        assert!(fleet_total > 0);
        for h in 0..HOSTS {
            let host = &hf.fleet(h).hosts()[0];
            for (name, host_v) in host.stats().snapshot() {
                // Host aggregate == Σ its per-GPU sheets == Σ its
                // per-tenant sheets == Σ its (gpu, tenant) cells.
                let by_gpu: u64 = (0..GPUS)
                    .map(|g| find(&host.stats_for(g).snapshot(), name))
                    .sum();
                let by_tenant: u64 = (0..host.num_tenants())
                    .map(|t| find(&host.stats_for_tenant(t).snapshot(), name))
                    .sum();
                let by_cell: u64 = (0..GPUS)
                    .flat_map(|g| (0..host.num_tenants()).map(move |t| (g, t)))
                    .map(|(g, t)| find(&host.stats_for_cell(g, t).snapshot(), name))
                    .sum();
                assert_eq!(host_v, by_gpu, "per-GPU attribution of {name} on host {h}");
                assert_eq!(
                    host_v, by_tenant,
                    "per-tenant attribution of {name} on host {h}"
                );
                assert_eq!(
                    host_v, by_cell,
                    "per-cell attribution of {name} on host {h}"
                );
            }
            // Both tenants really saw traffic on this host.
            for t in 0..host.num_tenants() {
                assert!(
                    find(&host.stats_for_tenant(t).snapshot(), "requests") > 0,
                    "tenant {t} idle on host {h}"
                );
            }
        }
        // Wire counters: every host RPC hit the shared server exactly
        // once, so per-host wire_rpcs sum to the server's frame count.
        let wire: u64 = (0..HOSTS).map(|h| hf.proxy(h).wire().wire_rpcs.get()).sum();
        assert_eq!(wire, hf.server().stats().frames.get());
    }
}
