//! The multi-GPU cluster layer: running N GPUfs mounts as one fleet
//! (paper §4.4 and §6).
//!
//! The paper's headline experiment is not a single GPU: the exhaustive
//! image search shards one shared file set across up to 8 GPUs, each
//! running its own buffer cache against a common host file system, kept
//! coherent by the close-to-open consistency model of §4.4. Everything
//! below this module composes *one* mount; this layer owns the fleet:
//!
//! * **[`fleet`]** — [`GpuFleet`]: N [`crate::GpuFsMount`]s over one
//!   shared [`hostfs::HostFs`] and consistency registry, each GPU with
//!   its own simulated PCIe link and buffer cache, built by a
//!   [`FleetBuilder`] that mirrors [`crate::GpufsConfig`] (per-GPU
//!   overrides, shared vs per-GPU daemon worker pools) and is validated
//!   at mount like the existing concurrency knobs.
//! * **[`sched`]** — work distribution for file-grained jobs:
//!   [`WorkQueue`] gives static sharding plus a dynamic work-stealing
//!   mode where an idle GPU steals file chunks from the slowest shard —
//!   the mechanism the paper's image search needs to balance skewed
//!   match costs across devices.
//! * **[`coherence`]** — fleet-level close-to-open enforcement and
//!   stress machinery: auditing which GPU caches which file at which
//!   generation (via the registry snapshot), and schedule drivers that
//!   let tests interleave open→write→close→reopen across K GPUs and
//!   assert every reopen observes the latest closed generation.
//! * **[`hosts`]** — [`HostFleet`]: fleets of fleets. M hosts, each a
//!   [`GpuFleet`] served through a [`crate::HostProxy`] over a simulated
//!   network link, sharing one [`crate::StorageServer`] and registry;
//!   coherence ids are host-qualified so audits and schedules span
//!   hosts.
//! * **[`view`]** — [`FleetView`]: the common driver surface both fleet
//!   types implement, so workloads run unchanged over either.

pub mod coherence;
pub mod fleet;
pub mod hosts;
pub mod sched;
pub mod view;

pub use coherence::{CoherenceOp, FileCoherence, ScheduleReport};
pub use fleet::{DaemonTopology, FleetBuilder, GpuFleet};
pub use hosts::{HostFleet, HostFleetBuilder};
pub use sched::{ShardStrategy, WorkItem, WorkQueue};
pub use view::FleetView;
