//! Work distribution across the fleet's GPUs (paper §6).
//!
//! The paper's image search shards one shared file set across up to 8
//! GPUs. With uniform inputs a static split is enough, but real match
//! costs are skewed — one database file can cost many times another —
//! and a static shard then leaves most GPUs idle while the unlucky one
//! finishes. [`WorkQueue`] models both policies over *file-grained*
//! jobs: every work item is a file (or a chunk of one), items are dealt
//! to per-GPU shards up front, and under
//! [`ShardStrategy::WorkStealing`] a GPU whose own shard runs dry steals
//! items from the back of the slowest (most-loaded) shard instead of
//! going idle.
//!
//! Threadblocks pull items directly — `queue.next(gpu)` from inside the
//! kernel — so the queue also load-balances *within* a GPU across its
//! resident blocks, exactly like the atomically-incremented work index
//! GPU kernels conventionally use.

use parking_lot::Mutex;
use simtime::Counter;
use std::collections::VecDeque;

/// How work items are distributed across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Items are dealt to per-GPU shards up front and never move: a GPU
    /// that drains its shard goes idle (the paper's static split).
    Static,
    /// Static dealing plus dynamic balancing: an idle GPU steals the
    /// tail item of the shard with the most work left.
    #[default]
    WorkStealing,
}

/// One claimed work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Index into the job list the queue was built over.
    pub index: usize,
    /// Whether this item was stolen from another GPU's shard.
    pub stolen: bool,
}

/// A fleet-level distribution queue over `n_items` file-grained jobs
/// (see module docs).
#[derive(Debug)]
pub struct WorkQueue {
    shards: Vec<Mutex<VecDeque<usize>>>,
    strategy: ShardStrategy,
    steals: Counter,
}

impl WorkQueue {
    /// Deal items `0..n_items` to `n_shards` shards in contiguous runs
    /// (item `i` goes to shard `i * n_shards / n_items`), the natural
    /// split when consecutive items are chunks of the same files.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    #[must_use]
    pub fn contiguous(n_items: usize, n_shards: usize, strategy: ShardStrategy) -> Self {
        assert!(n_shards > 0, "work queue needs at least one shard");
        let mut shards: Vec<VecDeque<usize>> = (0..n_shards).map(|_| VecDeque::new()).collect();
        for item in 0..n_items {
            shards[item * n_shards / n_items.max(1)].push_back(item);
        }
        Self::from_shards(shards, strategy)
    }

    /// Deal items round-robin (item `i` to shard `i mod n_shards`),
    /// interleaving consecutive items across GPUs.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    #[must_use]
    pub fn round_robin(n_items: usize, n_shards: usize, strategy: ShardStrategy) -> Self {
        assert!(n_shards > 0, "work queue needs at least one shard");
        let mut shards: Vec<VecDeque<usize>> = (0..n_shards).map(|_| VecDeque::new()).collect();
        for item in 0..n_items {
            shards[item % n_shards].push_back(item);
        }
        Self::from_shards(shards, strategy)
    }

    /// Deal item `i` to shard `assignments[i]` — the general form behind
    /// file-grained sharding with sub-file items: assign every chunk of
    /// one file to that file's shard, and stealing still migrates
    /// individual chunks.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero or any assignment is out of range.
    #[must_use]
    pub fn with_assignments(
        assignments: &[usize],
        n_shards: usize,
        strategy: ShardStrategy,
    ) -> Self {
        assert!(n_shards > 0, "work queue needs at least one shard");
        let mut shards: Vec<VecDeque<usize>> = (0..n_shards).map(|_| VecDeque::new()).collect();
        for (item, &shard) in assignments.iter().enumerate() {
            shards[shard].push_back(item);
        }
        Self::from_shards(shards, strategy)
    }

    fn from_shards(shards: Vec<VecDeque<usize>>, strategy: ShardStrategy) -> Self {
        Self {
            shards: shards.into_iter().map(Mutex::new).collect(),
            strategy,
            steals: Counter::new(),
        }
    }

    /// Number of shards (GPUs) the queue deals to.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Claim the next item for GPU `shard`: the front of its own shard,
    /// or — under [`ShardStrategy::WorkStealing`] — the tail of the
    /// shard with the most items left. `None` means this GPU is done
    /// (though under stealing, `None` means the whole fleet is done).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[must_use]
    pub fn next(&self, shard: usize) -> Option<WorkItem> {
        if let Some(index) = self.shards[shard].lock().pop_front() {
            return Some(WorkItem {
                index,
                stolen: false,
            });
        }
        if self.strategy == ShardStrategy::Static {
            return None;
        }
        // Steal from the slowest shard: the one with the most work left.
        // Victim choice and pop are not atomic with respect to other
        // thieves — at worst two thieves pick the same victim and the
        // second retries — so loop until a steal lands or everything is
        // provably empty.
        loop {
            let victim = self
                .shards
                .iter()
                .enumerate()
                .filter(|&(s, _)| s != shard)
                .map(|(s, q)| (q.lock().len(), s))
                .max()?;
            let (len, victim) = victim;
            if len == 0 {
                return None;
            }
            if let Some(index) = self.shards[victim].lock().pop_back() {
                self.steals.incr();
                return Some(WorkItem {
                    index,
                    stolen: true,
                });
            }
        }
    }

    /// Items stolen so far (0 under [`ShardStrategy::Static`]).
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.steals.get()
    }

    /// Items not yet claimed, across all shards.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn drain_all(q: &WorkQueue, shard: usize) -> Vec<WorkItem> {
        std::iter::from_fn(|| q.next(shard)).collect()
    }

    #[test]
    fn contiguous_dealing_splits_in_runs() {
        let q = WorkQueue::contiguous(8, 2, ShardStrategy::Static);
        let a: Vec<usize> = drain_all(&q, 0).iter().map(|w| w.index).collect();
        let b: Vec<usize> = drain_all(&q, 1).iter().map(|w| w.index).collect();
        assert_eq!(a, vec![0, 1, 2, 3]);
        assert_eq!(b, vec![4, 5, 6, 7]);
        assert_eq!(q.steals(), 0, "static never steals");
    }

    #[test]
    fn round_robin_interleaves() {
        let q = WorkQueue::round_robin(6, 3, ShardStrategy::Static);
        assert_eq!(
            drain_all(&q, 1).iter().map(|w| w.index).collect::<Vec<_>>(),
            vec![1, 4]
        );
    }

    #[test]
    fn static_shard_goes_idle_but_stealing_drains_everything() {
        let q = WorkQueue::contiguous(6, 3, ShardStrategy::Static);
        assert_eq!(drain_all(&q, 0).len(), 2);
        assert!(q.next(0).is_none(), "static: own shard empty means idle");
        assert_eq!(q.remaining(), 4, "other shards untouched");

        let q = WorkQueue::contiguous(6, 3, ShardStrategy::WorkStealing);
        let items = drain_all(&q, 0);
        assert_eq!(items.len(), 6, "one GPU steals the whole fleet's work");
        assert_eq!(q.steals(), 4);
        assert_eq!(
            items.iter().filter(|w| w.stolen).count(),
            4,
            "everything beyond the own shard is marked stolen"
        );
        assert!(items[..2].iter().all(|w| !w.stolen));
    }

    #[test]
    fn steals_come_from_the_tail_of_the_fullest_shard() {
        // Shard 0: items 0..6, shard 1: 6..8, shard 2: empty.
        let mut shards = vec![VecDeque::new(), VecDeque::new(), VecDeque::new()];
        shards[0].extend(0..6usize);
        shards[1].extend(6..8usize);
        let q = WorkQueue::from_shards(shards, ShardStrategy::WorkStealing);
        let w = q.next(2).unwrap();
        assert!(w.stolen);
        assert_eq!(w.index, 5, "tail of the most-loaded shard");
        let w = q.next(2).unwrap();
        assert_eq!(w.index, 4);
    }

    #[test]
    fn concurrent_claimants_cover_every_item_exactly_once() {
        let q = WorkQueue::round_robin(256, 4, ShardStrategy::WorkStealing);
        let claimed: Vec<Vec<usize>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|g| {
                    let q = &q;
                    s.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(w) = q.next(g) {
                            mine.push(w.index);
                            std::thread::yield_now();
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let all: Vec<usize> = claimed.iter().flatten().copied().collect();
        assert_eq!(all.len(), 256, "every item claimed");
        assert_eq!(
            all.iter().copied().collect::<HashSet<_>>().len(),
            256,
            "no item claimed twice"
        );
        assert_eq!(q.remaining(), 0);
    }
}
