//! GPU→CPU remote procedure calls (paper §4.3).
//!
//! The GPU is the *client*: threadblocks post requests into FIFO queues
//! in write-shared memory and spin until the host daemon acknowledges
//! completion — reversing the usual GPU-as-coprocessor roles. The host
//! cannot be signalled (no GPU-initiated interrupts, no PCIe atomics), so
//! the daemon polls; we model the poll latency on arrival and the
//! completion-visibility latency on the way back, while using an OS
//! condition variable to avoid burning a real core.
//!
//! The hub holds **N independent channels** (the paper's daemon "uses
//! multiple asynchronous CPU-GPU channels to utilize full-duplex DMA"):
//! each threadblock slot is statically assigned a channel by
//! `slot % channels`, so independent blocks can have requests in flight
//! simultaneously without queueing behind one another, while one block's
//! own requests — which are synchronous — stay FIFO on its channel.
//! `channels = 1` is the original single-FIFO hub. Claims are handed to
//! the daemon's worker pool by a fair round-robin scan over the channels
//! (see `RpcHub::next`).
//!
//! ## Shutdown protocol
//!
//! Posting a request and closing the hub are serialized on one lock, so
//! every call lands on exactly one side of the close: posted before it —
//! and then the worker pool is guaranteed to claim and serve it before
//! exiting — or after it, and rejected immediately with
//! [`GpufsError::DaemonStopped`]. A spinning threadblock can never be
//! stranded mid-shutdown with an envelope nobody will answer.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

use gpusim::{DevPtr, GpuId};
use hostfs::{FsError, HostFd, Ino};
use parking_lot::{Condvar, Mutex};
use simtime::{Nanos, Timings};

use crate::error::{GpufsError, GpufsResult};

/// One page descriptor inside a [`Request::ReadPages`] batch.
#[derive(Debug, Clone, Copy)]
pub struct PageRead {
    /// File offset of the page.
    pub offset: u64,
    /// Bytes to read (one buffer-cache page or less).
    pub len: usize,
    /// Destination frame in GPU global memory.
    pub dst: DevPtr,
}

/// One page descriptor inside a [`Request::WritePages`] batch: the dirty
/// byte extents of one buffer-cache page, produced by the GPU-side diff
/// (against the pristine copy, or against zeros for `O_GWRONCE` files),
/// so only modified bytes travel (paper §3.1).
#[derive(Debug, Clone)]
pub struct PageWrite {
    /// Source frame in GPU global memory (page base).
    pub src: DevPtr,
    /// File offset of the page start.
    pub page_offset: u64,
    /// Modified extents, as `(offset_in_page, len)` pairs.
    pub extents: Vec<(u32, u32)>,
}

/// A request from a GPU threadblock to the host daemon.
#[derive(Debug, Clone)]
pub enum Request {
    /// Open (and possibly create) a host file.
    Open {
        /// Absolute path on the host file system.
        path: String,
        /// Whether the GPU open mode implies write access.
        write: bool,
        /// Create the file if missing.
        create: bool,
        /// Truncate on open.
        truncate: bool,
    },
    /// Close a host descriptor.
    Close {
        /// Host descriptor from a previous [`Request::Open`].
        fd: HostFd,
    },
    /// Read a batch of pages of one file into GPU memory in a single
    /// daemon round-trip: the daemon preads every descriptor into staging
    /// and ships the whole batch with *one* scatter-gather DMA charge.
    /// A single page miss is the batch of one; readahead widens the batch
    /// so host round-trips amortize over many pages (paper Fig. 4's
    /// pread/DMA pipelining, taken one step further).
    ReadPages {
        /// Host descriptor.
        fd: HostFd,
        /// Pages to fetch, in ascending file order.
        pages: Vec<PageRead>,
        /// Which GPU's DMA engine to use.
        gpu: GpuId,
    },
    /// Write the dirty extents of a batch of pages of one file back to
    /// the host in a single daemon round-trip: all extents are gathered
    /// with *one* scatter-gather D2H DMA charge, then written to the host
    /// file. The write-back mirror of [`Request::ReadPages`] — a single
    /// page sync is the batch of one; `gfsync`/eviction widen the batch
    /// (the paper's diff-based *bulk* write-back, §3.1/§4.3).
    WritePages {
        /// Host descriptor.
        fd: HostFd,
        /// Pages to write back, in ascending file order.
        pages: Vec<PageWrite>,
        /// Which GPU's DMA engine to use.
        gpu: GpuId,
    },
    /// Flush the host file to stable storage.
    Fsync {
        /// Host descriptor.
        fd: HostFd,
    },
    /// Remove a file from the host namespace.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// Truncate the host file.
    Truncate {
        /// Host descriptor.
        fd: HostFd,
        /// New size in bytes.
        size: u64,
    },
    /// Query file metadata by path.
    Stat {
        /// Absolute path.
        path: String,
    },
}

/// Successful response payloads.
#[derive(Debug, Clone)]
pub enum RespOk {
    /// Result of [`Request::Open`].
    Opened {
        /// Host descriptor for subsequent data requests.
        fd: HostFd,
        /// Host inode number (keys the closed-file table).
        ino: Ino,
        /// File size at open time (fixed for the whole GPU open, paper
        /// Table 1: `gfstat` reflects size at first `gopen`).
        size: u64,
        /// Host consistency generation at open time.
        generation: u64,
    },
    /// Per-page byte counts transferred by a [`Request::ReadPages`] batch.
    Read {
        /// Bytes actually read per descriptor, in request order (short at
        /// EOF).
        ns: Vec<usize>,
        /// Virtual time at which each page's bytes land in GPU memory
        /// (its chunk's DMA completion), in request order; `0` for pages
        /// that moved no bytes. At [`crate::GpufsConfig::io_depth`] `= 2`
        /// the engine drains before responding, so every entry equals the
        /// response time; deeper staging lets trailing entries exceed it,
        /// and the client gates each page's pins on its own entry.
        ready: Vec<Nanos>,
    },
    /// Bytes written back.
    Wrote {
        /// Bytes written.
        n: usize,
        /// Host consistency generation after the writes (lets the GPU's
        /// cache track its own propagated changes).
        generation: u64,
    },
    /// Metadata from [`Request::Stat`].
    Stat {
        /// Inode number.
        ino: Ino,
        /// Size in bytes.
        size: u64,
        /// Whether the file is writable at host level.
        writable: bool,
        /// Host consistency generation (the lazy-invalidation probe that
        /// the WRAPFS character device answers in the paper, §4.4).
        generation: u64,
    },
    /// Operation with no payload completed.
    Done,
}

pub(crate) struct Envelope {
    pub req: Request,
    pub gpu: GpuId,
    pub issue: Nanos,
    pub tx: mpsc::SyncSender<(Result<RespOk, FsError>, Nanos)>,
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("req", &self.req)
            .field("gpu", &self.gpu)
            .field("issue", &self.issue)
            .finish()
    }
}

/// The write-shared request queues polled by the host daemon.
///
/// One hub serves all GPUs; per-threadblock FIFO order is preserved
/// because each block's requests are synchronous and land on one channel.
#[derive(Debug)]
pub struct RpcHub {
    /// Independent request FIFOs; a block posts to `slot % channels.len()`.
    channels: Vec<Mutex<VecDeque<Envelope>>>,
    /// Count of queued-but-unclaimed envelopes across all channels. Posts,
    /// claims, and the close all serialize on this lock (see the module
    /// docs for the shutdown protocol); the condvar wakes sleeping
    /// workers.
    pending: Mutex<usize>,
    ready: Condvar,
    /// Round-robin scan cursor so no channel is starved by the workers.
    scan: AtomicUsize,
    closed: AtomicBool,
}

impl Default for RpcHub {
    fn default() -> Self {
        Self::with_channels(1)
    }
}

impl RpcHub {
    /// An open, empty, single-channel hub (the original FIFO).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An open, empty hub with `n` independent channels (clamped to ≥ 1).
    #[must_use]
    pub fn with_channels(n: usize) -> Self {
        Self {
            channels: (0..n.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: Mutex::new(0),
            ready: Condvar::new(),
            scan: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Number of independent request channels.
    #[must_use]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Post a request on the channel of threadblock slot `slot` and block
    /// until the daemon completes it.
    ///
    /// `issue` is the client's virtual time when the slot was filled. The
    /// returned time is when the completion became visible to the GPU.
    pub(crate) fn call(
        &self,
        slot: usize,
        gpu: GpuId,
        issue: Nanos,
        timings: &Timings,
        req: Request,
    ) -> GpufsResult<(RespOk, Nanos)> {
        let (tx, rx) = mpsc::sync_channel(1);
        {
            // The closed check and the post are one critical section on
            // the pending lock: a request is either posted strictly before
            // the hub closes — and then the worker pool drains it before
            // exiting — or rejected here. There is no in-between where an
            // envelope could be queued with nobody left to answer it.
            let mut pending = self.pending.lock();
            if self.closed.load(Ordering::Acquire) {
                return Err(GpufsError::DaemonStopped);
            }
            self.channels[slot % self.channels.len()]
                .lock()
                .push_back(Envelope {
                    req,
                    gpu,
                    issue,
                    tx,
                });
            *pending += 1;
            self.ready.notify_one();
        }
        // The round-trip blocks until a daemon worker answers; holding any
        // shim lock across it would stall every thread that wants that
        // lock for a full host round-trip (and deadlock outright if the
        // daemon needs it to answer). Lockcheck flags exactly that.
        let recv = parking_lot::lockcheck::blocking_region("rpc-roundtrip", || rx.recv());
        let (result, end) = recv.map_err(|_| GpufsError::DaemonStopped)?;
        let visible = end + timings.rpc_complete_ns;
        match result {
            Ok(ok) => Ok((ok, visible)),
            Err(e) => Err(GpufsError::Host(e)),
        }
    }

    /// Daemon side: claim the next request from any channel, or `None`
    /// after shutdown once every queued request has been claimed.
    ///
    /// This is the dispatcher of the daemon's worker pool: workers park on
    /// one condvar, claims are handed out one per wakeup, and the claimed
    /// envelope is found by scanning the channels round-robin from a
    /// shared cursor so a busy channel cannot starve the others.
    pub(crate) fn next(&self) -> Option<Envelope> {
        let mut pending = self.pending.lock();
        loop {
            if *pending > 0 {
                *pending -= 1;
                drop(pending);
                // A claim corresponds to an envelope already pushed (the
                // counter is incremented after the push, under the same
                // lock), so the scan must eventually find one; concurrent
                // claimants each take exactly one.
                let n = self.channels.len();
                let start = self.scan.fetch_add(1, Ordering::Relaxed);
                loop {
                    for i in 0..n {
                        if let Some(env) = self.channels[(start + i) % n].lock().pop_front() {
                            return Some(env);
                        }
                    }
                    std::thread::yield_now();
                }
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            self.ready.wait(&mut pending);
        }
    }

    /// Mark the hub closed and wake every worker so the pool can drain
    /// the queued requests and exit. Serialized with `RpcHub::call` on
    /// the pending lock (see the module docs).
    pub(crate) fn close(&self) {
        let _pending = self.pending.lock();
        self.closed.store(true, Ordering::Release);
        self.ready.notify_all();
    }

    /// Whether the hub has been closed.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn spawn_fake_daemon(hub: &Arc<RpcHub>) -> std::thread::JoinHandle<()> {
        let daemon_hub = Arc::clone(hub);
        std::thread::spawn(move || {
            while let Some(env) = daemon_hub.next() {
                let end = env.issue + 100;
                env.tx.send((Ok(RespOk::Done), end)).unwrap();
            }
        })
    }

    #[test]
    fn call_roundtrips_through_a_fake_daemon() {
        let hub = Arc::new(RpcHub::new());
        let daemon = spawn_fake_daemon(&hub);
        let t = Timings::default();
        let (ok, visible) = hub
            .call(0, 0, 1_000, &t, Request::Fsync { fd: 3 })
            .expect("call should succeed");
        assert!(matches!(ok, RespOk::Done));
        assert_eq!(visible, 1_100 + t.rpc_complete_ns);
        hub.close();
        daemon.join().unwrap();
    }

    #[test]
    fn default_is_equivalent_to_new() {
        // clippy::new_without_default compliance (audited for every
        // `new()`-only type in this crate: RpcHub, Tables, CacheCounters,
        // RadixTree all implement Default).
        let hub = RpcHub::default();
        assert!(!hub.is_closed());
        assert_eq!(hub.num_channels(), 1);
        assert!(!RpcHub::new().is_closed());
    }

    #[test]
    fn channel_count_clamps_to_one() {
        assert_eq!(RpcHub::with_channels(0).num_channels(), 1);
        assert_eq!(RpcHub::with_channels(7).num_channels(), 7);
    }

    #[test]
    fn slots_spread_over_channels_and_all_roundtrip() {
        let hub = Arc::new(RpcHub::with_channels(4));
        let daemons: Vec<_> = (0..3).map(|_| spawn_fake_daemon(&hub)).collect();
        std::thread::scope(|s| {
            for slot in 0..16usize {
                let hub = &hub;
                s.spawn(move || {
                    let t = Timings::default();
                    for _ in 0..8 {
                        let (ok, _) = hub
                            .call(slot, 0, 0, &t, Request::Fsync { fd: slot as u64 })
                            .unwrap();
                        assert!(matches!(ok, RespOk::Done));
                    }
                });
            }
        });
        hub.close();
        for d in daemons {
            d.join().unwrap();
        }
    }

    #[test]
    fn closed_hub_rejects_calls() {
        let hub = RpcHub::new();
        hub.close();
        let err = hub.call(0, 0, 0, &Timings::default(), Request::Fsync { fd: 1 });
        assert!(matches!(err, Err(GpufsError::DaemonStopped)));
    }

    #[test]
    fn next_returns_none_after_close_and_drain() {
        let hub = RpcHub::with_channels(2);
        let (tx, _rx) = mpsc::sync_channel(1);
        hub.channels[1].lock().push_back(Envelope {
            req: Request::Unlink { path: "/x".into() },
            gpu: 0,
            issue: 0,
            tx,
        });
        *hub.pending.lock() = 1;
        hub.close();
        assert!(hub.next().is_some(), "queued request drains first");
        assert!(hub.next().is_none());
    }

    #[test]
    fn calls_racing_shutdown_complete_or_error_but_never_hang() {
        // Callers hammer the hub while it closes mid-flight. Every call
        // must resolve — served by the draining worker or rejected by the
        // post/close serialization — and the worker must exit.
        for _ in 0..20 {
            let hub = Arc::new(RpcHub::with_channels(3));
            let daemon = spawn_fake_daemon(&hub);
            let callers: Vec<_> = (0..8)
                .map(|i| {
                    let hub = Arc::clone(&hub);
                    std::thread::spawn(move || {
                        let t = Timings::default();
                        let mut outcomes = Vec::new();
                        for _ in 0..16 {
                            outcomes.push(hub.call(i, 0, 0, &t, Request::Fsync { fd: 1 }));
                        }
                        outcomes
                    })
                })
                .collect();
            hub.close();
            daemon.join().unwrap();
            for c in callers {
                for r in c.join().unwrap() {
                    assert!(
                        matches!(r, Ok((RespOk::Done, _)) | Err(GpufsError::DaemonStopped)),
                        "call must complete or error, got {r:?}"
                    );
                }
            }
            assert_eq!(*hub.pending.lock(), 0, "drain accounting balanced");
            assert!(hub.channels.iter().all(|c| c.lock().is_empty()));
        }
    }

    #[test]
    fn host_error_surfaces_to_caller() {
        let hub = Arc::new(RpcHub::new());
        let daemon_hub = Arc::clone(&hub);
        let daemon = std::thread::spawn(move || {
            while let Some(env) = daemon_hub.next() {
                env.tx
                    .send((Err(FsError::NotFound("/gone".into())), env.issue))
                    .unwrap();
            }
        });
        let err = hub.call(
            0,
            0,
            0,
            &Timings::default(),
            Request::Stat {
                path: "/gone".into(),
            },
        );
        assert!(matches!(err, Err(GpufsError::Host(FsError::NotFound(_)))));
        hub.close();
        daemon.join().unwrap();
    }
}
