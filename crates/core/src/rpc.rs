//! GPU→CPU remote procedure calls (paper §4.3).
//!
//! The GPU is the *client*: threadblocks post requests into a FIFO queue
//! in write-shared memory and spin until the host daemon acknowledges
//! completion — reversing the usual GPU-as-coprocessor roles. The host
//! cannot be signalled (no GPU-initiated interrupts, no PCIe atomics), so
//! the daemon polls; we model the poll latency on arrival and the
//! completion-visibility latency on the way back, while using an OS
//! condition variable to avoid burning a real core.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;

use gpusim::{DevPtr, GpuId};
use hostfs::{FsError, HostFd, Ino};
use parking_lot::{Condvar, Mutex};
use simtime::{Nanos, Timings};

use crate::error::{GpufsError, GpufsResult};

/// One page descriptor inside a [`Request::ReadPages`] batch.
#[derive(Debug, Clone, Copy)]
pub struct PageRead {
    /// File offset of the page.
    pub offset: u64,
    /// Bytes to read (one buffer-cache page or less).
    pub len: usize,
    /// Destination frame in GPU global memory.
    pub dst: DevPtr,
}

/// A request from a GPU threadblock to the host daemon.
#[derive(Debug, Clone)]
pub enum Request {
    /// Open (and possibly create) a host file.
    Open {
        /// Absolute path on the host file system.
        path: String,
        /// Whether the GPU open mode implies write access.
        write: bool,
        /// Create the file if missing.
        create: bool,
        /// Truncate on open.
        truncate: bool,
    },
    /// Close a host descriptor.
    Close {
        /// Host descriptor from a previous [`Request::Open`].
        fd: HostFd,
    },
    /// Read a batch of pages of one file into GPU memory in a single
    /// daemon round-trip: the daemon preads every descriptor into staging
    /// and ships the whole batch with *one* scatter-gather DMA charge.
    /// A single page miss is the batch of one; readahead widens the batch
    /// so host round-trips amortize over many pages (paper Fig. 4's
    /// pread/DMA pipelining, taken one step further).
    ReadPages {
        /// Host descriptor.
        fd: HostFd,
        /// Pages to fetch, in ascending file order.
        pages: Vec<PageRead>,
        /// Which GPU's DMA engine to use.
        gpu: GpuId,
    },
    /// Write the given byte extents of one page back to the host. The
    /// extents are produced by the GPU-side diff (against the pristine
    /// copy, or against zeros for `O_GWRONCE` files), so only modified
    /// bytes travel (paper §3.1).
    WriteExtents {
        /// Host descriptor.
        fd: HostFd,
        /// Source frame in GPU global memory.
        src: DevPtr,
        /// File offset of the page start.
        page_offset: u64,
        /// Modified extents, as `(offset_in_page, len)` pairs.
        extents: Vec<(u32, u32)>,
        /// Which GPU's DMA engine to use.
        gpu: GpuId,
    },
    /// Flush the host file to stable storage.
    Fsync {
        /// Host descriptor.
        fd: HostFd,
    },
    /// Remove a file from the host namespace.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// Truncate the host file.
    Truncate {
        /// Host descriptor.
        fd: HostFd,
        /// New size in bytes.
        size: u64,
    },
    /// Query file metadata by path.
    Stat {
        /// Absolute path.
        path: String,
    },
}

/// Successful response payloads.
#[derive(Debug, Clone)]
pub enum RespOk {
    /// Result of [`Request::Open`].
    Opened {
        /// Host descriptor for subsequent data requests.
        fd: HostFd,
        /// Host inode number (keys the closed-file table).
        ino: Ino,
        /// File size at open time (fixed for the whole GPU open, paper
        /// Table 1: `gfstat` reflects size at first `gopen`).
        size: u64,
        /// Host consistency generation at open time.
        generation: u64,
    },
    /// Per-page byte counts transferred by a [`Request::ReadPages`] batch.
    Read {
        /// Bytes actually read per descriptor, in request order (short at
        /// EOF).
        ns: Vec<usize>,
    },
    /// Bytes written back.
    Wrote {
        /// Bytes written.
        n: usize,
        /// Host consistency generation after the writes (lets the GPU's
        /// cache track its own propagated changes).
        generation: u64,
    },
    /// Metadata from [`Request::Stat`].
    Stat {
        /// Inode number.
        ino: Ino,
        /// Size in bytes.
        size: u64,
        /// Whether the file is writable at host level.
        writable: bool,
        /// Host consistency generation (the lazy-invalidation probe that
        /// the WRAPFS character device answers in the paper, §4.4).
        generation: u64,
    },
    /// Operation with no payload completed.
    Done,
}

pub(crate) struct Envelope {
    pub req: Request,
    pub gpu: GpuId,
    pub issue: Nanos,
    pub tx: mpsc::SyncSender<(Result<RespOk, FsError>, Nanos)>,
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("req", &self.req)
            .field("gpu", &self.gpu)
            .field("issue", &self.issue)
            .finish()
    }
}

/// The write-shared request queue polled by the host daemon.
///
/// One hub serves all GPUs (the paper's daemon is a single-threaded event
/// loop on one CPU); per-GPU FIFO order is preserved because each
/// threadblock's requests are pushed in issue order.
#[derive(Debug, Default)]
pub struct RpcHub {
    queue: Mutex<VecDeque<Envelope>>,
    ready: Condvar,
    closed: AtomicBool,
}

impl RpcHub {
    /// An open, empty hub.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Post a request and block until the daemon completes it.
    ///
    /// `issue` is the client's virtual time when the slot was filled. The
    /// returned time is when the completion became visible to the GPU.
    pub(crate) fn call(
        &self,
        gpu: GpuId,
        issue: Nanos,
        timings: &Timings,
        req: Request,
    ) -> GpufsResult<(RespOk, Nanos)> {
        if self.closed.load(Ordering::Acquire) {
            return Err(GpufsError::DaemonStopped);
        }
        let (tx, rx) = mpsc::sync_channel(1);
        {
            let mut q = self.queue.lock();
            q.push_back(Envelope {
                req,
                gpu,
                issue,
                tx,
            });
            self.ready.notify_one();
        }
        let (result, end) = rx.recv().map_err(|_| GpufsError::DaemonStopped)?;
        let visible = end + timings.rpc_complete_ns;
        match result {
            Ok(ok) => Ok((ok, visible)),
            Err(e) => Err(GpufsError::Host(e)),
        }
    }

    /// Daemon side: wait for the next request, or `None` after shutdown.
    pub(crate) fn next(&self) -> Option<Envelope> {
        let mut q = self.queue.lock();
        loop {
            if let Some(env) = q.pop_front() {
                return Some(env);
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            self.ready.wait(&mut q);
        }
    }

    /// Mark the hub closed and wake the daemon so it can drain and exit.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let _q = self.queue.lock();
        self.ready.notify_all();
    }

    /// Whether the hub has been closed.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn call_roundtrips_through_a_fake_daemon() {
        let hub = Arc::new(RpcHub::new());
        let daemon_hub = Arc::clone(&hub);
        let daemon = std::thread::spawn(move || {
            while let Some(env) = daemon_hub.next() {
                let end = env.issue + 100;
                env.tx.send((Ok(RespOk::Done), end)).unwrap();
            }
        });
        let t = Timings::default();
        let (ok, visible) = hub
            .call(0, 1_000, &t, Request::Fsync { fd: 3 })
            .expect("call should succeed");
        assert!(matches!(ok, RespOk::Done));
        assert_eq!(visible, 1_100 + t.rpc_complete_ns);
        hub.close();
        daemon.join().unwrap();
    }

    #[test]
    fn default_is_equivalent_to_new() {
        // clippy::new_without_default compliance (audited for every
        // `new()`-only type in this crate: RpcHub, Tables, CacheCounters,
        // RadixTree all implement Default).
        let hub = RpcHub::default();
        assert!(!hub.is_closed());
        assert!(!RpcHub::new().is_closed());
    }

    #[test]
    fn closed_hub_rejects_calls() {
        let hub = RpcHub::new();
        hub.close();
        let err = hub.call(0, 0, &Timings::default(), Request::Fsync { fd: 1 });
        assert!(matches!(err, Err(GpufsError::DaemonStopped)));
    }

    #[test]
    fn next_returns_none_after_close_and_drain() {
        let hub = RpcHub::new();
        let (tx, _rx) = mpsc::sync_channel(1);
        hub.queue.lock().push_back(Envelope {
            req: Request::Unlink { path: "/x".into() },
            gpu: 0,
            issue: 0,
            tx,
        });
        hub.close();
        assert!(hub.next().is_some(), "queued request drains first");
        assert!(hub.next().is_none());
    }

    #[test]
    fn host_error_surfaces_to_caller() {
        let hub = Arc::new(RpcHub::new());
        let daemon_hub = Arc::clone(&hub);
        let daemon = std::thread::spawn(move || {
            while let Some(env) = daemon_hub.next() {
                env.tx
                    .send((Err(FsError::NotFound("/gone".into())), env.issue))
                    .unwrap();
            }
        });
        let err = hub.call(
            0,
            0,
            &Timings::default(),
            Request::Stat {
                path: "/gone".into(),
            },
        );
        assert!(matches!(err, Err(GpufsError::Host(FsError::NotFound(_)))));
        hub.close();
        daemon.join().unwrap();
    }
}
