//! GPU→CPU remote procedure calls (paper §4.3).
//!
//! The GPU is the *client*: threadblocks post requests into FIFO queues
//! in write-shared memory and spin until the host daemon acknowledges
//! completion — reversing the usual GPU-as-coprocessor roles. The host
//! cannot be signalled (no GPU-initiated interrupts, no PCIe atomics), so
//! the daemon polls; we model the poll latency on arrival and the
//! completion-visibility latency on the way back, while using an OS
//! condition variable to avoid burning a real core.
//!
//! The hub holds **N independent channels** (the paper's daemon "uses
//! multiple asynchronous CPU-GPU channels to utilize full-duplex DMA"):
//! each threadblock slot is statically assigned a channel by
//! `slot % channels`, so independent blocks can have requests in flight
//! simultaneously without queueing behind one another, while one block's
//! own requests — which are synchronous — stay FIFO on its channel.
//! `channels = 1` is the original single-FIFO hub. Claims are handed to
//! the daemon's worker pool by a fair round-robin scan over the channels
//! (see `RpcHub::next`).
//!
//! ## Multi-tenancy
//!
//! Every request carries a [`TenantId`] — a small integer naming the
//! service class of the session that issued it. Three per-tenant
//! mechanisms hang off it, all defaulting to off (empty vectors in
//! [`crate::GpufsConfig`]), in which case the hub is bit-for-bit the
//! original fair-scan FIFO:
//!
//! * **Weighted dispatch** (`tenant_weights` non-empty): the channel set
//!   is replicated per tenant and the worker pool claims by *weighted
//!   deficit round-robin* over the tenant queues — each tenant is served
//!   up to `weight` requests per DRR round, so a bursty tenant's backlog
//!   cannot monopolize the workers while a light tenant waits.
//! * **Admission control** (`tenant_admission` non-empty): a tenant over
//!   its in-flight cap spins-then-sleeps in `RpcHub::call` before its
//!   request is ever queued, bounding the queue space and worker time one
//!   tenant can hold.
//! * Cache partitioning lives client-side (see `cache/reclaim.rs`), not
//!   here.
//!
//! ## Shutdown protocol
//!
//! Posting a request and closing the hub are serialized on one lock, so
//! every call lands on exactly one side of the close: posted before it —
//! and then the worker pool is guaranteed to claim and serve it before
//! exiting — or after it, and rejected immediately with
//! [`GpufsError::DaemonStopped`]. A spinning threadblock can never be
//! stranded mid-shutdown with an envelope nobody will answer.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

use gpusim::{DevPtr, GpuId};
use hostfs::{FsError, HostFd, Ino};
use parking_lot::{Condvar, Mutex};
use simtime::{Nanos, Timings};

use crate::error::{GpufsError, GpufsResult};

/// Service class of one GPUfs session. Tenant ids index the
/// `tenant_weights` / `tenant_admission` / `tenant_frame_quotas` vectors
/// of [`crate::GpufsConfig`]; ids beyond the configured tenant count are
/// clamped to the last tenant.
pub type TenantId = usize;

/// Spin budget of the admission throttle before it starts sleeping
/// (50 µs naps via `backoff::spin_then_sleep`).
const ADMISSION_SPIN_ROUNDS: usize = 64;

/// One page descriptor inside a [`Request::ReadPages`] batch.
#[derive(Debug, Clone, Copy)]
pub struct PageRead {
    /// File offset of the page.
    pub offset: u64,
    /// Bytes to read (one buffer-cache page or less).
    pub len: usize,
    /// Destination frame in GPU global memory.
    pub dst: DevPtr,
}

/// One page descriptor inside a [`Request::WritePages`] batch: the dirty
/// byte extents of one buffer-cache page, produced by the GPU-side diff
/// (against the pristine copy, or against zeros for `O_GWRONCE` files),
/// so only modified bytes travel (paper §3.1).
#[derive(Debug, Clone)]
pub struct PageWrite {
    /// Source frame in GPU global memory (page base).
    pub src: DevPtr,
    /// File offset of the page start.
    pub page_offset: u64,
    /// Modified extents, as `(offset_in_page, len)` pairs.
    pub extents: Vec<(u32, u32)>,
}

/// A request from a GPU threadblock to the host daemon.
#[derive(Debug, Clone)]
pub enum Request {
    /// Open (and possibly create) a host file.
    Open {
        /// Absolute path on the host file system.
        path: String,
        /// Whether the GPU open mode implies write access.
        write: bool,
        /// Create the file if missing.
        create: bool,
        /// Truncate on open.
        truncate: bool,
    },
    /// Close a host descriptor.
    Close {
        /// Host descriptor from a previous [`Request::Open`].
        fd: HostFd,
    },
    /// Read a batch of pages of one file into GPU memory in a single
    /// daemon round-trip: the daemon preads every descriptor into staging
    /// and ships the whole batch with *one* scatter-gather DMA charge.
    /// A single page miss is the batch of one; readahead widens the batch
    /// so host round-trips amortize over many pages (paper Fig. 4's
    /// pread/DMA pipelining, taken one step further).
    ReadPages {
        /// Host descriptor.
        fd: HostFd,
        /// Pages to fetch, in ascending file order.
        pages: Vec<PageRead>,
        /// Which GPU's DMA engine to use.
        gpu: GpuId,
    },
    /// Write the dirty extents of a batch of pages of one file back to
    /// the host in a single daemon round-trip: all extents are gathered
    /// with *one* scatter-gather D2H DMA charge, then written to the host
    /// file. The write-back mirror of [`Request::ReadPages`] — a single
    /// page sync is the batch of one; `gfsync`/eviction widen the batch
    /// (the paper's diff-based *bulk* write-back, §3.1/§4.3).
    WritePages {
        /// Host descriptor.
        fd: HostFd,
        /// Pages to write back, in ascending file order.
        pages: Vec<PageWrite>,
        /// Which GPU's DMA engine to use.
        gpu: GpuId,
    },
    /// Flush the host file to stable storage.
    Fsync {
        /// Host descriptor.
        fd: HostFd,
    },
    /// Remove a file from the host namespace.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// Truncate the host file.
    Truncate {
        /// Host descriptor.
        fd: HostFd,
        /// New size in bytes.
        size: u64,
    },
    /// Query file metadata by path.
    Stat {
        /// Absolute path.
        path: String,
    },
}

impl Request {
    /// The request's stable kind name — span labels and wire diagnostics.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Request::Open { .. } => "Open",
            Request::Close { .. } => "Close",
            Request::ReadPages { .. } => "ReadPages",
            Request::WritePages { .. } => "WritePages",
            Request::Fsync { .. } => "Fsync",
            Request::Unlink { .. } => "Unlink",
            Request::Truncate { .. } => "Truncate",
            Request::Stat { .. } => "Stat",
        }
    }

    /// The client-side span name for this request's round-trip (span
    /// labels must be `&'static str`, so the prefix is baked per kind).
    pub(crate) fn rpc_span_name(&self) -> &'static str {
        match self {
            Request::Open { .. } => "rpc:Open",
            Request::Close { .. } => "rpc:Close",
            Request::ReadPages { .. } => "rpc:ReadPages",
            Request::WritePages { .. } => "rpc:WritePages",
            Request::Fsync { .. } => "rpc:Fsync",
            Request::Unlink { .. } => "rpc:Unlink",
            Request::Truncate { .. } => "rpc:Truncate",
            Request::Stat { .. } => "rpc:Stat",
        }
    }
}

/// Successful response payloads.
#[derive(Debug, Clone)]
pub enum RespOk {
    /// Result of [`Request::Open`].
    Opened {
        /// Host descriptor for subsequent data requests.
        fd: HostFd,
        /// Host inode number (keys the closed-file table).
        ino: Ino,
        /// File size at open time (fixed for the whole GPU open, paper
        /// Table 1: `gfstat` reflects size at first `gopen`).
        size: u64,
        /// Host consistency generation at open time.
        generation: u64,
    },
    /// Per-page byte counts transferred by a [`Request::ReadPages`] batch.
    Read {
        /// Bytes actually read per descriptor, in request order (short at
        /// EOF).
        ns: Vec<usize>,
        /// Virtual time at which each page's bytes land in GPU memory
        /// (its chunk's DMA completion), in request order; `0` for pages
        /// that moved no bytes. At [`crate::GpufsConfig::io_depth`] `= 2`
        /// the engine drains before responding, so every entry equals the
        /// response time; deeper staging lets trailing entries exceed it,
        /// and the client gates each page's pins on its own entry.
        ready: Vec<Nanos>,
    },
    /// Bytes written back.
    Wrote {
        /// Bytes written.
        n: usize,
        /// Host consistency generation after the writes (lets the GPU's
        /// cache track its own propagated changes).
        generation: u64,
    },
    /// Metadata from [`Request::Stat`].
    Stat {
        /// Inode number.
        ino: Ino,
        /// Size in bytes.
        size: u64,
        /// Whether the file is writable at host level.
        writable: bool,
        /// Host consistency generation (the lazy-invalidation probe that
        /// the WRAPFS character device answers in the paper, §4.4).
        generation: u64,
    },
    /// Operation with no payload completed.
    Done,
}

pub(crate) struct Envelope {
    pub req: Request,
    pub tenant: TenantId,
    pub gpu: GpuId,
    pub issue: Nanos,
    /// Trace context of the issuing `g*` call, captured at post time so
    /// the daemon worker's spans nest under the client's RPC span.
    pub ctx: obs::TraceCtx,
    pub tx: mpsc::SyncSender<(Result<RespOk, FsError>, Nanos)>,
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("req", &self.req)
            .field("tenant", &self.tenant)
            .field("gpu", &self.gpu)
            .field("issue", &self.issue)
            .finish()
    }
}

/// Shared dispatcher state: the queued-envelope count the shutdown
/// protocol serializes on, plus the weighted-mode deficit-round-robin
/// bookkeeping (all claims mutate it under the one lock, so the DRR
/// schedule is a single global order even with many workers).
#[derive(Debug)]
struct HubState {
    /// Count of queued-but-unclaimed envelopes across all queues.
    pending: usize,
    /// DRR credit per tenant (weighted mode only): how many more claims
    /// this tenant may take in the current round.
    credit: Vec<u64>,
    /// Tenant the DRR scan resumes from.
    tenant_cursor: usize,
    /// Per-tenant rotating channel cursor, so channels within one tenant
    /// still get the fair-scan treatment.
    chan_cursor: Vec<usize>,
}

/// Decrement-on-drop handle for one admitted in-flight request; covers
/// every exit path of `RpcHub::call` (answer, host error, daemon death).
struct InflightGuard<'a>(Option<&'a AtomicUsize>);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.0 {
            c.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// The write-shared request queues polled by the host daemon.
///
/// One hub serves all GPUs; per-threadblock FIFO order is preserved
/// because each block's requests are synchronous and land on one channel.
#[derive(Debug)]
pub struct RpcHub {
    /// Independent request FIFOs. Fair mode: one per channel, a block
    /// posts to `slot % n_channels`. Weighted mode: the channel set is
    /// replicated per tenant (`tenant * n_channels + slot % n_channels`),
    /// so the dispatcher can serve tenants by weight.
    queues: Vec<Mutex<VecDeque<Envelope>>>,
    /// Channels per tenant (the paper's §4.3 channel count).
    n_channels: usize,
    /// Tenant classes this hub distinguishes (≥ 1).
    tenants: usize,
    /// DRR weights; empty = the original fair scan over channels.
    weights: Vec<u32>,
    /// Per-tenant in-flight caps; empty = no admission control, `0` for
    /// one tenant = that tenant unlimited.
    admission: Vec<usize>,
    /// Requests admitted but not yet answered, per tenant.
    inflight: Vec<AtomicUsize>,
    /// Calls that had to wait at the admission throttle, per tenant.
    stalls: Vec<obs::Counter>,
    /// Posts, claims, and the close all serialize on this lock (see the
    /// module docs for the shutdown protocol); the condvar wakes sleeping
    /// workers.
    state: Mutex<HubState>,
    ready: Condvar,
    /// Fair-mode scan cursor: persists across claims (each claim restarts
    /// the scan at the channel after the one it popped), so under
    /// saturation every channel gets served in turn instead of the scan
    /// re-biasing toward low-numbered channels.
    scan: AtomicUsize,
    closed: AtomicBool,
}

impl Default for RpcHub {
    fn default() -> Self {
        Self::with_channels(1)
    }
}

impl RpcHub {
    /// An open, empty, single-channel hub (the original FIFO).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An open, empty hub with `n` independent channels (clamped to ≥ 1)
    /// and no tenant machinery — the original fair-scan hub.
    #[must_use]
    pub fn with_channels(n: usize) -> Self {
        Self::with_tenancy(n, 1, &[], &[])
    }

    /// An open, empty hub with `n` channels (clamped to ≥ 1)
    /// distinguishing at least `tenants` tenant classes (for per-tenant
    /// stat attribution even when dispatch stays fair), weighted DRR
    /// dispatch over `weights` tenants (empty = fair scan) and per-tenant
    /// admission caps (`0`/empty = unlimited).
    #[must_use]
    pub fn with_tenancy(n: usize, tenants: usize, weights: &[u32], admission: &[usize]) -> Self {
        let n_channels = n.max(1);
        let tenants = tenants.max(weights.len()).max(admission.len()).max(1);
        // Fair mode keeps the exact original queue layout so the default
        // dispatch order is bit-for-bit unchanged; weighted mode
        // replicates the channel set per tenant.
        let n_queues = if weights.is_empty() {
            n_channels
        } else {
            tenants * n_channels
        };
        Self {
            queues: (0..n_queues).map(|_| Mutex::new(VecDeque::new())).collect(),
            n_channels,
            tenants,
            weights: weights.to_vec(),
            admission: admission.to_vec(),
            inflight: (0..tenants).map(|_| AtomicUsize::new(0)).collect(),
            stalls: (0..tenants).map(|_| obs::Counter::new()).collect(),
            state: Mutex::new(HubState {
                pending: 0,
                credit: vec![0; tenants],
                tenant_cursor: 0,
                chan_cursor: vec![0; tenants],
            }),
            ready: Condvar::new(),
            scan: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Number of independent request channels (per tenant, in weighted
    /// mode).
    #[must_use]
    pub fn num_channels(&self) -> usize {
        self.n_channels
    }

    /// Number of tenant classes this hub distinguishes (≥ 1).
    #[must_use]
    pub fn num_tenants(&self) -> usize {
        self.tenants
    }

    /// The DRR weights this hub dispatches by (empty = fair scan).
    #[must_use]
    pub fn tenant_weights(&self) -> &[u32] {
        &self.weights
    }

    /// The per-tenant admission caps (empty = no admission control).
    #[must_use]
    pub fn tenant_admission(&self) -> &[usize] {
        &self.admission
    }

    /// Calls of `tenant` that had to wait at the admission throttle.
    #[must_use]
    pub fn tenant_stalls(&self, tenant: TenantId) -> u64 {
        self.stalls[tenant.min(self.tenants - 1)].get()
    }

    /// Requests of `tenant` currently admitted but unanswered.
    #[must_use]
    pub fn tenant_inflight(&self, tenant: TenantId) -> usize {
        self.inflight[tenant.min(self.tenants - 1)].load(Ordering::Acquire)
    }

    /// Queue index for a post by `tenant` on threadblock slot `slot`.
    fn queue_of(&self, tenant: usize, slot: usize) -> usize {
        let chan = slot % self.n_channels;
        if self.weights.is_empty() {
            chan
        } else {
            tenant * self.n_channels + chan
        }
    }

    /// Block until `tenant` is under its in-flight cap, claiming one
    /// admission slot. Returns a guard that frees the slot on drop, or
    /// `DaemonStopped` if the hub closes while waiting.
    fn admit(&self, tenant: usize) -> GpufsResult<InflightGuard<'_>> {
        let cap = self.admission.get(tenant).copied().unwrap_or(0);
        if cap == 0 {
            return Ok(InflightGuard(None));
        }
        let inflight = &self.inflight[tenant];
        let mut fruitless = 0usize;
        loop {
            if self.closed.load(Ordering::Acquire) {
                return Err(GpufsError::DaemonStopped);
            }
            let cur = inflight.load(Ordering::Acquire);
            if cur < cap
                && inflight
                    .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return Ok(InflightGuard(Some(inflight)));
            }
            if fruitless == 0 {
                self.stalls[tenant].incr();
            }
            crate::backoff::spin_then_sleep(fruitless, ADMISSION_SPIN_ROUNDS);
            fruitless += 1;
        }
    }

    /// Post a request on the channel of threadblock slot `slot` as
    /// `tenant` and block until the daemon completes it.
    ///
    /// `issue` is the client's virtual time when the slot was filled. The
    /// returned time is when the completion became visible to the GPU.
    pub(crate) fn call(
        &self,
        slot: usize,
        tenant: TenantId,
        gpu: GpuId,
        issue: Nanos,
        timings: &Timings,
        req: Request,
    ) -> GpufsResult<(RespOk, Nanos)> {
        let tenant = tenant.min(self.tenants - 1);
        // Admission gate first: a throttled tenant waits *before* its
        // envelope takes queue space or worker time. The guard releases
        // the slot on every exit path below.
        let _admitted = self.admit(tenant)?;
        let (tx, rx) = mpsc::sync_channel(1);
        {
            // The closed check and the post are one critical section on
            // the state lock: a request is either posted strictly before
            // the hub closes — and then the worker pool drains it before
            // exiting — or rejected here. There is no in-between where an
            // envelope could be queued with nobody left to answer it.
            let mut st = self.state.lock();
            if self.closed.load(Ordering::Acquire) {
                return Err(GpufsError::DaemonStopped);
            }
            self.queues[self.queue_of(tenant, slot)]
                .lock()
                .push_back(Envelope {
                    req,
                    tenant,
                    gpu,
                    issue,
                    ctx: obs::current(),
                    tx,
                });
            st.pending += 1;
            self.ready.notify_one();
        }
        // The round-trip blocks until a daemon worker answers; holding any
        // shim lock across it would stall every thread that wants that
        // lock for a full host round-trip (and deadlock outright if the
        // daemon needs it to answer). Lockcheck flags exactly that.
        let recv = parking_lot::lockcheck::blocking_region("rpc-roundtrip", || rx.recv());
        let (result, end) = recv.map_err(|_| GpufsError::DaemonStopped)?;
        let visible = end + timings.rpc_complete_ns;
        match result {
            Ok(ok) => Ok((ok, visible)),
            Err(e) => Err(GpufsError::Host(e)),
        }
    }

    /// Daemon side: claim the next request from any channel, or `None`
    /// after shutdown once every queued request has been claimed.
    ///
    /// This is the dispatcher of the daemon's worker pool: workers park on
    /// one condvar and claims are handed out one per wakeup. In fair mode
    /// the claimed envelope is found by scanning the channels round-robin
    /// from a persistent cursor (each claim resumes after the channel it
    /// popped) so a busy channel cannot starve — or be starved by — the
    /// others. In weighted mode the claim is chosen by deficit round-robin
    /// over the tenant queues under the state lock (see `claim_weighted`).
    pub(crate) fn next(&self) -> Option<Envelope> {
        let mut st = self.state.lock();
        loop {
            if st.pending > 0 {
                if self.weights.is_empty() {
                    st.pending -= 1;
                    drop(st);
                    return Some(self.claim_fair());
                }
                if let Some(env) = self.claim_weighted(&mut st) {
                    st.pending -= 1;
                    return Some(env);
                }
            }
            if self.closed.load(Ordering::Acquire) {
                return None;
            }
            self.ready.wait(&mut st);
        }
    }

    /// Fair-mode claim: scan the channels from the persistent cursor.
    /// A claim corresponds to an envelope already pushed (the counter is
    /// incremented after the push, under the same lock), so the scan must
    /// eventually find one; concurrent claimants each take exactly one.
    fn claim_fair(&self) -> Envelope {
        let n = self.queues.len();
        let start = self.scan.load(Ordering::Relaxed);
        loop {
            for i in 0..n {
                let idx = (start + i) % n;
                if let Some(env) = self.queues[idx].lock().pop_front() {
                    // Resume the next scan *after* the claimed channel:
                    // with a reset-per-claim cursor, every wrap-around
                    // lands on the lowest loaded channel first and
                    // high-numbered channels starve under saturation.
                    self.scan.store((idx + 1) % n, Ordering::Relaxed);
                    return env;
                }
            }
            std::thread::yield_now();
        }
    }

    /// Weighted-mode claim, entirely under the state lock (posts hold the
    /// same lock, so queue contents are stable and `pending > 0` means an
    /// envelope is certainly there): deficit round-robin over tenants —
    /// each tenant spends up to `weight` credits per round, a tenant with
    /// nothing queued forfeits its round's credit, and when every backed
    /// tenant is out of credit a new round refills everyone.
    fn claim_weighted(&self, st: &mut HubState) -> Option<Envelope> {
        let (t_count, n) = (self.tenants, self.n_channels);
        let backed =
            |t: usize| -> bool { (0..n).any(|c| !self.queues[t * n + c].lock().is_empty()) };
        let mut chosen = None;
        for round in 0..2 {
            for k in 0..t_count {
                let t = (st.tenant_cursor + k) % t_count;
                if !backed(t) {
                    // DRR: an idle tenant does not bank credit.
                    st.credit[t] = 0;
                    continue;
                }
                if st.credit[t] > 0 {
                    chosen = Some(t);
                    break;
                }
            }
            if chosen.is_some() || round == 1 {
                break;
            }
            for t in 0..t_count {
                st.credit[t] = u64::from(self.weights.get(t).copied().unwrap_or(1).max(1));
            }
        }
        let t = chosen?;
        for k in 0..n {
            let c = (st.chan_cursor[t] + k) % n;
            // Bind the pop so its queue guard drops here: `backed(t)`
            // below re-locks this very queue, which would self-deadlock
            // with the guard still live in an `if let` scrutinee.
            let popped = self.queues[t * n + c].lock().pop_front();
            if let Some(env) = popped {
                st.chan_cursor[t] = (c + 1) % n;
                st.credit[t] -= 1;
                let still_backed = backed(t);
                st.tenant_cursor = if st.credit[t] > 0 && still_backed {
                    t
                } else {
                    (t + 1) % t_count
                };
                return Some(env);
            }
        }
        None
    }

    /// Mark the hub closed and wake every worker so the pool can drain
    /// the queued requests and exit. Serialized with `RpcHub::call` on
    /// the state lock (see the module docs).
    pub(crate) fn close(&self) {
        let _st = self.state.lock();
        self.closed.store(true, Ordering::Release);
        self.ready.notify_all();
    }

    /// Whether the hub has been closed.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn spawn_fake_daemon(hub: &Arc<RpcHub>) -> std::thread::JoinHandle<()> {
        let daemon_hub = Arc::clone(hub);
        std::thread::spawn(move || {
            while let Some(env) = daemon_hub.next() {
                let end = env.issue + 100;
                env.tx.send((Ok(RespOk::Done), end)).unwrap();
            }
        })
    }

    /// Push an envelope straight into `queue` (tests drive `next()`
    /// single-threaded without a live caller blocked on the reply).
    fn push_raw(hub: &RpcHub, queue: usize, tenant: TenantId, fd: u64) {
        let (tx, rx) = mpsc::sync_channel(1);
        std::mem::forget(rx);
        hub.queues[queue].lock().push_back(Envelope {
            req: Request::Fsync { fd },
            tenant,
            gpu: 0,
            issue: 0,
            ctx: obs::TraceCtx::NONE,
            tx,
        });
        hub.state.lock().pending += 1;
    }

    #[test]
    fn call_roundtrips_through_a_fake_daemon() {
        let hub = Arc::new(RpcHub::new());
        let daemon = spawn_fake_daemon(&hub);
        let t = Timings::default();
        let (ok, visible) = hub
            .call(0, 0, 0, 1_000, &t, Request::Fsync { fd: 3 })
            .expect("call should succeed");
        assert!(matches!(ok, RespOk::Done));
        assert_eq!(visible, 1_100 + t.rpc_complete_ns);
        hub.close();
        daemon.join().unwrap();
    }

    #[test]
    fn default_is_equivalent_to_new() {
        // clippy::new_without_default compliance (audited for every
        // `new()`-only type in this crate: RpcHub, Tables, CacheCounters,
        // RadixTree all implement Default).
        let hub = RpcHub::default();
        assert!(!hub.is_closed());
        assert_eq!(hub.num_channels(), 1);
        assert_eq!(hub.num_tenants(), 1);
        assert!(!RpcHub::new().is_closed());
    }

    #[test]
    fn channel_count_clamps_to_one() {
        assert_eq!(RpcHub::with_channels(0).num_channels(), 1);
        assert_eq!(RpcHub::with_channels(7).num_channels(), 7);
    }

    #[test]
    fn tenancy_defaults_reproduce_the_fair_hub() {
        let hub = RpcHub::with_tenancy(3, 1, &[], &[]);
        assert_eq!(hub.num_channels(), 3);
        assert_eq!(hub.num_tenants(), 1);
        assert_eq!(hub.queues.len(), 3, "no per-tenant queue replication");
        assert!(hub.tenant_weights().is_empty());
        assert!(hub.tenant_admission().is_empty());
        let weighted = RpcHub::with_tenancy(3, 1, &[2, 1], &[]);
        assert_eq!(weighted.num_tenants(), 2);
        assert_eq!(weighted.queues.len(), 6, "channel set replicated");
    }

    #[test]
    fn slots_spread_over_channels_and_all_roundtrip() {
        let hub = Arc::new(RpcHub::with_channels(4));
        let daemons: Vec<_> = (0..3).map(|_| spawn_fake_daemon(&hub)).collect();
        std::thread::scope(|s| {
            for slot in 0..16usize {
                let hub = &hub;
                s.spawn(move || {
                    let t = Timings::default();
                    for _ in 0..8 {
                        let (ok, _) = hub
                            .call(slot, 0, 0, 0, &t, Request::Fsync { fd: slot as u64 })
                            .unwrap();
                        assert!(matches!(ok, RespOk::Done));
                    }
                });
            }
        });
        hub.close();
        for d in daemons {
            d.join().unwrap();
        }
    }

    #[test]
    fn closed_hub_rejects_calls() {
        let hub = RpcHub::new();
        hub.close();
        let err = hub.call(0, 0, 0, 0, &Timings::default(), Request::Fsync { fd: 1 });
        assert!(matches!(err, Err(GpufsError::DaemonStopped)));
    }

    #[test]
    fn next_returns_none_after_close_and_drain() {
        let hub = RpcHub::with_channels(2);
        push_raw(&hub, 1, 0, 9);
        hub.close();
        assert!(hub.next().is_some(), "queued request drains first");
        assert!(hub.next().is_none());
    }

    #[test]
    fn saturated_scan_serves_loaded_channels_evenly() {
        // Regression: a scan cursor that re-biases toward low channels
        // would drain channel 0 before ever touching channel 1 under
        // saturation. With 8 channels of which only 0 and 1 are loaded,
        // the persistent cursor must alternate between them.
        let hub = RpcHub::with_channels(8);
        for i in 0..8u64 {
            push_raw(&hub, 0, 0, i);
            push_raw(&hub, 1, 0, 100 + i);
        }
        hub.close();
        let mut claimed = Vec::new();
        while let Some(env) = hub.next() {
            let Request::Fsync { fd } = env.req else {
                unreachable!("only fsyncs queued")
            };
            claimed.push(usize::from(fd >= 100));
        }
        assert_eq!(claimed.len(), 16);
        for pair in claimed.chunks(2) {
            assert_eq!(
                pair.iter().sum::<usize>(),
                1,
                "each consecutive claim pair serves both channels, got {claimed:?}"
            );
        }
    }

    #[test]
    fn weighted_claims_follow_deficit_round_robin() {
        // Tenant 0 at weight 3, tenant 1 at weight 1, both saturated:
        // service must interleave 3:1 per DRR round, not drain tenant 0.
        let hub = RpcHub::with_tenancy(1, 1, &[3, 1], &[]);
        for i in 0..6u64 {
            push_raw(&hub, 0, 0, i);
            push_raw(&hub, 1, 1, 100 + i);
        }
        hub.close();
        let mut order = Vec::new();
        while let Some(env) = hub.next() {
            order.push(env.tenant);
        }
        assert_eq!(
            order,
            vec![0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1, 1],
            "3:1 rounds while both are backed, then the survivor drains"
        );
    }

    #[test]
    fn weighted_hub_roundtrips_under_concurrency() {
        let hub = Arc::new(RpcHub::with_tenancy(2, 1, &[4, 1], &[]));
        let daemons: Vec<_> = (0..2).map(|_| spawn_fake_daemon(&hub)).collect();
        std::thread::scope(|s| {
            for slot in 0..8usize {
                let hub = &hub;
                s.spawn(move || {
                    let t = Timings::default();
                    for _ in 0..16 {
                        let (ok, _) = hub
                            .call(slot, slot % 2, 0, 0, &t, Request::Fsync { fd: 1 })
                            .unwrap();
                        assert!(matches!(ok, RespOk::Done));
                    }
                });
            }
        });
        hub.close();
        for d in daemons {
            d.join().unwrap();
        }
    }

    #[test]
    fn admission_cap_bounds_inflight_and_counts_stalls() {
        // Tenant 0 capped at 1 in-flight; the daemon naps per request so
        // 4 hammering callers overlap constantly. The cap invariant must
        // hold at every claim and every call must still complete.
        let hub = Arc::new(RpcHub::with_tenancy(1, 1, &[], &[1, 0]));
        let daemon_hub = Arc::clone(&hub);
        let daemon = std::thread::spawn(move || {
            while let Some(env) = daemon_hub.next() {
                assert!(
                    daemon_hub.tenant_inflight(0) <= 1,
                    "tenant 0 exceeded its in-flight cap"
                );
                crate::backoff::spin_then_sleep(usize::MAX, 0);
                env.tx.send((Ok(RespOk::Done), env.issue)).unwrap();
            }
        });
        std::thread::scope(|s| {
            for slot in 0..4usize {
                let hub = &hub;
                s.spawn(move || {
                    let t = Timings::default();
                    for _ in 0..24 {
                        hub.call(slot, 0, 0, 0, &t, Request::Fsync { fd: 1 })
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(hub.tenant_inflight(0), 0, "all slots released");
        assert!(
            hub.tenant_stalls(0) > 0,
            "4 callers against a cap of 1 must stall at least once"
        );
        assert_eq!(hub.tenant_stalls(1), 0, "uncapped tenant never stalls");
        hub.close();
        daemon.join().unwrap();
    }

    #[test]
    fn out_of_range_tenant_clamps_to_last() {
        let hub = Arc::new(RpcHub::with_tenancy(1, 1, &[2, 1], &[]));
        let daemon = spawn_fake_daemon(&hub);
        let t = Timings::default();
        let (ok, _) = hub
            .call(0, 99, 0, 0, &t, Request::Fsync { fd: 1 })
            .expect("clamped, not out of bounds");
        assert!(matches!(ok, RespOk::Done));
        hub.close();
        daemon.join().unwrap();
    }

    #[test]
    fn calls_racing_shutdown_complete_or_error_but_never_hang() {
        // Callers hammer the hub while it closes mid-flight. Every call
        // must resolve — served by the draining worker or rejected by the
        // post/close serialization — and the worker must exit.
        for _ in 0..20 {
            let hub = Arc::new(RpcHub::with_channels(3));
            let daemon = spawn_fake_daemon(&hub);
            let callers: Vec<_> = (0..8)
                .map(|i| {
                    let hub = Arc::clone(&hub);
                    std::thread::spawn(move || {
                        let t = Timings::default();
                        let mut outcomes = Vec::new();
                        for _ in 0..16 {
                            outcomes.push(hub.call(i, 0, 0, 0, &t, Request::Fsync { fd: 1 }));
                        }
                        outcomes
                    })
                })
                .collect();
            hub.close();
            daemon.join().unwrap();
            for c in callers {
                for r in c.join().unwrap() {
                    assert!(
                        matches!(r, Ok((RespOk::Done, _)) | Err(GpufsError::DaemonStopped)),
                        "call must complete or error, got {r:?}"
                    );
                }
            }
            assert_eq!(hub.state.lock().pending, 0, "drain accounting balanced");
            assert!(hub.queues.iter().all(|c| c.lock().is_empty()));
        }
    }

    #[test]
    fn host_error_surfaces_to_caller() {
        let hub = Arc::new(RpcHub::new());
        let daemon_hub = Arc::clone(&hub);
        let daemon = std::thread::spawn(move || {
            while let Some(env) = daemon_hub.next() {
                env.tx
                    .send((Err(FsError::NotFound("/gone".into())), env.issue))
                    .unwrap();
            }
        });
        let err = hub.call(
            0,
            0,
            0,
            0,
            &Timings::default(),
            Request::Stat {
                path: "/gone".into(),
            },
        );
        assert!(matches!(err, Err(GpufsError::Host(FsError::NotFound(_)))));
        hub.close();
        daemon.join().unwrap();
    }
}
